//! The GA generation loop: evaluate → roulette-select → crossover →
//! mutate, with elitism.

use crate::chromosome::{order_valid_range, Chromosome};
use crate::config::GaConfig;
use mshc_platform::{HcInstance, MachineId};
use mshc_schedule::{
    BatchEvaluator, EvalSnapshot, Evaluator, RunBudget, RunResult, Scheduler, Solution,
};
use mshc_taskgraph::TaskId;
use mshc_trace::{Trace, TraceRecord};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::time::Instant;

/// The Wang et al. genetic-algorithm scheduler.
#[derive(Debug, Clone)]
pub struct GaScheduler {
    config: GaConfig,
}

impl GaScheduler {
    /// Creates a scheduler; panics on invalid configuration.
    pub fn new(config: GaConfig) -> GaScheduler {
        config.validate();
        GaScheduler { config }
    }

    /// Defaults with a specific seed.
    pub fn with_seed(seed: u64) -> GaScheduler {
        GaScheduler::new(GaConfig::default().with_seed(seed))
    }

    /// The configuration.
    pub fn config(&self) -> &GaConfig {
        &self.config
    }
}

/// Roulette-wheel pick over linearly rescaled fitness: weight
/// `w_i = worst - cost_i + ε·span`, so the worst chromosome keeps a small
/// nonzero chance. Returns an index.
fn roulette<R: Rng + ?Sized>(costs: &[f64], rng: &mut R) -> usize {
    let worst = costs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let best = costs.iter().copied().fold(f64::INFINITY, f64::min);
    let span = (worst - best).max(f64::MIN_POSITIVE);
    let floor = 0.05 * span;
    let total: f64 = costs.iter().map(|&c| worst - c + floor).sum();
    let mut target = rng.gen::<f64>() * total;
    for (i, &c) in costs.iter().enumerate() {
        target -= worst - c + floor;
        if target <= 0.0 {
            return i;
        }
    }
    costs.len() - 1
}

impl Scheduler for GaScheduler {
    fn name(&self) -> &str {
        "ga"
    }

    fn run(
        &mut self,
        inst: &HcInstance,
        budget: &RunBudget,
        mut trace: Option<&mut Trace>,
    ) -> RunResult {
        budget.validate().expect("GA is an anytime algorithm");
        let start = Instant::now();
        let cfg = self.config;
        let g = inst.graph();
        let k = inst.task_count();
        let l = inst.machine_count();
        let objective = budget.objective;
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        // Whole-population fitness goes through the batch evaluator: one
        // call per generation, fanned out over worker threads. GA stays
        // on full (tier-1) per-candidate evaluation — crossover splices
        // whole strings, so no prefix of a child is shared with a primed
        // base and suffix replay has nothing to resume from — but it
        // shares the same snapshot/arena plumbing as the move-based
        // searches (the stride only matters if a custom scheduler mixes
        // in move scoring).
        let snapshot = EvalSnapshot::new(inst);
        let mut batch = BatchEvaluator::new(&snapshot).with_stride(budget.checkpoint_stride);
        let mut sols: Vec<Solution> = Vec::with_capacity(cfg.population);

        // ---- initial population ----
        let mut pop: Vec<Chromosome> =
            (0..cfg.population).map(|_| Chromosome::random(inst, &mut rng)).collect();
        if cfg.seed_with_heuristic {
            pop[0] = Chromosome::seeded(inst);
        }
        sols.extend(pop.iter().map(|c| c.to_solution(inst)));
        let mut costs: Vec<f64> = batch.scores(&sols, &objective);

        let mut best_idx = argmin(&costs);
        let mut best = pop[best_idx].clone();
        let mut best_cost = costs[best_idx];

        let mut generations = 0u64;
        let mut stall = 0u64;

        while !budget.exhausted(generations, batch.evaluations(), start.elapsed(), stall) {
            // ---- next generation ----
            let mut next = Vec::with_capacity(cfg.population);
            // Elitism: carry the best chromosomes over unchanged.
            let mut ranked: Vec<usize> = (0..pop.len()).collect();
            ranked.sort_by(|&a, &b| costs[a].total_cmp(&costs[b]).then(a.cmp(&b)));
            for &i in ranked.iter().take(cfg.elites) {
                next.push(pop[i].clone());
            }
            while next.len() < cfg.population {
                let pa = &pop[roulette(&costs, &mut rng)];
                let pb = &pop[roulette(&costs, &mut rng)];
                let mut child = if rng.gen::<f64>() < cfg.crossover_prob {
                    let cut_s = rng.gen_range(0..=k);
                    let cut_m = rng.gen_range(0..=k);
                    Chromosome {
                        order: pa.crossover_order(pb, cut_s),
                        matching: pa.crossover_matching(pb, cut_m),
                    }
                } else {
                    pa.clone()
                };
                if rng.gen::<f64>() < cfg.sched_mutation_prob {
                    let t = TaskId::from_usize(rng.gen_range(0..k));
                    let (lo, hi) = order_valid_range(g, &child.order, t);
                    let pos = rng.gen_range(lo..=hi);
                    let moved = child.mutate_order(g, t, pos);
                    debug_assert!(moved);
                }
                if rng.gen::<f64>() < cfg.match_mutation_prob {
                    let t = TaskId::from_usize(rng.gen_range(0..k));
                    child.mutate_matching(t, MachineId::from_usize(rng.gen_range(0..l)));
                }
                next.push(child);
            }
            pop = next;
            sols.clear();
            sols.extend(pop.iter().map(|c| c.to_solution(inst)));
            costs = batch.scores(&sols, &objective);

            best_idx = argmin(&costs);
            if costs[best_idx] < best_cost {
                best_cost = costs[best_idx];
                best = pop[best_idx].clone();
                stall = 0;
            } else {
                stall += 1;
            }
            generations += 1;

            if let Some(tr) = trace.as_deref_mut() {
                tr.push(TraceRecord {
                    iteration: generations - 1,
                    elapsed_secs: start.elapsed().as_secs_f64(),
                    evaluations: batch.evaluations(),
                    current_cost: costs[best_idx],
                    best_cost,
                    selected: None,
                    population_mean: Some(costs.iter().sum::<f64>() / costs.len() as f64),
                });
            }
        }

        let solution = best.to_solution(inst);
        let makespan = if objective.is_makespan() {
            best_cost
        } else {
            // Reporting pass, deliberately uncounted.
            Evaluator::with_snapshot(&snapshot).makespan(&solution)
        };
        RunResult {
            solution,
            makespan,
            objective_value: best_cost,
            iterations: generations,
            evaluations: batch.evaluations(),
            elapsed: start.elapsed(),
        }
    }
}

fn argmin(costs: &[f64]) -> usize {
    costs
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.total_cmp(b.1).then(a.0.cmp(&b.0)))
        .map(|(i, _)| i)
        .expect("non-empty population")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mshc_platform::{HcSystem, Matrix};
    use mshc_schedule::replay;
    use mshc_taskgraph::gen::{layered, LayeredConfig};

    fn random_instance(tasks: usize, machines: usize, seed: u64) -> HcInstance {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let cfg = LayeredConfig { tasks, mean_width: 4, edge_prob: 0.5, skip_prob: 0.05 };
        let graph = layered(&cfg, &mut rng).unwrap();
        let exec = Matrix::from_fn(machines, tasks, |_, _| rng.gen_range(10.0..100.0));
        let pairs = machines * (machines - 1) / 2;
        let transfer = Matrix::from_fn(pairs, graph.data_count(), |_, _| rng.gen_range(1.0..30.0));
        let sys = HcSystem::with_anonymous_machines(machines, exec, transfer).unwrap();
        HcInstance::new(graph, sys).unwrap()
    }

    #[test]
    fn roulette_prefers_low_cost() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let costs = vec![100.0, 10.0, 100.0, 100.0];
        let mut hits = [0usize; 4];
        for _ in 0..4000 {
            hits[roulette(&costs, &mut rng)] += 1;
        }
        assert!(hits[1] > hits[0] * 3, "cheapest chromosome must dominate: {hits:?}");
        assert!(hits.iter().all(|&h| h > 0), "everyone keeps a nonzero chance: {hits:?}");
    }

    #[test]
    fn roulette_uniform_when_costs_equal() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let costs = vec![5.0; 4];
        let mut hits = [0usize; 4];
        for _ in 0..4000 {
            hits[roulette(&costs, &mut rng)] += 1;
        }
        for &h in &hits {
            assert!((800..1200).contains(&h), "roughly uniform: {hits:?}");
        }
    }

    #[test]
    fn ga_improves_over_random_baseline() {
        let inst = random_instance(30, 4, 21);
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let mut eval = Evaluator::new(&inst);
        let baseline: f64 = (0..20)
            .map(|_| eval.makespan(&mshc_schedule::random_solution(&inst, &mut rng)))
            .sum::<f64>()
            / 20.0;
        let mut ga = GaScheduler::with_seed(3);
        let r = ga.run(&inst, &RunBudget::iterations(60), None);
        assert!(r.makespan < baseline, "GA ({}) must beat random mean ({baseline})", r.makespan);
    }

    #[test]
    fn ga_result_valid_and_matches_replay() {
        let inst = random_instance(25, 3, 22);
        let mut ga = GaScheduler::with_seed(4);
        let r = ga.run(&inst, &RunBudget::iterations(30), None);
        r.solution.check(inst.graph()).unwrap();
        let sim = replay(&inst, &r.solution).unwrap();
        assert!((sim.makespan - r.makespan).abs() < 1e-9);
    }

    #[test]
    fn ga_is_deterministic_under_seed() {
        let inst = random_instance(20, 3, 23);
        let a = GaScheduler::with_seed(7).run(&inst, &RunBudget::iterations(20), None);
        let b = GaScheduler::with_seed(7).run(&inst, &RunBudget::iterations(20), None);
        assert_eq!(a.solution, b.solution);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.makespan, a.objective_value, "default objective is makespan");
    }

    #[test]
    fn ga_is_bit_identical_across_thread_counts() {
        // Batch population fitness must not perturb a single GA decision,
        // whatever the worker-thread count.
        let inst = random_instance(20, 3, 28);
        let budget = RunBudget::iterations(15);
        let baseline = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap()
            .install(|| GaScheduler::with_seed(5).run(&inst, &budget, None));
        for threads in [2usize, 8] {
            let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
            let r = pool.install(|| GaScheduler::with_seed(5).run(&inst, &budget, None));
            assert_eq!(r.solution, baseline.solution, "{threads} threads");
            assert_eq!(r.makespan, baseline.makespan, "{threads} threads");
            assert_eq!(r.evaluations, baseline.evaluations, "{threads} threads");
        }
    }

    #[test]
    fn ga_optimizes_alternate_objectives() {
        use mshc_schedule::{objective_from_report, replay, ObjectiveKind};
        let inst = random_instance(22, 4, 29);
        for kind in [ObjectiveKind::TotalFlowtime, ObjectiveKind::MeanFlowtime] {
            let budget = RunBudget::iterations(25).with_objective(kind);
            let r = GaScheduler::with_seed(11).run(&inst, &budget, None);
            r.solution.check(inst.graph()).unwrap();
            let sim = replay(&inst, &r.solution).unwrap();
            assert!(
                (r.objective_value - objective_from_report(&kind, &sim)).abs() < 1e-9,
                "{}",
                kind.label()
            );
            assert!((r.makespan - sim.makespan).abs() < 1e-9);
        }
    }

    #[test]
    fn elitism_makes_best_monotone() {
        let inst = random_instance(20, 3, 24);
        let mut trace = Trace::new();
        GaScheduler::with_seed(8).run(&inst, &RunBudget::iterations(40), Some(&mut trace));
        for w in trace.records().windows(2) {
            assert!(w[1].best_cost <= w[0].best_cost + 1e-12, "elitism keeps best monotone");
        }
        // current (best-of-generation) can never beat best-so-far
        for r in trace.records() {
            assert!(r.current_cost >= r.best_cost - 1e-12);
            assert!(r.population_mean.unwrap() >= r.current_cost - 1e-9);
            assert!(r.selected.is_none());
        }
    }

    #[test]
    fn seeded_heuristic_bounds_generation_zero() {
        // With seeding on, generation 0's best is at least as good as the
        // deterministic heuristic chromosome.
        let inst = random_instance(25, 4, 25);
        let seed_cost =
            Evaluator::new(&inst).makespan(&Chromosome::seeded(&inst).to_solution(&inst));
        let mut trace = Trace::new();
        GaScheduler::new(GaConfig { seed: 9, ..Default::default() }).run(
            &inst,
            &RunBudget::iterations(1),
            Some(&mut trace),
        );
        assert!(trace.records()[0].best_cost <= seed_cost + 1e-9);
    }

    #[test]
    fn budget_wall_clock_stops() {
        let inst = random_instance(30, 4, 26);
        let mut ga = GaScheduler::with_seed(10);
        let r = ga.run(&inst, &RunBudget::wall(std::time::Duration::from_millis(50)), None);
        assert!(r.elapsed >= std::time::Duration::from_millis(50));
        assert!(r.elapsed < std::time::Duration::from_secs(10));
        assert!(r.iterations > 0);
    }

    #[test]
    #[should_panic(expected = "anytime")]
    fn unbounded_budget_rejected() {
        let inst = random_instance(5, 2, 27);
        GaScheduler::with_seed(0).run(&inst, &RunBudget::default(), None);
    }

    #[test]
    fn scheduler_name() {
        assert_eq!(GaScheduler::with_seed(0).name(), "ga");
    }
}
