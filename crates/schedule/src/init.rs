//! Initial-solution generation (§4.2 of the paper).
//!
//! "To generate a valid initial solution, each subtask in the DAG is first
//! assigned randomly to a machine … Then, the DAG is topologically sorted
//! … the subtasks are placed in successive segments. This initial valid
//! string is then modified a random number of times" by moving random
//! tasks to random positions inside their valid ranges.

use crate::encoding::Solution;
use mshc_platform::{HcInstance, MachineId};
use mshc_taskgraph::{TaskId, TopoOrder};
use rand::Rng;

/// Generates a random valid solution exactly as §4.2 prescribes.
///
/// `max_perturbations` bounds the "random number of times" the string is
/// perturbed after the topological sort (the paper leaves the bound open;
/// we draw uniformly from `0..=max_perturbations`, default `2k` in
/// [`random_solution`]).
pub fn random_solution_with<R: Rng + ?Sized>(
    inst: &HcInstance,
    max_perturbations: usize,
    rng: &mut R,
) -> Solution {
    let g = inst.graph();
    let l = inst.machine_count();
    // 1. Random machine per task.
    let assignment: Vec<MachineId> =
        (0..g.task_count()).map(|_| MachineId::from_usize(rng.gen_range(0..l))).collect();
    // 2. Topological sort (randomized tie-breaking, so distinct calls
    //    explore distinct regions even before perturbation).
    let order = TopoOrder::random(g, rng);
    let mut sol = Solution::from_order(g, l, order.as_slice(), &assignment)
        .expect("topological order + in-range machines is always valid");
    // 3. Random valid-range moves.
    let n = rng.gen_range(0..=max_perturbations);
    for _ in 0..n {
        let t = TaskId::from_usize(rng.gen_range(0..g.task_count()));
        let (lo, hi) = sol.valid_range(g, t);
        let pos = rng.gen_range(lo..=hi);
        let m = sol.machine_of(t);
        sol.move_task(g, t, pos, m).expect("in-range move");
    }
    sol
}

/// [`random_solution_with`] with the default perturbation bound `2k`.
pub fn random_solution<R: Rng + ?Sized>(inst: &HcInstance, rng: &mut R) -> Solution {
    random_solution_with(inst, 2 * inst.task_count(), rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mshc_platform::{HcSystem, Matrix};
    use mshc_taskgraph::TaskGraphBuilder;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn instance() -> HcInstance {
        let mut b = TaskGraphBuilder::new(7);
        for (s, d) in [(0, 2), (0, 3), (1, 4), (2, 5), (3, 5), (4, 6)] {
            b.add_edge(s, d).unwrap();
        }
        let g = b.build().unwrap();
        let sys = HcSystem::with_anonymous_machines(
            3,
            Matrix::filled(3, 7, 5.0),
            Matrix::filled(3, 6, 1.0),
        )
        .unwrap();
        HcInstance::new(g, sys).unwrap()
    }

    #[test]
    fn random_solutions_are_valid() {
        let inst = instance();
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        for _ in 0..100 {
            let s = random_solution(&inst, &mut rng);
            s.check(inst.graph()).unwrap();
            assert_eq!(s.len(), 7);
            assert_eq!(s.machine_count(), 3);
        }
    }

    #[test]
    fn random_solutions_vary() {
        let inst = instance();
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let mut distinct = std::collections::HashSet::new();
        for _ in 0..50 {
            let s = random_solution(&inst, &mut rng);
            distinct.insert(format!("{s:?}"));
        }
        assert!(distinct.len() > 25, "initializer must diversify ({})", distinct.len());
    }

    #[test]
    fn deterministic_under_seed() {
        let inst = instance();
        let a = random_solution(&inst, &mut ChaCha8Rng::seed_from_u64(33));
        let b = random_solution(&inst, &mut ChaCha8Rng::seed_from_u64(33));
        assert_eq!(a, b);
    }

    #[test]
    fn zero_perturbations_is_topo_order() {
        let inst = instance();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let s = random_solution_with(&inst, 0, &mut rng);
        assert!(inst.graph().is_linear_extension(&s.order().collect::<Vec<_>>()));
    }
}
