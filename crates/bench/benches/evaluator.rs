//! Substrate microbenchmark: makespan evaluation throughput.
//!
//! Every figure's cost is dominated by schedule evaluations (the SE
//! allocation step performs |positions| × Y of them per selected task),
//! so this bench tracks the O(k + p) evaluator across instance sizes,
//! plus the cost of the DES replay cross-check.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mshc_schedule::{random_solution, replay, Evaluator};
use mshc_workloads::WorkloadSpec;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

fn bench_evaluator(c: &mut Criterion) {
    let mut group = c.benchmark_group("evaluator");
    for &tasks in &[25usize, 100, 400] {
        let spec = WorkloadSpec { tasks, ..WorkloadSpec::large(11) };
        let inst = spec.generate();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let sol = random_solution(&inst, &mut rng);
        let mut eval = Evaluator::new(&inst);
        group.bench_with_input(BenchmarkId::new("analytic", tasks), &tasks, |b, _| {
            b.iter(|| black_box(eval.makespan(black_box(&sol))))
        });
        group.bench_with_input(BenchmarkId::new("des_replay", tasks), &tasks, |b, _| {
            b.iter(|| black_box(replay(&inst, black_box(&sol)).unwrap().makespan))
        });
    }
    group.finish();
}

fn bench_solution_moves(c: &mut Criterion) {
    let inst = WorkloadSpec::large(12).generate();
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let mut sol = random_solution(&inst, &mut rng);
    let g = inst.graph();
    c.bench_function("solution/move_task_roundtrip", |b| {
        let t = mshc_taskgraph::TaskId::new(50);
        b.iter(|| {
            let (lo, hi) = sol.valid_range(g, t);
            let m = sol.machine_of(t);
            sol.move_task(g, t, lo, m).unwrap();
            sol.move_task(g, t, hi, m).unwrap();
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_evaluator, bench_solution_moves
}
criterion_main!(benches);
