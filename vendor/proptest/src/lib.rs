//! Hermetic stand-in for `proptest`.
//!
//! Implements the strategy combinators and the `proptest!` macro surface
//! this workspace uses, backed by the vendored ChaCha8 RNG. Cases are
//! sampled deterministically (a fixed seed mixed with the case index), so
//! failures reproduce exactly across runs and machines; there is **no
//! shrinking** — a failing case reports its case index and message.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Test-runner configuration (`ProptestConfig`).
pub mod test_runner {
    /// How many random cases each property runs.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of cases to sample per property.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 256 }
        }
    }

    /// Failure raised by `prop_assert*` inside a property body.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// A failed property with a message.
        pub fn fail(msg: impl std::fmt::Display) -> TestCaseError {
            TestCaseError(msg.to_string())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }
}

/// The RNG handed to strategies while sampling a case.
#[derive(Clone, Debug)]
pub struct TestRng(ChaCha8Rng);

impl TestRng {
    /// Deterministic per-case RNG: fixed base seed mixed with the case
    /// index and a per-property salt (the test function name hash).
    pub fn for_case(salt: u64, case: u64) -> TestRng {
        TestRng(ChaCha8Rng::seed_from_u64(
            0x9e37_79b9_7f4a_7c15_u64
                ^ salt.rotate_left(17)
                ^ case.wrapping_mul(0xff51_afd7_ed55_8ccd),
        ))
    }
}

impl rand::RngCore for TestRng {
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// FNV-1a hash of a string, for per-property RNG salts.
pub fn salt_of(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325_u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// A generator of values of an output type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Sample one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform sampled values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erase this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed alternatives (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A uniform union over the given alternatives.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one alternative");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+)),* $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7),
}

/// Types with a canonical full-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Sample a full-domain value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty => $via:ident),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rand::RngCore::$via(rng) as $t
            }
        }
    )*};
}

impl_arbitrary_int! {
    u8 => next_u32, u16 => next_u32, u32 => next_u32, u64 => next_u64,
    usize => next_u64, i8 => next_u32, i16 => next_u32, i32 => next_u32,
    i64 => next_u64, isize => next_u64,
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.gen_bool(0.5)
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, broadly scaled values; the suite never needs NaN/inf.
        let mantissa: f64 = rng.gen_range(-1.0..1.0);
        let exp: i32 = rng.gen_range(-30..30);
        mantissa * (2.0f64).powi(exp)
    }
}

macro_rules! impl_arbitrary_tuple {
    ($(($($name:ident),+)),* $(,)?) => {$(
        impl<$($name: Arbitrary),+> Arbitrary for ($($name,)+) {
            fn arbitrary(rng: &mut TestRng) -> Self {
                ($($name::arbitrary(rng),)+)
            }
        }
    )*};
}

impl_arbitrary_tuple! {
    (A),
    (A, B),
    (A, B, C),
    (A, B, C, D),
}

/// Strategy over the full domain of `T`.
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `any::<T>()` entry point.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy for `Vec`s with a length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// A vector of `element` samples whose length is drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Boolean strategies (`prop::bool`).
pub mod bool {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// A fair coin.
    #[derive(Clone, Copy, Debug)]
    pub struct BoolStrategy;

    /// Uniform `bool` strategy (`prop::bool::ANY`).
    pub const ANY: BoolStrategy = BoolStrategy;

    impl Strategy for BoolStrategy {
        type Value = bool;

        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.gen_bool(0.5)
        }
    }
}

/// Formatting helper: pretty panic message for a failing case.
pub fn fail_case(test: &str, case: u64, msg: &fmt::Arguments<'_>) -> ! {
    panic!("proptest case failure in `{test}` (case #{case}): {msg}")
}

/// Assert a condition inside a property, failing the case (not
/// panicking) so the runner can report the case index.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// `prop_assert!` for equality, with `{:?}` diagnostics.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: `{} == {}` ({})\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), format!($($fmt)*), a, b
        );
    }};
}

/// `prop_assert!` for inequality, with `{:?}` diagnostics.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($a), stringify!($b), a
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: `{} != {}` ({})\n  both: {:?}",
            stringify!($a), stringify!($b), format!($($fmt)*), a
        );
    }};
}

/// Uniform choice among alternative strategies for the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` sampled executions.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::test_runner::Config::default(); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr;) => {};
    (
        config = $cfg:expr;
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let salt = $crate::salt_of(concat!(module_path!(), "::", stringify!($name)));
            $(let $arg = &$strategy;)+
            for case in 0..config.cases as u64 {
                let mut rng = $crate::TestRng::for_case(salt, case);
                $(let $arg = $crate::Strategy::sample($arg, &mut rng);)+
                let outcome = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = outcome {
                    $crate::fail_case(stringify!($name), case, &format_args!("{}", e));
                }
            }
        }
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
}

/// The glob-import surface mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy,
        Just, Strategy,
    };

    /// Module alias so `prop::collection::vec` etc. resolve after a glob
    /// import, like the real proptest prelude.
    pub use crate as prop;
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_sample_deterministically() {
        let strat = (1usize..10, prop_oneof![Just(1u8), Just(2u8)]).prop_map(|(a, b)| (a, b));
        let mut r1 = crate::TestRng::for_case(1, 7);
        let mut r2 = crate::TestRng::for_case(1, 7);
        assert_eq!(strat.sample(&mut r1), strat.sample(&mut r2));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3usize..17, y in 0.0f64..1.0, z in any::<u64>()) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.0..1.0).contains(&y));
            prop_assert_eq!(z, z);
        }

        #[test]
        fn vec_lengths_respected(v in prop::collection::vec(any::<u32>(), 2..9), b in prop::bool::ANY) {
            prop_assert!(v.len() >= 2 && v.len() < 9);
            let coin = b;
            prop_assert!(usize::from(coin) <= 1);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case failure")]
    #[allow(unnameable_test_items)]
    fn failing_property_panics() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[test]
            fn always_fails(x in 0usize..10) {
                prop_assert!(x > 100);
            }
        }
        always_fails();
    }
}
