//! Declarative tournament specifications and their expansion into
//! deterministic cells.
//!
//! A [`TournamentSpec`] names *what to race*: algorithms × replicate
//! seeds × a [`Scenario`] grid × objectives, plus the per-run iteration
//! budget and the portfolio-mode switch. [`expand`](TournamentSpec::expand)
//! turns it into [`Race`]s — one per (scenario, seed, objective) — and
//! each race produces one cell per algorithm. Every coordinate is
//! explicit and every random stream is seeded from the coordinates, so
//! any cell reproduces bit-identically from the spec alone, at any
//! thread count.

use mshc_core::{SeConfig, SePendingBias};
use mshc_ga::{GaConfig, GaScheduler};
use mshc_heuristics::{
    CpopScheduler, HeftScheduler, ListPolicy, ListScheduler, RandomSearch, SaConfig,
    SimulatedAnnealing, TabuConfig, TabuSearch,
};
use mshc_platform::HcInstance;
use mshc_schedule::{
    ObjectiveKind, OneShotStep, RunBudget, RunResult, Scheduler, SearchStep, SteppableSearch,
};
use mshc_workloads::Scenario;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Every algorithm the tournament can race, in canonical order (the
/// same suite the CLI `compare` command runs).
pub const ALGORITHMS: [&str; 13] = [
    "se", "ga", "heft", "heft-ins", "cpop", "met", "mct", "olb", "min-min", "max-min", "random",
    "sa", "tabu",
];

/// A declarative tournament: algorithms × seeds × scenarios ×
/// objectives, one iteration budget, optional portfolio mode.
///
/// Serializable as JSON (`mshc tournament --spec FILE`); objectives are
/// stored as their CLI spellings so the spec format stays stable and
/// human-editable.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TournamentSpec {
    /// Display name of the scenario grid (e.g. `tiny`, `small`, `full`,
    /// or `custom`). Informational only.
    pub suite: String,
    /// Algorithm names from [`ALGORITHMS`].
    pub algorithms: Vec<String>,
    /// Replicate seeds. Each seed is used both to generate the race's
    /// instance and to seed the algorithms, matching `mshc run --seed`
    /// exactly; derive them with [`replicate_seeds`] for a
    /// ChaCha8-stream default.
    pub seeds: Vec<u64>,
    /// The scenario grid.
    pub scenarios: Vec<Scenario>,
    /// Objectives as CLI spellings (`makespan`, `weighted:1,0.5,0.5`, …).
    pub objectives: Vec<String>,
    /// Per-run iteration budget (generations for GA).
    pub iterations: u64,
    /// Shared-incumbent portfolio mode: race all algorithms of a cell
    /// cooperatively, exchanging the best-known solution at round
    /// barriers.
    pub portfolio: bool,
    /// Migration rounds in portfolio mode (the iteration budget is
    /// split into this many synchronized slices).
    pub rounds: u64,
    /// Whether the move-scan fast path may bound-prune and splice
    /// (default `true`; `mshc tournament --no-prune` turns it off). A
    /// pure cost knob — the leaderboard, evaluation counts included, is
    /// bit-identical either way, which CI `cmp`s.
    #[serde(default = "default_prune")]
    pub prune: bool,
    /// Whether iterative searches may terminate as soon as their
    /// incumbent reaches the certified instance lower bound (default
    /// `true`; `mshc tournament --no-early-stop` turns it off).
    /// Solutions and objective values are bit-identical either way —
    /// nothing below a certified floor exists to find — only iteration
    /// and evaluation counts can shrink.
    #[serde(default = "default_early_stop")]
    pub early_stop: bool,
    /// Forces the GA back onto full tier-1 population evaluation
    /// (default `false`; `mshc tournament --ga-full-eval` turns it on).
    /// Like `prune`, a pure cost knob — the leaderboard, evaluation
    /// counts included, is bit-identical either way, which CI `cmp`s.
    #[serde(default)]
    pub ga_full_eval: bool,
    /// Bounded deterministic same-seed retries for panicked cells
    /// (default 1): a panicking attempt is re-run with identical inputs
    /// up to this many extra times; a retry that completes marks the
    /// cell `degraded` in the leaderboard instead of dropping it.
    #[serde(default = "default_cell_retries")]
    pub cell_retries: u64,
    /// Optional per-cell evaluation-count deadline threaded into every
    /// cell's [`RunBudget`]: cells degrade gracefully at the deadline,
    /// reporting their incumbent with a `deadline` termination instead
    /// of erroring. Deterministic (counted evaluations, not wall
    /// clock), so deadline-cut leaderboards stay byte-identical at any
    /// thread count.
    #[serde(default)]
    pub deadline_evals: Option<u64>,
}

fn default_prune() -> bool {
    true
}

fn default_early_stop() -> bool {
    true
}

fn default_cell_retries() -> u64 {
    1
}

impl TournamentSpec {
    /// A spec over `scenarios` with the default algorithm suite, one
    /// replicate seed stream, the makespan objective and a small
    /// iteration budget.
    pub fn new(suite: impl Into<String>, scenarios: Vec<Scenario>) -> TournamentSpec {
        TournamentSpec {
            suite: suite.into(),
            algorithms: ALGORITHMS.iter().map(|s| s.to_string()).collect(),
            seeds: replicate_seeds(2001, 3),
            scenarios,
            objectives: vec!["makespan".to_string()],
            iterations: 60,
            portfolio: false,
            rounds: 8,
            prune: true,
            early_stop: true,
            ga_full_eval: false,
            cell_retries: 1,
            deadline_evals: None,
        }
    }

    /// Checks the spec is runnable: non-empty axes, a bounded budget,
    /// known algorithm names and parseable objectives.
    pub fn validate(&self) -> Result<(), String> {
        if self.algorithms.is_empty() {
            return Err("spec has no algorithms".into());
        }
        if self.seeds.is_empty() {
            return Err("spec has no seeds".into());
        }
        if self.scenarios.is_empty() {
            return Err("spec has no scenarios".into());
        }
        if self.objectives.is_empty() {
            return Err("spec has no objectives".into());
        }
        if self.iterations == 0 {
            return Err("spec needs a positive iteration budget".into());
        }
        if self.portfolio && self.rounds == 0 {
            return Err("portfolio mode needs at least one round".into());
        }
        if self.deadline_evals == Some(0) {
            return Err("deadline_evals must be positive: a zero deadline would fire before \
                 the first incumbent exists and can never return a schedule"
                .into());
        }
        for name in &self.algorithms {
            if !ALGORITHMS.contains(&name.as_str()) {
                return Err(format!(
                    "unknown algorithm {name:?} (known: {})",
                    ALGORITHMS.join(", ")
                ));
            }
        }
        for o in &self.objectives {
            o.parse::<ObjectiveKind>().map_err(|e| format!("objective {o:?}: {e}"))?;
        }
        // Duplicates would make distinct races collide on one
        // (scenario, seed, objective) leaderboard key — and a duplicated
        // algorithm would double a standing's cell count — silently
        // corrupting the aggregation. Reject them up front.
        let mut seen = std::collections::BTreeSet::new();
        for name in &self.algorithms {
            if !seen.insert(name.clone()) {
                return Err(format!("duplicate algorithm {name:?} in spec"));
            }
        }
        let mut seen = std::collections::BTreeSet::new();
        for &seed in &self.seeds {
            if !seen.insert(seed) {
                return Err(format!("duplicate seed {seed} in spec"));
            }
        }
        let mut seen = std::collections::BTreeSet::new();
        for scenario in &self.scenarios {
            let tag = scenario.tag();
            if !seen.insert(tag.clone()) {
                return Err(format!("duplicate scenario {tag:?} in spec"));
            }
        }
        let mut seen = std::collections::BTreeSet::new();
        for o in &self.objectives {
            if !seen.insert(o.clone()) {
                return Err(format!("duplicate objective {o:?} in spec"));
            }
        }
        Ok(())
    }

    /// Expands the spec into races — one per (scenario, seed,
    /// objective), in deterministic scenario-major order. Each race
    /// produces one cell per algorithm.
    pub fn expand(&self) -> Result<Vec<Race>, String> {
        self.validate()?;
        let mut races = Vec::new();
        for scenario in &self.scenarios {
            for &seed in &self.seeds {
                for label in &self.objectives {
                    let objective: ObjectiveKind = label.parse().expect("validated just above");
                    races.push(Race {
                        index: races.len(),
                        scenario: *scenario,
                        seed,
                        objective,
                        objective_label: label.clone(),
                    });
                }
            }
        }
        Ok(races)
    }

    /// Total cell count (`races × algorithms`).
    pub fn cell_count(&self) -> usize {
        self.scenarios.len() * self.seeds.len() * self.objectives.len() * self.algorithms.len()
    }

    /// The per-race run budget for one objective.
    pub fn budget(&self, objective: ObjectiveKind) -> RunBudget {
        let budget = RunBudget::iterations(self.iterations)
            .with_objective(objective)
            .with_prune(self.prune)
            .with_early_stop(self.early_stop)
            .with_ga_full_eval(self.ga_full_eval);
        match self.deadline_evals {
            Some(deadline) => budget.with_deadline_evals(deadline),
            None => budget,
        }
    }
}

/// Derives `n` replicate seeds from one master seed via a ChaCha8
/// stream — the deterministic default when a spec does not pin seeds
/// explicitly.
pub fn replicate_seeds(master: u64, n: usize) -> Vec<u64> {
    let mut rng = ChaCha8Rng::seed_from_u64(master);
    (0..n).map(|_| rng.gen()).collect()
}

/// One expanded race: a single instance (scenario × seed) scored under
/// one objective, contested by every algorithm of the spec.
#[derive(Debug, Clone)]
pub struct Race {
    /// Position in expansion order (stable cell addressing).
    pub index: usize,
    /// The workload class.
    pub scenario: Scenario,
    /// Replicate seed: generates the instance *and* seeds the
    /// algorithms, exactly like `mshc run --seed`.
    pub seed: u64,
    /// The objective every contestant minimizes.
    pub objective: ObjectiveKind,
    /// Its CLI spelling (stable leaderboard key).
    pub objective_label: String,
}

/// A constructed contestant: iterative algorithms expose the full
/// cooperative interface, one-shot heuristics run through the
/// [`OneShotStep`] adapter.
pub enum Contestant {
    /// An iterative search implementing [`SteppableSearch`].
    Steppable(Box<dyn SteppableSearch>),
    /// A one-shot constructive heuristic.
    OneShot(Box<dyn Scheduler>),
}

impl Contestant {
    /// Runs to completion exactly like the CLI `run` command would.
    pub fn run(&mut self, inst: &HcInstance, budget: &RunBudget) -> RunResult {
        match self {
            Contestant::Steppable(s) => s.run(inst, budget, None),
            Contestant::OneShot(s) => s.run(inst, budget, None),
        }
    }

    /// Opens the cooperative stepped interface for portfolio racing.
    pub fn start<'a>(self, inst: &'a HcInstance, budget: &RunBudget) -> Box<dyn SearchStep + 'a> {
        match self {
            Contestant::Steppable(mut s) => s.start(inst, budget),
            Contestant::OneShot(s) => Box::new(OneShotStep::new(s, inst, budget)),
        }
    }
}

/// Builds a contestant by name with the given seed, mirroring the CLI's
/// scheduler factory (SE resolves its recommended bias from the
/// instance size at run time via [`SePendingBias`]).
pub fn build_contestant(name: &str, seed: u64) -> Result<Contestant, String> {
    Ok(match name {
        "se" => Contestant::Steppable(Box::new(SePendingBias::new(SeConfig {
            seed,
            selection_bias: f64::NAN,
            ..SeConfig::default()
        }))),
        "ga" => Contestant::Steppable(Box::new(GaScheduler::new(GaConfig {
            seed,
            ..GaConfig::default()
        }))),
        "random" => Contestant::Steppable(Box::new(RandomSearch::new(seed))),
        "sa" => Contestant::Steppable(Box::new(SimulatedAnnealing::new(SaConfig {
            seed,
            ..SaConfig::default()
        }))),
        "tabu" => Contestant::Steppable(Box::new(TabuSearch::new(TabuConfig {
            seed,
            ..TabuConfig::default()
        }))),
        "heft" => Contestant::OneShot(Box::new(HeftScheduler::new())),
        "heft-ins" => Contestant::OneShot(Box::new(HeftScheduler::with_insertion())),
        "cpop" => Contestant::OneShot(Box::new(CpopScheduler::new())),
        "met" => Contestant::OneShot(Box::new(ListScheduler::new(ListPolicy::Met))),
        "mct" => Contestant::OneShot(Box::new(ListScheduler::new(ListPolicy::Mct))),
        "olb" => Contestant::OneShot(Box::new(ListScheduler::new(ListPolicy::Olb))),
        "min-min" => Contestant::OneShot(Box::new(ListScheduler::new(ListPolicy::MinMin))),
        "max-min" => Contestant::OneShot(Box::new(ListScheduler::new(ListPolicy::MaxMin))),
        other => return Err(format!("unknown algorithm {other:?}")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mshc_workloads::tiny_suite;

    #[test]
    fn spec_json_without_prune_defaults_to_on() {
        // Pre-existing spec files (written before the bounded fast path)
        // must keep parsing; the missing field defaults to pruning on,
        // and the budget carries it.
        let spec = TournamentSpec::new("tiny", tiny_suite());
        let mut json = serde_json::to_string(&spec).unwrap();
        assert!(json.contains("\"prune\":true"));
        json = json.replace(",\"prune\":true", "").replace("\"prune\":true,", "");
        assert!(!json.contains("prune"));
        let parsed: TournamentSpec = serde_json::from_str(&json).unwrap();
        assert!(parsed.prune, "missing field defaults to on");
        assert!(parsed.budget(ObjectiveKind::Makespan).prune);
        let off = TournamentSpec { prune: false, ..spec };
        let round: TournamentSpec =
            serde_json::from_str(&serde_json::to_string(&off).unwrap()).unwrap();
        assert!(!round.prune, "explicit false round-trips");
        assert!(!round.budget(ObjectiveKind::Makespan).prune);
    }

    #[test]
    fn spec_json_without_early_stop_defaults_to_on() {
        // Spec files written before certified lower bounds existed must
        // keep parsing; the missing field defaults to early stop on.
        let spec = TournamentSpec::new("tiny", tiny_suite());
        let mut json = serde_json::to_string(&spec).unwrap();
        assert!(json.contains("\"early_stop\":true"));
        json = json.replace(",\"early_stop\":true", "").replace("\"early_stop\":true,", "");
        assert!(!json.contains("early_stop"));
        let parsed: TournamentSpec = serde_json::from_str(&json).unwrap();
        assert!(parsed.early_stop, "missing field defaults to on");
        assert!(parsed.budget(ObjectiveKind::Makespan).early_stop);
        let off = TournamentSpec { early_stop: false, ..spec };
        let round: TournamentSpec =
            serde_json::from_str(&serde_json::to_string(&off).unwrap()).unwrap();
        assert!(!round.early_stop, "explicit false round-trips");
        assert!(!round.budget(ObjectiveKind::Makespan).early_stop);
    }

    #[test]
    fn spec_json_without_ga_full_eval_defaults_to_splicing() {
        // Spec files written before GA prefix splicing existed must keep
        // parsing; the missing field defaults to splicing on (full eval
        // off), and the budget carries it.
        let spec = TournamentSpec::new("tiny", tiny_suite());
        let mut json = serde_json::to_string(&spec).unwrap();
        assert!(json.contains("\"ga_full_eval\":false"));
        json = json.replace(",\"ga_full_eval\":false", "").replace("\"ga_full_eval\":false,", "");
        assert!(!json.contains("ga_full_eval"));
        let parsed: TournamentSpec = serde_json::from_str(&json).unwrap();
        assert!(!parsed.ga_full_eval, "missing field defaults to splicing");
        assert!(!parsed.budget(ObjectiveKind::Makespan).ga_full_eval);
        let on = TournamentSpec { ga_full_eval: true, ..spec };
        let round: TournamentSpec =
            serde_json::from_str(&serde_json::to_string(&on).unwrap()).unwrap();
        assert!(round.ga_full_eval, "explicit true round-trips");
        assert!(round.budget(ObjectiveKind::Makespan).ga_full_eval);
    }

    #[test]
    fn default_spec_validates_and_expands() {
        let spec = TournamentSpec::new("tiny", tiny_suite());
        spec.validate().unwrap();
        let races = spec.expand().unwrap();
        assert_eq!(races.len(), 2 * 3, "2 scenarios x 3 seeds x 1 objective");
        assert_eq!(spec.cell_count(), races.len() * ALGORITHMS.len());
        for (i, r) in races.iter().enumerate() {
            assert_eq!(r.index, i);
            assert!(r.objective.is_makespan());
        }
    }

    #[test]
    fn validation_catches_each_axis() {
        let base = TournamentSpec::new("tiny", tiny_suite());
        let mut s = base.clone();
        s.algorithms.clear();
        assert!(s.validate().unwrap_err().contains("algorithms"));
        let mut s = base.clone();
        s.algorithms.push("quantum".into());
        assert!(s.validate().unwrap_err().contains("quantum"));
        let mut s = base.clone();
        s.seeds.clear();
        assert!(s.validate().unwrap_err().contains("seeds"));
        let mut s = base.clone();
        s.scenarios.clear();
        assert!(s.validate().unwrap_err().contains("scenarios"));
        let mut s = base.clone();
        s.objectives = vec!["weighted:1,2".into()];
        assert!(s.validate().unwrap_err().contains("exactly 3"));
        let mut s = base.clone();
        s.iterations = 0;
        assert!(s.validate().unwrap_err().contains("iteration"));
        let mut s = base.clone();
        s.portfolio = true;
        s.rounds = 0;
        assert!(s.validate().unwrap_err().contains("round"));
    }

    #[test]
    fn validation_rejects_duplicates_on_every_axis() {
        // Duplicate coordinates would collide on one leaderboard race
        // key and corrupt win/rank aggregation silently.
        let base = TournamentSpec::new("tiny", tiny_suite());
        let mut s = base.clone();
        s.algorithms.push("se".into());
        assert!(s.validate().unwrap_err().contains("duplicate algorithm"));
        let mut s = base.clone();
        s.seeds.push(s.seeds[0]);
        assert!(s.validate().unwrap_err().contains("duplicate seed"));
        let mut s = base.clone();
        s.scenarios.push(s.scenarios[0]);
        assert!(s.validate().unwrap_err().contains("duplicate scenario"));
        let mut s = base.clone();
        s.objectives.push("makespan".into());
        assert!(s.validate().unwrap_err().contains("duplicate objective"));
    }

    #[test]
    fn spec_json_without_retry_fields_defaults_sanely() {
        // Spec files written before disturbance tolerance existed must
        // keep parsing: one retry by default, no deadline.
        let spec = TournamentSpec::new("tiny", tiny_suite());
        let mut json = serde_json::to_string(&spec).unwrap();
        assert!(json.contains("\"cell_retries\":1"));
        json = json.replace(",\"cell_retries\":1", "").replace("\"cell_retries\":1,", "");
        json = json.replace(",\"deadline_evals\":null", "").replace("\"deadline_evals\":null,", "");
        assert!(!json.contains("cell_retries") && !json.contains("deadline_evals"));
        let parsed: TournamentSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed.cell_retries, 1, "missing field defaults to one retry");
        assert_eq!(parsed.deadline_evals, None);
        assert!(parsed.budget(ObjectiveKind::Makespan).deadline_evals.is_none());
    }

    #[test]
    fn deadline_evals_validates_and_reaches_the_budget() {
        let mut spec = TournamentSpec::new("tiny", tiny_suite());
        spec.deadline_evals = Some(0);
        assert!(spec.validate().unwrap_err().contains("deadline_evals"));
        spec.deadline_evals = Some(500);
        spec.validate().unwrap();
        let budget = spec.budget(ObjectiveKind::Makespan);
        assert_eq!(budget.deadline_evals, Some(500));
        budget.validate().unwrap();
    }

    #[test]
    fn replicate_seeds_are_deterministic_and_distinct() {
        let a = replicate_seeds(7, 5);
        let b = replicate_seeds(7, 5);
        assert_eq!(a, b);
        assert_eq!(a.len(), 5);
        let dedup: std::collections::BTreeSet<u64> = a.iter().copied().collect();
        assert_eq!(dedup.len(), 5, "ChaCha8 stream seeds collide only astronomically");
        assert_ne!(replicate_seeds(8, 5), a);
        // Prefix-stable: asking for fewer seeds yields a prefix.
        assert_eq!(replicate_seeds(7, 2), a[..2].to_vec());
    }

    #[test]
    fn spec_json_roundtrips() {
        let mut spec = TournamentSpec::new("tiny", tiny_suite());
        spec.portfolio = true;
        spec.objectives.push("weighted:1,0.5,0.5".into());
        let json = serde_json::to_string(&spec).unwrap();
        let back: TournamentSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn every_known_algorithm_builds() {
        for name in ALGORITHMS {
            assert!(build_contestant(name, 1).is_ok(), "{name}");
        }
        assert!(build_contestant("quantum", 1).is_err());
    }
}
