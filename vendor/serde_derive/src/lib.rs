//! Derive macros for the vendored serde shim.
//!
//! `syn`/`quote` are unavailable in this offline workspace, so the item
//! is parsed directly from the raw [`TokenStream`]. The parser covers
//! exactly the shapes this workspace derives on: non-generic structs
//! with named fields, tuple structs, and enums whose variants are all
//! unit variants, plus the `#[serde(transparent)]` container attribute
//! and the `#[serde(default)]` / `#[serde(default = "path")]` field
//! attributes (missing-field fallbacks on deserialization, exactly like
//! real serde). Anything else fails the build with a clear compile
//! error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize` (shim data model).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Which::Serialize)
}

/// Derive `serde::Deserialize` (shim data model).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Which::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Which {
    Serialize,
    Deserialize,
}

enum Shape {
    /// Struct with named fields.
    Named { fields: Vec<FieldDef>, transparent: bool },
    /// Tuple struct with `n` unnamed fields.
    Tuple { arity: usize },
    /// Enum whose variants are all unit variants.
    UnitEnum { variants: Vec<String> },
}

/// One named field and its missing-value policy.
struct FieldDef {
    name: String,
    /// `None` = the field is required; `Some(None)` = fall back to
    /// `Default::default()`; `Some(Some(path))` = call `path()`.
    default: Option<Option<String>>,
}

/// What one `#[serde(...)]` (or unrelated) attribute meant.
enum SerdeAttr {
    /// Not a `serde` attribute (doc comment, `derive`, ...).
    NotSerde,
    /// `#[serde(transparent)]` — container attribute.
    Transparent,
    /// `#[serde(default)]` / `#[serde(default = "path")]` — field
    /// attribute.
    Default(Option<String>),
}

fn expand(input: TokenStream, which: Which) -> TokenStream {
    match parse_item(input) {
        Ok((name, shape)) => render(&name, &shape, which).parse().expect("generated impl parses"),
        Err(msg) => {
            let msg = msg.replace('"', "\\\"");
            format!("::std::compile_error!(\"serde shim derive: {msg}\");")
                .parse()
                .expect("compile_error parses")
        }
    }
}

/// Parse the derive input into (type name, shape).
fn parse_item(input: TokenStream) -> Result<(String, Shape), String> {
    let mut iter = input.into_iter().peekable();
    let mut transparent = false;

    // Container attributes and visibility precede the struct/enum keyword.
    let keyword = loop {
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = iter.next() {
                    match parse_serde_attr(&g.stream())? {
                        SerdeAttr::Transparent => transparent = true,
                        SerdeAttr::Default(_) => {
                            return Err("#[serde(default)] is a field attribute in this shim, \
                                        not a container attribute"
                                .into())
                        }
                        SerdeAttr::NotSerde => {}
                    }
                } else {
                    return Err("malformed attribute".into());
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                // Consume an optional `(crate)`-style restriction.
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next();
                    }
                }
            }
            Some(TokenTree::Ident(id)) => {
                let kw = id.to_string();
                if kw == "struct" || kw == "enum" {
                    break kw;
                }
                return Err(format!("unsupported item kind `{kw}`"));
            }
            Some(_) => continue,
            None => return Err("ran out of tokens before struct/enum keyword".into()),
        }
    };

    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("expected type name".into()),
    };

    match iter.next() {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            Err(format!("generic type `{name}` is not supported by the shim derive"))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            if keyword == "struct" {
                let fields = parse_named_fields(g.stream())?;
                if transparent && fields.len() != 1 {
                    return Err(format!(
                        "#[serde(transparent)] on `{name}` requires exactly one field"
                    ));
                }
                Ok((name, Shape::Named { fields, transparent }))
            } else {
                let variants = parse_unit_variants(g.stream())?;
                Ok((name, Shape::UnitEnum { variants }))
            }
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            if keyword == "enum" {
                return Err("malformed enum body".into());
            }
            let arity = count_tuple_fields(g.stream())?;
            if arity == 0 {
                return Err(format!("empty tuple struct `{name}` is not supported"));
            }
            Ok((name, Shape::Tuple { arity }))
        }
        _ => Err(format!("unsupported body for `{name}` (unit structs are not supported)")),
    }
}

/// Inspect one attribute's content. Non-serde attributes (doc comments,
/// `derive`, ...) yield [`SerdeAttr::NotSerde`]; the supported serde
/// attributes yield their parse; any *other* `serde(...)` attribute is
/// an error — the shim supports nothing else, and silently ignoring
/// e.g. `rename` would change the wire format relative to real serde.
fn parse_serde_attr(content: &TokenStream) -> Result<SerdeAttr, String> {
    let mut iter = content.clone().into_iter();
    match (iter.next(), iter.next()) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(g)))
            if id.to_string() == "serde" && g.delimiter() == Delimiter::Parenthesis =>
        {
            let args: Vec<String> = g.stream().into_iter().map(|t| t.to_string()).collect();
            if args.len() == 1 && args[0] == "transparent" {
                Ok(SerdeAttr::Transparent)
            } else if args.len() == 1 && args[0] == "default" {
                Ok(SerdeAttr::Default(None))
            } else if args.len() == 3 && args[0] == "default" && args[1] == "=" {
                // The value must be a quoted string literal, like real
                // serde — reject bare paths/numbers before trimming so
                // they fail here with a clear message instead of as a
                // confusing error inside the generated impl.
                let raw = &args[2];
                if raw.len() < 3 || !raw.starts_with('"') || !raw.ends_with('"') {
                    return Err("#[serde(default = ...)] needs a quoted function path".into());
                }
                Ok(SerdeAttr::Default(Some(raw[1..raw.len() - 1].to_string())))
            } else {
                Err(format!(
                    "unsupported attribute #[serde({})]: the shim derive only knows \
                     #[serde(transparent)] and #[serde(default)] / #[serde(default = ...)]",
                    args.join("")
                ))
            }
        }
        _ => Ok(SerdeAttr::NotSerde),
    }
}

/// Fields of a named-field struct body, with their `#[serde(default)]`
/// policies.
fn parse_named_fields(body: TokenStream) -> Result<Vec<FieldDef>, String> {
    let mut fields: Vec<FieldDef> = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        // Gather per-field attributes, skip visibility. Field-level
        // #[serde(...)] attributes other than `default` are unsupported
        // — reject rather than silently changing the wire format.
        let mut default = None;
        loop {
            match iter.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    iter.next();
                    if let Some(TokenTree::Group(g)) = iter.next() {
                        match parse_serde_attr(&g.stream())? {
                            SerdeAttr::Transparent => {
                                return Err("#[serde(transparent)] is a container attribute, \
                                            not a field attribute"
                                    .into())
                            }
                            SerdeAttr::Default(d) => default = Some(d),
                            SerdeAttr::NotSerde => {}
                        }
                    }
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    iter.next();
                    if let Some(TokenTree::Group(g)) = iter.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            iter.next();
                        }
                    }
                }
                _ => break,
            }
        }
        match iter.next() {
            Some(TokenTree::Ident(id)) => fields.push(FieldDef { name: id.to_string(), default }),
            None => break,
            Some(other) => return Err(format!("expected field name, found `{other}`")),
        }
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            _ => return Err("expected `:` after field name".into()),
        }
        // Skip the type: consume until a comma at angle-bracket depth 0.
        // `->` (in fn-pointer types) must not count as a closing angle.
        let mut angle_depth = 0i32;
        loop {
            match iter.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '-' => {
                    iter.next();
                    if matches!(iter.peek(), Some(TokenTree::Punct(q)) if q.as_char() == '>') {
                        iter.next();
                    }
                }
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                    angle_depth += 1;
                    iter.next();
                }
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => {
                    angle_depth -= 1;
                    iter.next();
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && angle_depth == 0 => {
                    iter.next();
                    break;
                }
                Some(_) => {
                    iter.next();
                }
                None => break,
            }
        }
    }
    if fields.is_empty() {
        return Err("struct with no fields is not supported".into());
    }
    Ok(fields)
}

/// Number of fields in a tuple-struct body. Trailing commas do not
/// count, and `->` in fn-pointer types does not close an angle bracket.
fn count_tuple_fields(body: TokenStream) -> Result<usize, String> {
    let mut commas = 0usize;
    let mut angle_depth = 0i32;
    let mut tokens_since_comma = false;
    let mut prev_was_minus = false;
    for tok in body {
        let mut is_minus = false;
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '-' => is_minus = true,
                '<' => angle_depth += 1,
                '>' if !prev_was_minus => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    commas += 1;
                    tokens_since_comma = false;
                    prev_was_minus = false;
                    continue;
                }
                _ => {}
            }
        }
        tokens_since_comma = true;
        prev_was_minus = is_minus;
    }
    Ok(commas + usize::from(tokens_since_comma))
}

/// Variant names of an all-unit-variant enum body.
fn parse_unit_variants(body: TokenStream) -> Result<Vec<String>, String> {
    let mut variants = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        // Skip variant attributes (doc comments, #[default], ...), but
        // reject unsupported #[serde(...)] ones.
        while let Some(TokenTree::Punct(p)) = iter.peek() {
            if p.as_char() == '#' {
                iter.next();
                if let Some(TokenTree::Group(g)) = iter.next() {
                    if !matches!(parse_serde_attr(&g.stream())?, SerdeAttr::NotSerde) {
                        return Err("serde attributes are not supported on enum variants \
                                    by the shim derive"
                            .into());
                    }
                }
            } else {
                break;
            }
        }
        match iter.next() {
            Some(TokenTree::Ident(id)) => variants.push(id.to_string()),
            None => break,
            Some(other) => return Err(format!("expected variant name, found `{other}`")),
        }
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            Some(TokenTree::Group(_)) => {
                return Err("enum variants with data are not supported by the shim derive".into())
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                return Err("explicit discriminants are not supported by the shim derive".into())
            }
            None => break,
            Some(other) => return Err(format!("unexpected token `{other}` after variant")),
        }
    }
    if variants.is_empty() {
        return Err("enum with no variants is not supported".into());
    }
    Ok(variants)
}

/// Render the impl block for one trait.
fn render(name: &str, shape: &Shape, which: Which) -> String {
    match which {
        Which::Serialize => render_serialize(name, shape),
        Which::Deserialize => render_deserialize(name, shape),
    }
}

fn render_serialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::Named { fields, transparent: true } => {
            format!("::serde::Serialize::serialize(&self.{})", fields[0].name)
        }
        Shape::Named { fields, transparent: false } => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    let f = &f.name;
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::serialize(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Map(::std::vec![{}])", entries.join(", "))
        }
        Shape::Tuple { arity: 1 } => "::serde::Serialize::serialize(&self.0)".to_string(),
        Shape::Tuple { arity } => {
            let items: Vec<String> =
                (0..*arity).map(|i| format!("::serde::Serialize::serialize(&self.{i})")).collect();
            format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
        }
        Shape::UnitEnum { variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    format!(
                        "{name}::{v} => ::serde::Value::Str(::std::string::String::from(\"{v}\"))"
                    )
                })
                .collect();
            format!("match *self {{ {} }}", arms.join(", "))
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn serialize(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn render_deserialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::Named { fields, transparent: true } => {
            let f = &fields[0].name;
            format!("Ok({name} {{ {f}: ::serde::Deserialize::deserialize(v)? }})")
        }
        Shape::Named { fields, transparent: false } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|field| {
                    let f = &field.name;
                    match &field.default {
                        // Required field: missing is an error.
                        None => format!(
                            "{f}: ::serde::Deserialize::deserialize(\
                                 v.get_field(\"{f}\").ok_or_else(|| \
                                     ::serde::Error::missing_field(\"{name}\", \"{f}\"))?)?"
                        ),
                        // Defaulted field: missing falls back, exactly
                        // like real serde's #[serde(default)].
                        Some(default) => {
                            let fallback = match default {
                                Some(path) => format!("{path}()"),
                                None => "::std::default::Default::default()".to_string(),
                            };
                            format!(
                                "{f}: match v.get_field(\"{f}\") {{\n\
                                     ::std::option::Option::Some(fv) => \
                                         ::serde::Deserialize::deserialize(fv)?,\n\
                                     ::std::option::Option::None => {fallback},\n\
                                 }}"
                            )
                        }
                    }
                })
                .collect();
            format!(
                "if v.as_map().is_none() {{\n\
                     return Err(::serde::Error::expected(\"map\", \"{name}\", v));\n\
                 }}\n\
                 Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Shape::Tuple { arity: 1 } => {
            format!("Ok({name}(::serde::Deserialize::deserialize(v)?))")
        }
        Shape::Tuple { arity } => {
            let elems: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Deserialize::deserialize(&items[{i}])?"))
                .collect();
            format!(
                "let items = v.as_seq().ok_or_else(|| \
                     ::serde::Error::expected(\"seq\", \"{name}\", v))?;\n\
                 if items.len() != {arity} {{\n\
                     return Err(::serde::Error::custom(::std::format!(\n\
                         \"expected {arity} elements for {name}, found {{}}\", items.len())));\n\
                 }}\n\
                 Ok({name}({}))",
                elems.join(", ")
            )
        }
        Shape::UnitEnum { variants } => {
            let arms: Vec<String> =
                variants.iter().map(|v| format!("\"{v}\" => Ok({name}::{v})")).collect();
            format!(
                "match v.as_str() {{\n\
                     Some(s) => match s {{\n\
                         {},\n\
                         other => Err(::serde::Error::unknown_variant(\"{name}\", other)),\n\
                     }},\n\
                     None => Err(::serde::Error::expected(\"string\", \"{name}\", v)),\n\
                 }}",
                arms.join(",\n")
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn deserialize(v: &::serde::Value) -> ::std::result::Result<{name}, ::serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}
