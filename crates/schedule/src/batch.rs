//! Parallel batch evaluation of candidate sets.
//!
//! Every search algorithm in the suite has the same hot shape: produce a
//! set of candidate schedules that are independent of one another, score
//! them all, pick one. [`BatchEvaluator`] centralizes that shape — it
//! owns a pool of reusable per-thread arenas (a borrowed-snapshot
//! [`Evaluator`], an [`IncrementalEvaluator`] and a scratch [`Solution`])
//! and fans a candidate set out over the rayon executor in one call.
//! Arenas live in **per-worker slots** keyed by
//! [`rayon::current_thread_index`] (the persistent pool keeps worker
//! identity stable, so slot `i` always means the same OS thread), with a
//! trailing slot for the submitting thread and an overflow list for
//! anything else — checkout is an uncontended slot take, not a shared
//! `Mutex<Vec>` scramble, and steady-state batch scoring performs no
//! allocations beyond the output vector.
//!
//! The move-oriented entry points ([`score_moves`], [`score_task_moves`])
//! route through the per-thread incremental evaluators whenever the
//! objective supports accumulator finalization (every
//! [`crate::ObjectiveKind`] does): workers prime their evaluator on the
//! shared base and score candidates by suffix replay — no per-candidate
//! `Solution` mutation at all. Because a worker's slot survives across
//! chunks, the prime is stamped with a per-scan epoch and **reused** by
//! every later chunk the same worker claims within the scan (the base,
//! stride, pruning flags and floor are scan-constant), eliminating the
//! old re-prime-per-chunk cost. Objectives without incremental support
//! fall back to clone-and-move full passes.
//!
//! Panic hygiene: a panicking objective (already `catch_unwind`-contained
//! by tournament cells) discards the arena it was using instead of
//! returning it, and every pool lock recovers from poisoning — one bad
//! cell can never cascade `"arena pool poisoned"` panics into healthy
//! scans that share the evaluator.
//!
//! Determinism: scores are returned **in candidate order** and every
//! candidate's score depends only on that candidate, so results are
//! bit-identical at any thread count — the serial-vs-parallel SE guard
//! tests pin this down. Per-chunk primes are deliberately *not* counted
//! into [`evaluations`](BatchEvaluator::evaluations): the chunk grid
//! varies with the thread count, and the evaluation axis must not.
//!
//! [`score_moves`]: BatchEvaluator::score_moves
//! [`score_task_moves`]: BatchEvaluator::score_task_moves

use crate::encoding::Solution;
use crate::eval::Evaluator;
use crate::incremental::{IncrementalEvaluator, MoveScore, ScanStats};
use crate::objective::Objective;
use crate::snapshot::EvalSnapshot;
use mshc_obs as obs;
use mshc_platform::MachineId;
use mshc_taskgraph::{TaskGraph, TaskId};
use rayon::prelude::*;
use std::ops::Range;
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Locks a pool mutex, recovering the data on poison. Arena state is
/// always structurally valid (a suspect arena is discarded by the guard
/// before the poison could matter), so poisoning must not cascade.
fn lock_tolerant<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Winner of a bounded argmin scan: the earliest-index minimum-score
/// candidate, with its exact score.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BestMove {
    /// Index into the caller's move slice.
    pub index: usize,
    /// The candidate's exact objective value (never a pruned bound).
    pub score: f64,
}

/// How a population candidate descends from the parent pool — the
/// routing metadata [`BatchEvaluator::score_population`] consumes. The
/// caller (the GA generation loop) computes one per child; every
/// variant scores bit-identically to a full evaluation of the child,
/// so the routing is a pure cost decision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Descent {
    /// No usable parent lineage: full tier-1 evaluation.
    Fresh,
    /// Bit-for-bit copy of `parents[parent]` (an elite, or crossover of
    /// converged parents with no effective mutation): the parent's
    /// known cost **is** the child's cost — a full pass over an
    /// identical solution recomputes identical bits.
    Clone {
        /// Index into the parent pool.
        parent: usize,
    },
    /// `parents[parent]` with exactly one task moved
    /// (remove-then-insert, [`Solution::move_task`] semantics) — the
    /// mutation-only child shape, routed through the existing
    /// [`IncrementalEvaluator::score_move`] path.
    Move {
        /// Index into the parent pool.
        parent: usize,
        /// The relocated task.
        task: TaskId,
        /// Its new string position.
        pos: usize,
        /// Its new machine.
        machine: MachineId,
    },
    /// Shares the string prefix `[0, diverge)` with `parents[parent]`
    /// (crossover offspring): scored by
    /// [`IncrementalEvaluator::score_suffix`] against the parent-primed
    /// checkpoints.
    Suffix {
        /// Index into the parent pool.
        parent: usize,
        /// First string position where the child's segments differ from
        /// the parent's (any smaller value is also sound).
        diverge: usize,
    },
}

/// One worker's reusable state: evaluators over the shared snapshot and
/// an optional scratch solution for non-incremental move scoring.
struct Arena<'a> {
    eval: Evaluator<'a>,
    inc: IncrementalEvaluator<'a>,
    scratch: Option<Solution>,
    /// Scan epoch `inc` was last primed for (0 = never). Within one scan
    /// the prime inputs are constant, so a matching stamp lets a worker
    /// reuse its prime across every chunk it claims in that scan.
    primed_epoch: u64,
    /// Whether `inc` currently holds a *population-mode* prime
    /// (splicing on, pruning off, floor inert) — the GA parent shape.
    /// Unlike scan primes, population primes are keyed by the primed
    /// base itself, not an epoch: dominant parents and elites recur
    /// bit-identically across generations, so a worker that meets the
    /// same parent again skips the prime entirely.
    pop_primed: bool,
    /// Stride the population prime was taken at (reuse requires a
    /// match; the stride is a bit-neutral cost knob, but checkpoints
    /// built at one stride cannot serve resumes computed for another).
    pop_stride: Option<usize>,
}

impl<'a> Arena<'a> {
    fn new(snap: &'a EvalSnapshot) -> Arena<'a> {
        Arena {
            eval: Evaluator::with_snapshot(snap),
            inc: IncrementalEvaluator::with_snapshot(snap),
            scratch: None,
            primed_epoch: 0,
            pop_primed: false,
            pop_stride: None,
        }
    }
}

/// Arena storage pinned to the resident rayon workers: slot `i` belongs
/// to worker `i`, the trailing slot to the submitting (non-worker)
/// thread, and `overflow` catches late-grown workers beyond the slot
/// range. A slot is touched only by its own thread during a scan
/// (`&mut self` on the evaluator keeps scans from overlapping), so
/// checkout never contends.
struct ArenaPool<'a> {
    slots: Vec<Mutex<Option<Arena<'a>>>>,
    overflow: Mutex<Vec<Arena<'a>>>,
}

impl<'a> ArenaPool<'a> {
    fn new() -> ArenaPool<'a> {
        let slots = (0..rayon::current_num_threads() + 1).map(|_| Mutex::new(None)).collect();
        ArenaPool { slots, overflow: Mutex::new(Vec::new()) }
    }

    /// The slot owned by the calling thread, or `None` for a worker
    /// index beyond the slot range (scored via the overflow list).
    fn slot_for_current_thread(&self) -> Option<usize> {
        match rayon::current_thread_index() {
            None => Some(self.slots.len() - 1),
            Some(i) if i < self.slots.len() - 1 => Some(i),
            Some(_) => None,
        }
    }
}

/// Checked-out arena that returns itself to its slot on drop — unless
/// the thread is unwinding, in which case the arena is discarded: its
/// evaluators may be mid-replay, and returning it under a panic is
/// exactly the poisoning path this type exists to close.
struct ArenaGuard<'p, 'a> {
    pool: &'p ArenaPool<'a>,
    slot: Option<usize>,
    arena: Option<Arena<'a>>,
}

impl<'p, 'a> ArenaGuard<'p, 'a> {
    fn checkout(pool: &'p ArenaPool<'a>, snap: &'a EvalSnapshot) -> ArenaGuard<'p, 'a> {
        let slot = pool.slot_for_current_thread();
        let existing = match slot {
            Some(i) => lock_tolerant(&pool.slots[i]).take(),
            None => None,
        }
        .or_else(|| lock_tolerant(&pool.overflow).pop());
        let arena = existing.unwrap_or_else(|| Arena::new(snap));
        ArenaGuard { pool, slot, arena: Some(arena) }
    }

    /// Checks out an arena with its scratch solution reset to `base`.
    fn checkout_with_base(
        pool: &'p ArenaPool<'a>,
        snap: &'a EvalSnapshot,
        base: &Solution,
    ) -> ArenaGuard<'p, 'a> {
        let mut guard = ArenaGuard::checkout(pool, snap);
        let arena = guard.arena.as_mut().expect("arena present until drop");
        match &mut arena.scratch {
            Some(s) => s.clone_from(base),
            none => *none = Some(base.clone()),
        }
        guard
    }

    /// Checks out an arena with its incremental evaluator primed on
    /// `base` at the requested checkpoint stride and configured with the
    /// evaluator's prune/splice flags — the move-scoring fast path. The
    /// prime is stamped with the scan `epoch`: the first chunk a thread
    /// claims pays the O(k + p) prime, every later chunk of the same
    /// scan finds the stamp current and reuses it as-is (base, stride,
    /// flags and floor are all scan-constant).
    fn checkout_primed(
        pool: &'p ArenaPool<'a>,
        snap: &'a EvalSnapshot,
        base: &Solution,
        stride: Option<usize>,
        prune: bool,
        scan_floor: f64,
        epoch: u64,
    ) -> ArenaGuard<'p, 'a> {
        let mut guard = ArenaGuard::checkout(pool, snap);
        let arena = guard.arena.as_mut().expect("arena present until drop");
        if arena.primed_epoch != epoch {
            arena.inc.set_stride(stride);
            arena.inc.set_pruning(prune);
            arena.inc.set_splicing(prune);
            arena.inc.set_scan_floor(scan_floor);
            arena.inc.prime(base);
            arena.primed_epoch = epoch;
            arena.pop_primed = false;
        }
        guard
    }

    /// Checks out an arena primed on a GA parent for population scoring:
    /// splicing on (splices are bit-exact), pruning **off** (roulette
    /// needs every exact value), floor inert. The prime is keyed by the
    /// base solution itself rather than a scan epoch — if the arena
    /// already holds a population prime on a bit-identical base at the
    /// same stride (the dominant parent of a converged population, or
    /// an elite recurring across generations), it is reused as-is.
    fn checkout_population(
        pool: &'p ArenaPool<'a>,
        snap: &'a EvalSnapshot,
        base: &Solution,
        stride: Option<usize>,
    ) -> ArenaGuard<'p, 'a> {
        let mut guard = ArenaGuard::checkout(pool, snap);
        let arena = guard.arena.as_mut().expect("arena present until drop");
        let reusable =
            arena.pop_primed && arena.pop_stride == stride && arena.inc.base() == Some(base);
        if !reusable {
            arena.inc.set_stride(stride);
            arena.inc.set_pruning(false);
            arena.inc.set_splicing(true);
            arena.inc.set_scan_floor(f64::NEG_INFINITY);
            arena.inc.prime(base);
            arena.pop_primed = true;
            arena.pop_stride = stride;
            // A later move scan must not mistake this for its own prime.
            arena.primed_epoch = 0;
        }
        guard
    }

    fn parts(&mut self) -> (&mut Evaluator<'a>, &mut Option<Solution>) {
        let arena = self.arena.as_mut().expect("arena present until drop");
        (&mut arena.eval, &mut arena.scratch)
    }

    fn inc(&mut self) -> &mut IncrementalEvaluator<'a> {
        &mut self.arena.as_mut().expect("arena present until drop").inc
    }
}

impl Drop for ArenaGuard<'_, '_> {
    fn drop(&mut self) {
        let Some(arena) = self.arena.take() else { return };
        if std::thread::panicking() {
            // A panicking candidate (custom objective) may have left the
            // evaluators mid-replay; drop the arena on the floor. The
            // next checkout on this slot simply builds a fresh one.
            return;
        }
        match self.slot {
            Some(i) => {
                let mut slot = lock_tolerant(&self.pool.slots[i]);
                if slot.is_none() {
                    *slot = Some(arena);
                    return;
                }
                drop(slot);
                lock_tolerant(&self.pool.overflow).push(arena);
            }
            None => lock_tolerant(&self.pool.overflow).push(arena),
        }
    }
}

/// Scores whole candidate sets in one call, in parallel.
pub struct BatchEvaluator<'a> {
    snap: &'a EvalSnapshot,
    arenas: ArenaPool<'a>,
    /// Monotone per-scan counter stamping arena primes (see
    /// [`ArenaGuard::checkout_primed`]); bumped by every scoring entry
    /// point so a stale prime can never leak across scans.
    scan_epoch: u64,
    /// Checkpoint stride handed to the per-thread incremental evaluators
    /// (`None` = auto `⌈√k⌉`). Never affects scores, only resume cost.
    stride: Option<usize>,
    /// Whether the bounded scans may prune/splice (`--no-prune` turns
    /// this off). Selections are bit-identical either way.
    prune: bool,
    /// Certified instance floor forwarded to the per-thread incremental
    /// evaluators as a scan-global cutoff (default `-inf` = inert).
    scan_floor: f64,
    evaluations: u64,
    /// Aggregated fast-path counters across all calls (pruned/spliced
    /// parts are diagnostics: they vary with the chunk grid).
    scan: ScanStats,
}

impl<'a> BatchEvaluator<'a> {
    /// Creates a batch evaluator over a shared snapshot.
    pub fn new(snap: &'a EvalSnapshot) -> BatchEvaluator<'a> {
        BatchEvaluator {
            snap,
            arenas: ArenaPool::new(),
            scan_epoch: 0,
            stride: None,
            prune: true,
            scan_floor: f64::NEG_INFINITY,
            evaluations: 0,
            scan: ScanStats::default(),
        }
    }

    /// Sets the checkpoint stride for incremental move scoring (`None` =
    /// auto `⌈√k⌉`).
    pub fn with_stride(mut self, stride: Option<usize>) -> BatchEvaluator<'a> {
        self.stride = stride;
        self
    }

    /// Enables/disables bound pruning and reconvergence splicing in the
    /// incremental move scans (default: on). A pure cost knob — argmin
    /// results, scores and evaluation counts are identical either way.
    pub fn with_pruning(mut self, prune: bool) -> BatchEvaluator<'a> {
        self.prune = prune;
        self
    }

    /// Installs a certified instance floor as the scan-global cutoff for
    /// the bounded argmin scans (see
    /// [`IncrementalEvaluator::set_scan_floor`]). Callers must only pass
    /// a floor that provably lower-bounds every candidate's exact score
    /// under the scan's objective — [`crate::InstanceBound::floor`] under
    /// makespan. Honored only while pruning is enabled; another pure
    /// cost knob (argmin results, scores and evaluation counts are
    /// identical either way).
    pub fn with_scan_floor(mut self, floor: f64) -> BatchEvaluator<'a> {
        self.scan_floor = floor;
        self
    }

    /// The shared snapshot.
    #[inline]
    pub fn snapshot(&self) -> &'a EvalSnapshot {
        self.snap
    }

    /// Total schedule evaluations performed across all batches (one per
    /// scored candidate; per-chunk primes are uncounted so the axis is
    /// thread-count independent).
    #[inline]
    pub fn evaluations(&self) -> u64 {
        self.evaluations
    }

    /// Counters of the bounded/spliced fast path across all calls. The
    /// `scored` axis is deterministic; pruned/spliced fractions vary
    /// with the chunk grid (thread count) and are diagnostics only.
    #[inline]
    pub fn scan_stats(&self) -> ScanStats {
        self.scan
    }

    /// Contiguous index chunks for a bounded scan: one chunk on a
    /// single-thread pool (maximal bound reuse), a few per worker
    /// otherwise. The grid never affects the scan's outcome — only
    /// which candidates get pruned versus scored to completion.
    fn scan_chunks(&self, len: usize) -> Vec<Range<usize>> {
        let threads = rayon::current_num_threads().max(1);
        let chunk = if threads == 1 { len } else { len.div_ceil(threads * 2).max(1) };
        (0..len).step_by(chunk.max(1)).map(|lo| lo..(lo + chunk).min(len)).collect()
    }

    /// Scores every candidate solution under `obj`; `out[i]` is the score
    /// of `candidates[i]`. Whole solutions share no base, so this is
    /// always full (tier-1) evaluation fanned out per thread.
    pub fn scores(&mut self, candidates: &[Solution], obj: &dyn Objective) -> Vec<f64> {
        let snap = self.snap;
        let pool = &self.arenas;
        let out: Vec<f64> = candidates
            .par_iter()
            .map_init(
                || ArenaGuard::checkout(pool, snap),
                |guard, sol| {
                    let (eval, _) = guard.parts();
                    eval.objective_value(sol, obj)
                },
            )
            .collect();
        self.evaluations += candidates.len() as u64;
        out
    }

    /// Scores a GA generation against its parent pool: `out[i]` is the
    /// exact score of `children[i]`, bit-identical to
    /// [`scores`](Self::scores) over the same children, computed with as
    /// little replay as the lineage allows. `descents[i]` says how child
    /// `i` descends from `parents` (with `parent_costs` the parents' own
    /// scores, as returned by the previous generation's scoring):
    ///
    /// - [`Descent::Clone`] children reuse the parent's cost outright —
    ///   a full pass over a bit-identical solution recomputes identical
    ///   bits, so no pass runs at all;
    /// - [`Descent::Move`] and [`Descent::Suffix`] children are grouped
    ///   by parent; each group primes one per-worker incremental
    ///   evaluator on its parent (reused across generations when the
    ///   parent recurs — see `ArenaGuard::checkout_population`) and
    ///   scores its children by checkpoint-resumed suffix replay with
    ///   reconvergence splicing, pruning off;
    /// - [`Descent::Fresh`] children take the tier-1 full pass.
    ///
    /// A parent group whose summed divergence indices don't cover the
    /// ~two-walk cost of a prime is demoted to full passes — the
    /// routing guard that keeps unconverged (random) populations from
    /// paying more for priming than the prefixes save. The demotion
    /// rule reads only the descent metadata, so routing — and with it
    /// every counter this method touches — is deterministic at any
    /// thread count.
    ///
    /// Every child counts as exactly one evaluation, clones and
    /// demotions included: the evaluation axis measures candidates
    /// considered, exactly like [`scores`](Self::scores).
    ///
    /// # Panics
    /// If slice lengths disagree, a descent names a parent index out of
    /// range, or (debug) a divergence index exceeds the string length.
    pub fn score_population(
        &mut self,
        parents: &[Solution],
        parent_costs: &[f64],
        children: &[Solution],
        descents: &[Descent],
        obj: &dyn Objective,
    ) -> Vec<f64> {
        assert_eq!(children.len(), descents.len(), "one descent per child");
        assert_eq!(parents.len(), parent_costs.len(), "one cost per parent");
        if children.is_empty() {
            return Vec::new();
        }
        let _scan_timer = obs::timer(obs::Hist::ScanLatencyUs);
        let k = self.snap.task_count();
        let incremental = obj.supports_incremental();

        // Route deterministically: clones shortcut, lineage children
        // group by parent, everything else full-evaluates. `savings`
        // accumulates the string positions each group's prime would
        // save; a prime costs about two walks (the priming pass plus
        // checkpoint/suffix sweeps), so groups below `2k` are demoted.
        enum Kid {
            Move { idx: usize, task: TaskId, pos: usize, machine: MachineId },
            Suffix { idx: usize, diverge: usize },
        }
        let mut clones: Vec<(usize, usize)> = Vec::new();
        let mut fulls: Vec<usize> = Vec::new();
        let mut grouped: Vec<(Vec<Kid>, u64)> = Vec::new();
        let mut group_of: Vec<Option<usize>> = vec![None; parents.len()];
        let mut group_parent: Vec<usize> = Vec::new();
        for (i, d) in descents.iter().enumerate() {
            let lineage = match *d {
                Descent::Fresh => None,
                Descent::Clone { parent } => {
                    assert!(parent < parents.len(), "clone parent out of range");
                    clones.push((i, parent));
                    continue;
                }
                Descent::Move { parent, task, pos, machine } if incremental => {
                    let reused = parents[parent].position_of(task).min(pos);
                    Some((parent, Kid::Move { idx: i, task, pos, machine }, reused))
                }
                Descent::Suffix { parent, diverge } if incremental => {
                    debug_assert!(diverge <= k, "divergence index out of range");
                    Some((parent, Kid::Suffix { idx: i, diverge }, diverge))
                }
                Descent::Move { .. } | Descent::Suffix { .. } => None,
            };
            match lineage {
                Some((parent, kid, reused)) => {
                    assert!(parent < parents.len(), "lineage parent out of range");
                    let g = *group_of[parent].get_or_insert_with(|| {
                        grouped.push((Vec::new(), 0));
                        group_parent.push(parent);
                        grouped.len() - 1
                    });
                    grouped[g].0.push(kid);
                    grouped[g].1 += reused as u64;
                }
                None => fulls.push(i),
            }
        }
        // Demote unprofitable groups to full passes, keeping the
        // profitable ones in first-encounter order.
        let prime_cost = 2 * k as u64;
        let mut groups: Vec<(usize, Vec<Kid>)> = Vec::new();
        let mut reused_positions = 0u64;
        for ((kids, savings), parent) in grouped.into_iter().zip(group_parent) {
            if savings >= prime_cost {
                reused_positions += savings;
                groups.push((parent, kids));
            } else {
                fulls.extend(kids.iter().map(|kid| match *kid {
                    Kid::Move { idx, .. } | Kid::Suffix { idx, .. } => idx,
                }));
            }
        }

        let snap = self.snap;
        let pool = &self.arenas;
        let stride = self.stride;
        let before = self.arena_totals();
        let mut out = vec![0.0f64; children.len()];
        // Lineage groups first (one item per parent: its children score
        // on one worker against one prime), then the full-pass spill.
        let group_scores: Vec<Vec<f64>> = groups
            .par_iter()
            .map(|(parent, kids)| {
                let mut guard =
                    ArenaGuard::checkout_population(pool, snap, &parents[*parent], stride);
                let inc = guard.inc();
                kids.iter()
                    .map(|kid| match *kid {
                        Kid::Move { task, pos, machine, .. } => {
                            inc.score_move(task, pos, machine, obj)
                        }
                        Kid::Suffix { ref idx, diverge } => {
                            inc.score_suffix(&children[*idx], diverge, obj)
                        }
                    })
                    .collect()
            })
            .collect();
        for ((_, kids), scores) in groups.iter().zip(group_scores) {
            for (kid, score) in kids.iter().zip(scores) {
                let (Kid::Move { idx, .. } | Kid::Suffix { idx, .. }) = *kid;
                out[idx] = score;
            }
        }
        let full_scores: Vec<f64> = fulls
            .par_iter()
            .map_init(
                || ArenaGuard::checkout(pool, snap),
                |guard, &i| {
                    let (eval, _) = guard.parts();
                    eval.objective_value(&children[i], obj)
                },
            )
            .collect();
        for (&i, score) in fulls.iter().zip(full_scores) {
            out[i] = score;
        }
        for &(i, parent) in &clones {
            out[i] = parent_costs[parent];
        }

        self.evaluations += children.len() as u64;
        self.absorb_arena_stats(before);
        // Population axes (deterministic — see the routing note above):
        // clones reuse their whole string, lineage children their shared
        // prefix; demoted and fresh children only widen the denominator.
        let lineage_children: u64 = groups.iter().map(|(_, kids)| kids.len() as u64).sum();
        let axes = ScanStats {
            suffixed: lineage_children + clones.len() as u64,
            prefix_reused: reused_positions + (clones.len() * k) as u64,
            suffix_total: (children.len() * k) as u64,
            ..ScanStats::default()
        };
        obs::add(obs::Counter::ScanSuffixed, axes.suffixed);
        obs::add(obs::Counter::ScanPrefixReused, axes.prefix_reused);
        obs::add(obs::Counter::ScanSuffixTotal, axes.suffix_total);
        self.scan.merge(axes);
        out
    }

    /// Scores the candidate set "`base` with task `t` moved to
    /// `(position, machine)`" for every entry of `moves` — the SE
    /// allocation ripple scan's shape. Incremental-capable objectives are
    /// scored by suffix replay against a once-per-chunk primed base;
    /// others fall back to a scratch clone re-moved per candidate.
    pub fn score_moves(
        &mut self,
        graph: &TaskGraph,
        base: &Solution,
        t: TaskId,
        moves: &[(usize, MachineId)],
        obj: &dyn Objective,
    ) -> Vec<f64> {
        let _scan_timer = obs::timer(obs::Hist::ScanLatencyUs);
        self.scan_epoch += 1;
        let epoch = self.scan_epoch;
        let snap = self.snap;
        let pool = &self.arenas;
        let stride = self.stride;
        let prune = self.prune;
        let before = self.arena_totals();
        let out: Vec<f64> = if obj.supports_incremental() {
            moves
                .par_iter()
                .map_init(
                    || {
                        ArenaGuard::checkout_primed(
                            pool,
                            snap,
                            base,
                            stride,
                            prune,
                            f64::NEG_INFINITY,
                            epoch,
                        )
                    },
                    |guard, &(pos, m)| guard.inc().score_move(t, pos, m, obj),
                )
                .collect()
        } else {
            moves
                .par_iter()
                .map_init(
                    || ArenaGuard::checkout_with_base(pool, snap, base),
                    |guard, &(pos, m)| {
                        let (eval, scratch) = guard.parts();
                        let scratch = scratch.as_mut().expect("checkout_with_base sets scratch");
                        scratch.move_task(graph, t, pos, m).expect("candidate within valid range");
                        eval.objective_value(scratch, obj)
                    },
                )
                .collect()
        };
        self.evaluations += moves.len() as u64;
        self.absorb_arena_stats(before);
        out
    }

    /// Scores the candidate set "`base` with one task moved" where each
    /// entry may move a *different* task — the sampled-neighborhood shape
    /// (tabu search). Same routing as [`score_moves`]: incremental
    /// objectives never touch a scratch solution; the fallback undoes
    /// each move before the next so the scratch stays equal to `base`
    /// throughout a chunk.
    ///
    /// [`score_moves`]: BatchEvaluator::score_moves
    pub fn score_task_moves(
        &mut self,
        graph: &TaskGraph,
        base: &Solution,
        moves: &[(TaskId, usize, MachineId)],
        obj: &dyn Objective,
    ) -> Vec<f64> {
        let _scan_timer = obs::timer(obs::Hist::ScanLatencyUs);
        self.scan_epoch += 1;
        let epoch = self.scan_epoch;
        let snap = self.snap;
        let pool = &self.arenas;
        let stride = self.stride;
        let prune = self.prune;
        let before = self.arena_totals();
        let out: Vec<f64> = if obj.supports_incremental() {
            moves
                .par_iter()
                .map_init(
                    || {
                        ArenaGuard::checkout_primed(
                            pool,
                            snap,
                            base,
                            stride,
                            prune,
                            f64::NEG_INFINITY,
                            epoch,
                        )
                    },
                    |guard, &(t, pos, m)| guard.inc().score_move(t, pos, m, obj),
                )
                .collect()
        } else {
            moves
                .par_iter()
                .map_init(
                    || ArenaGuard::checkout_with_base(pool, snap, base),
                    |guard, &(t, pos, m)| {
                        let (eval, scratch) = guard.parts();
                        let scratch = scratch.as_mut().expect("checkout_with_base sets scratch");
                        let undo = (scratch.position_of(t), scratch.machine_of(t));
                        scratch.move_task(graph, t, pos, m).expect("candidate within valid range");
                        let score = eval.objective_value(scratch, obj);
                        scratch.move_task(graph, t, undo.0, undo.1).expect("undo restores base");
                        score
                    },
                )
                .collect()
        };
        self.evaluations += moves.len() as u64;
        self.absorb_arena_stats(before);
        out
    }

    /// Bounded argmin over the single-task candidate grid "`base` with
    /// task `t` moved to `(position, machine)`" — the SE allocation
    /// ripple scan. Returns the earliest-index minimum with its exact
    /// score (`None` only for an empty grid).
    ///
    /// Each worker chunk threads its running best into
    /// [`IncrementalEvaluator::score_move_bounded`], so provably losing
    /// candidates are abandoned mid-replay. The winner is invariant
    /// under the chunk grid: a pruned candidate's score is `>` some
    /// already-seen exact score, so no minimum (first minimum included)
    /// is ever pruned — the scan commits **exactly** the argmin an
    /// unbounded [`score_moves`](Self::score_moves) + fold would, with
    /// the same evaluation count (`moves.len()`), at any thread count.
    pub fn best_move(
        &mut self,
        graph: &TaskGraph,
        base: &Solution,
        t: TaskId,
        moves: &[(usize, MachineId)],
        obj: &dyn Objective,
    ) -> Option<BestMove> {
        let move_at = |i: usize| (t, moves[i].0, moves[i].1);
        self.bounded_argmin(graph, base, moves.len(), move_at, None, f64::INFINITY, obj)
    }

    /// Bounded argmin over a mixed-task move sample (tabu's shape).
    ///
    /// `admissible` marks moves that may always be chosen; a
    /// non-admissible move (a tabu task) is only eligible when its score
    /// strictly beats `aspiration` (the global best — tabu's aspiration
    /// criterion). `None` admits everything. Returns the earliest-index
    /// minimum among eligible candidates — exactly what the sequential
    /// skip-tabu-unless-aspirating scan selects — or `None` when no move
    /// is eligible. Evaluation count is `moves.len()` regardless.
    pub fn best_task_move(
        &mut self,
        graph: &TaskGraph,
        base: &Solution,
        moves: &[(TaskId, usize, MachineId)],
        admissible: Option<&[bool]>,
        aspiration: f64,
        obj: &dyn Objective,
    ) -> Option<BestMove> {
        if let Some(mask) = admissible {
            debug_assert_eq!(mask.len(), moves.len(), "admissible mask/move mismatch");
        }
        self.bounded_argmin(graph, base, moves.len(), |i| moves[i], admissible, aspiration, obj)
    }

    /// Shared bounded-argmin engine. `move_at` resolves candidate `i`;
    /// admissible candidates contend unconditionally (pruned only
    /// against the chunk's running best), non-admissible ones only below
    /// `aspiration` (which then also joins their pruning cut).
    #[allow(clippy::too_many_arguments)]
    fn bounded_argmin(
        &mut self,
        graph: &TaskGraph,
        base: &Solution,
        len: usize,
        move_at: impl Fn(usize) -> (TaskId, usize, MachineId) + Sync,
        admissible: Option<&[bool]>,
        aspiration: f64,
        obj: &dyn Objective,
    ) -> Option<BestMove> {
        if len == 0 {
            return None;
        }
        if !obj.supports_incremental() {
            // Full-pass fallback: score everything (counting happens in
            // the called method), then fold eligibility sequentially.
            let moves: Vec<(TaskId, usize, MachineId)> = (0..len).map(&move_at).collect();
            let scores = self.score_task_moves(graph, base, &moves, obj);
            return fold_eligible(
                None,
                scores.iter().enumerate().map(|(i, &s)| (i, MoveScore::Exact(s))),
                admissible,
                aspiration,
            );
        }
        let _scan_timer = obs::timer(obs::Hist::ScanLatencyUs);
        self.scan_epoch += 1;
        let epoch = self.scan_epoch;
        let snap = self.snap;
        let pool = &self.arenas;
        let stride = self.stride;
        let prune = self.prune;
        let scan_floor = self.scan_floor;
        let before = self.arena_totals();
        let chunks = self.scan_chunks(len);
        // One chunk = one item: the per-chunk running bound lives inside
        // the item computation, so per-item results stay deterministic
        // (the merged winner is chunk-grid invariant besides).
        let chunk_best: Vec<Option<BestMove>> = chunks
            .par_iter()
            .map_init(
                || ArenaGuard::checkout_primed(pool, snap, base, stride, prune, scan_floor, epoch),
                |guard, range| {
                    let inc = guard.inc();
                    let mut best: Option<BestMove> = None;
                    for i in range.clone() {
                        let (t, pos, m) = move_at(i);
                        let local = best.map_or(f64::INFINITY, |b| b.score);
                        let adm = admissible.is_none_or(|a| a[i]);
                        // A non-admissible candidate must beat both the
                        // aspiration line and the running best to be
                        // chosen; either alone justifies the cut.
                        let cut = if adm { local } else { aspiration.min(local) };
                        match inc.score_move_bounded(t, pos, m, cut, obj) {
                            MoveScore::Exact(score) => {
                                best = fold_eligible(
                                    best,
                                    std::iter::once((i, MoveScore::Exact(score))),
                                    admissible,
                                    aspiration,
                                );
                            }
                            MoveScore::Pruned => {}
                        }
                    }
                    best
                },
            )
            .collect();
        self.evaluations += len as u64;
        self.absorb_arena_stats(before);
        // Merge in chunk (index) order; strict improvement (under
        // total_cmp, so a NaN from a custom objective ranks greatest
        // instead of poisoning the fold) keeps the earliest index on
        // ties.
        chunk_best.into_iter().flatten().fold(None, |acc: Option<BestMove>, b| match acc {
            Some(a) if a.score.total_cmp(&b.score).is_le() => Some(a),
            _ => Some(b),
        })
    }

    /// Sums the fast-path counters over every pooled arena (all arenas
    /// are at rest between calls — `&mut self` methods cannot overlap).
    fn arena_totals(&self) -> ScanStats {
        let mut total = ScanStats::default();
        for slot in &self.arenas.slots {
            if let Some(arena) = lock_tolerant(slot).as_ref() {
                total.merge(arena.inc.stats());
            }
        }
        for arena in lock_tolerant(&self.arenas.overflow).iter() {
            total.merge(arena.inc.stats());
        }
        total
    }

    /// Folds the arena counters gained since `before` into the
    /// evaluator-level totals. Saturating: a panicking scan discards its
    /// arena, taking that arena's lifetime counters with it, which can
    /// leave `after < before` on an axis (diagnostics only — the
    /// deterministic `scored` axis undercounts rather than wrapping).
    fn absorb_arena_stats(&mut self, before: ScanStats) {
        let after = self.arena_totals();
        self.scan.merge(ScanStats {
            scored: after.scored.saturating_sub(before.scored),
            pruned: after.pruned.saturating_sub(before.pruned),
            spliced: after.spliced.saturating_sub(before.spliced),
            suffixed: after.suffixed.saturating_sub(before.suffixed),
            prefix_reused: after.prefix_reused.saturating_sub(before.prefix_reused),
            suffix_total: after.suffix_total.saturating_sub(before.suffix_total),
        });
    }
}

/// Sequential eligibility fold shared by the bounded scans: admissible
/// candidates always contend, others only strictly below `aspiration`;
/// strict score improvement keeps the earliest index on ties. All
/// comparisons use `total_cmp` — matching the `min_by` fold this
/// machinery replaced — so a NaN from a custom objective ranks greatest
/// (never chosen over a finite score, never aspirating) instead of
/// poisoning the fold.
fn fold_eligible(
    init: Option<BestMove>,
    scored: impl Iterator<Item = (usize, MoveScore)>,
    admissible: Option<&[bool]>,
    aspiration: f64,
) -> Option<BestMove> {
    let mut best = init;
    for (i, score) in scored {
        let MoveScore::Exact(score) = score else { continue };
        let adm = admissible.is_none_or(|a| a[i]);
        if !adm && score.total_cmp(&aspiration).is_ge() {
            continue;
        }
        if best.is_none_or(|b| score.total_cmp(&b.score).is_lt()) {
            best = Some(BestMove { index: i, score });
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::random_solution;
    use crate::objective::{EvalView, ObjectiveKind};
    use mshc_platform::{HcInstance, HcSystem, Matrix};
    use mshc_taskgraph::gen::{layered, LayeredConfig};
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn random_instance(tasks: usize, machines: usize, seed: u64) -> HcInstance {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let cfg = LayeredConfig { tasks, mean_width: 4, edge_prob: 0.5, skip_prob: 0.05 };
        let graph = layered(&cfg, &mut rng).unwrap();
        let exec = Matrix::from_fn(machines, tasks, |_, _| rng.gen_range(10.0..100.0));
        let pairs = machines * (machines - 1) / 2;
        let transfer = Matrix::from_fn(pairs, graph.data_count(), |_, _| rng.gen_range(1.0..30.0));
        let sys = HcSystem::with_anonymous_machines(machines, exec, transfer).unwrap();
        HcInstance::new(graph, sys).unwrap()
    }

    #[test]
    fn batch_scores_match_scalar_evaluator_for_every_objective() {
        let inst = random_instance(20, 4, 1);
        let snap = EvalSnapshot::new(&inst);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let candidates: Vec<Solution> = (0..40).map(|_| random_solution(&inst, &mut rng)).collect();
        let weighted = ObjectiveKind::Weighted { makespan: 1.0, flowtime: 0.3, balance: 0.7 };
        for kind in ObjectiveKind::BASIC.into_iter().chain([weighted]) {
            let mut batch = BatchEvaluator::new(&snap);
            let got = batch.scores(&candidates, &kind);
            let mut scalar = Evaluator::new(&inst);
            let want: Vec<f64> =
                candidates.iter().map(|s| scalar.objective_value(s, &kind)).collect();
            assert_eq!(got, want, "objective {}", kind.label());
            assert_eq!(batch.evaluations(), 40);
        }
    }

    #[test]
    fn batch_scores_bit_identical_across_thread_counts() {
        let inst = random_instance(30, 5, 3);
        let snap = EvalSnapshot::new(&inst);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let candidates: Vec<Solution> = (0..64).map(|_| random_solution(&inst, &mut rng)).collect();
        let obj = ObjectiveKind::Makespan;
        let baseline = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap()
            .install(|| BatchEvaluator::new(&snap).scores(&candidates, &obj));
        for threads in [2, 4, 8] {
            let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
            let got = pool.install(|| BatchEvaluator::new(&snap).scores(&candidates, &obj));
            assert_eq!(got, baseline, "{threads} threads");
        }
    }

    fn first_divergence(a: &Solution, b: &Solution) -> usize {
        a.segments().iter().zip(b.segments()).position(|(x, y)| x != y).unwrap_or(a.len())
    }

    /// Builds a lineage-annotated offspring pool: per parent one exact
    /// clone, one single-move child, and three multi-move suffix
    /// children, plus three fresh immigrants — every [`Descent`] arm.
    fn population_fixture(
        inst: &HcInstance,
        rng: &mut ChaCha8Rng,
        parents: usize,
    ) -> (Vec<Solution>, Vec<Solution>, Vec<Descent>) {
        let g = inst.graph();
        let k = inst.task_count();
        let l = inst.machine_count();
        let pool: Vec<Solution> = (0..parents).map(|_| random_solution(inst, rng)).collect();
        let mut children = Vec::new();
        let mut descents = Vec::new();
        for (p, parent) in pool.iter().enumerate() {
            children.push(parent.clone());
            descents.push(Descent::Clone { parent: p });
            let t = TaskId::from_usize(rng.gen_range(0..k));
            let (lo, hi) = parent.valid_range(g, t);
            let pos = rng.gen_range(lo..=hi);
            let m = MachineId::from_usize(rng.gen_range(0..l));
            let mut child = parent.clone();
            child.move_task(g, t, pos, m).unwrap();
            children.push(child);
            descents.push(Descent::Move { parent: p, task: t, pos, machine: m });
            for _ in 0..3 {
                let mut child = parent.clone();
                for _ in 0..rng.gen_range(1..=3usize) {
                    let t = TaskId::from_usize(rng.gen_range(0..k));
                    let (lo, hi) = child.valid_range(g, t);
                    let pos = rng.gen_range(lo..=hi);
                    child.move_task(g, t, pos, MachineId::from_usize(rng.gen_range(0..l))).unwrap();
                }
                let diverge = first_divergence(parent, &child);
                children.push(child);
                descents.push(Descent::Suffix { parent: p, diverge });
            }
        }
        for _ in 0..3 {
            children.push(random_solution(inst, rng));
            descents.push(Descent::Fresh);
        }
        (pool, children, descents)
    }

    #[test]
    fn score_population_matches_scalar_for_every_objective() {
        let inst = random_instance(24, 4, 31);
        let snap = EvalSnapshot::new(&inst);
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let (parents, children, descents) = population_fixture(&inst, &mut rng, 5);
        let weighted = ObjectiveKind::Weighted { makespan: 1.0, flowtime: 0.3, balance: 0.7 };
        for kind in ObjectiveKind::BASIC.into_iter().chain([weighted]) {
            let mut scalar = Evaluator::new(&inst);
            let parent_costs: Vec<f64> =
                parents.iter().map(|s| scalar.objective_value(s, &kind)).collect();
            let want: Vec<f64> =
                children.iter().map(|s| scalar.objective_value(s, &kind)).collect();
            let mut batch = BatchEvaluator::new(&snap);
            let got = batch.score_population(&parents, &parent_costs, &children, &descents, &kind);
            assert_eq!(got, want, "objective {}", kind.label());
            assert_eq!(batch.evaluations(), children.len() as u64);
            let stats = batch.scan_stats();
            assert_eq!(stats.suffix_total, (children.len() * inst.task_count()) as u64);
            // At minimum the per-parent clones rode the reuse path.
            assert!(stats.suffixed >= parents.len() as u64);
            assert!(stats.prefix_reused >= (parents.len() * inst.task_count()) as u64);
        }
    }

    #[test]
    fn score_population_is_stride_and_thread_invariant() {
        // Exact fitness plus every population counter must be a pure
        // function of the chromosomes: same bits at any stride (cost
        // knob) and thread count (work stealing).
        let inst = random_instance(26, 4, 33);
        let k = inst.task_count();
        let snap = EvalSnapshot::new(&inst);
        let mut rng = ChaCha8Rng::seed_from_u64(14);
        let (parents, children, descents) = population_fixture(&inst, &mut rng, 6);
        let obj = ObjectiveKind::TotalFlowtime;
        let mut scalar = Evaluator::new(&inst);
        let parent_costs: Vec<f64> =
            parents.iter().map(|s| scalar.objective_value(s, &obj)).collect();
        let (baseline, base_stats) =
            rayon::ThreadPoolBuilder::new().num_threads(1).build().unwrap().install(|| {
                let mut batch = BatchEvaluator::new(&snap);
                let out =
                    batch.score_population(&parents, &parent_costs, &children, &descents, &obj);
                (out, batch.scan_stats())
            });
        for stride in [Some(1), None, Some(k + 7)] {
            for threads in [1usize, 2, 8] {
                let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
                let (got, stats) = pool.install(|| {
                    let mut batch = BatchEvaluator::new(&snap).with_stride(stride);
                    let out =
                        batch.score_population(&parents, &parent_costs, &children, &descents, &obj);
                    (out, batch.scan_stats())
                });
                assert_eq!(got, baseline, "stride {stride:?}, {threads} threads");
                // Everything but `spliced` (which legitimately varies
                // with checkpoint placement) is stride-invariant too.
                assert_eq!(
                    (stats.scored, stats.suffixed, stats.prefix_reused, stats.suffix_total),
                    (
                        base_stats.scored,
                        base_stats.suffixed,
                        base_stats.prefix_reused,
                        base_stats.suffix_total
                    ),
                    "stride {stride:?}, {threads} threads"
                );
            }
        }
    }

    #[test]
    fn score_population_falls_back_for_custom_objectives() {
        // Without accumulator support lineage children take the full
        // pass (no prime, no inc scorings); clones still shortcut.
        struct StartSum;
        impl Objective for StartSum {
            fn name(&self) -> &str {
                "start-sum"
            }
            fn value(&self, view: &EvalView<'_>) -> f64 {
                view.start.iter().sum()
            }
        }
        let inst = random_instance(18, 3, 35);
        let k = inst.task_count();
        let snap = EvalSnapshot::new(&inst);
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        let (parents, children, descents) = population_fixture(&inst, &mut rng, 3);
        let mut scalar = Evaluator::new(&inst);
        let parent_costs: Vec<f64> =
            parents.iter().map(|s| scalar.objective_value(s, &StartSum)).collect();
        let want: Vec<f64> =
            children.iter().map(|s| scalar.objective_value(s, &StartSum)).collect();
        let mut batch = BatchEvaluator::new(&snap);
        let got = batch.score_population(&parents, &parent_costs, &children, &descents, &StartSum);
        assert_eq!(got, want);
        assert_eq!(batch.evaluations(), children.len() as u64);
        let stats = batch.scan_stats();
        assert_eq!(stats.scored, 0, "no incremental scorings for a custom objective");
        assert_eq!(stats.suffixed, parents.len() as u64, "exactly the clones");
        assert_eq!(stats.prefix_reused, (parents.len() * k) as u64);
        assert_eq!(stats.suffix_total, (children.len() * k) as u64);
    }

    #[test]
    fn population_primes_survive_and_invalidate_across_scans() {
        // Single-thread pool so one arena serves everything — the
        // dangerous path: a population prime reused across calls must
        // yield the same bits, and an interleaved move scan (different
        // base) must invalidate it rather than inherit it, and vice
        // versa.
        let inst = random_instance(20, 3, 37);
        let g = inst.graph();
        let snap = EvalSnapshot::new(&inst);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let (parents, children, descents) = population_fixture(&inst, &mut rng, 2);
        let obj = ObjectiveKind::Makespan;
        let mut scalar = Evaluator::new(&inst);
        let parent_costs: Vec<f64> =
            parents.iter().map(|s| scalar.objective_value(s, &obj)).collect();
        let want: Vec<f64> = children.iter().map(|s| scalar.objective_value(s, &obj)).collect();
        let other = random_solution(&inst, &mut rng);
        let t = TaskId::from_usize(3);
        let (lo, hi) = other.valid_range(g, t);
        let moves: Vec<(TaskId, usize, MachineId)> =
            (lo..=hi).map(|pos| (t, pos, other.machine_of(t))).collect();
        let move_want: Vec<f64> = moves
            .iter()
            .map(|&(t, pos, m)| {
                let mut cand = other.clone();
                cand.move_task(g, t, pos, m).unwrap();
                scalar.objective_value(&cand, &obj)
            })
            .collect();
        rayon::ThreadPoolBuilder::new().num_threads(1).build().unwrap().install(|| {
            let mut batch = BatchEvaluator::new(&snap);
            assert_eq!(
                batch.score_population(&parents, &parent_costs, &children, &descents, &obj),
                want
            );
            assert_eq!(batch.score_task_moves(g, &other, &moves, &obj), move_want);
            assert_eq!(
                batch.score_population(&parents, &parent_costs, &children, &descents, &obj),
                want,
                "population scoring after an interleaved move scan"
            );
            assert_eq!(batch.score_task_moves(g, &other, &moves, &obj), move_want);
        });
    }

    #[test]
    fn score_moves_matches_move_then_scalar() {
        let inst = random_instance(18, 4, 5);
        let g = inst.graph();
        let snap = EvalSnapshot::new(&inst);
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let base = random_solution(&inst, &mut rng);
        let t = TaskId::new(7);
        let (lo, hi) = base.valid_range(g, t);
        let moves: Vec<(usize, MachineId)> =
            (lo..=hi).flat_map(|pos| (0..4).map(move |m| (pos, MachineId::new(m)))).collect();
        let mut batch = BatchEvaluator::new(&snap);
        let got = batch.score_moves(g, &base, t, &moves, &ObjectiveKind::Makespan);
        let mut scalar = Evaluator::new(&inst);
        for (&(pos, m), &score) in moves.iter().zip(&got) {
            let mut cand = base.clone();
            cand.move_task(g, t, pos, m).unwrap();
            assert_eq!(scalar.makespan(&cand), score, "move ({pos}, {m})");
        }
        assert_eq!(batch.evaluations(), moves.len() as u64);
    }

    #[test]
    fn score_task_moves_matches_and_restores_base() {
        let inst = random_instance(16, 3, 7);
        let g = inst.graph();
        let snap = EvalSnapshot::new(&inst);
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let base = random_solution(&inst, &mut rng);
        let moves: Vec<(TaskId, usize, MachineId)> = (0..32)
            .map(|_| {
                let t = TaskId::new(rng.gen_range(0..16));
                let (lo, hi) = base.valid_range(g, t);
                (t, rng.gen_range(lo..=hi), MachineId::new(rng.gen_range(0..3)))
            })
            .collect();
        let obj = ObjectiveKind::TotalFlowtime;
        let mut batch = BatchEvaluator::new(&snap);
        let got = batch.score_task_moves(g, &base, &moves, &obj);
        let mut scalar = Evaluator::new(&inst);
        for (&(t, pos, m), &score) in moves.iter().zip(&got) {
            let mut cand = base.clone();
            cand.move_task(g, t, pos, m).unwrap();
            assert_eq!(scalar.objective_value(&cand, &obj), score);
        }
        // Scoring again over the recycled arenas gives the same answers
        // (primed bases are rebuilt per checkout).
        assert_eq!(batch.score_task_moves(g, &base, &moves, &obj), got);
    }

    #[test]
    fn move_scores_are_stride_and_thread_invariant() {
        // The checkpoint stride is a pure cost knob: every stride (1,
        // auto, beyond-k) and every thread count must produce the same
        // bits.
        let inst = random_instance(26, 4, 12);
        let g = inst.graph();
        let k = inst.task_count();
        let snap = EvalSnapshot::new(&inst);
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        let base = random_solution(&inst, &mut rng);
        let moves: Vec<(TaskId, usize, MachineId)> = (0..48)
            .map(|_| {
                let t = TaskId::new(rng.gen_range(0..k as u32));
                let (lo, hi) = base.valid_range(g, t);
                (t, rng.gen_range(lo..=hi), MachineId::new(rng.gen_range(0..4)))
            })
            .collect();
        let obj = ObjectiveKind::Makespan;
        let baseline = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap()
            .install(|| BatchEvaluator::new(&snap).score_task_moves(g, &base, &moves, &obj));
        for stride in [Some(1), None, Some(k + 9)] {
            for threads in [1usize, 2, 8] {
                let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
                let got = pool.install(|| {
                    BatchEvaluator::new(&snap)
                        .with_stride(stride)
                        .score_task_moves(g, &base, &moves, &obj)
                });
                assert_eq!(got, baseline, "stride {stride:?}, {threads} threads");
            }
        }
    }

    #[test]
    fn non_incremental_objectives_fall_back_to_full_passes() {
        // A custom objective without accumulator support must still be
        // served (clone-and-move route) and match the scalar evaluator.
        struct StartSum;
        impl Objective for StartSum {
            fn name(&self) -> &str {
                "start-sum"
            }
            fn value(&self, view: &EvalView<'_>) -> f64 {
                view.start.iter().sum()
            }
        }
        let inst = random_instance(14, 3, 21);
        let g = inst.graph();
        let snap = EvalSnapshot::new(&inst);
        let mut rng = ChaCha8Rng::seed_from_u64(22);
        let base = random_solution(&inst, &mut rng);
        let t = TaskId::new(5);
        let (lo, hi) = base.valid_range(g, t);
        let moves: Vec<(usize, MachineId)> =
            (lo..=hi).map(|pos| (pos, MachineId::new(0))).collect();
        let mut batch = BatchEvaluator::new(&snap);
        let got = batch.score_moves(g, &base, t, &moves, &StartSum);
        let mut scalar = Evaluator::new(&inst);
        for (&(pos, m), &score) in moves.iter().zip(&got) {
            let mut cand = base.clone();
            cand.move_task(g, t, pos, m).unwrap();
            assert_eq!(scalar.objective_value(&cand, &StartSum), score);
        }
    }

    #[test]
    fn empty_batches_are_fine() {
        let inst = random_instance(5, 2, 9);
        let snap = EvalSnapshot::new(&inst);
        let mut batch = BatchEvaluator::new(&snap);
        assert!(batch.scores(&[], &ObjectiveKind::Makespan).is_empty());
        assert_eq!(batch.evaluations(), 0);
        let g = inst.graph();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let base = random_solution(&inst, &mut rng);
        assert_eq!(batch.best_task_move(g, &base, &[], None, 0.0, &ObjectiveKind::Makespan), None);
        assert_eq!(batch.best_move(g, &base, TaskId::new(0), &[], &ObjectiveKind::Makespan), None);
        assert_eq!(batch.evaluations(), 0);
        assert_eq!(batch.scan_stats(), crate::incremental::ScanStats::default());
    }

    #[test]
    fn aspiration_scan_with_nothing_eligible_returns_none() {
        // Every move tabu, aspiration at 0: nothing can be chosen, at
        // any thread count, and every candidate still counts.
        let inst = random_instance(14, 3, 30);
        let g = inst.graph();
        let snap = EvalSnapshot::new(&inst);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let base = random_solution(&inst, &mut rng);
        let moves: Vec<(TaskId, usize, MachineId)> = (0..16)
            .map(|_| {
                let t = TaskId::new(rng.gen_range(0..14));
                let (lo, hi) = base.valid_range(g, t);
                (t, rng.gen_range(lo..=hi), MachineId::new(rng.gen_range(0..3)))
            })
            .collect();
        let admissible = vec![false; moves.len()];
        for threads in [1usize, 4] {
            let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
            let mut batch = BatchEvaluator::new(&snap);
            let got = pool.install(|| {
                batch.best_task_move(
                    g,
                    &base,
                    &moves,
                    Some(&admissible),
                    0.0,
                    &ObjectiveKind::Makespan,
                )
            });
            assert_eq!(got, None, "{threads} threads");
            assert_eq!(batch.evaluations(), moves.len() as u64);
        }
    }

    #[test]
    fn bounded_argmin_serves_non_incremental_objectives() {
        // Custom full-pass objectives fall back to exact scoring with
        // the same argmin semantics.
        struct StartSum;
        impl Objective for StartSum {
            fn name(&self) -> &str {
                "start-sum"
            }
            fn value(&self, view: &EvalView<'_>) -> f64 {
                view.start.iter().sum()
            }
        }
        let inst = random_instance(12, 3, 33);
        let g = inst.graph();
        let snap = EvalSnapshot::new(&inst);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let base = random_solution(&inst, &mut rng);
        let t = TaskId::new(4);
        let (lo, hi) = base.valid_range(g, t);
        let moves: Vec<(usize, MachineId)> =
            (lo..=hi).flat_map(|p| (0..3).map(move |m| (p, MachineId::new(m)))).collect();
        let mut batch = BatchEvaluator::new(&snap);
        let scores = batch.score_moves(g, &base, t, &moves, &StartSum);
        let want = scores
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1).then(a.0.cmp(&b.0)))
            .map(|(i, &s)| (i, s));
        let got = batch.best_move(g, &base, t, &moves, &StartSum);
        assert_eq!(got.map(|b| (b.index, b.score)), want);
    }

    #[test]
    fn scan_floor_prunes_instantly_without_changing_the_argmin() {
        // Balanced integer instance: 4 independent tasks on 2 machines,
        // every execution 6.0 → certified floor 12.0 (total work 24 over
        // aggregate capacity 2), reached by any 2+2 split.
        let g = mshc_taskgraph::TaskGraphBuilder::new(4).build().unwrap();
        let exec = Matrix::filled(2, 4, 6.0);
        let transfer = Matrix::filled(1, 0, 0.0);
        let sys = HcSystem::with_anonymous_machines(2, exec, transfer).unwrap();
        let inst = HcInstance::new(g, sys).unwrap();
        let bound = crate::InstanceBound::compute(&inst);
        assert_eq!(bound.floor(), 12.0);

        // Direct evaluator check: once the caller's running best equals
        // the floor, a bounded scoring is pruned before any replay; with
        // the default (-inf) floor the same call scores to completion.
        let snap = EvalSnapshot::new(&inst);
        let g = inst.graph();
        let mut rng = ChaCha8Rng::seed_from_u64(40);
        let base = random_solution(&inst, &mut rng);
        let obj = ObjectiveKind::Makespan;
        let mut inc = IncrementalEvaluator::with_snapshot(&snap);
        inc.prime(&base);
        let t = TaskId::new(0);
        let (pos, m) = (base.position_of(t), base.machine_of(t));
        let exact = inc.score_move_bounded(t, pos, m, bound.floor(), &obj);
        assert!(matches!(exact, MoveScore::Exact(_)), "identity move scores");
        inc.set_scan_floor(bound.floor());
        let cut = inc.score_move_bounded(t, pos, m, bound.floor(), &obj);
        assert_eq!(cut, MoveScore::Pruned, "floor == bound prunes instantly");

        // Batch-level identity: the argmin winner, its score bits and
        // the evaluation count are unchanged by the floor, at any
        // thread count.
        let (lo, hi) = base.valid_range(g, t);
        let moves: Vec<(usize, MachineId)> =
            (lo..=hi).flat_map(|p| (0..2).map(move |m| (p, MachineId::new(m)))).collect();
        for threads in [1usize, 4] {
            let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
            let (plain, floored) = pool.install(|| {
                let mut b0 = BatchEvaluator::new(&snap);
                let r0 = b0.best_move(g, &base, t, &moves, &obj).unwrap();
                let mut b1 = BatchEvaluator::new(&snap).with_scan_floor(bound.floor());
                let r1 = b1.best_move(g, &base, t, &moves, &obj).unwrap();
                assert_eq!(b0.evaluations(), b1.evaluations());
                (r0, r1)
            });
            assert_eq!(plain.index, floored.index, "{threads} threads");
            assert_eq!(plain.score.to_bits(), floored.score.to_bits(), "{threads} threads");
        }
    }

    #[test]
    fn panicking_objective_does_not_poison_the_arena_pool() {
        // Regression: a panicking candidate used to poison the shared
        // arena mutex (the guard returned its arena while unwinding),
        // and the next checkout's `.expect("arena pool poisoned")`
        // cascaded the failure into healthy scans — exactly the
        // tournament-cell containment hole. Checkout is now
        // poison-tolerant and an unwinding guard discards its arena, so
        // the same evaluator must keep working after a contained panic.
        struct Grenade;
        impl Objective for Grenade {
            fn name(&self) -> &str {
                "grenade"
            }
            fn value(&self, view: &EvalView<'_>) -> f64 {
                if view.finish.len() > 3 {
                    panic!("boom");
                }
                0.0
            }
        }
        let inst = random_instance(16, 3, 50);
        let g = inst.graph();
        let snap = EvalSnapshot::new(&inst);
        let mut rng = ChaCha8Rng::seed_from_u64(51);
        let base = random_solution(&inst, &mut rng);
        let t = TaskId::new(2);
        let (lo, hi) = base.valid_range(g, t);
        let moves: Vec<(usize, MachineId)> =
            (lo..=hi).flat_map(|p| (0..3).map(move |m| (p, MachineId::new(m)))).collect();
        let obj = ObjectiveKind::Makespan;
        for threads in [1usize, 4] {
            let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
            pool.install(|| {
                let mut batch = BatchEvaluator::new(&snap);
                // Warm the arena slots, then detonate a contained panic
                // mid-scan (the portfolio's catch_unwind shape).
                let want = batch.score_moves(g, &base, t, &moves, &obj);
                let blast = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    batch.score_moves(g, &base, t, &moves, &Grenade)
                }));
                assert!(blast.is_err(), "objective must panic");
                // The evaluator must still serve healthy scans, with the
                // same bits as before the panic.
                let got = batch.score_moves(g, &base, t, &moves, &obj);
                assert_eq!(got, want, "{threads} threads");
                assert!(batch.best_move(g, &base, t, &moves, &obj).is_some());
            });
        }
    }

    #[test]
    fn prime_reuse_never_leaks_across_bases() {
        // Per-worker arenas survive across scans and reuse their prime
        // within one; a new scan over a *different* base must re-prime.
        // Alternate between two bases repeatedly and check every scan
        // against the scalar evaluator.
        let inst = random_instance(20, 4, 60);
        let g = inst.graph();
        let snap = EvalSnapshot::new(&inst);
        let mut rng = ChaCha8Rng::seed_from_u64(61);
        let base_a = random_solution(&inst, &mut rng);
        let base_b = random_solution(&inst, &mut rng);
        let obj = ObjectiveKind::Makespan;
        let mut batch = BatchEvaluator::new(&snap);
        let mut scalar = Evaluator::new(&inst);
        for round in 0..4 {
            let base = if round % 2 == 0 { &base_a } else { &base_b };
            let t = TaskId::new(round as u32 + 1);
            let (lo, hi) = base.valid_range(g, t);
            let moves: Vec<(usize, MachineId)> =
                (lo..=hi).flat_map(|p| (0..4).map(move |m| (p, MachineId::new(m)))).collect();
            let got = batch.score_moves(g, base, t, &moves, &obj);
            for (&(pos, m), &score) in moves.iter().zip(&got) {
                let mut cand = base.clone();
                cand.move_task(g, t, pos, m).unwrap();
                assert_eq!(scalar.makespan(&cand), score, "round {round}, move ({pos}, {m})");
            }
        }
    }

    #[test]
    fn nan_scores_follow_total_cmp_in_bounded_argmin() {
        // A custom objective emitting NaN for some candidates must not
        // poison the argmin: the fold follows total_cmp exactly like the
        // min_by fold this machinery replaced (-NaN smallest, +NaN
        // greatest — never "sticky first seen"), at any thread count.
        struct SqrtMargin(f64);
        impl Objective for SqrtMargin {
            fn name(&self) -> &str {
                "sqrt-margin"
            }
            fn value(&self, view: &EvalView<'_>) -> f64 {
                // NaN whenever the schedule beats the threshold.
                let mk = view.finish.iter().copied().fold(0.0, f64::max);
                (mk - self.0).sqrt()
            }
        }
        let inst = random_instance(12, 3, 34);
        let g = inst.graph();
        let snap = EvalSnapshot::new(&inst);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let base = random_solution(&inst, &mut rng);
        let t = TaskId::new(6);
        let (lo, hi) = base.valid_range(g, t);
        let moves: Vec<(usize, MachineId)> =
            (lo..=hi).flat_map(|p| (0..3).map(move |m| (p, MachineId::new(m)))).collect();
        let mut batch = BatchEvaluator::new(&snap);
        // Threshold at the median candidate makespan, so roughly half
        // the candidates go NaN.
        let mut makespans = batch.score_moves(g, &base, t, &moves, &ObjectiveKind::Makespan);
        makespans.sort_by(f64::total_cmp);
        let objective = SqrtMargin(makespans[makespans.len() / 2]);
        let scores = batch.score_moves(g, &base, t, &moves, &objective);
        assert!(scores.iter().any(|s| s.is_nan()), "test needs NaN candidates");
        assert!(scores.iter().any(|s| !s.is_nan()), "test needs finite candidates");
        let want = scores
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1).then(a.0.cmp(&b.0)))
            .map(|(i, &s)| (i, s.to_bits()))
            .expect("non-empty grid");
        for threads in [1usize, 4] {
            let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
            let got = pool
                .install(|| BatchEvaluator::new(&snap).best_move(g, &base, t, &moves, &objective))
                .expect("non-empty grid");
            assert_eq!((got.index, got.score.to_bits()), want, "{threads} threads");
        }
    }
}
