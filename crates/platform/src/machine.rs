//! Machines and their identifiers.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a machine `m_j` in the HC suite (`0 <= j < l`). Dense,
/// so it doubles as an index into per-machine arrays and the rows of `E`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct MachineId(u32);

impl MachineId {
    /// Creates a machine id from a raw index.
    #[inline]
    pub const fn new(index: u32) -> Self {
        MachineId(index)
    }

    /// Creates a machine id from a `usize` index.
    ///
    /// # Panics
    /// Panics if `index` does not fit in `u32`.
    #[inline]
    pub fn from_usize(index: usize) -> Self {
        MachineId(u32::try_from(index).expect("machine index exceeds u32::MAX"))
    }

    /// Raw `u32` index.
    #[inline]
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// Index for per-machine arrays.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for MachineId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

impl fmt::Display for MachineId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

impl From<u32> for MachineId {
    #[inline]
    fn from(v: u32) -> Self {
        MachineId(v)
    }
}

/// Coarse architecture class of a machine. The paper's §2 mentions SIMD,
/// MIMD and special-purpose (e.g. FFT) machines; the class is purely
/// descriptive — all costs live in the `E`/`Tr` matrices — but examples and
/// generators use it to shape heterogeneity realistically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ArchClass {
    /// Single-instruction multiple-data array machine.
    Simd,
    /// Multiple-instruction multiple-data multiprocessor.
    Mimd,
    /// Vector supercomputer.
    Vector,
    /// Special-purpose accelerator (FFT engine, signal processor, ...).
    SpecialPurpose,
    /// Commodity scalar workstation.
    Scalar,
}

impl ArchClass {
    /// All classes, for round-robin assignment in generators.
    pub const ALL: [ArchClass; 5] = [
        ArchClass::Simd,
        ArchClass::Mimd,
        ArchClass::Vector,
        ArchClass::SpecialPurpose,
        ArchClass::Scalar,
    ];
}

impl fmt::Display for ArchClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ArchClass::Simd => "SIMD",
            ArchClass::Mimd => "MIMD",
            ArchClass::Vector => "vector",
            ArchClass::SpecialPurpose => "special-purpose",
            ArchClass::Scalar => "scalar",
        };
        f.write_str(s)
    }
}

/// A machine in the heterogeneous suite.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Machine {
    /// Dense identifier.
    pub id: MachineId,
    /// Human-readable name (for Gantt charts and DOT output).
    pub name: String,
    /// Architecture class.
    pub arch: ArchClass,
}

impl Machine {
    /// Convenience constructor with a generated name `m<i> (<arch>)`.
    pub fn new(id: MachineId, arch: ArchClass) -> Machine {
        Machine { id, name: format!("m{} ({arch})", id.raw()), arch }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn machine_id_basics() {
        let m = MachineId::new(3);
        assert_eq!(m.raw(), 3);
        assert_eq!(m.index(), 3);
        assert_eq!(m.to_string(), "m3");
        assert_eq!(format!("{m:?}"), "m3");
        assert_eq!(MachineId::from_usize(3), m);
        assert!(MachineId::new(1) < MachineId::new(2));
    }

    #[test]
    fn arch_display() {
        assert_eq!(ArchClass::Simd.to_string(), "SIMD");
        assert_eq!(ArchClass::SpecialPurpose.to_string(), "special-purpose");
        assert_eq!(ArchClass::ALL.len(), 5);
    }

    #[test]
    fn machine_new_names() {
        let m = Machine::new(MachineId::new(0), ArchClass::Vector);
        assert_eq!(m.name, "m0 (vector)");
    }

    #[test]
    fn machine_id_is_small() {
        assert_eq!(std::mem::size_of::<MachineId>(), 4);
    }
}
