//! Subcommand implementations.

use crate::args::{parse, Parsed};
use mshc_core::{SeConfig, SePendingBias};
use mshc_ga::{GaConfig, GaScheduler};
use mshc_heuristics::{
    CpopScheduler, HeftScheduler, ListPolicy, ListScheduler, RandomSearch, SaConfig,
    SimulatedAnnealing, TabuConfig, TabuSearch,
};
use mshc_platform::{HcInstance, InstanceMetrics};
use mshc_portfolio::{aggregate, cells_csv, render_report, replicate_seeds, TournamentSpec};
use mshc_schedule::{
    Disturbance, Evaluator, Gantt, ObjectiveKind, Replanner, RunBudget, Scheduler, SteppableSearch,
};
use mshc_trace::Trace;
use mshc_workloads::{
    named_suite, Connectivity, DisturbanceTrace, DisturbanceTraceSpec, Heterogeneity, WorkloadSpec,
};
use std::time::Duration;

/// Top-level usage text.
pub const USAGE: &str = "\
mshc <command> [options]

commands:
  generate   build a random workload and write it as JSON
             --tasks N --machines L --connectivity low|medium|high
             --heterogeneity low|medium|high --ccr X --seed N --out FILE
  run        run one scheduler on a workload
             --algo se|ga|heft|heft-ins|cpop|met|mct|olb|min-min|max-min|random|sa|tabu
             [--instance FILE | workload options] [--iters N] [--wall SECS]
             [--seed N] [--bias B] [--y Y] [--gantt] [--report] [--trace FILE]
  compare    run every scheduler on one workload and print a table
             [--instance FILE | workload options] [--iters N] [--wall SECS]
  tournament race schedulers across a scenario grid, deterministically
             --spec FILE (pins all axes) | --suite tiny|small|full
             [--algos a,b,c] [--seeds N] [--seed MASTER] [--iters N]
             [--portfolio] [--rounds N] [--out FILE] [--csv FILE]
             [--report]
             the leaderboard JSON (--out) is bit-identical at any
             --threads / RAYON_NUM_THREADS setting, portfolio on or off
  replan     disturb a running schedule and re-search the residue:
             machine dropout, machine slowdown, task-duration inflation
             --algo se|ga|random|sa|tabu (iterative searches only; the
             one-shot heuristics cannot resume from a frozen prefix)
             [--instance FILE | workload options] [--iters N]
             [--disturb FILE | --events N [--disturb-seed S] [--dropout]]
             [--out FILE] [--report]
             each disturbance freezes the committed prefix (tasks
             finished by the event time), drops/degrades the affected
             machine, and re-runs the search on the residual problem
             seeded with the surviving frontier. The report JSON
             (--out) carries virtual time only: it is bit-identical at
             any --threads / RAYON_NUM_THREADS setting
  info       print instance metrics
             --instance FILE | workload options

global options:
  --objective makespan|total-flowtime|mean-flowtime|load-balance|weighted:MK,FT,LB
             objective iterative schedulers minimize (default: makespan)
  --threads N
             evaluation worker threads for this invocation, applied as a
             scoped override on the resident work-stealing pool (N >= 1;
             0 is rejected). Precedence: --threads beats the
             RAYON_NUM_THREADS environment variable, which beats the
             machine's available parallelism. Results are bit-identical
             at every setting — the flag only changes speed.
  --checkpoint-stride N
             checkpoint stride of the incremental move evaluators used by
             se/sa/tabu (default: auto = ceil(sqrt(tasks)); results are
             identical at every stride, only speed/memory change; N must
             be at least 1 — 0 is rejected, omit the flag for auto)
  --no-prune disable bound pruning and reconvergence splicing in the
             se/sa/tabu move scans (the ablation escape hatch; default is
             on). Solutions, objective values and evaluation counts are
             bit-identical either way — only speed changes. Interacts
             with --checkpoint-stride: splices can only fire at
             checkpoint boundaries, so larger strides mean fewer splice
             opportunities; with --no-prune the stride reverts to a pure
             resume-cost knob. --report prints the realized pruned and
             spliced fractions.
  --ga-full-eval
             disable parent-primed prefix splicing in the GA's population
             fitness pass, forcing full per-chromosome evaluation (the
             ablation escape hatch; splicing is the default). Solutions,
             fitness values and evaluation counts are bit-identical
             either way — only speed changes. --report prints the
             realized prefix-reuse fraction.
  --no-early-stop
             disable early termination at the certified instance lower
             bound (default is on). When the incumbent's makespan reaches
             the certified floor no strict improvement exists, so the
             iterative schedulers stop spending budget; the solution and
             objective value are identical either way — only iteration
             and evaluation counts can shrink. The certificate itself
             (lower bound and gap, printed by --report and carried in
             tournament artifacts) is unaffected by this flag.
  --deadline-evals N
             deterministic deadline: stop an iterative run at the first
             iteration boundary at or past N schedule evaluations and
             return the best incumbent found, marked with termination
             \"deadline\". Unlike --iters this bounds work, not rounds;
             evaluation counts are exact, so deadline'd results are
             bit-identical at any thread count. N must be at least 1 —
             a zero deadline would fire before the first incumbent
             exists (omit the flag for no deadline).
  --deadline-ms X
             wall-clock deadline in milliseconds (anytime mode): stop
             at the first iteration boundary past X ms and return the
             best incumbent, marked \"deadline\". Inherently
             non-deterministic — do not combine with byte-compared
             artifacts; use --deadline-evals for a reproducible
             deadline. X must be positive and finite.
  --faults FILE
             arm a declarative fault-injection plan (JSON) for this
             invocation: {\"panic_at_evaluations\": N} poisons the Nth
             schedule evaluation, \"cell_panics\" panics named
             tournament cells (each entry {algorithm, scenario, seed}
             fires once and is consumed), \"dropouts\" carries
             disturbance events for replan. Injected cell panics are
             caught by the tournament harness: cells retry up to the
             spec's cell_retries budget (same seed, deterministic),
             then surface as failed cells; retried cells are flagged
             degraded on the leaderboard instead of being dropped.
  --metrics FILE
             write an observability snapshot (JSON) after the command
             finishes. Turns metric recording on for this invocation;
             recording is write-only and cannot change any result bit —
             run/compare/tournament artifacts are byte-identical with or
             without this flag, and the snapshot's deterministic plane
             is itself bit-stable at a fixed thread count (the timing
             plane — durations, steal counts, queue depths — is not).
  --obs-events FILE
             stream observability events to FILE as JSON lines (cell
             lifecycle, span durations). Same no-perturbation guarantee
             as --metrics; event payloads carry wall-clock content and
             vary run to run.
";

/// Entry point: dispatches `argv` to a subcommand.
pub fn dispatch(argv: &[String]) -> Result<(), String> {
    if argv.iter().any(|a| a == "--help" || a == "-h") {
        print!("{USAGE}");
        return Ok(());
    }
    let parsed = parse(argv);
    let threads: usize = parsed.get_parse("threads", 0)?;
    if parsed.get("threads").is_some() && threads == 0 {
        return Err("--threads: must be at least 1 (omit the flag to use RAYON_NUM_THREADS or \
                    the machine's available parallelism)"
            .to_string());
    }
    // Observability is armed only when something will consume it: an
    // export flag or --report (which renders the registry snapshot).
    // Leaving it off otherwise is what lets CI byte-compare artifacts
    // produced with and without recording — the gate that pins "metrics
    // cannot perturb any result bit".
    let observing = parsed.get("metrics").is_some()
        || parsed.get("obs-events").is_some()
        || parsed.flag("report");
    if observing {
        mshc_obs::reset();
        mshc_obs::enable(true);
    }
    if let Some(path) = parsed.get("obs-events") {
        mshc_obs::install_events_file(std::path::Path::new(path))
            .map_err(|e| format!("--obs-events {path}: {e}"))?;
    }
    // A fault plan is armed process-globally for exactly this dispatch
    // and disarmed on every exit path below; arming without a plan
    // that could fire is harmless (the hooks check a relaxed flag).
    let fault_plan = match parsed.get("faults") {
        Some(path) => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("--faults {path}: {e}"))?;
            let plan = mshc_schedule::FaultPlan::from_json(&text)
                .map_err(|e| format!("--faults {path}: invalid fault plan: {e}"))?;
            mshc_schedule::faults::arm(&plan);
            Some(plan)
        }
        None => None,
    };
    let run = || match parsed.positional.first().map(String::as_str) {
        Some("help") => {
            print!("{USAGE}");
            Ok(())
        }
        Some("generate") => cmd_generate(&parsed),
        Some("run") => cmd_run(&parsed),
        Some("compare") => cmd_compare(&parsed),
        Some("tournament") => cmd_tournament(&parsed),
        Some("replan") => cmd_replan(&parsed),
        Some("info") => cmd_info(&parsed),
        Some(other) => Err(format!("unknown command {other:?}")),
        None => Err("missing command".to_string()),
    };
    let outcome = if threads > 0 {
        // A scoped size override on the resident pool — no process-wide
        // state, no dependence on pre-main environment timing, and no
        // leakage into embedding callers (tests, future `mshc serve`).
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .map_err(|e| format!("--threads: {e}"))?;
        pool.install(run)
    } else {
        run()
    };
    if fault_plan.is_some() {
        mshc_schedule::faults::disarm();
    }
    if outcome.is_ok() {
        if let Some(path) = parsed.get("metrics") {
            std::fs::write(path, mshc_obs::snapshot().to_json())
                .map_err(|e| format!("--metrics {path}: {e}"))?;
            println!("metrics written to {path}");
        }
    }
    // Only tear down the sink this invocation installed — embedding
    // callers (tests) may dispatch concurrently.
    if parsed.get("obs-events").is_some() {
        mshc_obs::shutdown_events();
    }
    outcome
}

fn workload_spec(p: &Parsed) -> Result<WorkloadSpec, String> {
    let connectivity = match p.get("connectivity").unwrap_or("medium") {
        "low" => Connectivity::Low,
        "medium" => Connectivity::Medium,
        "high" => Connectivity::High,
        other => return Err(format!("--connectivity: unknown class {other:?}")),
    };
    let heterogeneity = match p.get("heterogeneity").unwrap_or("medium") {
        "low" => Heterogeneity::Low,
        "medium" => Heterogeneity::Medium,
        "high" => Heterogeneity::High,
        other => return Err(format!("--heterogeneity: unknown class {other:?}")),
    };
    Ok(WorkloadSpec {
        tasks: p.get_parse("tasks", 50usize)?,
        machines: p.get_parse("machines", 8usize)?,
        connectivity,
        heterogeneity,
        ccr: p.get_parse("ccr", 0.5f64)?,
        seed: p.get_parse("seed", 2001u64)?,
    })
}

fn load_instance(p: &Parsed) -> Result<HcInstance, String> {
    match p.get("instance") {
        Some(path) => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            serde_json::from_str(&text).map_err(|e| format!("{path}: invalid instance: {e}"))
        }
        None => Ok(workload_spec(p)?.generate()),
    }
}

fn budget(p: &Parsed) -> Result<RunBudget, String> {
    let mut b = RunBudget::default();
    let iters: u64 = p.get_parse("iters", 0)?;
    if iters > 0 {
        b.max_iterations = Some(iters);
    }
    let wall: f64 = p.get_parse("wall", 0.0)?;
    if wall > 0.0 {
        b.max_wall = Some(Duration::from_secs_f64(wall));
    }
    if p.get("deadline-evals").is_some() {
        let n: u64 = p.get_parse("deadline-evals", 0)?;
        if n == 0 {
            return Err("--deadline-evals: must be at least 1 (a zero deadline would \
                 fire before the first incumbent exists and could never return a \
                 schedule; omit the flag for no deadline)"
                .to_string());
        }
        b.deadline_evals = Some(n);
    }
    if let Some(raw) = p.get("deadline-ms") {
        let ms: f64 = raw.parse().map_err(|_| format!("--deadline-ms: not a number: {raw:?}"))?;
        if !ms.is_finite() || ms <= 0.0 {
            return Err(format!(
                "--deadline-ms: must be positive and finite, got {raw:?} (this is the \
                 wall-clock anytime deadline; use --deadline-evals for a deterministic, \
                 reproducible one)"
            ));
        }
        b.deadline_wall = Some(Duration::from_secs_f64(ms / 1000.0));
    }
    if b.validate().is_err() {
        // An all-`None` budget would make the iterative schedulers run
        // forever; default loudly instead of silently never stopping.
        b.max_iterations = Some(200);
        eprintln!("note: no --iters/--wall budget given; defaulting to --iters 200");
    }
    if let Some(raw) = p.get("objective") {
        b.objective = raw.parse().map_err(|e| format!("--objective: {e}"))?;
    }
    if p.get("checkpoint-stride").is_some() {
        let stride: usize = p.get_parse("checkpoint-stride", 0)?;
        if stride == 0 {
            return Err(
                "--checkpoint-stride: must be at least 1 (omit the flag for the auto stride \
                 ceil(sqrt(tasks)); use --no-prune to disable the bounded fast path instead)"
                    .to_string(),
            );
        }
        b.checkpoint_stride = Some(stride);
    }
    b.prune = !p.flag("no-prune");
    b.early_stop = !p.flag("no-early-stop");
    b.ga_full_eval = p.flag("ga-full-eval");
    debug_assert!(b.validate().is_ok());
    Ok(b)
}

fn make_scheduler(p: &Parsed, name: &str) -> Result<Box<dyn Scheduler>, String> {
    let seed: u64 = p.get_parse("seed", 2001)?;
    Ok(match name {
        "se" => {
            let mut cfg = SeConfig { seed, ..SeConfig::default() };
            cfg.selection_bias = p.get_parse("bias", f64::NAN)?;
            let y: usize = p.get_parse("y", 0)?;
            if y > 0 {
                cfg.y_limit = Some(y);
            }
            Box::new(SePendingBias::new(cfg))
        }
        "ga" => Box::new(GaScheduler::new(GaConfig { seed, ..GaConfig::default() })),
        "heft" => Box::new(HeftScheduler::new()),
        "heft-ins" => Box::new(HeftScheduler::with_insertion()),
        "cpop" => Box::new(CpopScheduler::new()),
        "met" => Box::new(ListScheduler::new(ListPolicy::Met)),
        "mct" => Box::new(ListScheduler::new(ListPolicy::Mct)),
        "olb" => Box::new(ListScheduler::new(ListPolicy::Olb)),
        "min-min" => Box::new(ListScheduler::new(ListPolicy::MinMin)),
        "max-min" => Box::new(ListScheduler::new(ListPolicy::MaxMin)),
        "random" => Box::new(RandomSearch::new(seed)),
        "sa" => Box::new(SimulatedAnnealing::new(SaConfig { seed, ..SaConfig::default() })),
        "tabu" => Box::new(TabuSearch::new(TabuConfig { seed, ..TabuConfig::default() })),
        other => return Err(format!("--algo: unknown algorithm {other:?}")),
    })
}

fn cmd_generate(p: &Parsed) -> Result<(), String> {
    let spec = workload_spec(p)?;
    let inst = spec.generate();
    let json = serde_json::to_string(&inst).map_err(|e| e.to_string())?;
    match p.get("out") {
        Some(path) => {
            std::fs::write(path, &json).map_err(|e| format!("{path}: {e}"))?;
            println!(
                "wrote {} ({} tasks, {} machines, {} data items) tag={}",
                path,
                inst.task_count(),
                inst.machine_count(),
                inst.data_count(),
                spec.tag()
            );
        }
        None => println!("{json}"),
    }
    Ok(())
}

fn cmd_run(p: &Parsed) -> Result<(), String> {
    let algo = p.get("algo").ok_or("run: --algo is required")?.to_string();
    let inst = load_instance(p)?;
    let budget = budget(p)?;
    let mut scheduler = make_scheduler(p, &algo)?;
    let mut trace = Trace::new();
    let result = {
        // Span around the whole scheduler run: records into the timing
        // plane and (with --obs-events) emits one span event on drop.
        let _span = mshc_obs::span("run");
        scheduler.run(&inst, &budget, Some(&mut trace))
    };
    result
        .solution
        .check(inst.graph())
        .map_err(|e| format!("BUG: scheduler emitted invalid solution: {e}"))?;
    println!(
        "{algo}: makespan {:.2} | {} iterations, {} evaluations, {:.3}s",
        result.makespan,
        result.iterations,
        result.evaluations,
        result.elapsed.as_secs_f64()
    );
    println!("termination: {}", result.termination.as_str());
    if !budget.objective.is_makespan() {
        println!("objective {}: {:.2}", budget.objective.label(), result.objective_value);
    }
    // One shared evaluation pass serves both --report and --gantt.
    let full_report = (p.flag("report") || p.flag("gantt"))
        .then(|| Evaluator::new(&inst).report(&result.solution));
    if p.flag("report") {
        let o = full_report.as_ref().expect("computed above").objectives();
        println!(
            "objectives: makespan {:.2} | total-flowtime {:.2} | mean-flowtime {:.2} | \
             load-imbalance {:.2}",
            o.makespan, o.total_flowtime, o.mean_flowtime, o.load_imbalance
        );
        match (result.lower_bound, result.gap) {
            (Some(lb), Some(gap)) => println!(
                "certificate: lower bound {:.2} | gap {:.4}x{}",
                lb,
                gap,
                if result.early_stopped { " | stopped early at the floor" } else { "" }
            ),
            (Some(lb), None) => println!("certificate: lower bound {lb:.2}"),
            _ => println!("certificate: none (objective is not makespan)"),
        }
        let secs = result.elapsed.as_secs_f64();
        let evals_per_sec =
            if secs > 0.0 { result.evaluations as f64 / secs } else { f64::INFINITY };
        println!(
            "throughput: {:.0} evals/sec ({} evals, {:.3}s)",
            evals_per_sec, result.evaluations, secs
        );
        // The rest of the report renders the obs registry snapshot —
        // the same counters --metrics exports, so the human-facing and
        // machine-facing views cannot drift apart. Every line below
        // draws on the deterministic plane only and is byte-identical
        // at any thread count.
        let det = mshc_obs::snapshot().deterministic;
        if det.scan_suffix_total > 0 {
            println!(
                "population: {:.1}% prefix reused | {} suffix scorings | {:.1}% spliced",
                100.0 * det.prefix_reuse_fraction(),
                det.scan_scored,
                100.0 * det.spliced_fraction()
            );
        } else if det.scan_scored > 0 {
            println!(
                "move scan: {} bounded scorings | {:.1}% pruned | {:.1}% spliced",
                det.scan_scored,
                100.0 * det.pruned_fraction(),
                100.0 * det.spliced_fraction()
            );
        }
        // Incumbent-vs-iteration sparkline from the run trace (the
        // deterministic x axis; running minimum of the current cost).
        if trace.len() >= 2 {
            let incumbent = trace.current_cost_series().running_min().renamed("incumbent");
            print!(
                "{}",
                mshc_trace::AsciiPlot::new("incumbent vs iteration", 64, 10).render(&[incumbent])
            );
        }
    }
    if p.flag("gantt") {
        let report = full_report.as_ref().expect("computed above");
        let gantt = Gantt::build(&result.solution, report);
        print!("{}", gantt.render_ascii(&inst, 72));
        println!("utilization: {:.1}%", 100.0 * gantt.utilization());
    }
    if let Some(path) = p.get("trace") {
        let mut series = vec![trace.best_vs_time_series().renamed("best")];
        series.push(trace.current_cost_series().renamed("current"));
        mshc_trace::write_csv("x", &series).write_file(path).map_err(|e| format!("{path}: {e}"))?;
        println!("trace written to {path} ({} records)", trace.len());
    }
    Ok(())
}

fn cmd_compare(p: &Parsed) -> Result<(), String> {
    let inst = load_instance(p)?;
    let budget = budget(p)?;
    let names = [
        "se", "ga", "heft", "heft-ins", "cpop", "met", "mct", "olb", "min-min", "max-min",
        "random", "sa", "tabu",
    ];
    println!(
        "instance: {} tasks, {} machines, {} data items",
        inst.task_count(),
        inst.machine_count(),
        inst.data_count()
    );
    println!(
        "{:<10} {:>12} {:>12} {:>8} {:>12} {:>12} {:>9}",
        "algorithm",
        "makespan",
        budget.objective.label(),
        "gap",
        "iterations",
        "evals",
        "secs"
    );
    let mut rows: Vec<(String, f64)> = Vec::new();
    let mut floor: Option<f64> = None;
    for name in names {
        let mut s = make_scheduler(p, name)?;
        let r = {
            let _span = mshc_obs::span("compare-cell");
            s.run(&inst, &budget, None)
        };
        // The bound is instance-level, so every row certifies against
        // the same floor; remember it for the summary line.
        floor = floor.or(r.lower_bound);
        let gap = r.gap.map_or_else(|| "-".to_string(), |g| format!("{g:.4}"));
        println!(
            "{:<10} {:>12.2} {:>12.2} {:>8} {:>12} {:>12} {:>9.3}",
            name,
            r.makespan,
            r.objective_value,
            gap,
            r.iterations,
            r.evaluations,
            r.elapsed.as_secs_f64()
        );
        rows.push((name.to_string(), r.objective_value));
    }
    let best = rows.iter().min_by(|a, b| a.1.total_cmp(&b.1)).expect("non-empty");
    println!("best: {} ({:.2})", best.0, best.1);
    if let Some(lb) = floor {
        println!("certified lower bound: {lb:.2}");
    }
    Ok(())
}

/// Builds the tournament spec from `--spec FILE` or from the suite and
/// axis flags.
fn tournament_spec(p: &Parsed) -> Result<TournamentSpec, String> {
    let mut spec = match p.get("spec") {
        Some(path) => {
            // The spec file pins every experiment axis; combining it with
            // an axis flag would silently lose one side, so reject the
            // combination outright (--portfolio/--rounds stay available
            // as explicit execution-mode overrides).
            for axis in ["suite", "algos", "seeds", "seed", "iters", "objective"] {
                if p.get(axis).is_some() {
                    return Err(format!(
                        "tournament: --spec and --{axis} are mutually exclusive (the spec file \
                         pins that axis)"
                    ));
                }
            }
            let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            serde_json::from_str::<TournamentSpec>(&text)
                .map_err(|e| format!("{path}: invalid tournament spec: {e}"))?
        }
        None => {
            let suite_name = p.get("suite").unwrap_or("small");
            let scenarios = named_suite(suite_name).ok_or_else(|| {
                format!("--suite: unknown suite {suite_name:?} (tiny, small, full)")
            })?;
            let mut spec = TournamentSpec::new(suite_name, scenarios);
            if let Some(algos) = p.get("algos") {
                spec.algorithms = algos.split(',').map(|a| a.trim().to_string()).collect();
            }
            // Replicate seeds derive from the master seed via a ChaCha8
            // stream; each replicate then seeds its cell's workload and
            // algorithm exactly like `run --seed` would.
            spec.seeds =
                replicate_seeds(p.get_parse("seed", 2001u64)?, p.get_parse("seeds", 3usize)?);
            spec.iterations = p.get_parse("iters", 60u64)?;
            if let Some(raw) = p.get("objective") {
                raw.parse::<ObjectiveKind>().map_err(|e| format!("--objective: {e}"))?;
                spec.objectives = vec![raw.to_string()];
            }
            spec
        }
    };
    if p.flag("portfolio") {
        spec.portfolio = true;
    }
    if p.get("rounds").is_some() {
        spec.rounds = p.get_parse("rounds", 8u64)?;
    }
    // Like --portfolio/--rounds, an execution-mode override that
    // composes with --spec: it cannot change any leaderboard bit.
    if p.flag("no-prune") {
        spec.prune = false;
    }
    // Like --no-prune, a pure execution-mode override: full GA
    // evaluation cannot change any leaderboard bit.
    if p.flag("ga-full-eval") {
        spec.ga_full_eval = true;
    }
    // Early stopping can change iteration/evaluation counts (never
    // solutions), so it composes with --spec the same way.
    if p.flag("no-early-stop") {
        spec.early_stop = false;
    }
    spec.validate()?;
    Ok(spec)
}

fn cmd_tournament(p: &Parsed) -> Result<(), String> {
    let spec = tournament_spec(p)?;
    let run = {
        let _span = mshc_obs::span("tournament");
        mshc_portfolio::run_tournament(&spec)?
    };
    let (board, timing) = aggregate(&run);
    if p.flag("report") {
        // The full report opens with the same header line; don't print
        // the one-line summary twice.
        print!("{}", render_report(&board, &timing));
    } else {
        println!(
            "tournament: {} suite | {} races x {} algorithms = {} cells ({} failed) | \
             portfolio {} | {} iterations per run",
            board.suite,
            board.races,
            spec.algorithms.len(),
            board.cells,
            board.failures,
            if board.portfolio { "on" } else { "off" },
            board.iterations
        );
    }
    match board.standings.first() {
        Some(top) => println!(
            "winner: {} ({} wins, {:.0}% win rate, mean rank {:.2})",
            top.algorithm,
            top.wins,
            100.0 * top.win_rate,
            top.mean_rank
        ),
        None => println!("no standings (empty spec?)"),
    }
    if let Some(path) = p.get("out") {
        let json = serde_json::to_string(&board).map_err(|e| e.to_string())?;
        std::fs::write(path, &json).map_err(|e| format!("{path}: {e}"))?;
        println!("leaderboard written to {path} ({} cells)", board.cells);
    }
    if let Some(path) = p.get("csv") {
        cells_csv(&board, &run.timing).write_file(path).map_err(|e| format!("{path}: {e}"))?;
        println!("cells CSV written to {path}");
    }
    Ok(())
}

/// Builds a steppable (iterative) search for `replan`, mirroring
/// [`make_scheduler`]'s configuration for the five iterative
/// algorithms and rejecting the one-shots with an explanation.
fn make_steppable(p: &Parsed, name: &str) -> Result<Box<dyn SteppableSearch>, String> {
    let seed: u64 = p.get_parse("seed", 2001)?;
    Ok(match name {
        "se" => {
            let mut cfg = SeConfig { seed, ..SeConfig::default() };
            cfg.selection_bias = p.get_parse("bias", f64::NAN)?;
            let y: usize = p.get_parse("y", 0)?;
            if y > 0 {
                cfg.y_limit = Some(y);
            }
            Box::new(SePendingBias::new(cfg))
        }
        "ga" => Box::new(GaScheduler::new(GaConfig { seed, ..GaConfig::default() })),
        "random" => Box::new(RandomSearch::new(seed)),
        "sa" => Box::new(SimulatedAnnealing::new(SaConfig { seed, ..SaConfig::default() })),
        "tabu" => Box::new(TabuSearch::new(TabuConfig { seed, ..TabuConfig::default() })),
        "heft" | "heft-ins" | "cpop" | "met" | "mct" | "olb" | "min-min" | "max-min" => {
            return Err(format!(
                "replan: --algo {name} is a one-shot constructive heuristic; replanning                  re-searches the residual problem from a frozen frontier, which needs an                  iterative search: se, ga, random, sa, tabu"
            ))
        }
        other => return Err(format!("--algo: unknown algorithm {other:?}")),
    })
}

/// Resolves the disturbance sequence for `replan`: an explicit trace
/// file beats the armed fault plan's dropouts, which beat seeded
/// generation from the event flags.
fn disturbances(
    p: &Parsed,
    baseline_makespan: f64,
    machines: u32,
) -> Result<Vec<Disturbance>, String> {
    if let Some(path) = p.get("disturb") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        // Accept either a full trace ({seed, events: [...]}) or a bare
        // event array.
        return serde_json::from_str::<DisturbanceTrace>(&text)
            .map(|t| t.events)
            .or_else(|_| serde_json::from_str::<Vec<Disturbance>>(&text))
            .map_err(|e| format!("{path}: invalid disturbance trace: {e}"));
    }
    if p.get("faults").is_some() && mshc_schedule::faults::armed() {
        let text = std::fs::read_to_string(p.get("faults").expect("checked"))
            .map_err(|e| e.to_string())?;
        let plan = mshc_schedule::FaultPlan::from_json(&text).map_err(|e| e.to_string())?;
        if !plan.dropouts.is_empty() {
            return Ok(plan.dropouts);
        }
    }
    let events: usize = p.get_parse("events", 3usize)?;
    if events == 0 {
        return Err("--events: must be at least 1 (a replan run without disturbances is just                     `mshc run`)"
            .to_string());
    }
    let seed: u64 = p.get_parse("disturb-seed", 2001u64)?;
    let spec = if p.flag("dropout") {
        DisturbanceTraceSpec::dropout(events, baseline_makespan, machines)
    } else {
        DisturbanceTraceSpec::balanced(events, baseline_makespan, machines)
    };
    Ok(DisturbanceTrace::generate(&spec, seed).events)
}

fn cmd_replan(p: &Parsed) -> Result<(), String> {
    let algo = p.get("algo").unwrap_or("se").to_string();
    let inst = load_instance(p)?;
    let budget = budget(p)?;
    let mut search = make_steppable(p, &algo)?;
    let baseline = {
        let _span = mshc_obs::span("replan-baseline");
        search.run(&inst, &budget, None)
    };
    let events = disturbances(p, baseline.makespan, inst.machine_count() as u32)?;
    let mut replanner = Replanner::new(&inst, baseline.solution);
    println!("{algo}: baseline makespan {:.2} | {} disturbances", baseline.makespan, events.len());
    for d in &events {
        let record = {
            let _span = mshc_obs::span("replan-event");
            replanner.apply(d, search.as_mut(), &budget).map_err(|e| format!("replan: {e}"))?
        };
        let target = match d.kind {
            mshc_schedule::DisturbanceKind::TaskInflation => "all tasks".to_string(),
            _ => format!("m{}", d.machine),
        };
        println!(
            "  {} at t={:.2} ({}): {} committed, {} residual on {} machines -> makespan {:.2}              ({})",
            record.kind,
            record.time,
            target,
            record.committed,
            record.residual,
            record.survivors,
            record.makespan,
            record.termination
        );
    }
    let report = replanner.report();
    println!(
        "final: makespan {:.2} ({:+.2} vs baseline) | {} replans | {} evaluations",
        report.final_makespan,
        report.final_makespan - report.baseline_makespan,
        report.replans,
        report.evaluations
    );
    if p.flag("report") {
        if let (Some(lb), Some(gap)) = (report.lower_bound, report.gap) {
            println!("certificate: residual lower bound {lb:.2} | gap {gap:.4}x");
        }
    }
    if let Some(path) = p.get("out") {
        std::fs::write(path, report.to_json()).map_err(|e| format!("{path}: {e}"))?;
        println!("replan report written to {path} ({} records)", report.records.len());
    }
    Ok(())
}

fn cmd_info(p: &Parsed) -> Result<(), String> {
    let inst = load_instance(p)?;
    let m = InstanceMetrics::compute(&inst);
    println!("tasks:         {}", m.tasks);
    println!("machines:      {}", m.machines);
    println!("data items:    {}", m.data_items);
    println!("connectivity:  {:.3} (data items per task)", m.connectivity);
    println!("heterogeneity: {:.3} (mean per-task CV of E)", m.heterogeneity);
    println!("ccr:           {:.3}", m.ccr);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn unknown_command_errors() {
        assert!(dispatch(&argv(&["bogus"])).is_err());
        assert!(dispatch(&argv(&[])).is_err());
    }

    #[test]
    fn run_requires_algo() {
        let e = dispatch(&argv(&["run"])).unwrap_err();
        assert!(e.contains("--algo"));
    }

    #[test]
    fn run_heft_on_generated_workload() {
        dispatch(&argv(&["run", "--algo", "heft", "--tasks", "20", "--machines", "4"])).unwrap();
    }

    #[test]
    fn run_se_small_budget() {
        dispatch(&argv(&[
            "run",
            "--algo",
            "se",
            "--tasks",
            "12",
            "--machines",
            "3",
            "--iters",
            "5",
            "--gantt",
        ]))
        .unwrap();
    }

    #[test]
    fn generate_and_run_roundtrip() {
        let dir = std::env::temp_dir().join("mshc_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("wl.json");
        let file_s = file.to_str().unwrap();
        dispatch(&argv(&[
            "generate",
            "--tasks",
            "15",
            "--machines",
            "3",
            "--seed",
            "4",
            "--out",
            file_s,
        ]))
        .unwrap();
        dispatch(&argv(&["info", "--instance", file_s])).unwrap();
        dispatch(&argv(&["run", "--algo", "min-min", "--instance", file_s])).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bad_workload_classes_error() {
        let e = dispatch(&argv(&["info", "--connectivity", "extreme"])).unwrap_err();
        assert!(e.contains("connectivity"));
        let e = dispatch(&argv(&["info", "--heterogeneity", "none"])).unwrap_err();
        assert!(e.contains("heterogeneity"));
    }

    #[test]
    fn unknown_algo_errors() {
        let e = dispatch(&argv(&["run", "--algo", "quantum"])).unwrap_err();
        assert!(e.contains("quantum"));
    }

    #[test]
    fn objective_flag_parses_and_runs() {
        dispatch(&argv(&[
            "run",
            "--algo",
            "sa",
            "--tasks",
            "12",
            "--machines",
            "3",
            "--iters",
            "40",
            "--objective",
            "total-flowtime",
            "--report",
        ]))
        .unwrap();
        dispatch(&argv(&[
            "run",
            "--algo",
            "se",
            "--tasks",
            "10",
            "--machines",
            "3",
            "--iters",
            "5",
            "--objective",
            "weighted:1,0.5,0.5",
        ]))
        .unwrap();
        let e = dispatch(&argv(&["run", "--algo", "se", "--objective", "fastest"])).unwrap_err();
        assert!(e.contains("objective"));
    }

    #[test]
    fn checkpoint_stride_flag_parses_and_runs() {
        // Stride is a pure cost knob; the run must succeed at extreme
        // strides and reject unparsable values.
        for stride in ["1", "3", "1000"] {
            dispatch(&argv(&[
                "run",
                "--algo",
                "se",
                "--tasks",
                "12",
                "--machines",
                "3",
                "--iters",
                "5",
                "--checkpoint-stride",
                stride,
                "--report",
            ]))
            .unwrap();
        }
        dispatch(&argv(&[
            "compare",
            "--tasks",
            "10",
            "--machines",
            "3",
            "--iters",
            "5",
            "--checkpoint-stride",
            "4",
        ]))
        .unwrap();
        let e = dispatch(&argv(&["run", "--algo", "sa", "--checkpoint-stride", "x"])).unwrap_err();
        assert!(e.contains("--checkpoint-stride"));
        // 0 is rejected rather than silently falling back to auto.
        let e = dispatch(&argv(&["run", "--algo", "sa", "--checkpoint-stride", "0"])).unwrap_err();
        assert!(e.contains("at least 1"));
    }

    #[test]
    fn budget_parser_applies_flags() {
        let p = parse(&argv(&["--iters", "7", "--checkpoint-stride", "9"]));
        let b = budget(&p).unwrap();
        assert_eq!(b.max_iterations, Some(7));
        assert_eq!(b.checkpoint_stride, Some(9));
        assert!(b.prune, "fast path on by default");
        assert!(b.validate().is_ok());
        // No limits given: the loud default keeps the budget bounded.
        let b = budget(&parse(&argv(&[]))).unwrap();
        assert_eq!(b.max_iterations, Some(200));
        assert_eq!(b.checkpoint_stride, None);
        // The escape hatches.
        let b = budget(&parse(&argv(&["--iters", "7", "--no-prune"]))).unwrap();
        assert!(!b.prune);
        assert!(b.early_stop, "early stop on by default");
        let b = budget(&parse(&argv(&["--iters", "7", "--no-early-stop"]))).unwrap();
        assert!(!b.early_stop);
        assert!(!b.ga_full_eval, "GA prefix splicing on by default");
        let b = budget(&parse(&argv(&["--iters", "7", "--ga-full-eval"]))).unwrap();
        assert!(b.ga_full_eval);
    }

    #[test]
    fn ga_full_eval_flag_runs_everywhere() {
        // run + tournament accept the escape hatch; tournament composes
        // it with --spec like the other execution-mode overrides.
        dispatch(&argv(&[
            "run",
            "--algo",
            "ga",
            "--tasks",
            "12",
            "--machines",
            "3",
            "--iters",
            "10",
            "--ga-full-eval",
            "--report",
        ]))
        .unwrap();
        dispatch(&argv(&[
            "tournament",
            "--suite",
            "tiny",
            "--algos",
            "ga,mct",
            "--seeds",
            "1",
            "--iters",
            "4",
            "--ga-full-eval",
        ]))
        .unwrap();
        assert!(USAGE.contains("--ga-full-eval"));
    }

    #[test]
    fn no_prune_flag_runs_everywhere() {
        // run + compare accept the escape hatch; tournament composes it
        // with --spec like the other execution-mode overrides.
        dispatch(&argv(&[
            "run",
            "--algo",
            "tabu",
            "--tasks",
            "12",
            "--machines",
            "3",
            "--iters",
            "20",
            "--no-prune",
            "--report",
        ]))
        .unwrap();
        dispatch(&argv(&[
            "tournament",
            "--suite",
            "tiny",
            "--algos",
            "sa,mct",
            "--seeds",
            "1",
            "--iters",
            "4",
            "--no-prune",
        ]))
        .unwrap();
        // --help documents the interaction.
        assert!(USAGE.contains("--no-prune"));
        assert!(USAGE.contains("--checkpoint-stride"));
    }

    #[test]
    fn no_early_stop_flag_runs_everywhere() {
        dispatch(&argv(&[
            "run",
            "--algo",
            "se",
            "--tasks",
            "12",
            "--machines",
            "3",
            "--iters",
            "10",
            "--no-early-stop",
            "--report",
        ]))
        .unwrap();
        dispatch(&argv(&[
            "tournament",
            "--suite",
            "tiny",
            "--algos",
            "sa,mct",
            "--seeds",
            "1",
            "--iters",
            "4",
            "--no-early-stop",
        ]))
        .unwrap();
        assert!(USAGE.contains("--no-early-stop"));
    }

    #[test]
    fn threads_flag_installs_a_scoped_pool_without_leaking() {
        // --threads applies via a scoped install on the resident pool:
        // the run succeeds and the caller's effective size is untouched
        // afterwards (the old build_global route leaked process-wide).
        let before = rayon::current_num_threads();
        dispatch(&argv(&[
            "run",
            "--algo",
            "heft",
            "--tasks",
            "10",
            "--machines",
            "3",
            "--threads",
            "2",
        ]))
        .unwrap();
        assert_eq!(rayon::current_num_threads(), before, "--threads must not leak");
        let e = dispatch(&argv(&["info", "--threads", "abc"])).unwrap_err();
        assert!(e.contains("--threads"));
        // 0 is rejected loudly, not treated as "unset".
        let e = dispatch(&argv(&["info", "--threads", "0"])).unwrap_err();
        assert!(e.contains("at least 1"), "{e}");
        // Precedence and the install semantics are documented.
        assert!(USAGE.contains("RAYON_NUM_THREADS"));
    }

    #[test]
    fn tournament_tiny_suite_smoke_writes_deterministic_leaderboard() {
        let dir = std::env::temp_dir().join("mshc_cli_tournament");
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("lb.json");
        let csv = dir.join("cells.csv");
        let args = [
            "tournament",
            "--suite",
            "tiny",
            "--algos",
            "se,sa,heft,min-min",
            "--seeds",
            "2",
            "--iters",
            "8",
            "--report",
            "--out",
            out.to_str().unwrap(),
            "--csv",
            csv.to_str().unwrap(),
        ];
        dispatch(&argv(&args)).unwrap();
        let first = std::fs::read_to_string(&out).unwrap();
        assert!(first.contains("\"standings\""));
        assert!(first.contains("\"evaluations\""));
        let table = std::fs::read_to_string(&csv).unwrap();
        assert!(table.starts_with("algorithm,scenario,seed,objective"));
        // 2 scenarios x 2 seeds x 4 algorithms = 16 cells.
        assert_eq!(table.lines().count(), 1 + 16);
        // Re-running produces a byte-identical artifact.
        dispatch(&argv(&args)).unwrap();
        assert_eq!(std::fs::read_to_string(&out).unwrap(), first);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn metrics_flag_writes_a_parsable_snapshot() {
        // Structural assertions only: the registry is process-global
        // and other tests' dispatches may reset it concurrently, so
        // exact counter values belong to the (single-process) CI gate.
        let dir = std::env::temp_dir().join("mshc_cli_metrics");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("metrics.json");
        dispatch(&argv(&[
            "run",
            "--algo",
            "sa",
            "--tasks",
            "12",
            "--machines",
            "3",
            "--iters",
            "10",
            "--metrics",
            path.to_str().unwrap(),
        ]))
        .unwrap();
        let snap = mshc_obs::Snapshot::from_json(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(snap.schema_version, mshc_obs::SCHEMA_VERSION);
        std::fs::remove_dir_all(&dir).unwrap();
        assert!(USAGE.contains("--metrics"));
    }

    #[test]
    fn obs_events_flag_writes_json_lines() {
        let dir = std::env::temp_dir().join("mshc_cli_obs_events");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.jsonl");
        dispatch(&argv(&[
            "run",
            "--algo",
            "heft",
            "--tasks",
            "12",
            "--machines",
            "3",
            "--obs-events",
            path.to_str().unwrap(),
        ]))
        .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(!text.is_empty(), "the run span must emit at least one event");
        for line in text.lines() {
            let v: serde::Value = serde_json::from_str(line).unwrap();
            assert!(v.get_field("event").is_some(), "{line}");
        }
        std::fs::remove_dir_all(&dir).unwrap();
        assert!(USAGE.contains("--obs-events"));
    }

    #[test]
    fn tournament_portfolio_mode_runs() {
        dispatch(&argv(&[
            "tournament",
            "--suite",
            "tiny",
            "--algos",
            "sa,tabu,heft",
            "--seeds",
            "1",
            "--iters",
            "10",
            "--portfolio",
            "--rounds",
            "2",
        ]))
        .unwrap();
    }

    #[test]
    fn tournament_flag_errors() {
        let e = dispatch(&argv(&["tournament", "--suite", "galactic"])).unwrap_err();
        assert!(e.contains("unknown suite"));
        let e = dispatch(&argv(&["tournament", "--algos", "se,quantum"])).unwrap_err();
        assert!(e.contains("quantum"));
        let e =
            dispatch(&argv(&["tournament", "--spec", "x.json", "--suite", "tiny"])).unwrap_err();
        assert!(e.contains("mutually exclusive"));
        // Every axis flag is rejected alongside --spec, not silently
        // ignored in favor of the file.
        let e = dispatch(&argv(&["tournament", "--spec", "x.json", "--iters", "500"])).unwrap_err();
        assert!(e.contains("--iters") && e.contains("mutually exclusive"), "{e}");
        let e = dispatch(&argv(&["tournament", "--spec", "x.json", "--algos", "se"])).unwrap_err();
        assert!(e.contains("--algos"), "{e}");
        let e =
            dispatch(&argv(&["tournament", "--suite", "tiny", "--objective", "weighted:1,nan,2"]))
                .unwrap_err();
        assert!(e.contains("finite"), "{e}");
    }

    #[test]
    fn tournament_csv_handles_weighted_objective_labels() {
        // Regression: the weighted spelling carries commas; the CSV
        // writer rejects raw commas, so the label must be sanitized.
        let dir = std::env::temp_dir().join("mshc_cli_tournament_weighted");
        std::fs::create_dir_all(&dir).unwrap();
        let csv = dir.join("cells.csv");
        dispatch(&argv(&[
            "tournament",
            "--suite",
            "tiny",
            "--algos",
            "mct,olb",
            "--seeds",
            "1",
            "--iters",
            "2",
            "--objective",
            "weighted:1,0.5,0.5",
            "--csv",
            csv.to_str().unwrap(),
        ]))
        .unwrap();
        let text = std::fs::read_to_string(&csv).unwrap();
        assert!(text.contains("weighted:1;0.5;0.5"), "sanitized label present:\n{text}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tournament_spec_file_roundtrip() {
        use mshc_workloads::tiny_suite;
        let dir = std::env::temp_dir().join("mshc_cli_tournament_spec");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("spec.json");
        let spec = TournamentSpec {
            algorithms: vec!["mct".into(), "olb".into()],
            seeds: vec![4],
            iterations: 3,
            ..TournamentSpec::new("custom", tiny_suite())
        };
        std::fs::write(&path, serde_json::to_string(&spec).unwrap()).unwrap();
        dispatch(&argv(&["tournament", "--spec", path.to_str().unwrap(), "--report"])).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn deadline_flags_parse_and_stop_runs() {
        // The deterministic deadline reaches the budget and the run
        // reports the deadline termination.
        let p = parse(&argv(&["--iters", "500", "--deadline-evals", "9"]));
        let b = budget(&p).unwrap();
        assert_eq!(b.deadline_evals, Some(9));
        assert!(b.validate().is_ok());
        let p = parse(&argv(&["--iters", "5", "--deadline-ms", "250"]));
        let b = budget(&p).unwrap();
        assert_eq!(b.deadline_wall, Some(Duration::from_millis(250)));
        // A deadline alone bounds the budget: no loud --iters default.
        let b = budget(&parse(&argv(&["--deadline-evals", "50"]))).unwrap();
        assert_eq!(b.max_iterations, None);
        assert!(b.validate().is_ok());
        // Rejections explain themselves.
        let e = dispatch(&argv(&["run", "--algo", "se", "--deadline-evals", "0"])).unwrap_err();
        assert!(e.contains("at least 1"), "{e}");
        let e = dispatch(&argv(&["run", "--algo", "se", "--deadline-ms", "NaN"])).unwrap_err();
        assert!(e.contains("positive and finite"), "{e}");
        let e = dispatch(&argv(&["run", "--algo", "se", "--deadline-ms", "-3"])).unwrap_err();
        assert!(e.contains("positive and finite"), "{e}");
        let e = dispatch(&argv(&["run", "--algo", "se", "--deadline-ms", "abc"])).unwrap_err();
        assert!(e.contains("not a number"), "{e}");
        // End to end: a tight deterministic deadline still yields a
        // schedule.
        dispatch(&argv(&[
            "run",
            "--algo",
            "sa",
            "--tasks",
            "12",
            "--machines",
            "3",
            "--iters",
            "500",
            "--deadline-evals",
            "20",
        ]))
        .unwrap();
        assert!(USAGE.contains("--deadline-evals"));
        assert!(USAGE.contains("--deadline-ms"));
    }

    #[test]
    fn faults_flag_arms_and_disarms_a_plan() {
        let dir = std::env::temp_dir().join("mshc_cli_faults");
        std::fs::create_dir_all(&dir).unwrap();
        let plan = dir.join("plan.json");
        // No injections that can fire in this run — the flag must
        // round-trip the plan and leave the process disarmed after.
        std::fs::write(&plan, "{\"seed\": 1}").unwrap();
        dispatch(&argv(&[
            "run",
            "--algo",
            "heft",
            "--tasks",
            "10",
            "--machines",
            "3",
            "--faults",
            plan.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(!mshc_schedule::faults::armed(), "--faults must disarm on exit");
        // Unreadable and malformed plans explain themselves.
        let e = dispatch(&argv(&["run", "--algo", "heft", "--faults", "nope.json"])).unwrap_err();
        assert!(e.contains("--faults"), "{e}");
        std::fs::write(&plan, "not json").unwrap();
        let e = dispatch(&argv(&["run", "--algo", "heft", "--faults", plan.to_str().unwrap()]))
            .unwrap_err();
        assert!(e.contains("invalid fault plan"), "{e}");
        std::fs::remove_dir_all(&dir).unwrap();
        assert!(USAGE.contains("--faults"));
    }

    #[test]
    fn replan_smoke_writes_deterministic_report() {
        let dir = std::env::temp_dir().join("mshc_cli_replan");
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("replan.json");
        let args = [
            "replan",
            "--algo",
            "sa",
            "--tasks",
            "14",
            "--machines",
            "4",
            "--iters",
            "30",
            "--events",
            "3",
            "--disturb-seed",
            "5",
            "--out",
            out.to_str().unwrap(),
        ];
        dispatch(&argv(&args)).unwrap();
        let first = std::fs::read_to_string(&out).unwrap();
        let report = mshc_schedule::ReplanReport::from_json(&first).unwrap();
        assert_eq!(report.records.len(), 3);
        assert!(report.final_makespan > 0.0);
        // Re-running reproduces the artifact byte for byte.
        dispatch(&argv(&args)).unwrap();
        assert_eq!(std::fs::read_to_string(&out).unwrap(), first);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn replan_rejects_oneshots_and_reads_traces() {
        let e = dispatch(&argv(&["replan", "--algo", "heft", "--tasks", "10", "--machines", "3"]))
            .unwrap_err();
        assert!(e.contains("iterative"), "{e}");
        let e = dispatch(&argv(&[
            "replan",
            "--algo",
            "sa",
            "--tasks",
            "10",
            "--machines",
            "3",
            "--iters",
            "5",
            "--events",
            "0",
        ]))
        .unwrap_err();
        assert!(e.contains("--events"), "{e}");
        // An explicit trace file (bare event array form) drives the run.
        let dir = std::env::temp_dir().join("mshc_cli_replan_trace");
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("trace.json");
        std::fs::write(
            &trace,
            "[{\"kind\": \"MachineFailure\", \"time\": 10.0, \"machine\": 1, \"factor\": 1.0}]",
        )
        .unwrap();
        dispatch(&argv(&[
            "replan",
            "--algo",
            "random",
            "--tasks",
            "12",
            "--machines",
            "3",
            "--iters",
            "10",
            "--disturb",
            trace.to_str().unwrap(),
        ]))
        .unwrap();
        std::fs::write(&trace, "nonsense").unwrap();
        let e = dispatch(&argv(&[
            "replan",
            "--algo",
            "random",
            "--tasks",
            "12",
            "--machines",
            "3",
            "--iters",
            "10",
            "--disturb",
            trace.to_str().unwrap(),
        ]))
        .unwrap_err();
        assert!(e.contains("invalid disturbance trace"), "{e}");
        std::fs::remove_dir_all(&dir).unwrap();
        assert!(USAGE.contains("replan"));
    }

    #[test]
    fn trace_file_written() {
        let dir = std::env::temp_dir().join("mshc_cli_trace");
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("t.csv");
        dispatch(&argv(&[
            "run",
            "--algo",
            "sa",
            "--tasks",
            "10",
            "--machines",
            "3",
            "--iters",
            "50",
            "--trace",
            file.to_str().unwrap(),
        ]))
        .unwrap();
        let text = std::fs::read_to_string(&file).unwrap();
        assert!(text.starts_with("x,best,current"));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
