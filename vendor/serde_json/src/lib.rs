//! Hermetic stand-in for `serde_json`: renders the vendored serde
//! [`Value`] tree to JSON text and parses it back.
//!
//! Supports the full JSON grammar (objects, arrays, strings with escape
//! sequences, integers, floats, booleans, null). Floats are printed with
//! Rust's shortest round-trippable formatting, so
//! `from_str(&to_string(x))` reproduces every finite `f64` exactly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// Serialization/deserialization failure with a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Error {
        Error(e.to_string())
    }
}

/// Serialize a value to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.serialize(), &mut out)?;
    Ok(out)
}

/// Deserialize a value from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(T::deserialize(&v)?)
}

fn write_value(v: &Value, out: &mut String) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if !x.is_finite() {
                return Err(Error(format!("cannot serialize non-finite float {x}")));
            }
            let s = x.to_string();
            out.push_str(&s);
            // Keep floats floats across a round-trip.
            if !s.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out)?;
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(item, out)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') => self.parse_literal("true", Value::Bool(true)),
            Some(b'f') => self.parse_literal("false", Value::Bool(false)),
            Some(b'n') => self.parse_literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) => Err(self.err(&format!("unexpected character `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("invalid literal (expected `{lit}`)")))
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: a run of plain UTF-8 bytes.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?;
                s.push_str(chunk);
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{0008}'),
                        Some(b'f') => s.push('\u{000C}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                // Surrogate pair.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else {
                                char::from_u32(cp).ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            s.push(c);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => return Err(self.err("control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    /// Four hex digits; leaves `pos` after them.
    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(cp)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if text.is_empty() || text == "-" {
            return Err(self.err("invalid number"));
        }
        if !is_float {
            if text.starts_with('-') {
                if let Ok(n) = text.parse::<i64>() {
                    return Ok(Value::I64(n));
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| self.err(&format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(from_str::<Option<u8>>("null").unwrap(), None);
        let x = 0.1f64 + 0.2;
        assert_eq!(from_str::<f64>(&to_string(&x).unwrap()).unwrap(), x);
    }

    #[test]
    fn floats_stay_floats() {
        let s = to_string(&2.0f64).unwrap();
        assert_eq!(s, "2.0");
        assert_eq!(from_str::<f64>(&s).unwrap(), 2.0);
    }

    #[test]
    fn collections_roundtrip() {
        let v = vec![1.5f64, -2.0, 3.25];
        let s = to_string(&v).unwrap();
        assert_eq!(from_str::<Vec<f64>>(&s).unwrap(), v);
        let pairs = vec![(String::from("a b\"c"), 1u64)];
        let s = to_string(&pairs).unwrap();
        assert_eq!(from_str::<Vec<(String, u64)>>(&s).unwrap(), pairs);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let s = "line\nquote\"back\\slash\ttab\u{1F600}";
        let json = to_string(&String::from(s)).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
        assert_eq!(from_str::<String>(r#""😀""#).unwrap(), "\u{1F600}");
    }

    #[test]
    fn malformed_inputs_rejected() {
        assert!(from_str::<u32>("").is_err());
        assert!(from_str::<u32>("4 2").is_err());
        assert!(from_str::<Vec<u8>>("[1,2").is_err());
        assert!(from_str::<bool>("troo").is_err());
        assert!(from_str::<String>("\"abc").is_err());
        assert!(from_str::<f64>("--3").is_err());
    }
}
