//! # mshc-portfolio — the deterministic parallel tournament engine
//!
//! The paper's core claim is comparative: simulated evolution beats
//! GA/tabu/SA/list heuristics across heterogeneous workloads. This
//! crate reproduces — and stress-tests — that claim at fleet scale: a
//! declarative [`TournamentSpec`] (algorithms × replicate seeds ×
//! [`Scenario`](mshc_workloads::Scenario) grid × objectives) expands
//! into cells, executes over the rayon pool, and aggregates into a JSON
//! [`Leaderboard`] (win rate, mean rank, mean/best objective, total
//! evaluations per algorithm).
//!
//! ## Determinism contract
//!
//! The serialized leaderboard — including per-cell **evaluation
//! counts** — is bit-identical at any thread count, with portfolio mode
//! on or off, because:
//!
//! * every race (one instance × one objective) executes sequentially
//!   and races merge in expansion order;
//! * every evaluator tier underneath is thread-count-invariant;
//! * replicate seeds derive from a ChaCha8 stream
//!   ([`replicate_seeds`]) and each cell seeds its workload *and* its
//!   algorithm from the replicate seed — exactly like `mshc run
//!   --seed`, so a single cell reproduces the CLI run bit for bit;
//! * wall-clock timing is reported separately ([`Timing`]) and never
//!   serialized into the leaderboard.
//!
//! ## Portfolio mode
//!
//! With [`TournamentSpec::portfolio`] set, the algorithms of a race run
//! cooperatively through the [`SteppableSearch`] interface
//! (`mshc-schedule`): the iteration budget splits into
//! [`TournamentSpec::rounds`] synchronized slices, and at each round
//! barrier the single best incumbent migrates to every other search
//! ([`SearchStep::inject`](mshc_schedule::SearchStep::inject) adopts it
//! only when it improves on the receiver's working solution). One-shot
//! heuristics participate through
//! [`OneShotStep`](mshc_schedule::OneShotStep), seeding the exchange
//! with their constructive solutions after round one.
//!
//! ## Fault isolation
//!
//! A panicking cell (degenerate scenario, scheduler bug) is caught,
//! recorded in [`CellOutcome::error`], and reported per cell by
//! `--report`; it never aborts the tournament.
//!
//! [`SteppableSearch`]: mshc_schedule::SteppableSearch

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod leaderboard;
pub mod spec;

pub use engine::{run_tournament, CellOutcome, CellTiming, TournamentRun};
pub use leaderboard::{aggregate, cells_csv, render_report, Leaderboard, Standing, Timing};
pub use spec::{build_contestant, replicate_seeds, Contestant, Race, TournamentSpec, ALGORITHMS};
