//! The Braun et al. family of static mapping heuristics, generalized from
//! independent meta-tasks to DAGs by restricting each decision to the
//! *ready* set (tasks whose predecessors are all scheduled).

use crate::builder::ListScheduleBuilder;
use mshc_platform::HcInstance;
use mshc_schedule::{RunBudget, RunResult, Scheduler, Termination};
use mshc_trace::Trace;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Which list policy drives the scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ListPolicy {
    /// *Minimum Execution Time*: take the lowest-id ready task, place it
    /// on the machine with the smallest execution time, ignoring machine
    /// availability.
    Met,
    /// *Minimum Completion Time*: take the lowest-id ready task, place it
    /// on the machine with the earliest completion time.
    Mct,
    /// *Opportunistic Load Balancing*: take the lowest-id ready task,
    /// place it on the machine that becomes idle first, ignoring
    /// execution time.
    Olb,
    /// *min-min*: among all ready tasks, schedule the one whose best
    /// completion time is smallest, on that machine.
    MinMin,
    /// *max-min*: among all ready tasks, schedule the one whose best
    /// completion time is largest, on that machine.
    MaxMin,
}

impl ListPolicy {
    /// Stable identifier.
    pub fn name(self) -> &'static str {
        match self {
            ListPolicy::Met => "met",
            ListPolicy::Mct => "mct",
            ListPolicy::Olb => "olb",
            ListPolicy::MinMin => "min-min",
            ListPolicy::MaxMin => "max-min",
        }
    }

    /// All policies, for sweep harnesses.
    pub const ALL: [ListPolicy; 5] =
        [ListPolicy::Met, ListPolicy::Mct, ListPolicy::Olb, ListPolicy::MinMin, ListPolicy::MaxMin];
}

/// One-shot constructive scheduler driven by a [`ListPolicy`].
#[derive(Debug, Clone)]
pub struct ListScheduler {
    policy: ListPolicy,
}

impl ListScheduler {
    /// Creates a scheduler for `policy`.
    pub fn new(policy: ListPolicy) -> ListScheduler {
        ListScheduler { policy }
    }

    /// The policy.
    pub fn policy(&self) -> ListPolicy {
        self.policy
    }
}

impl Scheduler for ListScheduler {
    fn name(&self) -> &str {
        self.policy.name()
    }

    fn run(
        &mut self,
        inst: &HcInstance,
        budget: &RunBudget,
        _trace: Option<&mut Trace>,
    ) -> RunResult {
        let start = Instant::now();
        let mut b = ListScheduleBuilder::new(inst);
        let mut evaluations = 0u64;
        while !b.is_complete() {
            let ready = b.ready_tasks();
            let (task, machine) = match self.policy {
                ListPolicy::Met => {
                    let t = ready[0];
                    (t, inst.system().best_machine(t))
                }
                ListPolicy::Mct => {
                    let t = ready[0];
                    (t, b.best_eft(t).0)
                }
                ListPolicy::Olb => {
                    let t = ready[0];
                    // Earliest-idle machine == machine whose availability
                    // (EST of a pred-free probe) is smallest; compute via
                    // est with the ready task, which includes arrivals —
                    // OLB classically ignores those, so probe raw
                    // availability through est on an edge-free basis:
                    let m = inst
                        .system()
                        .machine_ids()
                        .min_by(|&a, &bm| {
                            let ea = b.est(t, a) - arrivals_only(&b, t, a);
                            let eb = b.est(t, bm) - arrivals_only(&b, t, bm);
                            ea.total_cmp(&eb).then(a.cmp(&bm))
                        })
                        .expect("machines");
                    (t, m)
                }
                ListPolicy::MinMin => {
                    evaluations += ready.len() as u64;
                    ready
                        .iter()
                        .map(|&t| {
                            let (m, eft) = b.best_eft(t);
                            (t, m, eft)
                        })
                        .min_by(|a, b| a.2.total_cmp(&b.2).then(a.0.cmp(&b.0)))
                        .map(|(t, m, _)| (t, m))
                        .expect("ready set non-empty")
                }
                ListPolicy::MaxMin => {
                    evaluations += ready.len() as u64;
                    ready
                        .iter()
                        .map(|&t| {
                            let (m, eft) = b.best_eft(t);
                            (t, m, eft)
                        })
                        .max_by(|a, b| a.2.total_cmp(&b.2).then(b.0.cmp(&a.0)))
                        .map(|(t, m, _)| (t, m))
                        .expect("ready set non-empty")
                }
            };
            b.schedule(task, machine);
        }
        let makespan = b.makespan();
        let solution = b.into_solution();
        let objective_value =
            mshc_schedule::report_objective_value(inst, &solution, makespan, budget.objective);
        mshc_obs::add(mshc_obs::Counter::Iterations, 1); // one constructive pass
        RunResult {
            solution,
            makespan,
            objective_value,
            iterations: 1,
            evaluations: evaluations.max(1),
            elapsed: start.elapsed(),
            scan: Default::default(),
            lower_bound: None,
            gap: None,
            early_stopped: false,
            termination: Termination::Completed,
        }
        .with_certificate(inst, budget.objective)
    }
}

/// The data-arrival component of `est` (so OLB can subtract it and rank
/// machines purely by availability).
fn arrivals_only(
    b: &ListScheduleBuilder<'_>,
    t: mshc_taskgraph::TaskId,
    m: mshc_platform::MachineId,
) -> f64 {
    let inst = b.instance();
    let mut latest = 0.0f64;
    for e in inst.graph().in_edges(t) {
        let src_m = {
            // builder has the assignment internally; recompute via est
            // would double-count. We conservatively use finish + transfer
            // with the source's committed machine, which `est` already
            // reflects; here we only need the arrival term:
            b.assignment_of(e.src)
        };
        latest = latest.max(b.finish_of(e.src) + inst.system().transfer_time(e.id, src_m, m));
    }
    latest
}

#[cfg(test)]
mod tests {
    use super::*;
    use mshc_platform::{HcSystem, MachineId, Matrix};
    use mshc_schedule::{replay, Evaluator};
    use mshc_taskgraph::{TaskGraphBuilder, TaskId};

    fn instance() -> HcInstance {
        let mut b = TaskGraphBuilder::new(5);
        for (s, d) in [(0, 2), (1, 2), (2, 3), (2, 4)] {
            b.add_edge(s, d).unwrap();
        }
        let g = b.build().unwrap();
        let exec =
            Matrix::from_rows(&[vec![5.0, 9.0, 3.0, 7.0, 2.0], vec![8.0, 4.0, 6.0, 2.0, 9.0]]);
        let transfer = Matrix::from_rows(&[vec![2.0, 2.0, 2.0, 2.0]]);
        let sys = HcSystem::with_anonymous_machines(2, exec, transfer).unwrap();
        HcInstance::new(g, sys).unwrap()
    }

    #[test]
    fn every_policy_produces_valid_schedules() {
        let inst = instance();
        for policy in ListPolicy::ALL {
            let mut s = ListScheduler::new(policy);
            let r = s.run(&inst, &RunBudget::default(), None);
            r.solution.check(inst.graph()).unwrap();
            let mk = Evaluator::new(&inst).makespan(&r.solution);
            assert!(
                (mk - r.makespan).abs() < 1e-9,
                "{}: internal {} vs evaluator {mk}",
                policy.name(),
                r.makespan
            );
            let sim = replay(&inst, &r.solution).unwrap();
            assert!((sim.makespan - r.makespan).abs() < 1e-9, "{}", policy.name());
            assert_eq!(r.iterations, 1);
        }
    }

    #[test]
    fn met_ignores_availability() {
        let inst = instance();
        let mut s = ListScheduler::new(ListPolicy::Met);
        let r = s.run(&inst, &RunBudget::default(), None);
        for t in inst.graph().tasks() {
            assert_eq!(r.solution.machine_of(t), inst.system().best_machine(t));
        }
    }

    #[test]
    fn minmin_at_least_as_good_as_olb_here() {
        let inst = instance();
        let mm = ListScheduler::new(ListPolicy::MinMin).run(&inst, &RunBudget::default(), None);
        let olb = ListScheduler::new(ListPolicy::Olb).run(&inst, &RunBudget::default(), None);
        assert!(mm.makespan <= olb.makespan + 1e-9);
    }

    #[test]
    fn policies_have_stable_names() {
        assert_eq!(ListScheduler::new(ListPolicy::MinMin).name(), "min-min");
        assert_eq!(ListPolicy::Met.name(), "met");
        assert_eq!(ListPolicy::ALL.len(), 5);
    }

    #[test]
    fn single_task_all_policies() {
        let g = TaskGraphBuilder::new(1).build().unwrap();
        let sys = HcSystem::with_anonymous_machines(
            2,
            Matrix::from_rows(&[vec![7.0], vec![3.0]]),
            Matrix::filled(1, 0, 0.0),
        )
        .unwrap();
        let inst = HcInstance::new(g, sys).unwrap();
        for policy in ListPolicy::ALL {
            let r = ListScheduler::new(policy).run(&inst, &RunBudget::default(), None);
            assert!(
                r.makespan == 3.0 || policy == ListPolicy::Olb && r.makespan == 7.0,
                "{}: {}",
                policy.name(),
                r.makespan
            );
            let _ = (TaskId::new(0), MachineId::new(0));
        }
    }
}
