//! Scenario grids for fleet-level experiments.
//!
//! A [`Scenario`] is one *workload class without a seed*: a DAG shape
//! (random layered or one of the structured kernels) crossed with a
//! platform configuration (machine count, [`Heterogeneity`], CCR). The
//! tournament engine (`mshc-portfolio`) races every algorithm on every
//! scenario × seed × objective cell; [`Scenario::generate`] expands a
//! scenario deterministically for a given replicate seed, so any cell
//! anywhere reproduces from its coordinates alone.
//!
//! [`suite`], [`small_suite`] and [`tiny_suite`] enumerate ready-made
//! grids (full taxonomy sweep, a quick cross-shape sample, and a
//! CI-smoke pair). Every scenario's [`tag`](Scenario::tag) is unique
//! within and across the built-in suites — the tag is the stable cell
//! coordinate used in leaderboards, CSV rows and file names.

use crate::spec::{Connectivity, Heterogeneity, WorkloadSpec};
use crate::structured;
use mshc_platform::HcInstance;
use serde::{Deserialize, Serialize};

/// The DAG family a scenario draws from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DagShape {
    /// Random layered DAG (the paper's §5 generator); `shape_a` = tasks,
    /// connectivity class applies.
    Layered,
    /// FFT butterfly on `2^shape_a` points.
    Fft,
    /// Gaussian elimination on a `shape_a × shape_a` matrix.
    Gaussian,
    /// Wavefront stencil on a `shape_a × shape_b` grid.
    Stencil,
    /// Fork–join: `shape_a` parallel chains of `shape_b` stages.
    ForkJoin,
}

impl DagShape {
    /// Short stable identifier used in tags.
    pub fn name(self) -> &'static str {
        match self {
            DagShape::Layered => "lay",
            DagShape::Fft => "fft",
            DagShape::Gaussian => "gauss",
            DagShape::Stencil => "sten",
            DagShape::ForkJoin => "fj",
        }
    }
}

/// One workload class of a scenario grid: DAG shape × platform
/// (machines, heterogeneity, CCR), minus the seed.
///
/// Kept flat (unit-variant shape enum + two generic shape parameters)
/// so it serializes with the vendored serde derive and stays `Copy`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// DAG family.
    pub shape: DagShape,
    /// Primary shape parameter (see [`DagShape`] variant docs).
    pub shape_a: usize,
    /// Secondary shape parameter; 0 when the shape has none.
    pub shape_b: usize,
    /// Machine count `l`.
    pub machines: usize,
    /// Connectivity class — only the [`DagShape::Layered`] generator
    /// reads it; structured kernels have fixed dependence structure.
    pub connectivity: Connectivity,
    /// Heterogeneity class of the platform's execution-time spread.
    pub heterogeneity: Heterogeneity,
    /// Target communication-to-cost ratio.
    pub ccr: f64,
}

impl Scenario {
    /// A random-layered-DAG scenario (the §5 taxonomy point).
    pub fn layered(
        tasks: usize,
        machines: usize,
        connectivity: Connectivity,
        heterogeneity: Heterogeneity,
        ccr: f64,
    ) -> Scenario {
        Scenario {
            shape: DagShape::Layered,
            shape_a: tasks,
            shape_b: 0,
            machines,
            connectivity,
            heterogeneity,
            ccr,
        }
    }

    /// A structured-kernel scenario. `connectivity` is recorded as
    /// [`Connectivity::Medium`] but unused by the generators.
    pub fn kernel(
        shape: DagShape,
        shape_a: usize,
        shape_b: usize,
        machines: usize,
        heterogeneity: Heterogeneity,
        ccr: f64,
    ) -> Scenario {
        debug_assert!(shape != DagShape::Layered, "use Scenario::layered");
        Scenario {
            shape,
            shape_a,
            shape_b,
            machines,
            connectivity: Connectivity::Medium,
            heterogeneity,
            ccr,
        }
    }

    /// The stable cell coordinate: filename- and CSV-safe, unique per
    /// distinct scenario (shape parameters, machines, classes and CCR
    /// are all encoded).
    pub fn tag(&self) -> String {
        let shape = match self.shape {
            DagShape::Layered => {
                format!("{}{}_c{}", self.shape.name(), self.shape_a, self.connectivity.name())
            }
            DagShape::Fft | DagShape::Gaussian => format!("{}{}", self.shape.name(), self.shape_a),
            DagShape::Stencil | DagShape::ForkJoin => {
                format!("{}{}x{}", self.shape.name(), self.shape_a, self.shape_b)
            }
        };
        format!("{shape}_l{}_h{}_ccr{}", self.machines, self.heterogeneity.name(), self.ccr)
    }

    /// Deterministically expands the scenario for one replicate seed:
    /// same scenario + same seed → bit-identical instance, everywhere.
    ///
    /// # Panics
    /// Panics on degenerate parameters (zero tasks/machines/grid dims,
    /// negative or non-finite CCR) — the tournament engine catches and
    /// reports these per cell instead of aborting a whole run.
    pub fn generate(&self, seed: u64) -> HcInstance {
        match self.shape {
            DagShape::Layered => WorkloadSpec {
                tasks: self.shape_a,
                machines: self.machines,
                connectivity: self.connectivity,
                heterogeneity: self.heterogeneity,
                ccr: self.ccr,
                seed,
            }
            .generate(),
            DagShape::Fft => structured::fft(
                self.shape_a as u32,
                self.machines,
                self.heterogeneity,
                self.ccr,
                seed,
            ),
            DagShape::Gaussian => structured::gaussian(
                self.shape_a,
                self.machines,
                self.heterogeneity,
                self.ccr,
                seed,
            ),
            DagShape::Stencil => structured::stencil(
                self.shape_a,
                self.shape_b,
                self.machines,
                self.heterogeneity,
                self.ccr,
                seed,
            ),
            DagShape::ForkJoin => structured::fork_join(
                self.shape_a,
                self.shape_b,
                self.machines,
                self.heterogeneity,
                self.ccr,
                seed,
            ),
        }
    }
}

/// The full tournament grid: 5 DAG shapes (two layered connectivity
/// classes plus three structured kernels) × CCR {0.1, 1.0} ×
/// heterogeneity {low, high} × machine count {4, 12} — 40 scenarios
/// spanning the paper's §5 taxonomy and the §1 structured applications.
pub fn suite() -> Vec<Scenario> {
    let mut out = Vec::new();
    for &machines in &[4usize, 12] {
        for &heterogeneity in &[Heterogeneity::Low, Heterogeneity::High] {
            for &ccr in &[0.1f64, 1.0] {
                out.push(Scenario::layered(48, machines, Connectivity::Medium, heterogeneity, ccr));
                out.push(Scenario::layered(48, machines, Connectivity::High, heterogeneity, ccr));
                out.push(Scenario::kernel(DagShape::Fft, 3, 0, machines, heterogeneity, ccr));
                out.push(Scenario::kernel(DagShape::Gaussian, 7, 0, machines, heterogeneity, ccr));
                out.push(Scenario::kernel(DagShape::ForkJoin, 6, 4, machines, heterogeneity, ccr));
            }
        }
    }
    out
}

/// A quick cross-shape sample: 4 shapes × CCR {0.1, 1.0} on one
/// 8-machine, high-heterogeneity platform — 8 scenarios.
pub fn small_suite() -> Vec<Scenario> {
    let mut out = Vec::new();
    for &ccr in &[0.1f64, 1.0] {
        out.push(Scenario::layered(30, 8, Connectivity::Medium, Heterogeneity::High, ccr));
        out.push(Scenario::kernel(DagShape::Fft, 3, 0, 8, Heterogeneity::High, ccr));
        out.push(Scenario::kernel(DagShape::Gaussian, 6, 0, 8, Heterogeneity::High, ccr));
        out.push(Scenario::kernel(DagShape::Stencil, 4, 5, 8, Heterogeneity::High, ccr));
    }
    out
}

/// The CI-smoke pair: one tiny layered workload and one tiny fork–join,
/// both on 3 machines — fast enough to race every algorithm per commit.
pub fn tiny_suite() -> Vec<Scenario> {
    vec![
        Scenario::layered(12, 3, Connectivity::Medium, Heterogeneity::Medium, 0.5),
        Scenario::kernel(DagShape::ForkJoin, 3, 2, 3, Heterogeneity::High, 1.0),
    ]
}

/// Looks up a built-in suite by name (`tiny`, `small`, `full`).
pub fn named_suite(name: &str) -> Option<Vec<Scenario>> {
    match name {
        "tiny" => Some(tiny_suite()),
        "small" => Some(small_suite()),
        "full" => Some(suite()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn suite_tags_are_unique_within_and_across_suites() {
        let mut seen = BTreeSet::new();
        for (name, scenarios) in
            [("tiny", tiny_suite()), ("small", small_suite()), ("full", suite())]
        {
            assert!(!scenarios.is_empty(), "{name} suite must not be empty");
            for s in &scenarios {
                let tag = s.tag();
                assert!(seen.insert(tag.clone()), "duplicate tag {tag} (in {name} suite)");
                assert!(
                    !tag.contains(' ') && !tag.contains(',') && !tag.contains('/'),
                    "tag {tag} must be filename- and CSV-safe"
                );
            }
        }
        assert_eq!(suite().len(), 40, "full grid is 5 shapes x 2 ccr x 2 het x 2 sizes");
    }

    #[test]
    fn named_suites_resolve() {
        assert_eq!(named_suite("tiny").unwrap().len(), tiny_suite().len());
        assert_eq!(named_suite("small").unwrap().len(), small_suite().len());
        assert_eq!(named_suite("full").unwrap().len(), suite().len());
        assert!(named_suite("galactic").is_none());
    }

    #[test]
    fn generation_is_seed_deterministic_for_every_suite_cell() {
        for s in tiny_suite().into_iter().chain(small_suite()) {
            let a = s.generate(11);
            let b = s.generate(11);
            assert_eq!(a, b, "{}: same seed must give bit-identical instances", s.tag());
            let c = s.generate(12);
            assert_ne!(a, c, "{}: different seeds must differ", s.tag());
            assert_eq!(a.machine_count(), s.machines, "{}", s.tag());
            assert!(a.task_count() >= 2, "{}", s.tag());
        }
    }

    #[test]
    fn full_suite_generates_valid_instances() {
        // Spot-check one scenario per shape from the full grid.
        let mut seen_shapes = BTreeSet::new();
        for s in suite() {
            if seen_shapes.insert(format!("{:?}", s.shape)) {
                let inst = s.generate(3);
                assert!(inst.task_count() >= 10, "{} too small", s.tag());
                assert_eq!(inst.machine_count(), s.machines);
            }
        }
        assert!(seen_shapes.len() >= 4, "full suite spans the shape families");
    }

    #[test]
    fn scenario_serde_roundtrips() {
        for s in tiny_suite().into_iter().chain(suite().into_iter().take(5)) {
            let json = serde_json::to_string(&s).unwrap();
            let back: Scenario = serde_json::from_str(&json).unwrap();
            assert_eq!(back, s);
            assert_eq!(back.tag(), s.tag());
        }
    }

    #[test]
    fn layered_tag_encodes_connectivity() {
        let a = Scenario::layered(20, 4, Connectivity::Low, Heterogeneity::Medium, 0.5);
        let b = Scenario::layered(20, 4, Connectivity::High, Heterogeneity::Medium, 0.5);
        assert_ne!(a.tag(), b.tag());
        assert_eq!(a.tag(), "lay20_clow_l4_hmedium_ccr0.5");
    }
}
