//! # mshc-ga — the genetic-algorithm baseline
//!
//! Reimplementation of the GA the SE paper compares against (§5.3):
//! L. Wang, H. J. Siegel, V. P. Roychowdhury & A. A. Maciejewski, *"Task
//! Matching and Scheduling in Heterogeneous Computing Environments Using
//! a Genetic-Algorithm-Based Approach"*, JPDC 47, 1997.
//!
//! The Wang encoding keeps **two strings per chromosome** (the SE paper
//! merges them into one, §4.1):
//!
//! * a **matching string** — one machine per task;
//! * a **scheduling string** — a topological order of the tasks giving
//!   the relative execution order on shared machines.
//!
//! Operators (all validity-preserving):
//!
//! * **selection** — roulette wheel over linearly rescaled fitness, with
//!   elitism (the best chromosome always survives);
//! * **scheduling crossover** — cut both parents at a random point; the
//!   child keeps parent A's prefix and appends the missing tasks in the
//!   order they occur in parent B (a linear extension whenever both
//!   parents are);
//! * **matching crossover** — single-point crossover on the machine
//!   vector;
//! * **scheduling mutation** — move a random task to a random position
//!   inside its valid range;
//! * **matching mutation** — reassign a random task to a random machine.
//!
//! One chromosome of the initial population is seeded with a fast
//! non-evolutionary heuristic (best-machine matching on a topological
//! order), following Wang et al.'s practice.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algorithm;
pub mod chromosome;
pub mod config;

pub use algorithm::GaScheduler;
pub use chromosome::Chromosome;
pub use config::GaConfig;
