//! Deterministic random and structured DAG generators.
//!
//! The paper evaluates on randomly generated workloads because "a generally
//! accepted set of HC benchmarks does not exist" (§5). The generators here
//! produce the *topology*; execution/transfer times are layered on by
//! `mshc-platform` / `mshc-workloads`.
//!
//! Two families:
//!
//! * **random** — [`layered`] (the shape used for the paper's experiments:
//!   tasks in levels, edges between earlier and later levels with a
//!   connectivity probability) and [`erdos_dag`] (uniform random DAG via a
//!   random upper-triangular adjacency matrix);
//! * **structured** — classic application kernels used throughout the
//!   heterogeneous-scheduling literature and by our examples: [`chain`],
//!   [`fork_join`], [`in_tree`], [`out_tree`], [`diamond`],
//!   [`fft_butterfly`], [`gaussian_elimination`], [`series_parallel`],
//!   [`independent`].
//!
//! Every generator is deterministic given its RNG; structured generators
//! take no RNG at all.

use crate::error::GraphError;
use crate::graph::{TaskGraph, TaskGraphBuilder};
use rand::Rng;

/// Parameters for [`layered`] random DAG generation.
#[derive(Debug, Clone, PartialEq)]
pub struct LayeredConfig {
    /// Total number of tasks `k` (>= 1).
    pub tasks: usize,
    /// Mean number of tasks per layer; layer sizes are sampled uniformly in
    /// `[1, 2*mean_width - 1]` and the last layer absorbs the remainder.
    pub mean_width: usize,
    /// Probability of an edge between a task and each task in the *next*
    /// layer. This is the paper's connectivity axis: ~0.2 gives sparse
    /// ("low connectivity") graphs, ~0.8 dense ones.
    pub edge_prob: f64,
    /// Probability of an additional "skip" edge to each task two or more
    /// layers down. Usually much smaller than `edge_prob`.
    pub skip_prob: f64,
}

impl Default for LayeredConfig {
    fn default() -> Self {
        LayeredConfig { tasks: 50, mean_width: 5, edge_prob: 0.5, skip_prob: 0.05 }
    }
}

/// Generates a layered random DAG.
///
/// Guarantees: every non-entry task has at least one predecessor in an
/// earlier layer (so the DAG is "connected forward" and its depth equals
/// the number of layers), and the result is acyclic by construction.
pub fn layered<R: Rng + ?Sized>(cfg: &LayeredConfig, rng: &mut R) -> Result<TaskGraph, GraphError> {
    if cfg.tasks == 0 {
        return Err(GraphError::Empty);
    }
    assert!(cfg.mean_width >= 1, "mean_width must be >= 1");
    assert!(
        (0.0..=1.0).contains(&cfg.edge_prob) && (0.0..=1.0).contains(&cfg.skip_prob),
        "probabilities must lie in [0,1]"
    );
    // Partition 0..tasks into layers.
    let mut layers: Vec<Vec<u32>> = Vec::new();
    let mut next = 0u32;
    while (next as usize) < cfg.tasks {
        let hi = (2 * cfg.mean_width).saturating_sub(1).max(1);
        let mut w = rng.gen_range(1..=hi);
        w = w.min(cfg.tasks - next as usize);
        layers.push((next..next + w as u32).collect());
        next += w as u32;
    }
    let mut b = TaskGraphBuilder::new(cfg.tasks);
    for li in 1..layers.len() {
        for &t in &layers[li] {
            let mut has_pred = false;
            // Edges from the immediately preceding layer.
            for &p in &layers[li - 1] {
                if rng.gen_bool(cfg.edge_prob) {
                    b.add_edge(p, t).expect("layered edges are unique and forward");
                    has_pred = true;
                }
            }
            // Skip edges from any earlier layer.
            if cfg.skip_prob > 0.0 {
                for earlier in &layers[..li - 1] {
                    for &p in earlier {
                        if rng.gen_bool(cfg.skip_prob) {
                            b.add_edge(p, t).expect("layered edges are unique and forward");
                            has_pred = true;
                        }
                    }
                }
            }
            // Ensure at least one predecessor so depth == #layers.
            if !has_pred {
                let prev = &layers[li - 1];
                let p = prev[rng.gen_range(0..prev.len())];
                b.add_edge(p, t).expect("fresh edge");
            }
        }
    }
    b.build()
}

/// Generates a uniform random DAG on `k` tasks: each pair `(i, j)` with
/// `i < j` carries an edge with probability `edge_prob` (a random
/// upper-triangular adjacency matrix). Task ids are already a topological
/// order.
pub fn erdos_dag<R: Rng + ?Sized>(
    k: usize,
    edge_prob: f64,
    rng: &mut R,
) -> Result<TaskGraph, GraphError> {
    if k == 0 {
        return Err(GraphError::Empty);
    }
    assert!((0.0..=1.0).contains(&edge_prob), "edge_prob must lie in [0,1]");
    let mut b = TaskGraphBuilder::new(k);
    for i in 0..k as u32 {
        for j in (i + 1)..k as u32 {
            if rng.gen_bool(edge_prob) {
                b.add_edge(i, j).expect("upper-triangular edges are unique");
            }
        }
    }
    b.build()
}

/// A linear chain `s0 -> s1 -> ... -> s{k-1}` — the fully sequential
/// worst case (no matching freedom helps the makespan beyond picking the
/// fastest machine per hop).
pub fn chain(k: usize) -> Result<TaskGraph, GraphError> {
    if k == 0 {
        return Err(GraphError::Empty);
    }
    let mut b = TaskGraphBuilder::new(k);
    for i in 0..(k as u32).saturating_sub(1) {
        b.add_edge(i, i + 1).expect("chain edges unique");
    }
    b.build()
}

/// `k` independent tasks — the meta-task / bag-of-tasks extreme (the Braun
/// et al. comparison-study setting the paper cites as \[4\]).
pub fn independent(k: usize) -> Result<TaskGraph, GraphError> {
    if k == 0 {
        return Err(GraphError::Empty);
    }
    TaskGraphBuilder::new(k).build()
}

/// Fork–join: a source fans out to `branches` parallel chains of length
/// `stage_len`, all joining into a sink. Total tasks:
/// `2 + branches * stage_len`.
pub fn fork_join(branches: usize, stage_len: usize) -> Result<TaskGraph, GraphError> {
    assert!(branches >= 1 && stage_len >= 1, "fork_join needs >=1 branch and stage");
    let k = 2 + branches * stage_len;
    let mut b = TaskGraphBuilder::new(k);
    let sink = (k - 1) as u32;
    for br in 0..branches {
        let first = (1 + br * stage_len) as u32;
        b.add_edge(0, first).expect("unique");
        for s in 0..stage_len - 1 {
            let cur = first + s as u32;
            b.add_edge(cur, cur + 1).expect("unique");
        }
        b.add_edge(first + (stage_len - 1) as u32, sink).expect("unique");
    }
    b.build()
}

/// Complete out-tree (task 0 is the root) with the given `fanout` and
/// `depth` (depth 1 = just the root).
pub fn out_tree(fanout: usize, depth: usize) -> Result<TaskGraph, GraphError> {
    assert!(fanout >= 1 && depth >= 1, "out_tree needs fanout,depth >= 1");
    let mut count = 1usize;
    let mut level = 1usize;
    for _ in 1..depth {
        level *= fanout;
        count += level;
    }
    let mut b = TaskGraphBuilder::new(count);
    // children of node i are fanout*i + 1 ..= fanout*i + fanout
    for i in 0..count {
        for c in 1..=fanout {
            let child = fanout * i + c;
            if child < count {
                b.add_edge(i as u32, child as u32).expect("unique tree edge");
            }
        }
    }
    b.build()
}

/// Complete in-tree: the reverse of [`out_tree`]; the last task is the
/// root every leaf eventually reaches.
pub fn in_tree(fanin: usize, depth: usize) -> Result<TaskGraph, GraphError> {
    let out = out_tree(fanin, depth)?;
    let k = out.task_count();
    let mut b = TaskGraphBuilder::new(k);
    for e in out.edges() {
        // reverse edge and mirror ids so the root becomes the last task
        let src = (k - 1 - e.dst.index()) as u32;
        let dst = (k - 1 - e.src.index()) as u32;
        b.add_edge(src, dst).expect("mirrored tree edge unique");
    }
    b.build()
}

/// Diamond / wavefront stencil on an `rows x cols` grid: task `(r, c)`
/// depends on `(r-1, c)` and `(r, c-1)` — the Smith–Waterman / dynamic-
/// programming dependence pattern.
pub fn diamond(rows: usize, cols: usize) -> Result<TaskGraph, GraphError> {
    assert!(rows >= 1 && cols >= 1, "diamond needs rows,cols >= 1");
    let idx = |r: usize, c: usize| (r * cols + c) as u32;
    let mut b = TaskGraphBuilder::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            if r + 1 < rows {
                b.add_edge(idx(r, c), idx(r + 1, c)).expect("unique");
            }
            if c + 1 < cols {
                b.add_edge(idx(r, c), idx(r, c + 1)).expect("unique");
            }
        }
    }
    b.build()
}

/// FFT butterfly task graph for `points = 2^m` inputs: `m` butterfly
/// ranks of `points` tasks each, preceded by a recursive bit-reversal
/// layer, following the shape used by Topcuoglu et al. (HEFT). Tasks:
/// `points * (m + 1)`.
pub fn fft_butterfly(m: u32) -> Result<TaskGraph, GraphError> {
    assert!(m >= 1, "fft needs at least one rank");
    let points = 1usize << m;
    let ranks = m as usize + 1; // input layer + m butterfly ranks
    let idx = |rank: usize, i: usize| (rank * points + i) as u32;
    let mut b = TaskGraphBuilder::new(points * ranks);
    for rank in 1..ranks {
        let span = 1usize << (rank - 1); // butterfly distance
        for i in 0..points {
            let partner = i ^ span;
            b.add_edge(idx(rank - 1, i), idx(rank, i)).expect("unique");
            b.add_edge(idx(rank - 1, partner), idx(rank, i)).expect("unique");
        }
    }
    b.build()
}

/// Gaussian-elimination task graph for an `n x n` matrix: for each
/// elimination step `j` a pivot task `P_j` followed by update tasks
/// `U_{j,i}` for rows `i > j`, with the classic dependence pattern
/// (Topcuoglu et al.). Tasks: `n-1` pivots + `n(n-1)/2` updates.
pub fn gaussian_elimination(n: usize) -> Result<TaskGraph, GraphError> {
    assert!(n >= 2, "gaussian elimination needs n >= 2");
    // Number tasks: for step j in 0..n-1: pivot, then updates (j+1..n).
    let mut ids = std::collections::HashMap::new();
    let mut next = 0u32;
    for j in 0..n - 1 {
        ids.insert(("p", j, 0usize), next);
        next += 1;
        for i in j + 1..n {
            ids.insert(("u", j, i), next);
            next += 1;
        }
    }
    let mut b = TaskGraphBuilder::new(next as usize);
    for j in 0..n - 1 {
        let p = ids[&("p", j, 0usize)];
        for i in j + 1..n {
            let u = ids[&("u", j, i)];
            // pivot feeds each update of its step
            b.add_edge(p, u).expect("unique");
            // update (j, i) feeds the next step's pivot (if i == j+1) and
            // the next step's update of the same row (if i > j+1).
            if j + 1 < n - 1 || i > j + 1 {
                if i == j + 1 {
                    if let Some(&pn) = ids.get(&("p", j + 1, 0usize)) {
                        b.add_edge(u, pn).expect("unique");
                    }
                } else if let Some(&un) = ids.get(&("u", j + 1, i)) {
                    b.add_edge(u, un).expect("unique");
                }
            }
        }
    }
    b.build()
}

/// Random series-parallel DAG built by recursive expansion: starting from a
/// single edge, repeatedly replace a random edge by a series or parallel
/// composition until `k` tasks exist. Series-parallel graphs are the
/// classic "well-structured program" shape.
pub fn series_parallel<R: Rng + ?Sized>(k: usize, rng: &mut R) -> Result<TaskGraph, GraphError> {
    if k == 0 {
        return Err(GraphError::Empty);
    }
    if k == 1 {
        return TaskGraphBuilder::new(1).build();
    }
    // Maintain an edge list over a growing vertex set; vertices are tasks.
    let mut edges: Vec<(u32, u32)> = vec![(0, 1)];
    let mut vertices = 2u32;
    while (vertices as usize) < k {
        let ei = rng.gen_range(0..edges.len());
        let (u, v) = edges[ei];
        let w = vertices;
        vertices += 1;
        if rng.gen_bool(0.5) {
            // series: u -> w -> v replaces u -> v
            edges.swap_remove(ei);
            edges.push((u, w));
            edges.push((w, v));
        } else {
            // parallel: add u -> w -> v alongside u -> v
            edges.push((u, w));
            edges.push((w, v));
        }
    }
    let mut b = TaskGraphBuilder::new(vertices as usize);
    edges.sort_unstable();
    edges.dedup();
    for (u, v) in edges {
        if !b.has_edge(u, v) {
            b.add_edge(u, v).expect("deduped");
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::GraphMetrics;
    use crate::topo::TopoOrder;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn layered_respects_task_count_and_acyclicity() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for tasks in [1usize, 2, 10, 57, 100] {
            let cfg = LayeredConfig { tasks, ..Default::default() };
            let g = layered(&cfg, &mut rng).unwrap();
            assert_eq!(g.task_count(), tasks);
            let o = TopoOrder::kahn(&g);
            assert!(g.is_linear_extension(o.as_slice()));
        }
    }

    #[test]
    fn layered_connectivity_scales_with_prob() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let lo = layered(
            &LayeredConfig { tasks: 200, mean_width: 8, edge_prob: 0.15, skip_prob: 0.0 },
            &mut rng,
        )
        .unwrap();
        let hi = layered(
            &LayeredConfig { tasks: 200, mean_width: 8, edge_prob: 0.85, skip_prob: 0.0 },
            &mut rng,
        )
        .unwrap();
        assert!(
            hi.data_count() > 2 * lo.data_count(),
            "high edge_prob should produce far more data items ({} vs {})",
            hi.data_count(),
            lo.data_count()
        );
    }

    #[test]
    fn layered_non_entry_tasks_have_predecessors() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let cfg = LayeredConfig { tasks: 80, mean_width: 6, edge_prob: 0.1, skip_prob: 0.0 };
        let g = layered(&cfg, &mut rng).unwrap();
        let levels = crate::topo::Levels::compute(&g);
        for t in g.tasks() {
            if levels.level(t) > 0 {
                assert!(g.in_degree(t) >= 1, "{t} at level>0 must have a predecessor");
            }
        }
    }

    #[test]
    fn layered_zero_tasks_is_error() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let cfg = LayeredConfig { tasks: 0, ..Default::default() };
        assert!(matches!(layered(&cfg, &mut rng), Err(GraphError::Empty)));
    }

    #[test]
    fn erdos_density_matches_probability() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let g = erdos_dag(100, 0.3, &mut rng).unwrap();
        let m = GraphMetrics::compute(&g);
        assert!((m.density - 0.3).abs() < 0.05, "density {} far from 0.3", m.density);
    }

    #[test]
    fn erdos_extremes() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        assert_eq!(erdos_dag(20, 0.0, &mut rng).unwrap().data_count(), 0);
        assert_eq!(erdos_dag(20, 1.0, &mut rng).unwrap().data_count(), 190);
    }

    #[test]
    fn chain_shape() {
        let g = chain(5).unwrap();
        assert_eq!(g.data_count(), 4);
        let m = GraphMetrics::compute(&g);
        assert_eq!(m.depth, 5);
        assert_eq!(m.width, 1);
        assert!(chain(0).is_err());
        assert_eq!(chain(1).unwrap().data_count(), 0);
    }

    #[test]
    fn independent_shape() {
        let g = independent(8).unwrap();
        assert_eq!(g.data_count(), 0);
        assert_eq!(GraphMetrics::compute(&g).width, 8);
    }

    #[test]
    fn fork_join_shape() {
        let g = fork_join(3, 2).unwrap();
        assert_eq!(g.task_count(), 8);
        assert_eq!(g.entry_tasks().len(), 1);
        assert_eq!(g.exit_tasks().len(), 1);
        let m = GraphMetrics::compute(&g);
        assert_eq!(m.depth, 4); // source, 2 stages, sink
        assert_eq!(m.width, 3);
    }

    #[test]
    fn out_tree_shape() {
        let g = out_tree(2, 3).unwrap();
        assert_eq!(g.task_count(), 7);
        assert_eq!(g.entry_tasks().len(), 1);
        assert_eq!(g.exit_tasks().len(), 4);
        for t in g.tasks().skip(1) {
            assert_eq!(g.in_degree(t), 1, "tree: one parent");
        }
    }

    #[test]
    fn in_tree_is_mirrored_out_tree() {
        let g = in_tree(2, 3).unwrap();
        assert_eq!(g.task_count(), 7);
        assert_eq!(g.entry_tasks().len(), 4);
        assert_eq!(g.exit_tasks().len(), 1);
        for t in g.tasks().take(g.task_count() - 1) {
            assert_eq!(g.out_degree(t), 1, "in-tree: one child except root");
        }
    }

    #[test]
    fn diamond_shape() {
        let g = diamond(3, 4).unwrap();
        assert_eq!(g.task_count(), 12);
        assert_eq!(g.entry_tasks().len(), 1);
        assert_eq!(g.exit_tasks().len(), 1);
        let m = GraphMetrics::compute(&g);
        assert_eq!(m.depth, 3 + 4 - 1);
    }

    #[test]
    fn fft_shape() {
        let g = fft_butterfly(3).unwrap(); // 8 points, 4 ranks
        assert_eq!(g.task_count(), 32);
        // every non-input task has exactly 2 predecessors
        for t in g.tasks().skip(8) {
            assert_eq!(g.in_degree(t), 2, "{t}");
        }
        assert_eq!(g.entry_tasks().len(), 8);
        assert_eq!(g.exit_tasks().len(), 8);
    }

    #[test]
    fn gaussian_elimination_shape() {
        let g = gaussian_elimination(4).unwrap();
        // pivots: 3, updates: 3+2+1 = 6 => 9 tasks
        assert_eq!(g.task_count(), 9);
        assert_eq!(g.entry_tasks().len(), 1, "first pivot is the only entry");
        let o = TopoOrder::kahn(&g);
        assert!(g.is_linear_extension(o.as_slice()));
    }

    #[test]
    fn series_parallel_valid_and_sized() {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        for k in [1usize, 2, 5, 30, 77] {
            let g = series_parallel(k, &mut rng).unwrap();
            assert_eq!(g.task_count(), k);
            let o = TopoOrder::kahn(&g);
            assert!(g.is_linear_extension(o.as_slice()));
        }
    }

    #[test]
    fn generators_deterministic_under_seed() {
        let cfg = LayeredConfig::default();
        let a = layered(&cfg, &mut ChaCha8Rng::seed_from_u64(5)).unwrap();
        let b = layered(&cfg, &mut ChaCha8Rng::seed_from_u64(5)).unwrap();
        assert_eq!(a, b);
        let c = series_parallel(40, &mut ChaCha8Rng::seed_from_u64(6)).unwrap();
        let d = series_parallel(40, &mut ChaCha8Rng::seed_from_u64(6)).unwrap();
        assert_eq!(c, d);
    }
}
