//! Baseline heuristic throughput: HEFT, CPOP and the list family on the
//! paper's 100-task / 20-machine comparison workload. These one-shot
//! algorithms anchor the quality band the iterative schedulers are
//! compared against.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mshc_heuristics::{CpopScheduler, HeftScheduler, ListPolicy, ListScheduler};
use mshc_schedule::{RunBudget, Scheduler};
use mshc_workloads::FigureWorkload;
use std::hint::black_box;

fn bench_constructive(c: &mut Criterion) {
    let inst = FigureWorkload::Fig5.spec(2001).generate();
    let budget = RunBudget::default();
    let mut group = c.benchmark_group("heuristics");
    group.bench_function("heft", |b| {
        b.iter(|| black_box(HeftScheduler::new().run(&inst, &budget, None).makespan))
    });
    group.bench_function("cpop", |b| {
        b.iter(|| black_box(CpopScheduler::new().run(&inst, &budget, None).makespan))
    });
    for policy in ListPolicy::ALL {
        group.bench_with_input(BenchmarkId::new("list", policy.name()), &policy, |b, &policy| {
            b.iter(|| black_box(ListScheduler::new(policy).run(&inst, &budget, None).makespan))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(4)).warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_constructive
}
criterion_main!(benches);
