//! Least-squares linear trend fits — the figure-shape assertions in the
//! integration tests use the slope sign ("selected-count decays", Fig 3a)
//! rather than brittle absolute values.

/// Result of an ordinary least-squares fit `y ≈ slope * x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination R² (0 when y is constant).
    pub r2: f64,
}

impl LinearFit {
    /// Fits `points`.
    ///
    /// # Panics
    /// Panics with fewer than two points or zero x-variance.
    pub fn fit(points: &[(f64, f64)]) -> LinearFit {
        assert!(points.len() >= 2, "need at least two points to fit a line");
        let n = points.len() as f64;
        let sx: f64 = points.iter().map(|p| p.0).sum();
        let sy: f64 = points.iter().map(|p| p.1).sum();
        let mx = sx / n;
        let my = sy / n;
        let sxx: f64 = points.iter().map(|p| (p.0 - mx) * (p.0 - mx)).sum();
        assert!(sxx > 0.0, "x values must not all be identical");
        let sxy: f64 = points.iter().map(|p| (p.0 - mx) * (p.1 - my)).sum();
        let slope = sxy / sxx;
        let intercept = my - slope * mx;
        let ss_tot: f64 = points.iter().map(|p| (p.1 - my) * (p.1 - my)).sum();
        let ss_res: f64 = points
            .iter()
            .map(|p| {
                let pred = slope * p.0 + intercept;
                (p.1 - pred) * (p.1 - pred)
            })
            .sum();
        let r2 = if ss_tot == 0.0 { 0.0 } else { 1.0 - ss_res / ss_tot };
        LinearFit { slope, intercept, r2 }
    }

    /// Predicted y at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line() {
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 3.0 * i as f64 + 1.0)).collect();
        let f = LinearFit::fit(&pts);
        assert!((f.slope - 3.0).abs() < 1e-12);
        assert!((f.intercept - 1.0).abs() < 1e-12);
        assert!((f.r2 - 1.0).abs() < 1e-12);
        assert!((f.predict(20.0) - 61.0).abs() < 1e-12);
    }

    #[test]
    fn decaying_series_has_negative_slope() {
        let pts: Vec<(f64, f64)> =
            (0..100).map(|i| (i as f64, 100.0 * (-0.05 * i as f64).exp())).collect();
        let f = LinearFit::fit(&pts);
        assert!(f.slope < 0.0);
    }

    #[test]
    fn noisy_flat_series_r2_near_zero() {
        let pts: Vec<(f64, f64)> =
            (0..50).map(|i| (i as f64, if i % 2 == 0 { 1.0 } else { -1.0 })).collect();
        let f = LinearFit::fit(&pts);
        assert!(f.r2 < 0.1);
        assert!(f.slope.abs() < 0.05);
    }

    #[test]
    fn constant_y_r2_zero() {
        let pts = [(0.0, 5.0), (1.0, 5.0), (2.0, 5.0)];
        let f = LinearFit::fit(&pts);
        assert_eq!(f.slope, 0.0);
        assert_eq!(f.r2, 0.0);
    }

    #[test]
    #[should_panic(expected = "two points")]
    fn single_point_rejected() {
        let _ = LinearFit::fit(&[(0.0, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "identical")]
    fn vertical_line_rejected() {
        let _ = LinearFit::fit(&[(1.0, 0.0), (1.0, 5.0)]);
    }
}
