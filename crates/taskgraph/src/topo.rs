//! Topological orders and DAG levels.
//!
//! The paper needs two order-related facilities:
//!
//! * a **topological sort** to build the initial valid solution string
//!   (§4.2, citing Cormen et al. \[12\]);
//! * per-task **levels** — the selection step orders selected subtasks "in
//!   ascending order according to their level in the DAG" before allocation
//!   (§4.4).
//!
//! We also provide *randomized* linear extensions (every run of the SE/GA
//! initializers should start from a different valid order) with
//! deterministic behaviour under a seeded RNG.

use crate::graph::TaskGraph;
use crate::ids::TaskId;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A topological order (linear extension) of a task graph.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TopoOrder {
    order: Vec<TaskId>,
}

impl TopoOrder {
    /// Deterministic Kahn topological sort. Among ready tasks, the one with
    /// the smallest id is emitted first, so the result is the
    /// lexicographically smallest linear extension — stable across runs and
    /// platforms.
    pub fn kahn(graph: &TaskGraph) -> TopoOrder {
        let k = graph.task_count();
        let mut indeg: Vec<u32> =
            (0..k).map(|i| graph.in_degree(TaskId::from_usize(i)) as u32).collect();
        // Min-heap via sorted insertion into a Vec kept reverse-sorted;
        // for scheduling-sized graphs (k <= a few thousand) a BinaryHeap of
        // Reverse<u32> is clearer.
        let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<u32>> =
            (0..k as u32).filter(|&i| indeg[i as usize] == 0).map(std::cmp::Reverse).collect();
        let mut order = Vec::with_capacity(k);
        while let Some(std::cmp::Reverse(i)) = heap.pop() {
            let t = TaskId::new(i);
            order.push(t);
            for s in graph.successors(t) {
                indeg[s.index()] -= 1;
                if indeg[s.index()] == 0 {
                    heap.push(std::cmp::Reverse(s.raw()));
                }
            }
        }
        debug_assert_eq!(order.len(), k, "TaskGraph invariant: acyclic");
        TopoOrder { order }
    }

    /// A uniformly *randomized* Kahn sort: at every step a uniformly random
    /// ready task is emitted. (This does not sample uniformly over all
    /// linear extensions — that is #P-hard — but it reaches every linear
    /// extension with nonzero probability, which is what the SE/GA
    /// initializers need.)
    pub fn random<R: Rng + ?Sized>(graph: &TaskGraph, rng: &mut R) -> TopoOrder {
        let k = graph.task_count();
        let mut indeg: Vec<u32> =
            (0..k).map(|i| graph.in_degree(TaskId::from_usize(i)) as u32).collect();
        let mut ready: Vec<TaskId> = graph.tasks().filter(|&t| indeg[t.index()] == 0).collect();
        let mut order = Vec::with_capacity(k);
        while !ready.is_empty() {
            let pick = rng.gen_range(0..ready.len());
            let t = ready.swap_remove(pick);
            order.push(t);
            for s in graph.successors(t) {
                indeg[s.index()] -= 1;
                if indeg[s.index()] == 0 {
                    ready.push(s);
                }
            }
        }
        debug_assert_eq!(order.len(), k);
        TopoOrder { order }
    }

    /// The order as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[TaskId] {
        &self.order
    }

    /// Consumes the order, returning the underlying vector.
    pub fn into_vec(self) -> Vec<TaskId> {
        self.order
    }

    /// Position of each task in the order: `position()[t.index()]` is the
    /// index at which `t` appears.
    pub fn positions(&self) -> Vec<u32> {
        let mut pos = vec![0u32; self.order.len()];
        for (i, &t) in self.order.iter().enumerate() {
            pos[t.index()] = i as u32;
        }
        pos
    }
}

/// Per-task DAG levels.
///
/// `level(t)` is the length (in edges) of the longest path from any entry
/// task to `t`; entry tasks have level 0. The SE selection step sorts
/// selected tasks by ascending level (§4.4) so that when a task is
/// re-allocated, its re-allocated predecessors have already settled.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Levels {
    levels: Vec<u32>,
    max_level: u32,
}

impl Levels {
    /// Computes levels with one pass over a topological order.
    pub fn compute(graph: &TaskGraph) -> Levels {
        let order = TopoOrder::kahn(graph);
        let mut levels = vec![0u32; graph.task_count()];
        for &t in order.as_slice() {
            for s in graph.successors(t) {
                levels[s.index()] = levels[s.index()].max(levels[t.index()] + 1);
            }
        }
        let max_level = levels.iter().copied().max().unwrap_or(0);
        Levels { levels, max_level }
    }

    /// Level of task `t`.
    #[inline]
    pub fn level(&self, t: TaskId) -> u32 {
        self.levels[t.index()]
    }

    /// Largest level in the graph (== number of "layers" − 1).
    #[inline]
    pub fn max_level(&self) -> u32 {
        self.max_level
    }

    /// All levels, indexed by task.
    #[inline]
    pub fn as_slice(&self) -> &[u32] {
        &self.levels
    }

    /// Sorts `tasks` in place by ascending level, breaking ties by task id
    /// (deterministic). This is the §4.4 ordering of the selection set.
    pub fn sort_by_level(&self, tasks: &mut [TaskId]) {
        tasks.sort_by_key(|&t| (self.levels[t.index()], t.raw()));
    }

    /// Groups tasks into layers: `layers()[l]` holds every task at level `l`.
    pub fn layers(&self) -> Vec<Vec<TaskId>> {
        let mut layers = vec![Vec::new(); self.max_level as usize + 1];
        for (i, &l) in self.levels.iter().enumerate() {
            layers[l as usize].push(TaskId::from_usize(i));
        }
        layers
    }
}

/// Shuffles machine-independent tie-breaking data; convenience used by
/// generators and initializers that need a random permutation of tasks.
pub fn random_task_permutation<R: Rng + ?Sized>(k: usize, rng: &mut R) -> Vec<TaskId> {
    let mut perm: Vec<TaskId> = (0..k as u32).map(TaskId::new).collect();
    perm.shuffle(rng);
    perm
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::TaskGraphBuilder;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn figure1() -> TaskGraph {
        let mut b = TaskGraphBuilder::new(7);
        for (s, d) in [(0, 2), (0, 3), (1, 4), (2, 5), (3, 5), (4, 6)] {
            b.add_edge(s, d).unwrap();
        }
        b.build().unwrap()
    }

    fn diamond() -> TaskGraph {
        let mut b = TaskGraphBuilder::new(4);
        for (s, d) in [(0, 1), (0, 2), (1, 3), (2, 3)] {
            b.add_edge(s, d).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn kahn_is_lexicographically_smallest() {
        let g = figure1();
        let o = TopoOrder::kahn(&g);
        let ids: Vec<u32> = o.as_slice().iter().map(|t| t.raw()).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4, 5, 6]);
        assert!(g.is_linear_extension(o.as_slice()));
    }

    #[test]
    fn kahn_on_diamond() {
        let g = diamond();
        let o = TopoOrder::kahn(&g);
        assert!(g.is_linear_extension(o.as_slice()));
        assert_eq!(o.as_slice()[0], TaskId::new(0));
        assert_eq!(o.as_slice()[3], TaskId::new(3));
    }

    #[test]
    fn random_orders_are_valid_and_vary() {
        let g = figure1();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut distinct = std::collections::HashSet::new();
        for _ in 0..50 {
            let o = TopoOrder::random(&g, &mut rng);
            assert!(g.is_linear_extension(o.as_slice()));
            distinct.insert(o.clone().into_vec());
        }
        assert!(distinct.len() > 5, "random sort should produce variety");
    }

    #[test]
    fn random_order_is_deterministic_under_seed() {
        let g = figure1();
        let a = TopoOrder::random(&g, &mut ChaCha8Rng::seed_from_u64(99));
        let b = TopoOrder::random(&g, &mut ChaCha8Rng::seed_from_u64(99));
        assert_eq!(a, b);
    }

    #[test]
    fn positions_invert_order() {
        let g = figure1();
        let o = TopoOrder::random(&g, &mut ChaCha8Rng::seed_from_u64(3));
        let pos = o.positions();
        for (i, &t) in o.as_slice().iter().enumerate() {
            assert_eq!(pos[t.index()] as usize, i);
        }
    }

    #[test]
    fn levels_figure1() {
        let g = figure1();
        let l = Levels::compute(&g);
        assert_eq!(l.level(TaskId::new(0)), 0);
        assert_eq!(l.level(TaskId::new(1)), 0);
        assert_eq!(l.level(TaskId::new(2)), 1);
        assert_eq!(l.level(TaskId::new(3)), 1);
        assert_eq!(l.level(TaskId::new(4)), 1);
        assert_eq!(l.level(TaskId::new(5)), 2);
        assert_eq!(l.level(TaskId::new(6)), 2);
        assert_eq!(l.max_level(), 2);
    }

    #[test]
    fn levels_respect_longest_path() {
        // 0 -> 1 -> 3, 0 -> 3: level(3) must be 2 (longest path), not 1.
        let mut b = TaskGraphBuilder::new(4);
        b.add_edge(0, 1).unwrap();
        b.add_edge(1, 3).unwrap();
        b.add_edge(0, 3).unwrap();
        b.add_edge(0, 2).unwrap();
        let g = b.build().unwrap();
        let l = Levels::compute(&g);
        assert_eq!(l.level(TaskId::new(3)), 2);
        assert_eq!(l.level(TaskId::new(2)), 1);
    }

    #[test]
    fn sort_by_level_orders_selection_set() {
        let g = figure1();
        let l = Levels::compute(&g);
        let mut sel = vec![TaskId::new(5), TaskId::new(0), TaskId::new(4), TaskId::new(1)];
        l.sort_by_level(&mut sel);
        let ids: Vec<u32> = sel.iter().map(|t| t.raw()).collect();
        assert_eq!(ids, vec![0, 1, 4, 5]);
    }

    #[test]
    fn layers_partition_tasks() {
        let g = figure1();
        let l = Levels::compute(&g);
        let layers = l.layers();
        assert_eq!(layers.len(), 3);
        let total: usize = layers.iter().map(Vec::len).sum();
        assert_eq!(total, g.task_count());
        assert_eq!(layers[0], vec![TaskId::new(0), TaskId::new(1)]);
    }

    #[test]
    fn permutation_covers_all_tasks() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let p = random_task_permutation(10, &mut rng);
        let mut ids: Vec<u32> = p.iter().map(|t| t.raw()).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..10).collect::<Vec<_>>());
    }
}
