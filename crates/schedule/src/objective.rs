//! Pluggable scoring objectives over an evaluated schedule.
//!
//! The paper minimizes the schedule length (makespan) only. Production
//! scheduling cares about more: mean job turnaround (flowtime), how
//! evenly the machine suite is loaded, and blends of all three. An
//! [`Objective`] maps the timing arrays a single evaluator pass produces
//! — per-task start/finish plus per-machine busy time — to one scalar
//! where **lower is always better**, so every search algorithm in the
//! suite (SE, GA, SA, tabu, random) optimizes any objective through the
//! same argmin machinery.
//!
//! [`ObjectiveKind`] is the plumbing-friendly, `Copy` enumeration of the
//! built-in objectives; it is what [`crate::RunBudget`] carries from the
//! CLI down into every scheduler. Custom objectives only need the trait.

use crate::eval::ScheduleReport;
use mshc_platform::MachineId;
use serde::{Deserialize, Serialize};

/// Borrowed view of one evaluated schedule: everything an objective may
/// score, produced by a single evaluator pass (or assembled from a
/// [`ScheduleReport`], e.g. the discrete-event replay oracle).
#[derive(Debug, Clone, Copy)]
pub struct EvalView<'a> {
    /// Start time per task, indexed by task.
    pub start: &'a [f64],
    /// Finish time per task, indexed by task.
    pub finish: &'a [f64],
    /// Total execution (busy) time per machine, indexed by machine.
    pub machine_busy: &'a [f64],
}

/// Running accumulator for incremental (suffix-replay) objective scoring.
///
/// One completed task is folded at a time, in **string order** — the
/// order the single left-to-right evaluator pass completes tasks in. The
/// state is everything the built-in objectives need: the running
/// finish-time maximum (makespan), the running finish-time sum
/// (flowtime), the folded task count, and the per-machine busy times
/// (load balance).
///
/// Both the scalar [`crate::Evaluator`]'s full pass and the
/// checkpoint-resumed suffix replay of [`crate::IncrementalEvaluator`]
/// fold tasks in the same order over the same values, so
/// [`Objective::finalize`] produces **bit-identical** scores on every
/// route (max is order-independent for non-negative times; the sums fold
/// identical values in identical order).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ObjectiveState {
    max_finish: f64,
    finish_sum: f64,
    tasks: usize,
    machine_busy: Vec<f64>,
    /// Running maximum over the busy-vector entries. Busy times only
    /// grow under [`fold`](Self::fold), so this is monotone — the
    /// load-balance lower bound rests on it.
    max_busy: f64,
    /// Running maximum of caller-supplied *pending-work* floors
    /// ([`note_pending`](Self::note_pending)): certified lower bounds on
    /// the final max finish time given what has been folded so far (e.g.
    /// a folded task's finish plus the remaining critical path below
    /// it). Only the incremental replay feeds this; it never affects
    /// scores, only how early the makespan lower bound can prune.
    pending_floor: f64,
}

impl ObjectiveState {
    /// An empty fold over `machines` machines.
    pub fn new(machines: usize) -> ObjectiveState {
        ObjectiveState {
            max_finish: 0.0,
            finish_sum: 0.0,
            tasks: 0,
            machine_busy: vec![0.0; machines],
            max_busy: 0.0,
            pending_floor: 0.0,
        }
    }

    /// Resets to the empty fold over `machines` machines, reusing the
    /// busy-vector allocation.
    pub fn reset(&mut self, machines: usize) {
        self.max_finish = 0.0;
        self.finish_sum = 0.0;
        self.tasks = 0;
        self.machine_busy.clear();
        self.machine_busy.resize(machines, 0.0);
        self.max_busy = 0.0;
        self.pending_floor = 0.0;
    }

    /// Folds one completed task: it finished at `finish` on `machine`,
    /// occupying it for `exec` time units.
    #[inline]
    pub fn fold(&mut self, machine: MachineId, finish: f64, exec: f64) {
        self.max_finish = self.max_finish.max(finish);
        self.finish_sum += finish;
        let busy = self.machine_busy[machine.index()] + exec;
        self.machine_busy[machine.index()] = busy;
        self.max_busy = self.max_busy.max(busy);
        self.tasks += 1;
    }

    /// Restores a checkpointed fold (the scalar part plus a copy of the
    /// busy vector) — how [`crate::IncrementalEvaluator`] resumes from
    /// the nearest checkpoint instead of refolding the whole prefix.
    pub fn load(&mut self, max_finish: f64, finish_sum: f64, tasks: usize, machine_busy: &[f64]) {
        self.max_finish = max_finish;
        self.finish_sum = finish_sum;
        self.tasks = tasks;
        self.machine_busy.clear();
        self.machine_busy.extend_from_slice(machine_busy);
        // Entries only grow, so the running max equals the max over the
        // restored entries.
        self.max_busy = machine_busy.iter().copied().fold(0.0, f64::max);
        self.pending_floor = 0.0;
    }

    /// Running maximum of folded finish times.
    #[inline]
    pub fn max_finish(&self) -> f64 {
        self.max_finish
    }

    /// Running sum of folded finish times (string order).
    #[inline]
    pub fn finish_sum(&self) -> f64 {
        self.finish_sum
    }

    /// Number of tasks folded so far.
    #[inline]
    pub fn tasks(&self) -> usize {
        self.tasks
    }

    /// Busy (execution) time per machine, indexed by machine.
    #[inline]
    pub fn machine_busy(&self) -> &[f64] {
        &self.machine_busy
    }

    /// Running maximum over the per-machine busy times (monotone under
    /// [`fold`](Self::fold)).
    #[inline]
    pub fn max_busy(&self) -> f64 {
        self.max_busy
    }

    /// Raises the pending-work floor: `floor` must be a certified lower
    /// bound on the *final computed* max finish time (rounding
    /// included), typically a folded task's finish plus a deflated
    /// remaining-critical-path bound. Monotone by construction.
    #[inline]
    pub fn note_pending(&mut self, floor: f64) {
        self.pending_floor = self.pending_floor.max(floor);
    }

    /// The current pending-work floor (0 when never noted).
    #[inline]
    pub fn pending_floor(&self) -> f64 {
        self.pending_floor
    }

    /// Whether this fold bitwise-equals a checkpoint of the same shape —
    /// the reconvergence test of the incremental evaluator's identity
    /// splice: when the whole resumable accumulator state matches the
    /// base walk's, the remaining fold is the base walk's remaining fold.
    #[inline]
    pub fn matches(
        &self,
        max_finish: f64,
        finish_sum: f64,
        tasks: usize,
        machine_busy: &[f64],
    ) -> bool {
        self.tasks == tasks
            && self.max_finish == max_finish
            && self.finish_sum == finish_sum
            && self.machine_busy == machine_busy
    }
}

/// Per-candidate context for [`Objective::lower_bound`]: facts about the
/// *finished* fold that are known before the replay completes.
#[derive(Debug, Clone, Copy)]
pub struct BoundHints {
    /// Number of tasks the finished fold will contain.
    pub total_tasks: usize,
    /// Certified upper bound on the finished fold's total machine-busy
    /// time **as `finalize` will compute it** (i.e. inflated past any
    /// float-rounding drift). Lower bounds may divide by the machine
    /// count through this; they must never assume it is tight.
    pub total_busy_upper: f64,
}

/// Precomputed aggregates of a base walk's suffix (all string positions
/// at or after one checkpoint boundary) — what
/// [`crate::IncrementalEvaluator`] offers [`Objective::splice`] when a
/// replay's frontier reconverges with the base walk.
#[derive(Debug, Clone, Copy)]
pub struct SuffixView<'a> {
    /// Maximum finish time over the suffix positions.
    pub max_finish: f64,
    /// Sum of finish times over the suffix positions (left-to-right).
    pub finish_sum: f64,
    /// Per-machine busy time accumulated over the suffix positions.
    pub machine_busy: &'a [f64],
    /// Number of suffix positions.
    pub tasks: usize,
}

/// A scalar schedule-quality measure; **lower is better**.
///
/// Implementations must be pure functions of the view — they are invoked
/// concurrently from [`crate::BatchEvaluator`] worker threads (hence the
/// `Sync` supertrait).
///
/// Objectives that can be computed from the [`ObjectiveState`]
/// accumulators alone (all five built-in kinds) additionally implement
/// [`supports_incremental`](Objective::supports_incremental) /
/// [`finalize`](Objective::finalize), which is what lets
/// [`crate::IncrementalEvaluator`] score a single-task move by replaying
/// only the suffix of the string the move disturbs.
pub trait Objective: Sync {
    /// Short stable identifier (CSV columns, CLI, reports).
    fn name(&self) -> &str;

    /// Scores one evaluated schedule.
    fn value(&self, view: &EvalView<'_>) -> f64;

    /// Whether [`finalize`](Objective::finalize) is implemented — i.e.
    /// whether this objective is a pure function of the
    /// [`ObjectiveState`] accumulators and therefore eligible for
    /// incremental suffix-replay scoring. Defaults to `false`; custom
    /// objectives that need the full timing arrays simply keep the
    /// default and every evaluator falls back to full passes.
    fn supports_incremental(&self) -> bool {
        false
    }

    /// Scores a completed accumulator fold. Only called when
    /// [`supports_incremental`](Objective::supports_incremental) is
    /// true; the default panics.
    fn finalize(&self, state: &ObjectiveState) -> f64 {
        let _ = state;
        panic!("objective {:?} does not support incremental scoring", self.name())
    }

    /// A monotone lower bound on what [`finalize`](Objective::finalize)
    /// will return once the fold completes, given a partial fold and the
    /// [`BoundHints`] context.
    ///
    /// **Contract:** for every partial state reachable during a fold and
    /// every way the fold can complete, `lower_bound(partial, hints) <=
    /// finalize(final)` — including float rounding, not just real
    /// arithmetic. The incremental evaluator abandons a candidate the
    /// moment this bound *reaches* the caller's best-so-far score
    /// (candidates that cannot strictly beat the incumbent lose its
    /// earliest-index tie-break anyway), so an over-tight bound would
    /// change search selections; a loose bound only costs missed
    /// pruning. The default, `f64::NEG_INFINITY`, never prunes and is
    /// always safe.
    #[inline]
    fn lower_bound(&self, state: &ObjectiveState, hints: &BoundHints) -> f64 {
        let _ = (state, hints);
        f64::NEG_INFINITY
    }

    /// Merges a partially replayed fold with precomputed base-suffix
    /// aggregates, **bit-exactly**, or `None` when that is impossible.
    ///
    /// Called by the incremental evaluator when a replay's frontier has
    /// reconverged with the base walk at a checkpoint boundary (the
    /// remaining positions would fold exactly the base walk's values, in
    /// the base walk's order). Only objectives whose finalize folds the
    /// remaining values through *exact, associative* operations may
    /// merge: `Makespan` does (`max` is exact), the sum-based objectives
    /// must decline — `(prefix + a) + b` and `prefix + (a + b)` round
    /// differently, and bit-identity with the full pass is part of the
    /// evaluation-stack contract. Declining only costs speed: the replay
    /// simply continues (or takes the identity splice when the whole
    /// accumulator state matches the base checkpoint).
    #[inline]
    fn splice(&self, state: &ObjectiveState, suffix: &SuffixView<'_>) -> Option<f64> {
        let _ = (state, suffix);
        None
    }
}

/// The schedule length the paper minimizes: the latest finish time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Makespan;

impl Objective for Makespan {
    fn name(&self) -> &str {
        "makespan"
    }

    #[inline]
    fn value(&self, view: &EvalView<'_>) -> f64 {
        view.finish.iter().copied().fold(0.0, f64::max)
    }

    fn supports_incremental(&self) -> bool {
        true
    }

    #[inline]
    fn finalize(&self, state: &ObjectiveState) -> f64 {
        state.max_finish()
    }

    /// The running max never decreases, every folded finish time enters
    /// the final max unchanged, and the pending-work floor is certified
    /// by its feeder — whichever is larger prunes earlier.
    #[inline]
    fn lower_bound(&self, state: &ObjectiveState, _hints: &BoundHints) -> f64 {
        state.max_finish().max(state.pending_floor())
    }

    /// `max` is exact and associative, so folding the suffix finishes
    /// one by one and taking their precomputed max give the same bits.
    #[inline]
    fn splice(&self, state: &ObjectiveState, suffix: &SuffixView<'_>) -> Option<f64> {
        Some(state.max_finish().max(suffix.max_finish))
    }
}

/// Sum of all task finish times (total flowtime / total completion time).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TotalFlowtime;

impl Objective for TotalFlowtime {
    fn name(&self) -> &str {
        "total-flowtime"
    }

    #[inline]
    fn value(&self, view: &EvalView<'_>) -> f64 {
        view.finish.iter().sum()
    }

    fn supports_incremental(&self) -> bool {
        true
    }

    #[inline]
    fn finalize(&self, state: &ObjectiveState) -> f64 {
        state.finish_sum()
    }

    /// The partial sum is a literal prefix of the final left-to-right
    /// fold, and IEEE addition of non-negative terms never decreases a
    /// running sum, so it lower-bounds the final rounded sum too.
    #[inline]
    fn lower_bound(&self, state: &ObjectiveState, _hints: &BoundHints) -> f64 {
        state.finish_sum()
    }
}

/// Mean task finish time — total flowtime normalized by task count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MeanFlowtime;

impl Objective for MeanFlowtime {
    fn name(&self) -> &str {
        "mean-flowtime"
    }

    #[inline]
    fn value(&self, view: &EvalView<'_>) -> f64 {
        if view.finish.is_empty() {
            0.0
        } else {
            view.finish.iter().sum::<f64>() / view.finish.len() as f64
        }
    }

    fn supports_incremental(&self) -> bool {
        true
    }

    #[inline]
    fn finalize(&self, state: &ObjectiveState) -> f64 {
        if state.tasks() == 0 {
            0.0
        } else {
            state.finish_sum() / state.tasks() as f64
        }
    }

    /// The partial sum lower-bounds the final sum (see
    /// [`TotalFlowtime`]) and dividing both by the same positive task
    /// count preserves the order under IEEE rounding.
    #[inline]
    fn lower_bound(&self, state: &ObjectiveState, hints: &BoundHints) -> f64 {
        if hints.total_tasks == 0 {
            0.0
        } else {
            state.finish_sum() / hints.total_tasks as f64
        }
    }
}

/// Machine load imbalance: the busiest machine's excess over the mean
/// busy time. Zero means perfectly balanced load.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LoadBalance;

impl Objective for LoadBalance {
    fn name(&self) -> &str {
        "load-balance"
    }

    #[inline]
    fn value(&self, view: &EvalView<'_>) -> f64 {
        if view.machine_busy.is_empty() {
            return 0.0;
        }
        let max = view.machine_busy.iter().copied().fold(0.0, f64::max);
        let mean = view.machine_busy.iter().sum::<f64>() / view.machine_busy.len() as f64;
        max - mean
    }

    fn supports_incremental(&self) -> bool {
        true
    }

    #[inline]
    fn finalize(&self, state: &ObjectiveState) -> f64 {
        // Same fold as `value`, over the accumulated busy vector — the
        // two routes are bit-identical by construction.
        if state.machine_busy().is_empty() {
            return 0.0;
        }
        let max = state.machine_busy().iter().copied().fold(0.0, f64::max);
        let mean = state.machine_busy().iter().sum::<f64>() / state.machine_busy().len() as f64;
        max - mean
    }

    /// The busiest machine only gets busier, while the final mean busy
    /// time is capped by `hints.total_busy_upper / machines` — the hint
    /// is certified to sit at or above the mean `finalize` will compute,
    /// rounding included, so the difference can only grow.
    #[inline]
    fn lower_bound(&self, state: &ObjectiveState, hints: &BoundHints) -> f64 {
        let machines = state.machine_busy().len();
        if machines == 0 {
            return 0.0;
        }
        state.max_busy() - hints.total_busy_upper / machines as f64
    }
}

/// Weighted blend `w_mk·makespan + w_ft·mean_flowtime + w_lb·imbalance`.
///
/// Mean flowtime (not total) keeps the three components on comparable
/// scales, so unit weights are a sensible starting point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Weighted {
    /// Weight on the makespan component.
    pub makespan: f64,
    /// Weight on the mean-flowtime component.
    pub flowtime: f64,
    /// Weight on the load-imbalance component.
    pub balance: f64,
}

impl Objective for Weighted {
    fn name(&self) -> &str {
        "weighted"
    }

    #[inline]
    fn value(&self, view: &EvalView<'_>) -> f64 {
        self.makespan * Makespan.value(view)
            + self.flowtime * MeanFlowtime.value(view)
            + self.balance * LoadBalance.value(view)
    }

    fn supports_incremental(&self) -> bool {
        true
    }

    #[inline]
    fn finalize(&self, state: &ObjectiveState) -> f64 {
        self.makespan * Makespan.finalize(state)
            + self.flowtime * MeanFlowtime.finalize(state)
            + self.balance * LoadBalance.finalize(state)
    }

    /// Mirrors the `finalize` expression term for term: weights are
    /// validated non-negative, and IEEE multiplication/addition are
    /// monotone, so a per-component lower bound composes into a blend
    /// lower bound with the same rounding behavior.
    #[inline]
    fn lower_bound(&self, state: &ObjectiveState, hints: &BoundHints) -> f64 {
        self.makespan * Makespan.lower_bound(state, hints)
            + self.flowtime * MeanFlowtime.lower_bound(state, hints)
            + self.balance * LoadBalance.lower_bound(state, hints)
    }
}

/// The built-in objectives as plumbable configuration.
///
/// `Copy + PartialEq` so [`crate::RunBudget`] stays a plain value type;
/// dispatches to the unit objectives above through its own [`Objective`]
/// impl. (Not serde-derived: the run budget is never persisted; the CLI
/// round-trips through [`parse`](ObjectiveKind::parse)/
/// [`label`](ObjectiveKind::label) instead.)
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub enum ObjectiveKind {
    /// Minimize the schedule length (the paper's objective; the default).
    #[default]
    Makespan,
    /// Minimize the sum of task finish times.
    TotalFlowtime,
    /// Minimize the mean task finish time.
    MeanFlowtime,
    /// Minimize the machine load imbalance.
    LoadBalance,
    /// Minimize a weighted blend of the three components.
    Weighted {
        /// Weight on the makespan component.
        makespan: f64,
        /// Weight on the mean-flowtime component.
        flowtime: f64,
        /// Weight on the load-imbalance component.
        balance: f64,
    },
}

impl ObjectiveKind {
    /// Every non-parameterized kind, for sweeps and tests.
    pub const BASIC: [ObjectiveKind; 4] = [
        ObjectiveKind::Makespan,
        ObjectiveKind::TotalFlowtime,
        ObjectiveKind::MeanFlowtime,
        ObjectiveKind::LoadBalance,
    ];

    /// Parses a CLI spelling: `makespan`, `total-flowtime`,
    /// `mean-flowtime`, `load-balance`, or `weighted:MK,FT,LB` (three
    /// comma-separated weights). Returns `None` on any malformed input;
    /// the [`FromStr`](std::str::FromStr) impl reports *why* instead.
    pub fn parse(s: &str) -> Option<ObjectiveKind> {
        s.parse().ok()
    }

    /// Parses the weight list of a `weighted:MK,FT,LB` spelling with
    /// descriptive errors for each way the input can be malformed.
    fn parse_weights(weights: &str) -> Result<ObjectiveKind, String> {
        const COMPONENTS: [&str; 3] = ["makespan (MK)", "flowtime (FT)", "balance (LB)"];
        let parts: Vec<&str> = weights.split(',').collect();
        if parts.len() != 3 {
            return Err(format!(
                "weighted objective needs exactly 3 comma-separated weights (MK,FT,LB), got {} \
                 in {weights:?}",
                parts.len()
            ));
        }
        let mut w = [0.0f64; 3];
        for (i, part) in parts.iter().enumerate() {
            let trimmed = part.trim();
            if trimmed.is_empty() {
                return Err(format!("weighted objective: missing {} weight", COMPONENTS[i]));
            }
            let v: f64 = trimmed.parse().map_err(|_| {
                format!("weighted objective: {} weight {trimmed:?} is not a number", COMPONENTS[i])
            })?;
            if !v.is_finite() {
                return Err(format!(
                    "weighted objective: {} weight {trimmed:?} must be finite",
                    COMPONENTS[i]
                ));
            }
            if v < 0.0 {
                return Err(format!(
                    "weighted objective: {} weight {v} must be >= 0 (objectives are minimized; \
                     negative weights would reward worse schedules)",
                    COMPONENTS[i]
                ));
            }
            w[i] = v;
        }
        Ok(ObjectiveKind::Weighted { makespan: w[0], flowtime: w[1], balance: w[2] })
    }

    /// The CLI spelling; `parse(kind.label())` round-trips.
    pub fn label(&self) -> String {
        match *self {
            ObjectiveKind::Makespan => "makespan".to_string(),
            ObjectiveKind::TotalFlowtime => "total-flowtime".to_string(),
            ObjectiveKind::MeanFlowtime => "mean-flowtime".to_string(),
            ObjectiveKind::LoadBalance => "load-balance".to_string(),
            ObjectiveKind::Weighted { makespan, flowtime, balance } => {
                format!("weighted:{makespan},{flowtime},{balance}")
            }
        }
    }

    /// Whether this is the plain makespan objective (lets reporting
    /// paths reuse an already-known makespan instead of re-evaluating).
    #[inline]
    pub fn is_makespan(&self) -> bool {
        matches!(self, ObjectiveKind::Makespan)
    }
}

impl std::str::FromStr for ObjectiveKind {
    type Err = String;

    /// Like [`ObjectiveKind::parse`], but malformed input yields a
    /// descriptive error: unknown names list the valid spellings, and
    /// `weighted:` inputs report exactly which component is missing,
    /// non-numeric, non-finite or negative.
    fn from_str(s: &str) -> Result<ObjectiveKind, String> {
        match s {
            "makespan" => Ok(ObjectiveKind::Makespan),
            "total-flowtime" => Ok(ObjectiveKind::TotalFlowtime),
            "mean-flowtime" => Ok(ObjectiveKind::MeanFlowtime),
            "load-balance" => Ok(ObjectiveKind::LoadBalance),
            other => match other.strip_prefix("weighted:") {
                Some(weights) => ObjectiveKind::parse_weights(weights),
                None => Err(format!(
                    "unknown objective {other:?} (expected makespan, total-flowtime, \
                     mean-flowtime, load-balance or weighted:MK,FT,LB)"
                )),
            },
        }
    }
}

impl Objective for ObjectiveKind {
    fn name(&self) -> &str {
        match self {
            ObjectiveKind::Makespan => "makespan",
            ObjectiveKind::TotalFlowtime => "total-flowtime",
            ObjectiveKind::MeanFlowtime => "mean-flowtime",
            ObjectiveKind::LoadBalance => "load-balance",
            ObjectiveKind::Weighted { .. } => "weighted",
        }
    }

    #[inline]
    fn value(&self, view: &EvalView<'_>) -> f64 {
        match *self {
            ObjectiveKind::Makespan => Makespan.value(view),
            ObjectiveKind::TotalFlowtime => TotalFlowtime.value(view),
            ObjectiveKind::MeanFlowtime => MeanFlowtime.value(view),
            ObjectiveKind::LoadBalance => LoadBalance.value(view),
            ObjectiveKind::Weighted { makespan, flowtime, balance } => {
                Weighted { makespan, flowtime, balance }.value(view)
            }
        }
    }

    fn supports_incremental(&self) -> bool {
        true
    }

    #[inline]
    fn finalize(&self, state: &ObjectiveState) -> f64 {
        match *self {
            ObjectiveKind::Makespan => Makespan.finalize(state),
            ObjectiveKind::TotalFlowtime => TotalFlowtime.finalize(state),
            ObjectiveKind::MeanFlowtime => MeanFlowtime.finalize(state),
            ObjectiveKind::LoadBalance => LoadBalance.finalize(state),
            ObjectiveKind::Weighted { makespan, flowtime, balance } => {
                Weighted { makespan, flowtime, balance }.finalize(state)
            }
        }
    }

    #[inline]
    fn lower_bound(&self, state: &ObjectiveState, hints: &BoundHints) -> f64 {
        match *self {
            ObjectiveKind::Makespan => Makespan.lower_bound(state, hints),
            ObjectiveKind::TotalFlowtime => TotalFlowtime.lower_bound(state, hints),
            ObjectiveKind::MeanFlowtime => MeanFlowtime.lower_bound(state, hints),
            ObjectiveKind::LoadBalance => LoadBalance.lower_bound(state, hints),
            ObjectiveKind::Weighted { makespan, flowtime, balance } => {
                Weighted { makespan, flowtime, balance }.lower_bound(state, hints)
            }
        }
    }

    #[inline]
    fn splice(&self, state: &ObjectiveState, suffix: &SuffixView<'_>) -> Option<f64> {
        match *self {
            ObjectiveKind::Makespan => Makespan.splice(state, suffix),
            // The sum-based kinds cannot merge bit-exactly; they rely on
            // the identity splice (full accumulator match) instead.
            _ => None,
        }
    }
}

/// The per-objective summary attached to a [`ScheduleReport`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ObjectiveValues {
    /// Latest finish time.
    pub makespan: f64,
    /// Sum of finish times.
    pub total_flowtime: f64,
    /// Mean finish time.
    pub mean_flowtime: f64,
    /// Busiest machine's excess over mean busy time.
    pub load_imbalance: f64,
}

impl ObjectiveValues {
    /// Computes all built-in objective values from one view.
    pub fn from_view(view: &EvalView<'_>) -> ObjectiveValues {
        ObjectiveValues {
            makespan: Makespan.value(view),
            total_flowtime: TotalFlowtime.value(view),
            mean_flowtime: MeanFlowtime.value(view),
            load_imbalance: LoadBalance.value(view),
        }
    }
}

/// Scores a finished [`ScheduleReport`] under `obj` — the bridge that
/// lets the discrete-event replay (`sim.rs`) act as an oracle for every
/// objective, not just makespan.
pub fn objective_from_report(obj: &dyn Objective, report: &ScheduleReport) -> f64 {
    obj.value(&report.view())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view<'a>(start: &'a [f64], finish: &'a [f64], busy: &'a [f64]) -> EvalView<'a> {
        EvalView { start, finish, machine_busy: busy }
    }

    #[test]
    fn makespan_is_max_finish() {
        let v = view(&[0.0, 1.0], &[4.0, 9.0], &[4.0, 8.0]);
        assert_eq!(Makespan.value(&v), 9.0);
        assert_eq!(Makespan.name(), "makespan");
    }

    #[test]
    fn flowtimes() {
        let v = view(&[0.0, 0.0, 0.0], &[2.0, 4.0, 6.0], &[12.0]);
        assert_eq!(TotalFlowtime.value(&v), 12.0);
        assert_eq!(MeanFlowtime.value(&v), 4.0);
    }

    #[test]
    fn load_balance_zero_when_even() {
        let v = view(&[], &[], &[5.0, 5.0, 5.0]);
        assert_eq!(LoadBalance.value(&v), 0.0);
        let v = view(&[], &[], &[9.0, 3.0]);
        assert_eq!(LoadBalance.value(&v), 3.0);
    }

    #[test]
    fn weighted_blends_components() {
        let v = view(&[0.0, 0.0], &[2.0, 6.0], &[8.0, 0.0]);
        // makespan 6, mean flowtime 4, imbalance 4.
        let w = Weighted { makespan: 1.0, flowtime: 0.5, balance: 0.25 };
        assert_eq!(w.value(&v), 6.0 + 2.0 + 1.0);
    }

    #[test]
    fn kind_dispatch_matches_units() {
        let v = view(&[0.0, 0.0], &[3.0, 5.0], &[3.0, 5.0]);
        assert_eq!(ObjectiveKind::Makespan.value(&v), Makespan.value(&v));
        assert_eq!(ObjectiveKind::TotalFlowtime.value(&v), TotalFlowtime.value(&v));
        assert_eq!(ObjectiveKind::MeanFlowtime.value(&v), MeanFlowtime.value(&v));
        assert_eq!(ObjectiveKind::LoadBalance.value(&v), LoadBalance.value(&v));
        let k = ObjectiveKind::Weighted { makespan: 2.0, flowtime: 1.0, balance: 0.0 };
        let u = Weighted { makespan: 2.0, flowtime: 1.0, balance: 0.0 };
        assert_eq!(k.value(&v), u.value(&v));
    }

    #[test]
    fn finalize_matches_value_on_a_hand_fold() {
        // Fold three tasks on two machines and check every built-in
        // objective finalizes to the same number `value` computes from
        // the equivalent arrays.
        let mut state = ObjectiveState::new(2);
        for (m, finish, exec) in [(0u32, 4.0, 4.0), (1, 7.0, 7.0), (0, 9.0, 5.0)] {
            state.fold(MachineId::new(m), finish, exec);
        }
        assert_eq!(state.tasks(), 3);
        assert_eq!(state.max_finish(), 9.0);
        assert_eq!(state.finish_sum(), 20.0);
        assert_eq!(state.machine_busy(), &[9.0, 7.0]);
        let start = [0.0, 0.0, 4.0];
        let finish = [4.0, 7.0, 9.0];
        let busy = [9.0, 7.0];
        let v = view(&start, &finish, &busy);
        let weighted = Weighted { makespan: 1.0, flowtime: 0.5, balance: 0.25 };
        assert_eq!(Makespan.finalize(&state), Makespan.value(&v));
        assert_eq!(TotalFlowtime.finalize(&state), TotalFlowtime.value(&v));
        assert_eq!(MeanFlowtime.finalize(&state), MeanFlowtime.value(&v));
        assert_eq!(LoadBalance.finalize(&state), LoadBalance.value(&v));
        assert_eq!(weighted.finalize(&state), weighted.value(&v));
        for kind in ObjectiveKind::BASIC {
            assert!(kind.supports_incremental());
            assert_eq!(kind.finalize(&state), kind.value(&v), "{}", kind.label());
        }
    }

    #[test]
    fn state_load_restores_a_checkpoint() {
        let mut state = ObjectiveState::new(2);
        state.fold(MachineId::new(0), 3.0, 3.0);
        let (max, sum, tasks) = (state.max_finish(), state.finish_sum(), state.tasks());
        let busy = state.machine_busy().to_vec();
        state.fold(MachineId::new(1), 8.0, 5.0);
        let mut restored = ObjectiveState::default();
        restored.load(max, sum, tasks, &busy);
        state.reset(2);
        state.fold(MachineId::new(0), 3.0, 3.0);
        assert_eq!(restored, state);
        assert_eq!(MeanFlowtime.finalize(&ObjectiveState::new(3)), 0.0, "empty fold");
    }

    #[test]
    fn lower_bounds_never_exceed_finalize() {
        // Fold a partial prefix, finish the fold, and check every
        // built-in objective's lower bound at the partial point sits at
        // or below its finalized value — with hints describing the
        // finished fold.
        let folds = [(0u32, 4.0, 4.0), (1, 7.0, 7.0), (0, 9.0, 5.0), (1, 16.0, 9.0)];
        let total_busy: f64 = folds.iter().map(|f| f.2).sum();
        let hints = BoundHints { total_tasks: folds.len(), total_busy_upper: total_busy * 1.001 };
        let weighted = Weighted { makespan: 1.0, flowtime: 0.5, balance: 0.25 };
        let mut full = ObjectiveState::new(2);
        for (m, fin, exec) in folds {
            full.fold(MachineId::new(m), fin, exec);
        }
        for cut in 0..folds.len() {
            let mut partial = ObjectiveState::new(2);
            for &(m, fin, exec) in &folds[..cut] {
                partial.fold(MachineId::new(m), fin, exec);
            }
            for kind in ObjectiveKind::BASIC {
                assert!(
                    kind.lower_bound(&partial, &hints) <= kind.finalize(&full),
                    "{} at cut {cut}",
                    kind.label()
                );
            }
            assert!(weighted.lower_bound(&partial, &hints) <= weighted.finalize(&full));
        }
        // The pending-work floor strengthens the makespan bound only.
        let mut partial = ObjectiveState::new(2);
        partial.fold(MachineId::new(0), 4.0, 4.0);
        partial.note_pending(15.5);
        assert_eq!(partial.pending_floor(), 15.5);
        assert_eq!(Makespan.lower_bound(&partial, &hints), 15.5);
        assert!(Makespan.lower_bound(&partial, &hints) <= Makespan.finalize(&full));
        assert_eq!(TotalFlowtime.lower_bound(&partial, &hints), 4.0);
        // max_busy tracks the busiest machine monotonically; load
        // balance uses it against the certified mean cap.
        assert_eq!(full.max_busy(), 16.0);
        let lb = LoadBalance.lower_bound(&full, &hints);
        assert!(lb <= LoadBalance.finalize(&full));
        // Custom objectives never prune by default.
        assert_eq!(
            ObjectiveKind::Makespan.lower_bound(&ObjectiveState::new(2), &hints),
            0.0f64.max(0.0)
        );
    }

    #[test]
    fn splice_is_exact_for_makespan_and_declined_for_sums() {
        let mut state = ObjectiveState::new(2);
        state.fold(MachineId::new(0), 6.0, 6.0);
        let busy = [3.0, 8.0];
        let suffix =
            SuffixView { max_finish: 11.0, finish_sum: 19.0, machine_busy: &busy, tasks: 2 };
        assert_eq!(Makespan.splice(&state, &suffix), Some(11.0));
        assert_eq!(ObjectiveKind::Makespan.splice(&state, &suffix), Some(11.0));
        // Sum-based finalizes cannot merge bit-exactly — they decline.
        assert_eq!(TotalFlowtime.splice(&state, &suffix), None);
        assert_eq!(ObjectiveKind::TotalFlowtime.splice(&state, &suffix), None);
        assert_eq!(ObjectiveKind::MeanFlowtime.splice(&state, &suffix), None);
        assert_eq!(ObjectiveKind::LoadBalance.splice(&state, &suffix), None);
        let w = ObjectiveKind::Weighted { makespan: 1.0, flowtime: 0.5, balance: 0.5 };
        assert_eq!(w.splice(&state, &suffix), None);
        // A prefix already past the suffix max dominates the merge.
        state.fold(MachineId::new(1), 14.0, 8.0);
        assert_eq!(Makespan.splice(&state, &suffix), Some(14.0));
    }

    #[test]
    fn state_matches_detects_exact_checkpoint_equality() {
        let mut state = ObjectiveState::new(2);
        state.fold(MachineId::new(0), 3.0, 3.0);
        state.fold(MachineId::new(1), 5.0, 5.0);
        assert!(state.matches(5.0, 8.0, 2, &[3.0, 5.0]));
        assert!(!state.matches(5.0, 8.0, 3, &[3.0, 5.0]), "task count differs");
        assert!(!state.matches(5.0, 8.0 + 1e-12, 2, &[3.0, 5.0]), "sum differs");
        assert!(!state.matches(5.0, 8.0, 2, &[3.0, 5.5]), "busy differs");
    }

    #[test]
    #[should_panic(expected = "does not support incremental")]
    fn finalize_default_panics() {
        struct StartSum;
        impl Objective for StartSum {
            fn name(&self) -> &str {
                "start-sum"
            }
            fn value(&self, view: &EvalView<'_>) -> f64 {
                view.start.iter().sum()
            }
        }
        assert!(!StartSum.supports_incremental());
        let _ = StartSum.finalize(&ObjectiveState::new(1));
    }

    #[test]
    fn parse_and_label_roundtrip() {
        for kind in ObjectiveKind::BASIC {
            assert_eq!(ObjectiveKind::parse(&kind.label()), Some(kind));
        }
        let w = ObjectiveKind::Weighted { makespan: 1.0, flowtime: 0.5, balance: 2.0 };
        assert_eq!(ObjectiveKind::parse(&w.label()), Some(w));
        assert_eq!(ObjectiveKind::parse("weighted:1,0.5,2"), Some(w));
        assert!(ObjectiveKind::parse("bogus").is_none());
        assert!(ObjectiveKind::parse("weighted:1,2").is_none());
        assert!(ObjectiveKind::parse("weighted:1,2,x").is_none());
        assert!(ObjectiveKind::default().is_makespan());
        assert!(!ObjectiveKind::LoadBalance.is_makespan());
    }

    #[test]
    fn from_str_errors_are_descriptive() {
        let err = |s: &str| s.parse::<ObjectiveKind>().unwrap_err();
        assert!(err("bogus").contains("unknown objective"));
        assert!(err("bogus").contains("weighted:MK,FT,LB"), "error lists valid spellings");
        // Wrong arity.
        assert!(err("weighted:1,2").contains("exactly 3"));
        assert!(err("weighted:1,2,3,4").contains("exactly 3"));
        // Missing component.
        assert!(err("weighted:1,,3").contains("missing flowtime"));
        assert!(err("weighted:").contains("exactly 3"), "empty weight list has arity 1");
        // Non-numeric component names the component and the input.
        let e = err("weighted:1,2,x");
        assert!(e.contains("balance") && e.contains("\"x\"") && e.contains("not a number"));
        // Non-finite and negative components are rejected loudly instead
        // of silently steering the search the wrong way.
        assert!(err("weighted:nan,1,1").contains("finite"));
        assert!(err("weighted:inf,1,1").contains("finite"));
        assert!(err("weighted:1,-0.5,1").contains(">= 0"));
        // Happy paths still parse, with whitespace tolerated.
        assert_eq!(
            "weighted: 1 ,0.5, 2".parse::<ObjectiveKind>(),
            Ok(ObjectiveKind::Weighted { makespan: 1.0, flowtime: 0.5, balance: 2.0 })
        );
        assert_eq!("load-balance".parse::<ObjectiveKind>(), Ok(ObjectiveKind::LoadBalance));
        // parse() is exactly from_str().ok().
        assert_eq!(ObjectiveKind::parse("weighted:1,-1,1"), None);
    }
}
