//! Substrate microbenchmark: schedule-evaluation throughput.
//!
//! Every figure's cost is dominated by schedule evaluations (the SE
//! allocation step performs |positions| × Y of them per selected task),
//! so this bench tracks the O(k + p) evaluator across instance sizes,
//! the cost of the DES replay cross-check, and — the headline for the
//! parallel refactor — batch candidate evaluation throughput: scalar
//! loop vs [`BatchEvaluator`] at 1 thread and at full parallelism.
//! `BENCH_eval.json` (the `bench_eval` binary) archives the same
//! comparison per commit.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mshc_schedule::{
    auto_stride, random_solution, replay, BatchEvaluator, EvalSnapshot, Evaluator,
    IncrementalEvaluator, ObjectiveKind,
};
use mshc_workloads::WorkloadSpec;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

fn bench_evaluator(c: &mut Criterion) {
    let mut group = c.benchmark_group("evaluator");
    for &tasks in &[25usize, 100, 400] {
        let spec = WorkloadSpec { tasks, ..WorkloadSpec::large(11) };
        let inst = spec.generate();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let sol = random_solution(&inst, &mut rng);
        let mut eval = Evaluator::new(&inst);
        group.bench_with_input(BenchmarkId::new("analytic", tasks), &tasks, |b, _| {
            b.iter(|| black_box(eval.makespan(black_box(&sol))))
        });
        group.bench_with_input(BenchmarkId::new("des_replay", tasks), &tasks, |b, _| {
            b.iter(|| black_box(replay(&inst, black_box(&sol)).unwrap().makespan))
        });
    }
    group.finish();
}

/// Batch candidate evaluation, SE allocation-scan shape: the widest
/// single-task "base with task t moved" fan-out (several hundred
/// candidates) on the 100-task / 20-machine comparison scale. The
/// acceptance bar for the parallel refactor: `batch/threads-N`
/// (N ≥ 4 cores) ≥ 2x `scalar`.
fn bench_batch_candidates(c: &mut Criterion) {
    let spec = WorkloadSpec { tasks: 100, machines: 20, ..WorkloadSpec::large(2001) };
    let inst = spec.generate();
    let g = inst.graph();
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let base = random_solution(&inst, &mut rng);
    // Same grid as the `bench_eval` binary, so criterion numbers and the
    // CI-archived BENCH_eval.json stay comparable.
    let (t, moves) = mshc_bench::probes::widest_move_grid(&inst, &base);
    let obj = ObjectiveKind::Makespan;
    let snapshot = EvalSnapshot::new(&inst);

    let mut group = c.benchmark_group("batch_candidates");
    group.bench_function(BenchmarkId::new("scalar", moves.len()), |b| {
        let mut eval = Evaluator::with_snapshot(&snapshot);
        let mut scratch = base.clone();
        b.iter(|| {
            let mut acc = 0.0f64;
            for &(pos, m) in &moves {
                scratch.move_task(g, t, pos, m).expect("in-range");
                acc += eval.objective_value(black_box(&scratch), &obj);
            }
            black_box(acc)
        })
    });
    for threads in [1usize, 2, 4, 8] {
        let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().expect("pool");
        let mut batch = BatchEvaluator::new(&snapshot);
        group.bench_function(BenchmarkId::new(format!("threads-{threads}"), moves.len()), |b| {
            pool.install(|| b.iter(|| black_box(batch.score_moves(g, &base, t, &moves, &obj))))
        });
    }
    group.finish();
}

/// Full-vs-incremental move scan, single thread, same candidate grid as
/// `batch_candidates` and `bench_eval` (the `BENCH_eval.json` series):
/// the `full` baseline pays move + O(k + p) pass per candidate, the
/// `stride-*` entries pay one prime plus a checkpoint-resumed suffix
/// replay per candidate. Acceptance bar: incremental ≥ 2x `full` on the
/// 100-task preset at any stride.
fn bench_incremental_moves(c: &mut Criterion) {
    let spec = WorkloadSpec { tasks: 100, machines: 20, ..WorkloadSpec::large(2001) };
    let inst = spec.generate();
    let g = inst.graph();
    let k = inst.task_count();
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let base = random_solution(&inst, &mut rng);
    let (t, moves) = mshc_bench::probes::widest_move_grid(&inst, &base);
    let obj = ObjectiveKind::Makespan;
    let snapshot = EvalSnapshot::new(&inst);

    let mut group = c.benchmark_group("incremental_moves");
    group.bench_function(BenchmarkId::new("full", moves.len()), |b| {
        let mut eval = Evaluator::with_snapshot(&snapshot);
        let mut scratch = base.clone();
        b.iter(|| {
            let mut acc = 0.0f64;
            for &(pos, m) in &moves {
                scratch.move_task(g, t, pos, m).expect("in-range");
                acc += eval.objective_value(black_box(&scratch), &obj);
            }
            black_box(acc)
        })
    });
    for stride in [1usize, auto_stride(k), k] {
        let mut inc = IncrementalEvaluator::with_snapshot(&snapshot);
        inc.set_stride(Some(stride));
        // Fast path off: this group isolates pure checkpoint-resume
        // cost per stride; `bounded_moves` measures the cuts.
        inc.set_pruning(false);
        inc.set_splicing(false);
        inc.prime(&base);
        group.bench_function(BenchmarkId::new(format!("stride-{stride}"), moves.len()), |b| {
            b.iter(|| {
                let mut acc = 0.0f64;
                for &(pos, m) in &moves {
                    acc += inc.score_move(t, pos, m, &obj);
                }
                black_box(acc)
            })
        });
    }
    group.finish();
}

/// Bounded vs unbounded move scanning, single thread, same grid as
/// `incremental_moves`: the `unbounded` baseline replays every candidate
/// to completion; `bounded` threads the running argmin in as a pruning
/// bound (splicing off); `bounded_splice` adds reconvergence splicing —
/// the production configuration of the SE/tabu scans. All three commit
/// the identical argmin; only the work per candidate differs.
fn bench_bounded_moves(c: &mut Criterion) {
    let spec = WorkloadSpec { tasks: 100, machines: 20, ..WorkloadSpec::large(2001) };
    let inst = spec.generate();
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let base = random_solution(&inst, &mut rng);
    let (t, moves) = mshc_bench::probes::widest_move_grid(&inst, &base);
    let obj = ObjectiveKind::Makespan;
    let snapshot = EvalSnapshot::new(&inst);

    let mut group = c.benchmark_group("bounded_moves");
    let configs: [(&str, bool, bool); 3] =
        [("unbounded", false, false), ("bounded", true, false), ("bounded_splice", true, true)];
    for (name, prune, splice) in configs {
        let mut inc = IncrementalEvaluator::with_snapshot(&snapshot);
        inc.set_pruning(prune);
        inc.set_splicing(splice);
        inc.prime(&base);
        group.bench_function(BenchmarkId::new(name, moves.len()), |b| {
            b.iter(|| {
                let mut best = f64::INFINITY;
                for &(pos, m) in &moves {
                    if let Some(score) = inc.score_move_bounded(t, pos, m, best, &obj).exact() {
                        if score < best {
                            best = score;
                        }
                    }
                }
                black_box(best)
            })
        });
    }
    group.finish();
}

/// Short bounded scans — the post-pruning production shape where
/// executor overhead used to dominate: a 24-candidate grid driven
/// through `best_move` on the resident pool (`pool-N`) versus the
/// retired per-call `std::thread::scope` crew (`spawn-N`, preserved in
/// `probes::spawn_crew_chunks` with the old re-prime-per-chunk arena
/// checkout). Identical argmin out of both; the gap is pure submit
/// latency — the `pool_reuse_speedup` series in `BENCH_eval.json`
/// archives the same comparison per commit.
fn bench_short_scan(c: &mut Criterion) {
    let spec = WorkloadSpec { tasks: 100, machines: 20, ..WorkloadSpec::large(2001) };
    let inst = spec.generate();
    let g = inst.graph();
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let base = random_solution(&inst, &mut rng);
    let (t, moves) = mshc_bench::probes::short_move_grid(&inst, &base, 24);
    let obj = ObjectiveKind::Makespan;
    let snapshot = EvalSnapshot::new(&inst);

    let mut group = c.benchmark_group("short_scan");
    for threads in [1usize, 4] {
        let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().expect("pool");
        let mut batch = BatchEvaluator::new(&snapshot);
        group.bench_function(BenchmarkId::new(format!("pool-{threads}"), moves.len()), |b| {
            pool.install(|| b.iter(|| black_box(batch.best_move(g, &base, t, &moves, &obj))))
        });
    }
    for threads in [1usize, 4] {
        let arenas: std::sync::Mutex<Vec<IncrementalEvaluator>> = std::sync::Mutex::new(Vec::new());
        group.bench_function(BenchmarkId::new(format!("spawn-{threads}"), moves.len()), |b| {
            b.iter(|| {
                let chunk_best =
                    mshc_bench::probes::spawn_crew_chunks(threads, moves.len(), |range| {
                        let mut inc = arenas
                            .lock()
                            .expect("arenas")
                            .pop()
                            .unwrap_or_else(|| IncrementalEvaluator::with_snapshot(&snapshot));
                        inc.prime(&base);
                        let mut best = f64::INFINITY;
                        for i in range {
                            let (pos, m) = moves[i];
                            if let Some(s) = inc.score_move_bounded(t, pos, m, best, &obj).exact() {
                                if s < best {
                                    best = s;
                                }
                            }
                        }
                        arenas.lock().expect("arenas").push(inc);
                        best
                    });
                black_box(chunk_best.into_iter().fold(f64::INFINITY, f64::min))
            })
        });
    }
    group.finish();
}

fn bench_solution_moves(c: &mut Criterion) {
    let inst = WorkloadSpec::large(12).generate();
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let mut sol = random_solution(&inst, &mut rng);
    let g = inst.graph();
    c.bench_function("solution/move_task_roundtrip", |b| {
        let t = mshc_taskgraph::TaskId::new(50);
        b.iter(|| {
            let (lo, hi) = sol.valid_range(g, t);
            let m = sol.machine_of(t);
            sol.move_task(g, t, lo, m).unwrap();
            sol.move_task(g, t, hi, m).unwrap();
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_evaluator, bench_batch_candidates, bench_incremental_moves, bench_bounded_moves, bench_short_scan, bench_solution_moves
}
criterion_main!(benches);
