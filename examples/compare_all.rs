//! Paper-style head-to-head: every scheduler in the suite on the §5.3
//! comparison workload (100 tasks, 20 machines), at a reduced budget so
//! the example finishes in seconds. The full-scale version is the
//! `figures` binary (`cargo run --release -p mshc-bench --bin figures`).
//!
//! ```text
//! cargo run --release --example compare_all
//! ```

use mshc::prelude::*;
use std::time::Duration;

fn main() {
    let inst = FigureWorkload::Fig5.spec(2001).generate();
    let m = InstanceMetrics::compute(&inst);
    println!(
        "workload fig5: {} tasks, {} machines | connectivity {:.2}, heterogeneity {:.2}, CCR {:.2}\n",
        m.tasks, m.machines, m.connectivity, m.heterogeneity, m.ccr
    );

    let wall = RunBudget::wall(Duration::from_secs(2));
    let one_shot = RunBudget::default();
    let seed = 2001u64;

    let mut rows: Vec<(&str, RunResult)> = Vec::new();
    let mut se = SeScheduler::new(SeConfig {
        seed,
        selection_bias: SeConfig::recommended_bias(inst.task_count()),
        ..SeConfig::default()
    });
    rows.push(("se", se.run(&inst, &wall, None)));
    let mut ga = GaScheduler::new(GaConfig { seed, ..GaConfig::default() });
    rows.push(("ga", ga.run(&inst, &wall, None)));
    let mut sa = SimulatedAnnealing::new(SaConfig { seed, ..SaConfig::default() });
    rows.push(("sa", sa.run(&inst, &wall, None)));
    let mut tabu = TabuSearch::new(TabuConfig { seed, ..TabuConfig::default() });
    rows.push(("tabu", tabu.run(&inst, &wall, None)));
    let mut random = RandomSearch::new(seed);
    rows.push(("random", random.run(&inst, &wall, None)));
    rows.push(("heft", HeftScheduler::new().run(&inst, &one_shot, None)));
    rows.push(("cpop", CpopScheduler::new().run(&inst, &one_shot, None)));
    for policy in ListPolicy::ALL {
        rows.push((policy.name(), ListScheduler::new(policy).run(&inst, &one_shot, None)));
    }

    println!(
        "{:<10} {:>12} {:>12} {:>12} {:>9}",
        "algorithm", "makespan", "iterations", "evals", "secs"
    );
    for (name, r) in &rows {
        println!(
            "{:<10} {:>12.0} {:>12} {:>12} {:>9.2}",
            name,
            r.makespan,
            r.iterations,
            r.evaluations,
            r.elapsed.as_secs_f64()
        );
    }
    let (best, r) =
        rows.iter().min_by(|a, b| a.1.makespan.total_cmp(&b.1.makespan)).expect("non-empty");
    println!("\nwinner: {best} at {:.0}", r.makespan);
}
