//! Property tests for the GA's parent-primed prefix-splicing fitness
//! pass: whole runs must be bit-identical to full tier-1 population
//! evaluation — solutions, fitness values, per-generation traces and
//! evaluation counts — across instances, seeds, checkpoint strides and
//! worker-thread counts.

use mshc_ga::GaScheduler;
use mshc_platform::{HcInstance, HcSystem, Matrix};
use mshc_schedule::{ObjectiveKind, RunBudget, Scheduler};
use mshc_taskgraph::gen::{erdos_dag, layered, LayeredConfig};
use mshc_trace::Trace;
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn instance_strategy() -> impl Strategy<Value = HcInstance> {
    (1usize..22, 1usize..5, 0.0f64..0.9, any::<u64>(), prop::bool::ANY).prop_map(
        |(k, l, p, seed, use_layered)| {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let graph = if use_layered {
                layered(
                    &LayeredConfig {
                        tasks: k,
                        mean_width: (k / 3).max(1),
                        edge_prob: p,
                        skip_prob: 0.0,
                    },
                    &mut rng,
                )
                .unwrap()
            } else {
                erdos_dag(k, p, &mut rng).unwrap()
            };
            let exec = Matrix::from_fn(l, k, |_, _| rng.gen_range(1.0..50.0));
            let pairs = l * (l - 1) / 2;
            let transfer =
                Matrix::from_fn(pairs, graph.data_count(), |_, _| rng.gen_range(0.0..20.0));
            let sys = HcSystem::with_anonymous_machines(l, exec, transfer).unwrap();
            HcInstance::new(graph, sys).unwrap()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Full GA runs agree bit for bit with and without prefix splicing,
    /// for every objective family, at every stride and thread count.
    #[test]
    fn ga_runs_bit_identical_full_vs_spliced(
        inst in instance_strategy(),
        seed in any::<u64>(),
        stride_sel in 0usize..4,
        threads_sel in 0usize..3,
        objective_sel in 0usize..3,
    ) {
        let k = inst.task_count();
        let stride = match stride_sel {
            0 => Some(1),
            1 => Some((k / 2).max(1)),
            2 => Some(k + 5), // beyond k: replay-from-zero checkpoints
            _ => None,        // auto ⌈√k⌉
        };
        let threads = [1usize, 2, 8][threads_sel];
        let objective = match objective_sel {
            0 => ObjectiveKind::Makespan,
            1 => ObjectiveKind::TotalFlowtime,
            _ => ObjectiveKind::Weighted { makespan: 1.0, flowtime: 0.4, balance: 0.6 },
        };
        let budget = RunBudget::iterations(6)
            .with_objective(objective)
            .with_checkpoint_stride(stride);
        let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
        let (full, full_trace, spliced, spliced_trace) = pool.install(|| {
            let mut full_trace = Trace::new();
            let full = GaScheduler::with_seed(seed)
                .run(&inst, &budget.clone().with_ga_full_eval(true), Some(&mut full_trace));
            let mut spliced_trace = Trace::new();
            let spliced =
                GaScheduler::with_seed(seed).run(&inst, &budget, Some(&mut spliced_trace));
            (full, full_trace, spliced, spliced_trace)
        });
        prop_assert_eq!(&spliced.solution, &full.solution);
        prop_assert_eq!(spliced.objective_value, full.objective_value);
        prop_assert_eq!(spliced.makespan, full.makespan);
        prop_assert_eq!(spliced.evaluations, full.evaluations);
        prop_assert_eq!(spliced.iterations, full.iterations);
        // Per-generation selection pressure is identical: every best,
        // current and population-mean fitness matches bitwise.
        prop_assert_eq!(spliced_trace.records().len(), full_trace.records().len());
        for (s, f) in spliced_trace.records().iter().zip(full_trace.records()) {
            prop_assert_eq!(s.iteration, f.iteration);
            prop_assert_eq!(s.evaluations, f.evaluations);
            prop_assert_eq!(s.current_cost, f.current_cost);
            prop_assert_eq!(s.best_cost, f.best_cost);
            prop_assert_eq!(s.population_mean, f.population_mean);
        }
        // The escape hatch reports no population-path activity.
        prop_assert_eq!(full.scan.suffix_total, 0);
    }
}
