//! Goodness evaluation (§4.3 of the paper).
//!
//! `g_i = O_i / C_i` where `C_i` is the finish time of subtask `s_i` in
//! the current solution and `O_i` its finish time "if it is placed in its
//! optimal location according to a specific function F. F … assigns
//! subtask `s_i` and all its predecessors to their best-matching machine
//! with respect to the execution time". `O_i` is computed **once** before
//! SE starts; it never changes between generations.
//!
//! Note that `F` ignores machine contention (two predecessors sharing a
//! best machine are not serialized) — it is a dataflow longest-path
//! estimate, exactly reproducing the paper's worked example semantics
//! (`O_4` = best-machine chain cost of `s_4` including the `s_1 → s_4`
//! transfer). Because co-locating tasks can eliminate transfer costs that
//! `F` pays, `O_i` is *not* a strict lower bound; the goodness ratio is
//! clamped into `[0, 1]` as the paper requires.

use mshc_platform::{HcInstance, MachineId};
use mshc_taskgraph::TopoOrder;

/// Computes `O_i` for every task: the finish time when `s_i` and all its
/// (transitive) predecessors sit on their best-matching machines, with
/// inter-machine transfer costs between consecutive best machines and no
/// machine contention.
pub fn optimal_costs(inst: &HcInstance) -> Vec<f64> {
    let g = inst.graph();
    let sys = inst.system();
    let best: Vec<MachineId> = g.tasks().map(|t| sys.best_machine(t)).collect();
    let order = TopoOrder::kahn(g);
    let mut o = vec![0.0f64; g.task_count()];
    for &t in order.as_slice() {
        let mut ready = 0.0f64;
        for e in g.in_edges(t) {
            let arrival =
                o[e.src.index()] + sys.transfer_time(e.id, best[e.src.index()], best[t.index()]);
            ready = ready.max(arrival);
        }
        o[t.index()] = ready + sys.exec_time(best[t.index()], t);
    }
    o
}

/// The goodness of one individual: `(O_i / C_i).clamp(0, 1)`.
///
/// `C_i` is strictly positive for any real schedule (execution times are
/// validated positive), so the ratio is well defined.
#[inline]
pub fn goodness(optimal: f64, actual: f64) -> f64 {
    debug_assert!(actual > 0.0, "finish times are strictly positive");
    (optimal / actual).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mshc_platform::{HcSystem, Matrix};
    use mshc_taskgraph::{TaskGraphBuilder, TaskId};

    /// Figure-1-shaped instance with our documented matrices (the
    /// published ones are OCR-garbled; DESIGN.md records the
    /// substitution).
    fn figure1_instance() -> HcInstance {
        let mut b = TaskGraphBuilder::new(7);
        for (s, d) in [(0, 2), (0, 3), (1, 4), (2, 5), (3, 5), (4, 6)] {
            b.add_edge(s, d).unwrap();
        }
        let g = b.build().unwrap();
        let exec = Matrix::from_rows(&[
            vec![400.0, 700.0, 500.0, 300.0, 800.0, 600.0, 200.0],
            vec![600.0, 500.0, 400.0, 900.0, 435.0, 450.0, 350.0],
        ]);
        let transfer = Matrix::from_rows(&[vec![120.0, 80.0, 200.0, 60.0, 90.0, 150.0]]);
        let sys = HcSystem::with_anonymous_machines(2, exec, transfer).unwrap();
        HcInstance::new(g, sys).unwrap()
    }

    #[test]
    fn optimal_costs_hand_computed() {
        let inst = figure1_instance();
        let o = optimal_costs(&inst);
        // Best machines: s0->m0(400), s1->m1(500), s2->m1(400), s3->m0(300),
        // s4->m1(435), s5->m1(450), s6->m0(200).
        // O(s0) = 400, O(s1) = 500.
        assert_eq!(o[0], 400.0);
        assert_eq!(o[1], 500.0);
        // O(s2): d0 from s0@m0 to m1: 400 + 120 = 520; + 400 = 920.
        assert_eq!(o[2], 920.0);
        // O(s3): d1 from s0@m0 to m0: co-located => 400; + 300 = 700.
        assert_eq!(o[3], 700.0);
        // O(s4): d2 from s1@m1 to m1: 500; + 435 = 935 — the paper's
        // "O_4 = 1835 including communication between s1 and s4" shape:
        // chain cost of the best-machine assignment (their matrices give
        // 1835; ours give 935 because the matrices differ).
        assert_eq!(o[4], 935.0);
        // O(s5): max(d3: 920 + 0 (s2,s5 both m1), d4: 700 + 90) + 450 = 1370.
        assert_eq!(o[5], 1370.0);
        // O(s6): d5 from s4@m1 to m0: 935 + 150 = 1085; + 200 = 1285.
        assert_eq!(o[6], 1285.0);
    }

    #[test]
    fn optimal_is_positive_and_monotone_along_paths() {
        let inst = figure1_instance();
        let o = optimal_costs(&inst);
        let g = inst.graph();
        for t in g.tasks() {
            assert!(o[t.index()] > 0.0);
            for s in g.successors(t) {
                assert!(o[s.index()] > o[t.index()], "successor finishes later");
            }
        }
    }

    #[test]
    fn goodness_clamps_and_orders() {
        assert_eq!(goodness(5.0, 10.0), 0.5);
        assert_eq!(goodness(10.0, 10.0), 1.0);
        assert_eq!(goodness(15.0, 10.0), 1.0, "non-lower-bound O clamps to 1");
        assert!(goodness(1.0, 1000.0) < goodness(1.0, 2.0));
    }

    #[test]
    fn single_task_instance() {
        let g = TaskGraphBuilder::new(1).build().unwrap();
        let sys = HcSystem::with_anonymous_machines(
            3,
            Matrix::from_rows(&[vec![9.0], vec![4.0], vec![6.0]]),
            Matrix::filled(3, 0, 0.0),
        )
        .unwrap();
        let inst = HcInstance::new(g, sys).unwrap();
        let o = optimal_costs(&inst);
        assert_eq!(o, vec![4.0], "best machine execution time");
        let _ = TaskId::new(0);
    }
}
