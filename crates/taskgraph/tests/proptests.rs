//! Property tests for the DAG substrate.

use mshc_taskgraph::gen::{erdos_dag, layered, series_parallel, LayeredConfig};
use mshc_taskgraph::{
    CriticalPath, GraphMetrics, Levels, TaskGraph, TaskId, TopoOrder, TransitiveClosure,
};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A random DAG from one of the three random generators.
fn dag_strategy() -> impl Strategy<Value = TaskGraph> {
    (1usize..40, 0.0f64..1.0, any::<u64>(), 0u8..3).prop_map(|(k, p, seed, which)| {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        match which {
            0 => erdos_dag(k, p, &mut rng).unwrap(),
            1 => layered(
                &LayeredConfig {
                    tasks: k,
                    mean_width: (k / 4).max(1),
                    edge_prob: p,
                    skip_prob: p / 10.0,
                },
                &mut rng,
            )
            .unwrap(),
            _ => series_parallel(k, &mut rng).unwrap(),
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Both topological sorts emit linear extensions; positions invert.
    #[test]
    fn topo_orders_are_linear_extensions(g in dag_strategy(), seed in any::<u64>()) {
        let kahn = TopoOrder::kahn(&g);
        prop_assert!(g.is_linear_extension(kahn.as_slice()));
        let rnd = TopoOrder::random(&g, &mut ChaCha8Rng::seed_from_u64(seed));
        prop_assert!(g.is_linear_extension(rnd.as_slice()));
        let pos = rnd.positions();
        for (i, &t) in rnd.as_slice().iter().enumerate() {
            prop_assert_eq!(pos[t.index()] as usize, i);
        }
    }

    /// Levels are consistent: every edge increases the level by >= 1, and
    /// level(t) == 0 iff t has no predecessors.
    #[test]
    fn levels_consistent(g in dag_strategy()) {
        let levels = Levels::compute(&g);
        for e in g.edges() {
            prop_assert!(levels.level(e.dst) > levels.level(e.src));
        }
        for t in g.tasks() {
            prop_assert_eq!(levels.level(t) == 0, g.in_degree(t) == 0);
        }
        let layers = levels.layers();
        prop_assert_eq!(layers.iter().map(Vec::len).sum::<usize>(), g.task_count());
        prop_assert_eq!(layers.len(), levels.max_level() as usize + 1);
    }

    /// The transitive closure agrees with a fresh DFS for sampled pairs,
    /// and reachability implies a level increase.
    #[test]
    fn closure_matches_dfs(g in dag_strategy(), pair_seed in any::<u64>()) {
        let tc = TransitiveClosure::compute(&g);
        let levels = Levels::compute(&g);
        let mut rng = ChaCha8Rng::seed_from_u64(pair_seed);
        use rand::Rng;
        for _ in 0..20 {
            let a = TaskId::new(rng.gen_range(0..g.task_count() as u32));
            let b = TaskId::new(rng.gen_range(0..g.task_count() as u32));
            // DFS from a.
            let mut stack = vec![a];
            let mut seen = vec![false; g.task_count()];
            let mut reach = false;
            while let Some(t) = stack.pop() {
                for s in g.successors(t) {
                    if s == b { reach = true; }
                    if !seen[s.index()] {
                        seen[s.index()] = true;
                        stack.push(s);
                    }
                }
            }
            prop_assert_eq!(tc.reaches(a, b), reach, "{} -> {}", a, b);
            if reach {
                prop_assert!(levels.level(b) > levels.level(a));
            }
        }
    }

    /// The unit-weight critical path length equals the depth metric, and
    /// the path itself is a real path in the graph.
    #[test]
    fn critical_path_is_a_path(g in dag_strategy()) {
        let cp = CriticalPath::compute(&g, |_| 1.0, |_, _| 0.0);
        let m = GraphMetrics::compute(&g);
        prop_assert_eq!(cp.length as usize, m.depth);
        prop_assert_eq!(cp.tasks.len(), m.depth);
        for w in cp.tasks.windows(2) {
            prop_assert!(g.edge_between(w[0], w[1]).is_some(), "{} -> {}", w[0], w[1]);
        }
    }

    /// Metrics are internally consistent.
    #[test]
    fn metrics_consistent(g in dag_strategy()) {
        let m = GraphMetrics::compute(&g);
        prop_assert_eq!(m.tasks, g.task_count());
        prop_assert_eq!(m.data_items, g.data_count());
        prop_assert!(m.width >= 1 && m.width <= m.tasks);
        prop_assert!(m.depth >= 1 && m.depth <= m.tasks);
        prop_assert!(m.entries >= 1 && m.exits >= 1);
        prop_assert!((0.0..=1.0).contains(&m.density));
    }

    /// DOT export mentions every task and every edge exactly once.
    #[test]
    fn dot_export_complete(g in dag_strategy()) {
        let dot = mshc_taskgraph::dot::to_dot_plain(&g);
        for t in g.tasks() {
            let needle = format!("t{} [label=", t.raw());
            let found = dot.contains(&needle);
            prop_assert!(found, "missing node line for {}", t);
        }
        prop_assert_eq!(dot.matches(" -> ").count(), g.data_count());
    }
}
