//! Domain example: offloading a fork–join sensor-fusion pipeline.
//!
//! Four parallel preprocessing chains (one per sensor) feed a fusion
//! stage. The communication-to-cost ratio decides whether spreading the
//! chains across machines pays: with cheap communication (CCR 0.1)
//! distribution wins; with expensive links (CCR 1.5) the scheduler should
//! consolidate. This example sweeps CCR and reports how SE's placement
//! responds — the crossover the paper's CCR axis (§5) is about.
//!
//! ```text
//! cargo run --release --example pipeline_offload
//! ```

use mshc::prelude::*;
use mshc::workloads::structured;

fn distinct_machines(sol: &Solution) -> usize {
    let mut used = std::collections::BTreeSet::new();
    for seg in sol.segments() {
        used.insert(seg.machine);
    }
    used.len()
}

fn main() {
    println!("fork-join pipeline: 4 branches x 5 stages + source/sink, 6 machines\n");
    println!(
        "{:>6} {:>12} {:>12} {:>12} {:>18}",
        "CCR", "se", "heft", "min-min", "machines used (se)"
    );
    for &ccr in &[0.1, 0.5, 1.0, 1.5] {
        let inst = structured::fork_join(4, 5, 6, Heterogeneity::Medium, ccr, 7);
        let mut se =
            SeScheduler::new(SeConfig { seed: 7, selection_bias: -0.1, ..SeConfig::default() });
        let se_r = se.run(&inst, &RunBudget::iterations(150), None);
        let heft = HeftScheduler::new().run(&inst, &RunBudget::default(), None);
        let minmin = ListScheduler::new(ListPolicy::MinMin).run(&inst, &RunBudget::default(), None);
        println!(
            "{:>6.1} {:>12.0} {:>12.0} {:>12.0} {:>18}",
            ccr,
            se_r.makespan,
            heft.makespan,
            minmin.makespan,
            distinct_machines(&se_r.solution)
        );
    }

    println!("\nexpectation: as CCR grows, schedule lengths rise and SE consolidates");
    println!("work onto fewer machines (communication stops paying for parallelism).");
}
