//! Strongly typed identifiers for tasks and data items.
//!
//! The perf-book guidance for this suite is to keep hot types small: ids are
//! `u32` newtypes (4 bytes instead of 8 for `usize`), converted to `usize`
//! only at indexing sites.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a subtask `s_i` in the application DAG (`0 <= i < k`).
///
/// `TaskId`s are dense: a graph with `k` tasks uses exactly the ids
/// `0..k`, so they double as indices into per-task arrays.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct TaskId(u32);

impl TaskId {
    /// Creates a task id from a raw index.
    #[inline]
    pub const fn new(index: u32) -> Self {
        TaskId(index)
    }

    /// Creates a task id from a `usize` index.
    ///
    /// # Panics
    /// Panics if `index` does not fit in `u32`.
    #[inline]
    pub fn from_usize(index: usize) -> Self {
        TaskId(u32::try_from(index).expect("task index exceeds u32::MAX"))
    }

    /// Returns the raw `u32` index.
    #[inline]
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// Returns the id as a `usize`, for indexing per-task arrays.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl From<u32> for TaskId {
    #[inline]
    fn from(v: u32) -> Self {
        TaskId(v)
    }
}

/// Identifier of a data item `d_i` transferred between two subtasks
/// (`0 <= i < p`).
///
/// Data items are the edges of the DAG: each is produced by one task and
/// consumed by one task. Like [`TaskId`], ids are dense and double as
/// indices into per-data arrays (e.g. the columns of the transfer-time
/// matrix `Tr` of the paper's §2).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct DataId(u32);

impl DataId {
    /// Creates a data-item id from a raw index.
    #[inline]
    pub const fn new(index: u32) -> Self {
        DataId(index)
    }

    /// Creates a data-item id from a `usize` index.
    ///
    /// # Panics
    /// Panics if `index` does not fit in `u32`.
    #[inline]
    pub fn from_usize(index: usize) -> Self {
        DataId(u32::try_from(index).expect("data index exceeds u32::MAX"))
    }

    /// Returns the raw `u32` index.
    #[inline]
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// Returns the id as a `usize`, for indexing per-data arrays.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for DataId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d{}", self.0)
    }
}

impl fmt::Display for DataId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d{}", self.0)
    }
}

impl From<u32> for DataId {
    #[inline]
    fn from(v: u32) -> Self {
        DataId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_id_roundtrip() {
        let t = TaskId::new(42);
        assert_eq!(t.raw(), 42);
        assert_eq!(t.index(), 42usize);
        assert_eq!(TaskId::from_usize(42), t);
        assert_eq!(TaskId::from(42u32), t);
    }

    #[test]
    fn data_id_roundtrip() {
        let d = DataId::new(7);
        assert_eq!(d.raw(), 7);
        assert_eq!(d.index(), 7usize);
        assert_eq!(DataId::from_usize(7), d);
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(TaskId::new(3).to_string(), "s3");
        assert_eq!(DataId::new(5).to_string(), "d5");
        assert_eq!(format!("{:?}", TaskId::new(0)), "s0");
    }

    #[test]
    fn ordering_is_by_index() {
        assert!(TaskId::new(1) < TaskId::new(2));
        assert!(DataId::new(0) < DataId::new(9));
    }

    #[test]
    fn ids_are_small() {
        assert_eq!(std::mem::size_of::<TaskId>(), 4);
        assert_eq!(std::mem::size_of::<DataId>(), 4);
        assert_eq!(std::mem::size_of::<Option<TaskId>>(), 8);
    }

    #[test]
    #[should_panic(expected = "task index exceeds u32::MAX")]
    fn from_usize_overflow_panics() {
        let _ = TaskId::from_usize(usize::MAX);
    }
}
