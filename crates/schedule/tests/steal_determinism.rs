//! Steal-determinism property tests: the persistent work-stealing
//! executor must be **observationally identical** to a sequential fold —
//! bit-identical merged results, argmin index tie-breaks and evaluation
//! counts — across random lengths × `min_len` splitting hints × thread
//! counts × induced per-chunk delays. The delays scramble which worker
//! claims which chunk and in what order chunks complete (steal-order
//! jitter); none of it may be visible in the output. This is the
//! executor-side half of the house invariant the chunk-grid-invariant
//! scans in `batch.rs` rely on.

use mshc_platform::{HcInstance, HcSystem, MachineId, Matrix};
use mshc_schedule::{
    random_solution, BatchEvaluator, EvalSnapshot, EvalView, Evaluator, Objective, ObjectiveKind,
    Solution,
};
use mshc_taskgraph::gen::{layered, LayeredConfig};
use mshc_taskgraph::TaskId;
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;
use std::time::Duration;

/// Deterministic per-item delay in 0..23µs — enough to scramble chunk
/// completion order without slowing the suite down.
fn jitter(x: u64, salt: u64) -> Duration {
    Duration::from_micros(x.wrapping_mul(2654435761).wrapping_add(salt) % 23)
}

fn small_instance(tasks: usize, machines: usize, seed: u64) -> HcInstance {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let cfg =
        LayeredConfig { tasks, mean_width: (tasks / 3).max(1), edge_prob: 0.4, skip_prob: 0.0 };
    let graph = layered(&cfg, &mut rng).unwrap();
    let exec = Matrix::from_fn(machines, tasks, |_, _| rng.gen_range(5.0..80.0));
    let pairs = machines * (machines - 1) / 2;
    let transfer = Matrix::from_fn(pairs, graph.data_count(), |_, _| rng.gen_range(1.0..25.0));
    let sys = HcSystem::with_anonymous_machines(machines, exec, transfer).unwrap();
    HcInstance::new(graph, sys).unwrap()
}

/// A full-pass (non-incremental) objective that sleeps a hash-derived
/// few microseconds per evaluation — per-candidate jitter driven through
/// the real scoring pipeline, not just a synthetic map.
struct JitteredMakespan {
    salt: u64,
}

impl Objective for JitteredMakespan {
    fn name(&self) -> &str {
        "jittered-makespan"
    }

    fn value(&self, view: &EvalView<'_>) -> f64 {
        let mk = view.finish.iter().copied().fold(0.0f64, f64::max);
        std::thread::sleep(jitter(mk.to_bits(), self.salt));
        mk
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Merged `collect` output is bit-identical to the sequential map at
    /// every thread count and splitting hint, with per-item delays
    /// scrambling chunk completion order.
    #[test]
    fn jittered_collect_equals_sequential(
        len in 0usize..240,
        min_len in 1usize..48,
        threads_sel in 0usize..4,
        salt in any::<u64>(),
    ) {
        let threads = [1usize, 2, 4, 8][threads_sel];
        let xs: Vec<u64> = (0..len as u64).map(|i| i.wrapping_mul(salt | 1)).collect();
        let expected: Vec<u64> = xs.iter().map(|&x| x ^ (x >> 7)).collect();
        let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
        let got: Vec<u64> = pool.install(|| {
            xs.par_iter()
                .with_min_len(min_len)
                .map(|&x| {
                    std::thread::sleep(jitter(x, salt));
                    x ^ (x >> 7)
                })
                .collect()
        });
        prop_assert_eq!(got, expected, "{} threads, min_len {}", threads, min_len);
    }

    /// `min_by` keeps the sequential first-minimum tie-break under
    /// stealing: scores drawn from a tiny range force duplicate minima,
    /// and the earliest index must win at every thread count.
    #[test]
    fn jittered_argmin_keeps_first_minimum_tiebreak(
        scores in prop::collection::vec(0u8..4, 1..200),
        min_len in 1usize..32,
        threads_sel in 0usize..4,
        salt in any::<u64>(),
    ) {
        let threads = [1usize, 2, 4, 8][threads_sel];
        let want = scores
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.cmp(b.1))
            .map(|(i, &s)| (i, s));
        let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
        let got = pool.install(|| {
            scores
                .par_iter()
                .with_min_len(min_len)
                .enumerate()
                .map(|(i, &s)| {
                    std::thread::sleep(jitter(i as u64, salt));
                    (i, s)
                })
                .min_by(|a, b| a.1.cmp(&b.1))
        });
        prop_assert_eq!(got, want, "{} threads, min_len {}", threads, min_len);
    }

    /// Chunk sums merge in chunk order: an integer `sum` (associative
    /// and commutative — any merge order must agree with sequential)
    /// and an order-sensitive float `sum` driven at a fixed thread
    /// count both match their references under induced delays.
    #[test]
    fn jittered_sum_matches_sequential(
        xs in prop::collection::vec(0u64..1_000_000, 0..200),
        min_len in 1usize..32,
        threads_sel in 0usize..4,
        salt in any::<u64>(),
    ) {
        let threads = [1usize, 2, 4, 8][threads_sel];
        let want: u64 = xs.iter().sum();
        let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
        let got: u64 = pool.install(|| {
            xs.par_iter()
                .with_min_len(min_len)
                .map(|&x| {
                    std::thread::sleep(jitter(x, salt));
                    x
                })
                .sum()
        });
        prop_assert_eq!(got, want, "{} threads, min_len {}", threads, min_len);
    }
}

proptest! {
    // The pipeline-level cases run whole schedule evaluations per
    // candidate; fewer cases keep the suite quick.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The full scoring pipeline under per-candidate delays: batch
    /// scores, the bounded argmin (index and score bits) and the
    /// evaluation count all match the 1-thread run at every thread
    /// count, with steal-order jitter injected through a full-pass
    /// objective.
    #[test]
    fn jittered_scoring_pipeline_is_thread_invariant(
        tasks in 6usize..18,
        machines in 2usize..5,
        seed in any::<u64>(),
        salt in any::<u64>(),
    ) {
        let inst = small_instance(tasks, machines, seed);
        let g = inst.graph();
        let snap = EvalSnapshot::new(&inst);
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x9e3779b97f4a7c15);
        let base = random_solution(&inst, &mut rng);
        let t = TaskId::new(rng.gen_range(0..tasks as u32));
        let (lo, hi) = base.valid_range(g, t);
        let moves: Vec<(usize, MachineId)> = (lo..=hi)
            .flat_map(|p| (0..machines as u32).map(move |m| (p, MachineId::new(m))))
            .collect();
        let obj = JitteredMakespan { salt };

        let run = |threads: usize| {
            let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
            pool.install(|| {
                let mut batch = BatchEvaluator::new(&snap);
                let scores: Vec<u64> = batch
                    .score_moves(g, &base, t, &moves, &obj)
                    .into_iter()
                    .map(f64::to_bits)
                    .collect();
                let best = batch.best_move(g, &base, t, &moves, &obj);
                (scores, best.map(|b| (b.index, b.score.to_bits())), batch.evaluations())
            })
        };
        let baseline = run(1);
        for threads in [2usize, 4, 8] {
            let got = run(threads);
            prop_assert_eq!(&got.0, &baseline.0, "scores, {} threads", threads);
            prop_assert_eq!(got.1, baseline.1, "argmin, {} threads", threads);
            prop_assert_eq!(got.2, baseline.2, "evaluation count, {} threads", threads);
        }
        // And the jittered objective really is the makespan.
        let mut scalar = Evaluator::new(&inst);
        let mut cand: Solution = base.clone();
        let (pos, m) = moves[0];
        cand.move_task(g, t, pos, m).unwrap();
        prop_assert_eq!(scalar.makespan(&cand).to_bits(), baseline.0[0]);
    }

    /// Incremental-path scans (the bounded argmin fast path) are
    /// thread-invariant on the stealing executor: same index, same
    /// score bits, same evaluation count as the 1-thread scan.
    #[test]
    fn incremental_bounded_scan_is_thread_invariant_under_stealing(
        tasks in 6usize..20,
        machines in 2usize..5,
        seed in any::<u64>(),
        stride_sel in 0usize..3,
    ) {
        let inst = small_instance(tasks, machines, seed);
        let g = inst.graph();
        let snap = EvalSnapshot::new(&inst);
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x5851f42d4c957f2d);
        let base = random_solution(&inst, &mut rng);
        let stride = [Some(1), None, Some(tasks + 3)][stride_sel];
        let moves: Vec<(TaskId, usize, MachineId)> = (0..32)
            .map(|_| {
                let t = TaskId::new(rng.gen_range(0..tasks as u32));
                let (lo, hi) = base.valid_range(g, t);
                (t, rng.gen_range(lo..=hi), MachineId::new(rng.gen_range(0..machines as u32)))
            })
            .collect();
        let obj = ObjectiveKind::Makespan;
        let run = |threads: usize| {
            let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
            pool.install(|| {
                let mut batch = BatchEvaluator::new(&snap).with_stride(stride);
                let best = batch.best_task_move(g, &base, &moves, None, 0.0, &obj);
                (best.map(|b| (b.index, b.score.to_bits())), batch.evaluations())
            })
        };
        let baseline = run(1);
        for threads in [2usize, 4, 8] {
            prop_assert_eq!(run(threads), baseline, "{} threads, stride {:?}", threads, stride);
        }
    }
}
