//! Certified per-instance makespan lower bounds (the certificate stack).
//!
//! [`InstanceBound`] computes the classic communication-aware two-part
//! floor on the makespan of *any* feasible schedule of an instance:
//!
//! * **critical path** — the longest dependency chain when every task
//!   runs on its cheapest machine and every transfer is free (a valid
//!   relaxation: co-locating producer and consumer makes any individual
//!   transfer cost avoidable, so no certified floor may charge for it);
//! * **total work** — the sum of per-task cheapest execution times
//!   spread perfectly over all `l` machines, `Σ_t min_m E[m][t] / l`.
//!
//! The floor is `max` of the two. Both relaxations are *independent* of
//! the schedule, so the floor is a property of the instance alone — it
//! is computed once and certifies every leaderboard row, every `gap`
//! column and every early-stopped search in the suite.
//!
//! ## Rounding safety (the certificate contract)
//!
//! The floor is compared against makespans **computed in IEEE `f64`**,
//! not against real-arithmetic makespans, so a naively computed floor
//! could exceed a computed makespan by accumulated rounding and void
//! the certificate (`gap < 1`). Two regimes keep the floor sound:
//!
//! * **Integer-exact instances** (the common benchmark case): when every
//!   execution and transfer entry is a nonnegative integer and the sum
//!   of *all* entries fits in 2⁵² , every intermediate the evaluators
//!   compute — starts, arrivals, finishes, the makespan — is an exact
//!   integer (each is a max of sums of entries, bounded by the total
//!   sum, and `f64` adds of integers below 2⁵³ are exact). The floor is
//!   then certified *raw*, and the work term tightens to
//!   `⌈Σ min exec / l⌉` because an integer makespan at least a real
//!   quotient is at least its ceiling. This regime is what makes
//!   early termination actually fire: the floor is *reachable*.
//! * **General float instances**: the floor's whole magnitude is
//!   deflated by `1 − (2k + 16)·ε` — the same conservative margin the
//!   incremental evaluator's pruning floors use — which dominates the
//!   relative error of both the floor computation (≤ k additions) and
//!   the evaluator's timing chain. A deflated floor sits strictly below
//!   every computed makespan, so the certificate holds; early stop then
//!   (correctly) almost never triggers, because no computed value can
//!   dip below it other than by matching the true optimum's error band.
//!
//! Either way the invariant consumers rely on is: **for every feasible
//! solution, `floor() <= computed makespan`**, hence `gap >= 1.0` — the
//! property the CI certificate-soundness gate asserts wholesale.
//!
//! ## Slack analysis
//!
//! The same cheapest-machine/zero-transfer relaxation yields per-task
//! earliest/latest start times ([`mshc_taskgraph::SlackAnalysis`]),
//! exposed here both directly and as [`placement_floor`] — a certified
//! floor on any schedule that places task `t` on a machine with a given
//! execution time. The SE allocator sorts candidate machines by this
//! floor so bounded scans meet their best candidates first and prune
//! the rest.
//!
//! [`placement_floor`]: InstanceBound::placement_floor

use mshc_platform::HcInstance;
use mshc_taskgraph::{SlackAnalysis, TaskId};

/// Every computed schedule intermediate is bounded by the sum of all
/// matrix entries; below this cap, integer instances stay exact in `f64`
/// (2⁵², a factor-2 margin under the 2⁵³ integer-exactness limit, which
/// also certifies the `⌈Σ/l⌉` rounding of the work term).
const EXACT_SUM_CAP: f64 = 4_503_599_627_370_496.0; // 2^52

/// A certified makespan lower bound for one instance, with the slack
/// analysis of the relaxation it is derived from.
///
/// See the [module docs](self) for the bound formula and the rounding
/// contract. Construction is O(k·l + edges + transfer entries) — cheap
/// enough to compute once per run everywhere a run starts.
#[derive(Debug, Clone)]
pub struct InstanceBound {
    /// Critical-path term, raw (cheapest-machine weights, free
    /// transfers).
    critical_path: f64,
    /// Total cheapest work `Σ_t min_m E[m][t]`, raw (before the `/ l`).
    total_work: f64,
    /// The certified floor: `max(cp, work/l)`, ceil-tightened when
    /// [`is_exact`](Self::is_exact), deflated otherwise.
    floor: f64,
    /// Whether the instance is integer-exact (floor certified raw).
    exact: bool,
    /// Machine count the work term was spread over.
    machines: usize,
    /// Cheapest execution time per task (clamped to finite `>= 0`,
    /// matching the incremental evaluator's pruning floors).
    min_exec: Vec<f64>,
    /// Earliest/latest start times under the relaxation.
    slack: SlackAnalysis,
}

impl InstanceBound {
    /// Computes the certified floor and slack analysis for `inst`.
    pub fn compute(inst: &HcInstance) -> InstanceBound {
        let g = inst.graph();
        let sys = inst.system();
        let k = inst.task_count();
        let l = inst.machine_count().max(1);
        let exec = sys.exec_matrix();
        let min_exec: Vec<f64> = (0..k)
            .map(|t| {
                let cheapest =
                    (0..exec.rows()).map(|m| exec.get(m, t)).fold(f64::INFINITY, f64::min);
                if cheapest.is_finite() {
                    cheapest.max(0.0)
                } else {
                    0.0
                }
            })
            .collect();
        // Transfers are charged nothing: the relaxation may co-locate
        // any producer/consumer pair, which zeroes that edge's cost.
        let slack = SlackAnalysis::compute(g, |t| min_exec[t.index()], |_, _| 0.0);
        let critical_path = slack.length;
        let total_work: f64 = min_exec.iter().sum();

        // Integer-exactness scan over *all* entries of both matrices:
        // nonnegative integers whose grand total stays below 2^52 keep
        // every evaluator intermediate exactly representable.
        let mut sum = 0.0f64;
        let mut exact = true;
        for &v in exec.as_slice().iter().chain(sys.transfer_matrix().as_slice()) {
            if !(v.is_finite() && v >= 0.0 && v.fract() == 0.0) {
                exact = false;
                break;
            }
            sum += v;
            if sum > EXACT_SUM_CAP {
                exact = false;
                break;
            }
        }

        let raw = critical_path.max(total_work / l as f64);
        let floor = if exact {
            // An integer makespan >= work/l is >= ceil(work/l); the
            // critical path is itself an exact integer.
            critical_path.max((total_work / l as f64).ceil())
        } else {
            (raw * deflate(k)).max(0.0)
        };
        InstanceBound { critical_path, total_work, floor, exact, machines: l, min_exec, slack }
    }

    /// The certified floor: no feasible schedule of this instance can
    /// have a computed makespan below it.
    #[inline]
    pub fn floor(&self) -> f64 {
        self.floor
    }

    /// The raw critical-path term (cheapest machines, free transfers).
    #[inline]
    pub fn critical_path(&self) -> f64 {
        self.critical_path
    }

    /// The raw total cheapest work `Σ_t min_m E[m][t]` (before `/ l`).
    #[inline]
    pub fn total_work(&self) -> f64 {
        self.total_work
    }

    /// Whether the instance is integer-exact: the floor is certified
    /// without deflation (and the work term ceil-tightened), so early
    /// termination can genuinely reach it.
    #[inline]
    pub fn is_exact(&self) -> bool {
        self.exact
    }

    /// Optimality gap of a makespan against the floor: `value / floor`,
    /// or `None` when the floor is zero/non-positive (a zero-work
    /// instance certifies nothing — any makespan is infinitely far from
    /// a zero floor) or `value` is not finite.
    #[inline]
    pub fn gap(&self, value: f64) -> Option<f64> {
        if self.floor > 0.0 && value.is_finite() {
            Some(value / self.floor)
        } else {
            None
        }
    }

    /// Whether an incumbent objective value has reached the floor — the
    /// early-termination test: nothing below the floor exists, so the
    /// incumbent is provably optimal and the search may stop.
    #[inline]
    pub fn reached(&self, incumbent: f64) -> bool {
        incumbent.is_finite() && incumbent <= self.floor
    }

    /// Certified floor on any schedule that places task `t` on a machine
    /// whose execution time for `t` is `exec`: the task cannot start
    /// before its relaxed earliest start, and its longest descendant
    /// chain (cheapest machines, free transfers) still runs after it.
    /// Never below [`floor`](Self::floor).
    ///
    /// This is the key the SE allocator orders candidate machines by —
    /// ascending `placement_floor` visits the most promising placements
    /// first, so the bounded scan's running best drops fast and later
    /// candidates prune early.
    pub fn placement_floor(&self, t: TaskId, exec: f64) -> f64 {
        let i = t.index();
        let tail = self.slack.length - self.slack.latest[i] - self.min_exec[i];
        let raw = self.slack.earliest[i] + exec.max(0.0) + tail.max(0.0);
        let certified = if self.exact { raw } else { raw * deflate(self.min_exec.len()) };
        certified.max(self.floor)
    }

    /// Cheapest execution time of `t` over all machines (clamped to
    /// finite `>= 0`).
    #[inline]
    pub fn min_exec(&self, t: TaskId) -> f64 {
        self.min_exec[t.index()]
    }

    /// The relaxation's earliest/latest start-time analysis.
    #[inline]
    pub fn slack(&self) -> &SlackAnalysis {
        &self.slack
    }

    /// Machine count the work term was spread over.
    #[inline]
    pub fn machines(&self) -> usize {
        self.machines
    }
}

/// The conservative whole-magnitude deflation factor `1 − (2k + 16)·ε`
/// shared with the incremental evaluator's pruning floors: it dominates
/// the relative rounding error of both the floor computation and the
/// evaluator's timing chain, so a deflated floor never overshoots a
/// computed makespan.
#[inline]
fn deflate(k: usize) -> f64 {
    1.0 - (2 * k + 16) as f64 * f64::EPSILON
}

/// The next `f64` strictly above `x` (one ulp up) for positive finite
/// `x`; returns `x` unchanged otherwise. Used by bound-aware scan
/// ordering to pass a tie-*inclusive* pruning bound when the candidate
/// being scored sits earlier in committed grid order than the running
/// best (an equal score must then *win*, so it may not be pruned).
#[inline]
pub fn next_up(x: f64) -> f64 {
    if x.is_finite() && x > 0.0 {
        f64::from_bits(x.to_bits() + 1)
    } else {
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::Solution;
    use crate::eval::Evaluator;
    use mshc_platform::{HcSystem, Matrix};
    use mshc_taskgraph::{TaskGraphBuilder, TaskId};
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    /// The Figure-1-style instance used across the evaluator tests.
    fn figure1_instance() -> HcInstance {
        let mut b = TaskGraphBuilder::new(7);
        for (s, d) in [(0, 2), (0, 3), (1, 4), (2, 5), (3, 5), (4, 6)] {
            b.add_edge(s, d).unwrap();
        }
        let g = b.build().unwrap();
        let exec = Matrix::from_rows(&[
            vec![400.0, 700.0, 500.0, 300.0, 800.0, 600.0, 200.0],
            vec![600.0, 500.0, 400.0, 900.0, 435.0, 450.0, 350.0],
        ]);
        let transfer = Matrix::from_rows(&[vec![120.0, 80.0, 200.0, 60.0, 90.0, 150.0]]);
        let sys = HcSystem::with_anonymous_machines(2, exec, transfer).unwrap();
        HcInstance::new(g, sys).unwrap()
    }

    #[test]
    fn figure1_floor_is_hand_computed_work_bound() {
        let b = InstanceBound::compute(&figure1_instance());
        // min exec: 400 500 400 300 435 450 200 — sum 2685, over 2
        // machines 1342.5, ceil 1343 (integer-exact instance).
        // Critical path (free transfers): 0→2→5 = 400+400+450 = 1250.
        assert!(b.is_exact());
        assert_eq!(b.critical_path(), 1250.0);
        assert_eq!(b.total_work(), 2685.0);
        assert_eq!(b.floor(), 1343.0);
        assert_eq!(b.gap(2000.0), Some(2000.0 / 1343.0));
        assert!(b.gap(2000.0).unwrap() >= 1.0);
        assert!(!b.reached(1343.5));
        assert!(b.reached(1343.0));
    }

    #[test]
    fn fractional_entries_deflate_the_floor() {
        let mut bld = TaskGraphBuilder::new(2);
        bld.add_edge(0, 1).unwrap();
        let g = bld.build().unwrap();
        let exec = Matrix::from_rows(&[vec![3.5, 4.25], vec![5.0, 2.75]]);
        let transfer = Matrix::from_rows(&[vec![6.0]]);
        let sys = HcSystem::with_anonymous_machines(2, exec, transfer).unwrap();
        let inst = HcInstance::new(g, sys).unwrap();
        let b = InstanceBound::compute(&inst);
        assert!(!b.is_exact());
        // cp = 3.5 + 2.75 = 6.25 dominates work (6.25 / 2).
        let raw = 6.25;
        assert!(b.floor() < raw, "deflation must bite");
        assert!(b.floor() > raw * 0.999999, "but only by ulps");
        // The deflated floor still certifies the best schedule (both
        // tasks on their cheapest machines, one transfer avoided by...
        // not avoidable here, so makespan >= 6.25 anyway).
        let mut eval = Evaluator::new(&inst);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..50 {
            let s = crate::init::random_solution(&inst, &mut rng);
            assert!(eval.makespan(&s) >= b.floor());
        }
    }

    #[test]
    fn single_task_floor_is_cheapest_exec() {
        let g = TaskGraphBuilder::new(1).build().unwrap();
        let sys = HcSystem::with_anonymous_machines(
            2,
            Matrix::from_rows(&[vec![5.0], vec![3.0]]),
            Matrix::filled(1, 0, 0.0),
        )
        .unwrap();
        let inst = HcInstance::new(g, sys).unwrap();
        let b = InstanceBound::compute(&inst);
        // cp = 3 beats ceil(3/2) = 2.
        assert_eq!(b.floor(), 3.0);
        assert!(b.is_exact());
        assert!(b.reached(3.0));
    }

    #[test]
    fn non_finite_values_yield_no_gap() {
        // HcSystem validation rejects non-positive executions, so a
        // validated instance always has floor > 0; the None arm of
        // gap() guards non-finite incumbents (and hand-built zero
        // floors from unvalidated paths).
        let b = InstanceBound::compute(&figure1_instance());
        assert!(b.floor() > 0.0);
        assert_eq!(b.gap(f64::INFINITY), None);
        assert_eq!(b.gap(f64::NAN), None);
        assert!(!b.reached(f64::NAN));
        assert!(!b.reached(f64::INFINITY));
    }

    #[test]
    fn huge_integer_sums_fall_back_to_deflation() {
        // Entries are integers but the grand total overflows the exact
        // cap, so the certificate must take the deflated route.
        let g = TaskGraphBuilder::new(2).build().unwrap();
        let big = 3.0e15; // 2 entries x 2 machines > 2^52 total
        let sys = HcSystem::with_anonymous_machines(
            2,
            Matrix::filled(2, 2, big),
            Matrix::filled(1, 0, 0.0),
        )
        .unwrap();
        let inst = HcInstance::new(g, sys).unwrap();
        let b = InstanceBound::compute(&inst);
        assert!(!b.is_exact());
        assert!(b.floor() < big && b.floor() > big * 0.999999);
    }

    #[test]
    fn placement_floor_never_undercuts_instance_floor() {
        let inst = figure1_instance();
        let b = InstanceBound::compute(&inst);
        let sys = inst.system();
        for t in inst.graph().tasks() {
            for m in sys.machine_ids() {
                let pf = b.placement_floor(t, sys.exec_time(m, t));
                assert!(pf >= b.floor(), "{t} on {m}");
            }
        }
        // Sink task t6: est 935 (0→1's chain 500+435), so an expensive
        // placement lifts the floor above the instance-wide one.
        assert_eq!(b.placement_floor(TaskId::new(6), 10_000.0), 10_935.0);
        // A cheap placement clamps back to the instance floor.
        assert_eq!(b.placement_floor(TaskId::new(6), 350.0), 1343.0);
    }

    #[test]
    fn placement_floor_certifies_forced_placements() {
        // Every feasible schedule placing t on m has makespan >=
        // placement_floor(t, E[m][t]) — check against random solutions.
        let inst = figure1_instance();
        let b = InstanceBound::compute(&inst);
        let mut eval = Evaluator::new(&inst);
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        for _ in 0..200 {
            let s = crate::init::random_solution(&inst, &mut rng);
            let mk = eval.makespan(&s);
            for t in inst.graph().tasks() {
                let m = s.machine_of(t);
                let pf = b.placement_floor(t, inst.system().exec_time(m, t));
                assert!(mk >= pf, "makespan {mk} under placement floor {pf} for {t}");
            }
        }
    }

    #[test]
    fn floor_never_exceeds_random_schedule_makespans() {
        // Seeded anti-over-bound sweep over random float instances (the
        // full 13-algorithm proptest lives in the portfolio crate).
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for round in 0..20 {
            let tasks = rng.gen_range(2..20);
            let machines = rng.gen_range(1..5);
            let cfg = mshc_taskgraph::gen::LayeredConfig {
                tasks,
                mean_width: 3,
                edge_prob: 0.5,
                skip_prob: 0.1,
            };
            let g = mshc_taskgraph::gen::layered(&cfg, &mut rng).unwrap();
            let integer = round % 2 == 0;
            let cell = |lo: f64, hi: f64, rng: &mut ChaCha8Rng| {
                let v = rng.gen_range(lo..hi);
                if integer {
                    v.round()
                } else {
                    v
                }
            };
            let exec = Matrix::from_fn(machines, tasks, |_, _| cell(1.0, 100.0, &mut rng));
            let pairs = machines * (machines - 1) / 2;
            let transfer = Matrix::from_fn(pairs, g.data_count(), |_, _| cell(1.0, 30.0, &mut rng));
            let sys = HcSystem::with_anonymous_machines(machines, exec, transfer).unwrap();
            let inst = HcInstance::new(g, sys).unwrap();
            let b = InstanceBound::compute(&inst);
            assert_eq!(b.is_exact(), integer, "round {round}");
            let mut eval = Evaluator::new(&inst);
            for _ in 0..30 {
                let s = crate::init::random_solution(&inst, &mut rng);
                let mk = eval.makespan(&s);
                assert!(
                    mk >= b.floor(),
                    "round {round}: makespan {mk} below floor {} (exact={})",
                    b.floor(),
                    b.is_exact()
                );
                assert!(b.gap(mk).is_none_or(|gp| gp >= 1.0));
            }
        }
    }

    #[test]
    fn next_up_is_one_ulp() {
        let x = 1343.0f64;
        let up = next_up(x);
        assert!(up > x);
        assert_eq!(f64::from_bits(x.to_bits() + 1), up);
        assert_eq!(next_up(0.0), 0.0);
        assert_eq!(next_up(-1.0), -1.0);
        assert!(next_up(f64::INFINITY).is_infinite());
        assert!(next_up(f64::NAN).is_nan());
    }

    #[test]
    fn reusable_solution_floor_reachable_on_balanced_integer_instance() {
        // k independent unit-ish tasks over l machines: the work bound
        // ceil(sum/l) is achievable by perfect balancing, so an optimal
        // schedule *reaches* the exact-mode floor — the scenario that
        // makes early termination live.
        let g = TaskGraphBuilder::new(4).build().unwrap();
        let sys = HcSystem::with_anonymous_machines(
            2,
            Matrix::filled(2, 4, 6.0),
            Matrix::filled(1, 0, 0.0),
        )
        .unwrap();
        let inst = HcInstance::new(g, sys).unwrap();
        let b = InstanceBound::compute(&inst);
        assert_eq!(b.floor(), 12.0, "ceil(24/2)");
        // Balanced solution: two tasks per machine.
        use mshc_platform::MachineId;
        let order: Vec<TaskId> = (0..4).map(TaskId::new).collect();
        let ms = [MachineId::new(0), MachineId::new(1), MachineId::new(0), MachineId::new(1)];
        let s = Solution::from_order(inst.graph(), 2, &order, &ms).unwrap();
        let mk = Evaluator::new(&inst).makespan(&s);
        assert_eq!(mk, 12.0);
        assert!(b.reached(mk));
    }
}
