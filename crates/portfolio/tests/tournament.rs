//! Tournament engine integration tests: the determinism contract
//! (thread-count invariance, portfolio on/off), single-cell equivalence
//! with direct `Scheduler::run`, and per-cell fault isolation.

use mshc_core::{SeConfig, SePendingBias};
use mshc_ga::{GaConfig, GaScheduler};
use mshc_heuristics::{
    CpopScheduler, HeftScheduler, ListPolicy, ListScheduler, RandomSearch, SaConfig,
    SimulatedAnnealing, TabuConfig, TabuSearch,
};
use mshc_portfolio::{aggregate, cells_csv, render_report, run_tournament, TournamentSpec};
use mshc_schedule::{ObjectiveKind, RunBudget, Scheduler};
use mshc_workloads::{tiny_suite, Connectivity, Heterogeneity, Scenario};

fn tiny_spec() -> TournamentSpec {
    TournamentSpec {
        seeds: vec![5, 9],
        iterations: 12,
        ..TournamentSpec::new("tiny", tiny_suite())
    }
}

/// Mirror of the CLI's scheduler factory, constructed independently of
/// the engine's, so the test pins the "a cell is exactly `mshc run`"
/// contract rather than comparing the engine with itself.
fn cli_style_scheduler(name: &str, seed: u64) -> Box<dyn Scheduler> {
    match name {
        "se" => Box::new(SePendingBias::new(SeConfig {
            seed,
            selection_bias: f64::NAN,
            ..SeConfig::default()
        })),
        "ga" => Box::new(GaScheduler::new(GaConfig { seed, ..GaConfig::default() })),
        "heft" => Box::new(HeftScheduler::new()),
        "heft-ins" => Box::new(HeftScheduler::with_insertion()),
        "cpop" => Box::new(CpopScheduler::new()),
        "met" => Box::new(ListScheduler::new(ListPolicy::Met)),
        "mct" => Box::new(ListScheduler::new(ListPolicy::Mct)),
        "olb" => Box::new(ListScheduler::new(ListPolicy::Olb)),
        "min-min" => Box::new(ListScheduler::new(ListPolicy::MinMin)),
        "max-min" => Box::new(ListScheduler::new(ListPolicy::MaxMin)),
        "random" => Box::new(RandomSearch::new(seed)),
        "sa" => Box::new(SimulatedAnnealing::new(SaConfig { seed, ..SaConfig::default() })),
        "tabu" => Box::new(TabuSearch::new(TabuConfig { seed, ..TabuConfig::default() })),
        other => panic!("unknown algorithm {other}"),
    }
}

#[test]
fn single_cell_matches_direct_scheduler_run_for_every_algorithm() {
    let scenario = tiny_suite()[0];
    let seed = 7u64;
    for objective in [ObjectiveKind::Makespan, ObjectiveKind::TotalFlowtime] {
        let spec = TournamentSpec {
            seeds: vec![seed],
            scenarios: vec![scenario],
            objectives: vec![objective.label()],
            iterations: 10,
            ..TournamentSpec::new("single", vec![scenario])
        };
        let run = run_tournament(&spec).unwrap();
        assert_eq!(run.cells.len(), spec.algorithms.len());
        let inst = scenario.generate(seed);
        let budget = RunBudget::iterations(10).with_objective(objective);
        for cell in &run.cells {
            assert!(cell.ok, "{}: {}", cell.algorithm, cell.error);
            let direct = cli_style_scheduler(&cell.algorithm, seed).run(&inst, &budget, None);
            assert_eq!(
                cell.objective_value,
                direct.objective_value,
                "{} objective under {}",
                cell.algorithm,
                objective.label()
            );
            assert_eq!(cell.makespan, direct.makespan, "{} makespan", cell.algorithm);
            assert_eq!(cell.evaluations, direct.evaluations, "{} evaluations", cell.algorithm);
            assert_eq!(cell.iterations, direct.iterations, "{} iterations", cell.algorithm);
        }
    }
}

#[test]
fn leaderboard_json_is_bit_identical_across_thread_counts_and_repeats() {
    for portfolio in [false, true] {
        let mut spec = tiny_spec();
        spec.portfolio = portfolio;
        spec.rounds = 4;
        let reference = {
            let pool = rayon::ThreadPoolBuilder::new().num_threads(1).build().unwrap();
            let run = pool.install(|| run_tournament(&spec)).unwrap();
            serde_json::to_string(&aggregate(&run).0).unwrap()
        };
        for threads in [2usize, 8] {
            let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
            let run = pool.install(|| run_tournament(&spec)).unwrap();
            let json = serde_json::to_string(&aggregate(&run).0).unwrap();
            assert_eq!(
                json, reference,
                "portfolio={portfolio}: leaderboard JSON must be bit-identical at {threads} \
                 threads"
            );
        }
        // And across repeat runs on the same pool.
        let again = serde_json::to_string(&aggregate(&run_tournament(&spec).unwrap()).0).unwrap();
        assert_eq!(again, reference, "portfolio={portfolio}: repeat run must be bit-identical");
    }
}

#[test]
fn panicking_cells_are_reported_not_fatal() {
    // machines = 0 makes workload generation panic; the race's cells
    // must all carry the error while the healthy scenario completes.
    let broken = Scenario::layered(10, 0, Connectivity::Medium, Heterogeneity::Medium, 0.5);
    let healthy = tiny_suite()[0];
    let spec = TournamentSpec {
        algorithms: vec!["se".into(), "heft".into(), "sa".into()],
        seeds: vec![3],
        iterations: 5,
        ..TournamentSpec::new("mixed", vec![broken, healthy])
    };
    let run = run_tournament(&spec).unwrap();
    let (board, timing) = aggregate(&run);
    assert_eq!(board.cells, 6);
    assert_eq!(board.failures, 3, "every cell of the broken race fails");
    for cell in board.results.iter().filter(|c| !c.ok) {
        assert_eq!(cell.scenario, broken.tag());
        assert!(cell.error.contains("machine"), "panic message surfaced: {}", cell.error);
        assert_eq!(cell.evaluations, 0);
    }
    for cell in board.results.iter().filter(|c| c.ok) {
        assert_eq!(cell.scenario, healthy.tag());
        assert!(cell.objective_value > 0.0);
    }
    // The report names the failures and the failure count.
    let report = render_report(&board, &timing);
    assert!(report.contains("3 failed"));
    assert!(report.contains("FAILED se"));
    assert!(report.contains("evals/sec"));
    // Standings only aggregate completed cells.
    for s in &board.standings {
        assert_eq!(s.cells, 2);
        assert_eq!(s.failures, 1);
        assert!(s.win_rate <= 1.0);
    }
}

#[test]
fn portfolio_migration_bounds_every_lane_by_the_best_constructive() {
    // After the first round barrier every live lane has seen the best
    // incumbent so far — which is at least as good as the best one-shot
    // constructive solution (those finish in round one). Incumbents are
    // monotone afterwards, so every iterative lane must finish at or
    // below the best constructive baseline. Independent mode has no such
    // guarantee: SA/random starting points can lose to HEFT outright.
    let scenario = tiny_suite()[0];
    let spec = TournamentSpec {
        algorithms: vec![
            "se".into(),
            "ga".into(),
            "sa".into(),
            "tabu".into(),
            "random".into(),
            "heft".into(),
            "min-min".into(),
        ],
        seeds: vec![11, 12],
        iterations: 20,
        portfolio: true,
        rounds: 5,
        ..TournamentSpec::new("race", vec![scenario])
    };
    let run = run_tournament(&spec).unwrap();
    for seed in [11u64, 12] {
        let of = |name: &str| {
            run.cells
                .iter()
                .find(|c| c.algorithm == name && c.seed == seed)
                .filter(|c| c.ok)
                .map(|c| c.objective_value)
                .unwrap()
        };
        let constructive = of("heft").min(of("min-min"));
        for algo in ["se", "ga", "sa", "tabu", "random"] {
            assert!(
                of(algo) <= constructive + 1e-9,
                "seed {seed}: portfolio lane {algo} ({}) must not lose to the shared \
                 constructive incumbent ({constructive})",
                of(algo)
            );
        }
    }
}

#[test]
fn aggregation_wins_and_ranks_are_consistent() {
    let spec = tiny_spec();
    let run = run_tournament(&spec).unwrap();
    let (board, timing) = aggregate(&run);
    assert_eq!(board.races, 4, "2 scenarios x 2 seeds");
    assert_eq!(board.cells, board.races * spec.algorithms.len());
    assert_eq!(board.failures, 0);
    // Every race has at least one winner; wins sum >= races.
    let wins: usize = board.standings.iter().map(|s| s.wins).sum();
    assert!(wins >= board.races, "each race crowns at least one winner");
    // Standings are sorted best-first and internally consistent.
    for pair in board.standings.windows(2) {
        assert!(
            pair[0].wins > pair[1].wins
                || (pair[0].wins == pair[1].wins && pair[0].mean_rank <= pair[1].mean_rank),
            "standings sorted by wins then mean rank"
        );
    }
    for s in &board.standings {
        assert!((0.0..=1.0).contains(&s.win_rate));
        assert!(s.mean_rank >= 1.0, "{} rank {}", s.algorithm, s.mean_rank);
        assert!(s.best_objective <= s.mean_objective + 1e-9);
        assert!(s.total_evaluations > 0, "{}", s.algorithm);
    }
    // One-shot heuristics evaluate deterministically per race; the
    // timing side reports aggregate throughput.
    assert!(timing.total_evaluations > 0);
    assert!(timing.evals_per_sec > 0.0);
    // CSV export covers every cell with the declared header arity.
    let csv = cells_csv(&board, &run.timing).to_string_csv();
    assert_eq!(csv.lines().count(), 1 + board.cells);
    assert!(csv.starts_with("algorithm,scenario,seed,objective,ok,"));
    // The scan-efficiency fraction columns append after the historic
    // ones and parse as in-range fractions on every row.
    let header: Vec<&str> = csv.lines().next().unwrap().split(',').collect();
    let pruned_col = header.iter().position(|&h| h == "pruned_fraction").unwrap();
    assert_eq!(header[pruned_col + 1], "spliced_fraction");
    assert_eq!(header[pruned_col + 2], "prefix_reuse_fraction");
    for line in csv.lines().skip(1) {
        let cols: Vec<&str> = line.split(',').collect();
        assert_eq!(cols.len(), header.len());
        for &c in &cols[pruned_col..pruned_col + 3] {
            let f: f64 = c.parse().expect("fraction parses");
            assert!((0.0..=1.0).contains(&f), "{line}");
        }
    }
    // An empty sidecar (re-exported leaderboard) renders zero fractions
    // with identical shape.
    let bare = cells_csv(&board, &[]).to_string_csv();
    assert_eq!(bare.lines().count(), csv.lines().count());
}

#[test]
fn portfolio_cells_stay_deterministic_with_oneshot_lanes() {
    // A portfolio race mixing steppable searches with one-shot lanes
    // must reproduce exactly (the one-shots donate incumbents at the
    // first barrier).
    let spec = TournamentSpec {
        algorithms: vec!["heft".into(), "min-min".into(), "sa".into(), "random".into()],
        seeds: vec![2],
        iterations: 30,
        portfolio: true,
        rounds: 3,
        ..TournamentSpec::new("mix", vec![tiny_suite()[1]])
    };
    let a = run_tournament(&spec).unwrap();
    let b = run_tournament(&spec).unwrap();
    assert_eq!(a.cells, b.cells);
    for cell in &a.cells {
        assert!(cell.ok, "{}: {}", cell.algorithm, cell.error);
    }
    // The SA lane sees HEFT/min-min constructive solutions after round
    // one; its final answer can only match or beat the best one-shot.
    let best_oneshot = a
        .cells
        .iter()
        .filter(|c| c.algorithm == "heft" || c.algorithm == "min-min")
        .map(|c| c.objective_value)
        .fold(f64::INFINITY, f64::min);
    let sa = a.cells.iter().find(|c| c.algorithm == "sa").unwrap();
    assert!(sa.objective_value <= best_oneshot + 1e-9);
}

#[test]
fn injected_cell_fault_is_retried_and_marked_degraded() {
    // One armed cell fault panics the se cell's first attempt; the
    // bounded same-seed retry finds the fault consumed and completes.
    // The cell lands on the board flagged degraded, byte-identical in
    // every payload field to a fault-free run of the same spec.
    let scenario = tiny_suite()[0];
    let spec = TournamentSpec {
        algorithms: vec!["se".into(), "heft".into()],
        seeds: vec![4242],
        iterations: 8,
        ..TournamentSpec::new("chaos", vec![scenario])
    };
    let clean = run_tournament(&spec).unwrap();

    let plan = mshc_schedule::FaultPlan {
        cell_panics: vec![mshc_schedule::CellFault {
            algorithm: "se".into(),
            scenario: scenario.tag(),
            seed: 4242,
        }],
        ..mshc_schedule::FaultPlan::default()
    };
    mshc_schedule::faults::arm(&plan);
    let faulted = run_tournament(&spec).unwrap();
    mshc_schedule::faults::disarm();

    let (clean_board, _) = aggregate(&clean);
    let (board, timing) = aggregate(&faulted);
    assert_eq!(board.failures, 0, "the retry absorbs the injected panic");
    assert_eq!(board.degraded, 1);
    let se = board.results.iter().find(|c| c.algorithm == "se").unwrap();
    assert!(se.ok && se.degraded);
    assert_eq!(se.retries, 1);
    assert_eq!(se.termination, "budget");
    let heft = board.results.iter().find(|c| c.algorithm == "heft").unwrap();
    assert!(!heft.degraded, "fault-free lanes are untouched");
    assert_eq!(heft.retries, 0);
    // Modulo the retry bookkeeping, the degraded cell's answer is the
    // clean run's answer: same-seed retries reproduce the search bit
    // for bit.
    let clean_se = clean_board.results.iter().find(|c| c.algorithm == "se").unwrap();
    assert_eq!(se.objective_value.to_bits(), clean_se.objective_value.to_bits());
    assert_eq!(se.evaluations, clean_se.evaluations);
    let report = render_report(&board, &timing);
    assert!(report.contains("1 degraded"));
    assert!(report.contains("DEGRADED se"));
    assert!(report.contains("completed after 1 retries"));
    // The CSV export carries the new trailing columns.
    let csv = cells_csv(&board, &faulted.timing).to_string_csv();
    assert!(csv.lines().next().unwrap().ends_with("retries,degraded,termination"));
    assert!(csv.contains(",1,true,budget"));
}

#[test]
fn exhausted_retry_budget_surfaces_the_failure() {
    // Two faults against one cell with the default single retry: both
    // attempts panic and the cell fails with the injected message, but
    // the tournament itself survives.
    let scenario = tiny_suite()[0];
    let spec = TournamentSpec {
        algorithms: vec!["sa".into(), "heft".into()],
        seeds: vec![777],
        iterations: 6,
        ..TournamentSpec::new("chaos2", vec![scenario])
    };
    let fault =
        mshc_schedule::CellFault { algorithm: "sa".into(), scenario: scenario.tag(), seed: 777 };
    let plan = mshc_schedule::FaultPlan {
        cell_panics: vec![fault.clone(), fault],
        ..mshc_schedule::FaultPlan::default()
    };
    mshc_schedule::faults::arm(&plan);
    let run = run_tournament(&spec).unwrap();
    mshc_schedule::faults::disarm();
    let (board, _) = aggregate(&run);
    assert_eq!(board.failures, 1);
    assert_eq!(board.degraded, 0, "failed cells are failed, not degraded");
    let sa = board.results.iter().find(|c| c.algorithm == "sa").unwrap();
    assert!(!sa.ok);
    assert_eq!(sa.retries, 1, "the one allowed retry was spent");
    assert!(sa.error.contains("fault injection"), "injected cause surfaced: {}", sa.error);
    assert!(board.results.iter().find(|c| c.algorithm == "heft").unwrap().ok);
}
