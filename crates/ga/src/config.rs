//! GA parameters, defaulted to the reference implementation's published
//! settings.

use serde::{Deserialize, Serialize};

/// Configuration of the Wang et al. GA.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GaConfig {
    /// Population size (Wang et al. use 50 for comparable instance sizes).
    pub population: usize,
    /// Probability that a selected pair undergoes crossover.
    pub crossover_prob: f64,
    /// Probability that a chromosome undergoes scheduling mutation.
    pub sched_mutation_prob: f64,
    /// Probability that a chromosome undergoes matching mutation.
    pub match_mutation_prob: f64,
    /// Number of top chromosomes copied unchanged into the next
    /// generation (elitism).
    pub elites: usize,
    /// Seed one chromosome with the fast baseline heuristic (topological
    /// order + best machine per task).
    pub seed_with_heuristic: bool,
    /// RNG seed; runs are fully deterministic given the seed.
    pub seed: u64,
}

impl Default for GaConfig {
    fn default() -> Self {
        GaConfig {
            population: 50,
            crossover_prob: 0.6,
            sched_mutation_prob: 0.4,
            match_mutation_prob: 0.4,
            elites: 1,
            seed_with_heuristic: true,
            seed: 1997, // the reference paper's year
        }
    }
}

impl GaConfig {
    /// Builder-style: set the seed.
    pub fn with_seed(mut self, seed: u64) -> GaConfig {
        self.seed = seed;
        self
    }

    /// Builder-style: set the population size.
    pub fn with_population(mut self, population: usize) -> GaConfig {
        self.population = population;
        self
    }

    /// Panics early on nonsensical settings instead of misbehaving mid-run.
    pub fn validate(&self) {
        assert!(self.population >= 2, "population must hold at least two chromosomes");
        assert!(self.elites < self.population, "elites must leave room for offspring");
        for (name, p) in [
            ("crossover_prob", self.crossover_prob),
            ("sched_mutation_prob", self.sched_mutation_prob),
            ("match_mutation_prob", self.match_mutation_prob),
        ] {
            assert!((0.0..=1.0).contains(&p), "{name} must lie in [0,1], got {p}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_reference() {
        let c = GaConfig::default();
        assert_eq!(c.population, 50);
        assert_eq!(c.elites, 1);
        assert!(c.seed_with_heuristic);
        c.validate();
    }

    #[test]
    fn builders() {
        let c = GaConfig::default().with_seed(4).with_population(10);
        assert_eq!(c.seed, 4);
        assert_eq!(c.population, 10);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn tiny_population_rejected() {
        GaConfig { population: 1, ..Default::default() }.validate();
    }

    #[test]
    #[should_panic(expected = "leave room")]
    fn all_elites_rejected() {
        GaConfig { population: 5, elites: 5, ..Default::default() }.validate();
    }

    #[test]
    #[should_panic(expected = "crossover_prob")]
    fn bad_probability_rejected() {
        GaConfig { crossover_prob: 1.5, ..Default::default() }.validate();
    }
}
