//! Iterative metaheuristic baselines: random search, simulated annealing
//! and tabu search over the same valid-range move neighborhood SE uses.
//!
//! All three optimize whatever [`ObjectiveKind`] the run budget carries.
//! The move-based searches are move-oriented end to end: SA scores each
//! proposal through an [`IncrementalEvaluator`] (suffix replay against
//! the primed current solution — no mutate/undo per rejected proposal),
//! and tabu scores each iteration's sampled neighborhood through the
//! parallel [`BatchEvaluator`] in one call (which routes through
//! per-thread incremental evaluators itself).

use mshc_obs as obs;
use mshc_platform::{HcInstance, MachineId};
use mshc_schedule::{
    certified_gap, random_solution, run_stepped, BatchEvaluator, EvalSnapshot, Evaluator,
    IncrementalEvaluator, Incumbent, InstanceBound, ObjectiveKind, RunBudget, RunResult, ScanStats,
    Scheduler, SearchStep, Solution, StepVerdict, SteppableSearch,
};
use mshc_taskgraph::TaskId;
use mshc_trace::{Trace, TraceRecord};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// The certified instance floor for early termination and gap
/// reporting: `Some` only for the makespan objective (the only one
/// with a certificate). Computed once per run start; consumes no RNG
/// and counts no evaluations, so it cannot perturb a trajectory.
fn certified_floor(inst: &HcInstance, objective: ObjectiveKind) -> Option<f64> {
    objective.is_makespan().then(|| InstanceBound::compute(inst).floor())
}

/// Makespan to report alongside a best objective value: reuses the value
/// when the objective *is* makespan, otherwise runs one (uncounted)
/// reporting pass.
fn reported_makespan(
    inst: &HcInstance,
    best: &Solution,
    best_value: f64,
    objective: ObjectiveKind,
) -> f64 {
    if objective.is_makespan() {
        best_value
    } else {
        Evaluator::new(inst).makespan(best)
    }
}

/// Uniformly samples a neighbor move `(task, position, machine)` from the
/// valid-range neighborhood of `sol` **without applying it** — the
/// move-oriented searches score moves against the unmutated base.
///
/// The RNG consumption order (task, position, machine) is pinned: it is
/// what keeps the incremental SA bit-identical to the historic
/// mutate-evaluate-undo loop.
fn sample_move<R: Rng + ?Sized>(
    sol: &Solution,
    inst: &HcInstance,
    rng: &mut R,
) -> (TaskId, usize, MachineId) {
    let t = TaskId::from_usize(rng.gen_range(0..inst.task_count()));
    let (lo, hi) = sol.valid_range(inst.graph(), t);
    let pos = rng.gen_range(lo..=hi);
    let m = MachineId::from_usize(rng.gen_range(0..inst.machine_count()));
    (t, pos, m)
}

/// Pure random restarts: sample fresh random valid solutions, keep the
/// best. The weakest sensible baseline; everything else should beat it.
#[derive(Debug, Clone)]
pub struct RandomSearch {
    seed: u64,
}

impl RandomSearch {
    /// Creates the search with a seed.
    pub fn new(seed: u64) -> RandomSearch {
        RandomSearch { seed }
    }
}

impl Scheduler for RandomSearch {
    fn name(&self) -> &str {
        "random"
    }

    fn run(
        &mut self,
        inst: &HcInstance,
        budget: &RunBudget,
        trace: Option<&mut Trace>,
    ) -> RunResult {
        budget.validate().expect("random search needs a budget");
        run_stepped(self, inst, budget, trace)
    }
}

impl SteppableSearch for RandomSearch {
    fn start<'a>(&mut self, inst: &'a HcInstance, budget: &RunBudget) -> Box<dyn SearchStep + 'a> {
        let start = Instant::now();
        let objective = budget.objective;
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let snapshot = EvalSnapshot::new(inst);
        let best = random_solution(inst, &mut rng);
        let mut evaluations = 0;
        let best_cost = {
            let mut eval = Evaluator::with_snapshot(&snapshot);
            let cost = eval.objective_value(&best, &objective);
            evaluations += eval.evaluations();
            cost
        };
        // The initial solution counts as iteration 1 (mirrored into the
        // registry so its view matches `RunResult::iterations`).
        obs::add(obs::Counter::Iterations, 1);
        Box::new(RandomState {
            lower_bound: certified_floor(inst, objective),
            inst,
            budget: budget.clone(),
            objective,
            rng,
            snapshot,
            best,
            best_cost,
            iterations: 1,
            stall: 0,
            evaluations,
            early_stopped: false,
            cancelled: false,
            start,
        })
    }
}

/// A paused random-restart run.
struct RandomState<'a> {
    inst: &'a HcInstance,
    budget: RunBudget,
    objective: ObjectiveKind,
    rng: ChaCha8Rng,
    snapshot: EvalSnapshot,
    best: Solution,
    best_cost: f64,
    iterations: u64,
    stall: u64,
    evaluations: u64,
    /// The certified instance floor (`Some` iff makespan objective).
    lower_bound: Option<f64>,
    /// Set when the incumbent reached the floor and the run stopped
    /// early (the incumbent is then provably optimal).
    early_stopped: bool,
    /// Latched cooperative-cancellation flag (checked at iteration
    /// boundaries only, so evaluation counts stay exact).
    cancelled: bool,
    start: Instant,
}

impl SearchStep for RandomState<'_> {
    fn name(&self) -> &str {
        "random"
    }

    fn step(&mut self, max_iterations: u64, mut trace: Option<&mut Trace>) -> StepVerdict {
        let mut eval = Evaluator::with_snapshot(&self.snapshot);
        let mut stepped = 0u64;
        // The initial solution (or an injected migrant) may already sit
        // on the certified floor — then there is nothing left to search.
        self.early_stopped =
            self.early_stopped || self.budget.floor_reached(self.lower_bound, self.best_cost);
        while !self.early_stopped
            && stepped < max_iterations
            && !self.budget.observe_cancel(&mut self.cancelled)
            && !self.budget.halted(
                self.iterations,
                self.evaluations + eval.evaluations(),
                self.start.elapsed(),
                self.stall,
            )
        {
            let cand = random_solution(self.inst, &mut self.rng);
            let cost = eval.objective_value(&cand, &self.objective);
            if cost < self.best_cost {
                self.best_cost = cost;
                self.best = cand;
                self.stall = 0;
                if self.budget.floor_reached(self.lower_bound, self.best_cost) {
                    self.early_stopped = true;
                }
            } else {
                self.stall += 1;
            }
            self.iterations += 1;
            obs::add(obs::Counter::Iterations, 1);
            stepped += 1;
            if let Some(tr) = trace.as_deref_mut() {
                tr.push(TraceRecord {
                    iteration: self.iterations - 1,
                    elapsed_secs: self.start.elapsed().as_secs_f64(),
                    evaluations: self.evaluations + eval.evaluations(),
                    current_cost: cost,
                    best_cost: self.best_cost,
                    selected: None,
                    population_mean: None,
                });
            }
        }
        self.evaluations += eval.evaluations();
        if self.early_stopped
            || self.cancelled
            || self.budget.halted(
                self.iterations,
                self.evaluations,
                self.start.elapsed(),
                self.stall,
            )
        {
            StepVerdict::Exhausted
        } else {
            StepVerdict::Running
        }
    }

    fn incumbent(&self) -> Option<Incumbent<'_>> {
        Some(Incumbent { solution: &self.best, cost: self.best_cost })
    }

    fn inject(&mut self, migrant: &Solution, cost: f64) {
        // Restarts share no working state; a better migrant simply
        // becomes the incumbent.
        if cost < self.best_cost {
            self.best.clone_from(migrant);
            self.best_cost = cost;
            self.stall = 0;
        }
    }

    fn result(&mut self) -> RunResult {
        let makespan = reported_makespan(self.inst, &self.best, self.best_cost, self.objective);
        RunResult {
            solution: self.best.clone(),
            makespan,
            objective_value: self.best_cost,
            iterations: self.iterations,
            evaluations: self.evaluations,
            elapsed: self.start.elapsed(),
            scan: ScanStats::default(),
            lower_bound: self.lower_bound,
            gap: certified_gap(self.lower_bound, self.best_cost),
            early_stopped: self.early_stopped,
            termination: self.budget.termination(
                self.iterations,
                self.evaluations,
                self.start.elapsed(),
                self.stall,
                self.early_stopped,
                self.cancelled,
            ),
        }
    }
}

/// Simulated-annealing parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SaConfig {
    /// Initial temperature as a fraction of the initial makespan.
    pub initial_temp_fraction: f64,
    /// Geometric cooling factor per iteration.
    pub cooling: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SaConfig {
    fn default() -> Self {
        SaConfig { initial_temp_fraction: 0.2, cooling: 0.999, seed: 42 }
    }
}

/// Simulated annealing over the valid-range move neighborhood (the
/// Flan/Freund-style genetic-simulated-annealing lineage the paper cites
/// as \[8\], reduced to its SA core).
///
/// Proposals are scored through an [`IncrementalEvaluator`] primed on
/// the current solution: a rejected proposal costs only a suffix replay
/// (and no mutate/undo), an accepted one re-primes the evaluator. The
/// trajectory is bit-identical to the historic full-evaluation loop for
/// the makespan objective.
#[derive(Debug, Clone)]
pub struct SimulatedAnnealing {
    config: SaConfig,
}

impl SimulatedAnnealing {
    /// Creates the scheduler.
    pub fn new(config: SaConfig) -> SimulatedAnnealing {
        assert!(config.cooling > 0.0 && config.cooling < 1.0, "cooling in (0,1)");
        assert!(config.initial_temp_fraction > 0.0, "temperature must be positive");
        SimulatedAnnealing { config }
    }
}

impl Scheduler for SimulatedAnnealing {
    fn name(&self) -> &str {
        "sa"
    }

    fn run(
        &mut self,
        inst: &HcInstance,
        budget: &RunBudget,
        trace: Option<&mut Trace>,
    ) -> RunResult {
        budget.validate().expect("SA needs a budget");
        run_stepped(self, inst, budget, trace)
    }
}

impl SteppableSearch for SimulatedAnnealing {
    fn start<'a>(&mut self, inst: &'a HcInstance, budget: &RunBudget) -> Box<dyn SearchStep + 'a> {
        let start = Instant::now();
        let cfg = self.config;
        let objective = budget.objective;
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        let snapshot = EvalSnapshot::new(inst);
        let current = random_solution(inst, &mut rng);
        let current_cost = {
            let mut inc = IncrementalEvaluator::with_snapshot(&snapshot);
            inc.set_stride(budget.checkpoint_stride);
            inc.set_pruning(false);
            inc.set_splicing(false);
            inc.prime(&current);
            inc.base_score(&objective)
        };
        let temp = current_cost.max(f64::MIN_POSITIVE) * cfg.initial_temp_fraction;
        Box::new(SaState {
            lower_bound: certified_floor(inst, objective),
            inst,
            cfg,
            budget: budget.clone(),
            objective,
            rng,
            snapshot,
            best: current.clone(),
            best_cost: current_cost,
            current,
            current_cost,
            temp,
            iterations: 0,
            stall: 0,
            proposals: 0,
            scan: ScanStats::default(),
            early_stopped: false,
            cancelled: false,
            start,
        })
    }
}

/// A paused SA run: the annealing trajectory (current solution,
/// temperature) plus incumbent tracking and budget accounting.
struct SaState<'a> {
    inst: &'a HcInstance,
    cfg: SaConfig,
    budget: RunBudget,
    objective: ObjectiveKind,
    rng: ChaCha8Rng,
    snapshot: EvalSnapshot,
    current: Solution,
    current_cost: f64,
    best: Solution,
    best_cost: f64,
    temp: f64,
    iterations: u64,
    stall: u64,
    /// Proposals scored across completed slices. The reported evaluation
    /// count is `1 + proposals`: one for the initial priming pass, one
    /// per proposal — re-primes (on acceptance and at slice starts) are
    /// uncounted cache rebuilds, keeping the axis identical to the
    /// historic full-pass loop however the run is sliced.
    proposals: u64,
    /// Fast-path counters accumulated across completed slices. SA never
    /// bound-prunes (the Metropolis rule needs every proposal's exact
    /// score), but its proposals splice on reconvergence.
    scan: ScanStats,
    /// The certified instance floor (`Some` iff makespan objective).
    lower_bound: Option<f64>,
    /// Set when the incumbent reached the floor and the run stopped
    /// early (the incumbent is then provably optimal).
    early_stopped: bool,
    /// Latched cooperative-cancellation flag (checked at iteration
    /// boundaries only, so evaluation counts stay exact).
    cancelled: bool,
    start: Instant,
}

impl SearchStep for SaState<'_> {
    fn name(&self) -> &str {
        "sa"
    }

    fn step(&mut self, max_iterations: u64, mut trace: Option<&mut Trace>) -> StepVerdict {
        let mut inc = IncrementalEvaluator::with_snapshot(&self.snapshot);
        inc.set_stride(self.budget.checkpoint_stride);
        // SA scores every proposal exactly (the Metropolis rule needs
        // the true delta), so pruning is off and its per-acceptance
        // re-primes skip the bound structures entirely.
        inc.set_pruning(false);
        inc.set_splicing(self.budget.prune);
        inc.prime(&self.current);
        let mut stepped = 0u64;
        self.early_stopped =
            self.early_stopped || self.budget.floor_reached(self.lower_bound, self.best_cost);
        while !self.early_stopped
            && stepped < max_iterations
            && !self.budget.observe_cancel(&mut self.cancelled)
            && !self.budget.halted(
                self.iterations,
                1 + self.proposals + inc.evaluations(),
                self.start.elapsed(),
                self.stall,
            )
        {
            // Propose a move and score it by suffix replay — the current
            // solution is only mutated on acceptance.
            let (t, pos, m) = sample_move(&self.current, self.inst, &mut self.rng);
            let cand_cost = inc.score_move(t, pos, m, &self.objective);
            let accept = cand_cost <= self.current_cost
                || self.rng.gen::<f64>()
                    < ((self.current_cost - cand_cost) / self.temp.max(1e-12)).exp();
            if accept {
                self.current.move_task(self.inst.graph(), t, pos, m).expect("in-range move");
                self.current_cost = cand_cost;
                inc.prime(&self.current);
            }
            if self.current_cost < self.best_cost {
                self.best_cost = self.current_cost;
                self.best.clone_from(&self.current);
                self.stall = 0;
                if self.budget.floor_reached(self.lower_bound, self.best_cost) {
                    self.early_stopped = true;
                }
            } else {
                self.stall += 1;
            }
            self.temp *= self.cfg.cooling;
            self.iterations += 1;
            obs::add(obs::Counter::Iterations, 1);
            stepped += 1;
            if let Some(tr) = trace.as_deref_mut() {
                tr.push(TraceRecord {
                    iteration: self.iterations - 1,
                    elapsed_secs: self.start.elapsed().as_secs_f64(),
                    evaluations: 1 + self.proposals + inc.evaluations(),
                    current_cost: self.current_cost,
                    best_cost: self.best_cost,
                    selected: None,
                    population_mean: None,
                });
            }
        }
        self.proposals += inc.evaluations();
        self.scan.merge(inc.stats());
        if self.early_stopped
            || self.cancelled
            || self.budget.halted(
                self.iterations,
                1 + self.proposals,
                self.start.elapsed(),
                self.stall,
            )
        {
            StepVerdict::Exhausted
        } else {
            StepVerdict::Running
        }
    }

    fn incumbent(&self) -> Option<Incumbent<'_>> {
        Some(Incumbent { solution: &self.best, cost: self.best_cost })
    }

    fn inject(&mut self, migrant: &Solution, cost: f64) {
        // Adopt a better migrant as the annealing point; the temperature
        // schedule continues undisturbed and the next slice re-primes on
        // the adopted solution (uncounted, like any re-prime).
        if cost < self.current_cost {
            self.current.clone_from(migrant);
            self.current_cost = cost;
            if cost < self.best_cost {
                self.best.clone_from(migrant);
                self.best_cost = cost;
                self.stall = 0;
            }
        }
    }

    fn result(&mut self) -> RunResult {
        let makespan = reported_makespan(self.inst, &self.best, self.best_cost, self.objective);
        RunResult {
            solution: self.best.clone(),
            makespan,
            objective_value: self.best_cost,
            iterations: self.iterations,
            evaluations: 1 + self.proposals,
            elapsed: self.start.elapsed(),
            scan: self.scan,
            lower_bound: self.lower_bound,
            gap: certified_gap(self.lower_bound, self.best_cost),
            early_stopped: self.early_stopped,
            termination: self.budget.termination(
                self.iterations,
                1 + self.proposals,
                self.start.elapsed(),
                self.stall,
                self.early_stopped,
                self.cancelled,
            ),
        }
    }
}

/// Tabu-search parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TabuConfig {
    /// Iterations a moved task stays tabu.
    pub tenure: u64,
    /// Neighbor moves sampled per iteration.
    pub samples: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TabuConfig {
    fn default() -> Self {
        TabuConfig { tenure: 8, samples: 24, seed: 42 }
    }
}

/// Sampled-neighborhood tabu search: each iteration samples `samples`
/// moves, resolves the whole sample in one bounded
/// [`BatchEvaluator::best_task_move`] scan (tabu moves contend only
/// through the aspiration criterion: beating the global best), applies
/// the winner and marks the moved task tabu for `tenure` iterations.
/// Moves are drawn *before* any is scored, and the bounded scan selects
/// exactly what the historic score-everything-then-pick loop selected —
/// bit-identical at any thread count, with the same evaluation count.
#[derive(Debug, Clone)]
pub struct TabuSearch {
    config: TabuConfig,
}

impl TabuSearch {
    /// Creates the scheduler.
    pub fn new(config: TabuConfig) -> TabuSearch {
        assert!(config.samples > 0, "need at least one sample per iteration");
        TabuSearch { config }
    }
}

impl Scheduler for TabuSearch {
    fn name(&self) -> &str {
        "tabu"
    }

    fn run(
        &mut self,
        inst: &HcInstance,
        budget: &RunBudget,
        trace: Option<&mut Trace>,
    ) -> RunResult {
        budget.validate().expect("tabu search needs a budget");
        run_stepped(self, inst, budget, trace)
    }
}

impl SteppableSearch for TabuSearch {
    fn start<'a>(&mut self, inst: &'a HcInstance, budget: &RunBudget) -> Box<dyn SearchStep + 'a> {
        let start = Instant::now();
        let cfg = self.config;
        let objective = budget.objective;
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        let snapshot = EvalSnapshot::new(inst);
        let current = random_solution(inst, &mut rng);
        let mut evaluations = 0;
        let current_cost = {
            let mut eval = Evaluator::with_snapshot(&snapshot);
            let cost = eval.objective_value(&current, &objective);
            evaluations += eval.evaluations();
            cost
        };
        Box::new(TabuState {
            lower_bound: certified_floor(inst, objective),
            inst,
            cfg,
            budget: budget.clone(),
            objective,
            rng,
            snapshot,
            best: current.clone(),
            best_cost: current_cost,
            current,
            current_cost,
            tabu_until: vec![0u64; inst.task_count()],
            sampled: Vec::with_capacity(cfg.samples),
            admissible: Vec::with_capacity(cfg.samples),
            iterations: 0,
            stall: 0,
            evaluations,
            scan: ScanStats::default(),
            early_stopped: false,
            cancelled: false,
            start,
        })
    }
}

/// A paused tabu run: trajectory, tabu tenures and budget accounting.
struct TabuState<'a> {
    inst: &'a HcInstance,
    cfg: TabuConfig,
    budget: RunBudget,
    objective: ObjectiveKind,
    rng: ChaCha8Rng,
    snapshot: EvalSnapshot,
    current: Solution,
    current_cost: f64,
    best: Solution,
    best_cost: f64,
    tabu_until: Vec<u64>,
    sampled: Vec<(TaskId, usize, MachineId)>,
    /// Per-sample non-tabu mask for the bounded scan, rebuilt each
    /// iteration.
    admissible: Vec<bool>,
    iterations: u64,
    stall: u64,
    evaluations: u64,
    /// Fast-path counters accumulated across completed slices.
    scan: ScanStats,
    /// The certified instance floor (`Some` iff makespan objective).
    lower_bound: Option<f64>,
    /// Set when the incumbent reached the floor and the run stopped
    /// early (the incumbent is then provably optimal).
    early_stopped: bool,
    /// Latched cooperative-cancellation flag (checked at iteration
    /// boundaries only, so evaluation counts stay exact).
    cancelled: bool,
    start: Instant,
}

impl SearchStep for TabuState<'_> {
    fn name(&self) -> &str {
        "tabu"
    }

    fn step(&mut self, max_iterations: u64, mut trace: Option<&mut Trace>) -> StepVerdict {
        let g = self.inst.graph();
        let mut batch = BatchEvaluator::new(&self.snapshot)
            .with_stride(self.budget.checkpoint_stride)
            .with_pruning(self.budget.prune)
            // The certified floor is only Some under makespan, where it
            // lower-bounds every neighbor — the scan-global cutoff.
            .with_scan_floor(self.lower_bound.unwrap_or(f64::NEG_INFINITY));
        let mut stepped = 0u64;
        self.early_stopped =
            self.early_stopped || self.budget.floor_reached(self.lower_bound, self.best_cost);
        while !self.early_stopped
            && stepped < max_iterations
            && !self.budget.observe_cancel(&mut self.cancelled)
            && !self.budget.halted(
                self.iterations,
                self.evaluations + batch.evaluations(),
                self.start.elapsed(),
                self.stall,
            )
        {
            // Sample the neighborhood, then score the whole sample at once.
            self.sampled.clear();
            for _ in 0..self.cfg.samples {
                let t = TaskId::from_usize(self.rng.gen_range(0..self.inst.task_count()));
                let (lo, hi) = self.current.valid_range(g, t);
                let pos = self.rng.gen_range(lo..=hi);
                let m = MachineId::from_usize(self.rng.gen_range(0..self.inst.machine_count()));
                self.sampled.push((t, pos, m));
            }
            // Tabu status is a pure function of the tenure table, so it
            // is known before scoring — the bounded scan can cut a tabu
            // candidate as soon as it provably misses the aspiration
            // line, and any candidate once it provably loses the argmin.
            self.admissible.clear();
            self.admissible.extend(
                self.sampled.iter().map(|&(t, _, _)| self.tabu_until[t.index()] <= self.iterations),
            );
            let chosen = batch.best_task_move(
                g,
                &self.current,
                &self.sampled,
                Some(&self.admissible),
                self.best_cost,
                &self.objective,
            );
            if let Some(best) = chosen {
                let (t, pos, m) = self.sampled[best.index];
                self.current.move_task(g, t, pos, m).expect("apply chosen");
                self.current_cost = best.score;
                self.tabu_until[t.index()] = self.iterations + self.cfg.tenure;
                if self.current_cost < self.best_cost {
                    self.best_cost = self.current_cost;
                    self.best.clone_from(&self.current);
                    self.stall = 0;
                    if self.budget.floor_reached(self.lower_bound, self.best_cost) {
                        self.early_stopped = true;
                    }
                } else {
                    self.stall += 1;
                }
            } else {
                self.stall += 1;
            }
            self.iterations += 1;
            obs::add(obs::Counter::Iterations, 1);
            stepped += 1;
            if let Some(tr) = trace.as_deref_mut() {
                tr.push(TraceRecord {
                    iteration: self.iterations - 1,
                    elapsed_secs: self.start.elapsed().as_secs_f64(),
                    evaluations: self.evaluations + batch.evaluations(),
                    current_cost: self.current_cost,
                    best_cost: self.best_cost,
                    selected: None,
                    population_mean: None,
                });
            }
        }
        self.evaluations += batch.evaluations();
        self.scan.merge(batch.scan_stats());
        if self.early_stopped
            || self.cancelled
            || self.budget.halted(
                self.iterations,
                self.evaluations,
                self.start.elapsed(),
                self.stall,
            )
        {
            StepVerdict::Exhausted
        } else {
            StepVerdict::Running
        }
    }

    fn incumbent(&self) -> Option<Incumbent<'_>> {
        Some(Incumbent { solution: &self.best, cost: self.best_cost })
    }

    fn inject(&mut self, migrant: &Solution, cost: f64) {
        // Move the trajectory to a better migrant; tenures keep ticking
        // so recently-moved tasks stay tabu around the adopted point.
        if cost < self.current_cost {
            self.current.clone_from(migrant);
            self.current_cost = cost;
            if cost < self.best_cost {
                self.best.clone_from(migrant);
                self.best_cost = cost;
                self.stall = 0;
            }
        }
    }

    fn result(&mut self) -> RunResult {
        let makespan = reported_makespan(self.inst, &self.best, self.best_cost, self.objective);
        RunResult {
            solution: self.best.clone(),
            makespan,
            objective_value: self.best_cost,
            iterations: self.iterations,
            evaluations: self.evaluations,
            elapsed: self.start.elapsed(),
            scan: self.scan,
            lower_bound: self.lower_bound,
            gap: certified_gap(self.lower_bound, self.best_cost),
            early_stopped: self.early_stopped,
            termination: self.budget.termination(
                self.iterations,
                self.evaluations,
                self.start.elapsed(),
                self.stall,
                self.early_stopped,
                self.cancelled,
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mshc_platform::{HcSystem, Matrix};
    use mshc_taskgraph::gen::{layered, LayeredConfig};

    fn random_instance(tasks: usize, machines: usize, seed: u64) -> HcInstance {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let cfg = LayeredConfig { tasks, mean_width: 4, edge_prob: 0.5, skip_prob: 0.05 };
        let graph = layered(&cfg, &mut rng).unwrap();
        let exec = Matrix::from_fn(machines, tasks, |_, _| rng.gen_range(10.0..100.0));
        let pairs = machines * (machines - 1) / 2;
        let transfer = Matrix::from_fn(pairs, graph.data_count(), |_, _| rng.gen_range(1.0..30.0));
        let sys = HcSystem::with_anonymous_machines(machines, exec, transfer).unwrap();
        HcInstance::new(graph, sys).unwrap()
    }

    #[test]
    fn random_search_finds_valid_solutions() {
        let inst = random_instance(20, 3, 31);
        let mut rs = RandomSearch::new(1);
        let r = rs.run(&inst, &RunBudget::iterations(100), None);
        r.solution.check(inst.graph()).unwrap();
        assert_eq!(r.iterations, 100);
        assert_eq!(rs.name(), "random");
    }

    #[test]
    fn sa_improves_on_its_own_start_and_is_valid() {
        let inst = random_instance(25, 4, 32);
        let mut sa = SimulatedAnnealing::new(SaConfig { seed: 2, ..Default::default() });
        let mut trace = Trace::new();
        let r = sa.run(&inst, &RunBudget::iterations(2_000), Some(&mut trace));
        r.solution.check(inst.graph()).unwrap();
        let first = trace.records()[0].current_cost;
        assert!(r.makespan < first, "SA best {} must beat its start {first}", r.makespan);
        assert_eq!(sa.name(), "sa");
    }

    #[test]
    fn sa_rejected_moves_are_undone_correctly() {
        // Validity after thousands of accept/undo cycles is the regression
        // this guards.
        let inst = random_instance(15, 3, 33);
        let mut sa =
            SimulatedAnnealing::new(SaConfig { seed: 3, cooling: 0.9, ..Default::default() });
        let r = sa.run(&inst, &RunBudget::iterations(3_000), None);
        r.solution.check(inst.graph()).unwrap();
        let mk = Evaluator::new(&inst).makespan(&r.solution);
        assert!((mk - r.makespan).abs() < 1e-9);
    }

    #[test]
    fn tabu_valid_and_beats_random_start() {
        let inst = random_instance(25, 4, 34);
        let mut ts = TabuSearch::new(TabuConfig { seed: 4, ..Default::default() });
        let mut trace = Trace::new();
        let r = ts.run(&inst, &RunBudget::iterations(300), Some(&mut trace));
        r.solution.check(inst.graph()).unwrap();
        assert!(r.makespan < trace.records()[0].current_cost * 1.001);
        assert_eq!(ts.name(), "tabu");
    }

    #[test]
    fn metaheuristics_deterministic_under_seed() {
        let inst = random_instance(15, 3, 35);
        let budget = RunBudget::iterations(200);
        let a = SimulatedAnnealing::new(SaConfig { seed: 7, ..Default::default() })
            .run(&inst, &budget, None);
        let b = SimulatedAnnealing::new(SaConfig { seed: 7, ..Default::default() })
            .run(&inst, &budget, None);
        assert_eq!(a.solution, b.solution);
        let c =
            TabuSearch::new(TabuConfig { seed: 7, ..Default::default() }).run(&inst, &budget, None);
        let d =
            TabuSearch::new(TabuConfig { seed: 7, ..Default::default() }).run(&inst, &budget, None);
        assert_eq!(c.solution, d.solution);
        let e = RandomSearch::new(7).run(&inst, &budget, None);
        let f = RandomSearch::new(7).run(&inst, &budget, None);
        assert_eq!(e.solution, f.solution);
    }

    #[test]
    fn no_prune_runs_are_bit_identical_for_sa_and_tabu() {
        // Bounded selection (tabu) and spliced proposals (SA) are pure
        // cost knobs: runs match bit for bit with the fast path off,
        // evaluation counts included.
        let inst = random_instance(22, 4, 39);
        let on_budget = RunBudget::iterations(200);
        let off_budget = RunBudget::iterations(200).with_prune(false);
        let sa_on = SimulatedAnnealing::new(SaConfig { seed: 5, ..Default::default() })
            .run(&inst, &on_budget, None);
        let sa_off = SimulatedAnnealing::new(SaConfig { seed: 5, ..Default::default() }).run(
            &inst,
            &off_budget,
            None,
        );
        assert_eq!(sa_on.solution, sa_off.solution);
        assert_eq!(sa_on.evaluations, sa_off.evaluations);
        assert_eq!(sa_off.scan.spliced, 0);
        let tabu_on = TabuSearch::new(TabuConfig { seed: 5, ..Default::default() })
            .run(&inst, &on_budget, None);
        let tabu_off = TabuSearch::new(TabuConfig { seed: 5, ..Default::default() }).run(
            &inst,
            &off_budget,
            None,
        );
        assert_eq!(tabu_on.solution, tabu_off.solution);
        assert_eq!(tabu_on.makespan, tabu_off.makespan);
        assert_eq!(tabu_on.evaluations, tabu_off.evaluations);
        assert_eq!(tabu_off.scan.pruned, 0);
        assert!(tabu_on.scan.scored > 0, "tabu scans through the bounded path");
    }

    #[test]
    fn tabu_is_bit_identical_across_thread_counts() {
        // Batch-scored neighborhoods must reproduce the historic
        // move-eval-undo loop exactly, at any worker-thread count.
        let inst = random_instance(20, 4, 36);
        let budget = RunBudget::iterations(120);
        let baseline =
            rayon::ThreadPoolBuilder::new().num_threads(1).build().unwrap().install(|| {
                TabuSearch::new(TabuConfig { seed: 9, ..Default::default() })
                    .run(&inst, &budget, None)
            });
        for threads in [2usize, 8] {
            let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
            let r = pool.install(|| {
                TabuSearch::new(TabuConfig { seed: 9, ..Default::default() })
                    .run(&inst, &budget, None)
            });
            assert_eq!(r.solution, baseline.solution, "{threads} threads");
            assert_eq!(r.makespan, baseline.makespan, "{threads} threads");
            assert_eq!(r.evaluations, baseline.evaluations, "{threads} threads");
        }
    }

    #[test]
    fn metaheuristics_optimize_alternate_objectives() {
        use mshc_schedule::{objective_from_report, replay, ObjectiveKind};
        let inst = random_instance(18, 3, 37);
        let kind = ObjectiveKind::TotalFlowtime;
        let budget = RunBudget::iterations(150).with_objective(kind);
        let runs: Vec<RunResult> = vec![
            RandomSearch::new(2).run(&inst, &budget, None),
            SimulatedAnnealing::new(SaConfig { seed: 2, ..Default::default() })
                .run(&inst, &budget, None),
            TabuSearch::new(TabuConfig { seed: 2, ..Default::default() }).run(&inst, &budget, None),
        ];
        for r in runs {
            r.solution.check(inst.graph()).unwrap();
            let sim = replay(&inst, &r.solution).unwrap();
            assert!((r.objective_value - objective_from_report(&kind, &sim)).abs() < 1e-9);
            assert!((r.makespan - sim.makespan).abs() < 1e-9);
        }
    }

    #[test]
    fn stepped_runs_match_plain_runs_at_any_slice_size() {
        // The cooperative interface must not perturb any trajectory:
        // stepping in arbitrary slices reproduces the plain run bit for
        // bit, evaluation counts included, for all three metaheuristics.
        let inst = random_instance(18, 3, 40);
        let budget = RunBudget::iterations(150);
        type MakeSearch = Box<dyn Fn() -> Box<dyn SteppableSearch>>;
        let checks: Vec<(MakeSearch, &str)> = vec![
            (
                Box::new(|| {
                    Box::new(SimulatedAnnealing::new(SaConfig { seed: 6, ..Default::default() }))
                }),
                "sa",
            ),
            (
                Box::new(|| {
                    Box::new(TabuSearch::new(TabuConfig { seed: 6, ..Default::default() }))
                }),
                "tabu",
            ),
            (Box::new(|| Box::new(RandomSearch::new(6))), "random"),
        ];
        for (make, name) in checks {
            let plain = make().run(&inst, &budget, None);
            for slice in [1u64, 7, 64] {
                let mut algo = make();
                let mut state = algo.start(&inst, &budget);
                assert_eq!(state.name(), name);
                assert!(state.incumbent().is_some(), "{name} has an incumbent from the start");
                while !state.step(slice, None).is_exhausted() {}
                let stepped = state.result();
                assert_eq!(stepped.solution, plain.solution, "{name} slice {slice}");
                assert_eq!(stepped.makespan, plain.makespan, "{name} slice {slice}");
                assert_eq!(stepped.evaluations, plain.evaluations, "{name} slice {slice}");
                assert_eq!(stepped.iterations, plain.iterations, "{name} slice {slice}");
            }
        }
    }

    #[test]
    fn inject_improving_migrant_steers_sa_and_tabu() {
        let inst = random_instance(20, 3, 41);
        let budget = RunBudget::iterations(400);
        // A strong donor from an independent longer run.
        let donor = TabuSearch::new(TabuConfig { seed: 13, ..Default::default() }).run(
            &inst,
            &RunBudget::iterations(600),
            None,
        );
        let searches: Vec<Box<dyn SteppableSearch>> = vec![
            Box::new(SimulatedAnnealing::new(SaConfig { seed: 8, ..Default::default() })),
            Box::new(TabuSearch::new(TabuConfig { seed: 8, ..Default::default() })),
            Box::new(RandomSearch::new(8)),
        ];
        for mut algo in searches {
            let mut state = algo.start(&inst, &budget);
            let _ = state.step(10, None);
            state.inject(&donor.solution, donor.objective_value);
            let inc = state.incumbent().expect("incumbent");
            assert!(
                inc.cost <= donor.objective_value,
                "{}: incumbent {} must match/beat the migrant {}",
                state.name(),
                inc.cost,
                donor.objective_value
            );
            while !state.step(u64::MAX, None).is_exhausted() {}
            let r = state.result();
            r.solution.check(inst.graph()).unwrap();
            assert!(r.objective_value <= donor.objective_value + 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "cooling")]
    fn sa_bad_cooling_rejected() {
        let _ = SimulatedAnnealing::new(SaConfig { cooling: 1.5, ..Default::default() });
    }

    #[test]
    #[should_panic(expected = "sample")]
    fn tabu_zero_samples_rejected() {
        let _ = TabuSearch::new(TabuConfig { samples: 0, ..Default::default() });
    }
}
