//! Hermetic stand-in for `serde`.
//!
//! The offline build vendors a simplified serialization framework with
//! the same *spelling* as serde — `#[derive(Serialize, Deserialize)]`,
//! `#[serde(transparent)]`, `use serde::{Serialize, Deserialize}` — but a
//! much smaller data model: values serialize into an in-memory [`Value`]
//! tree and deserialize back out of one. The companion `serde_json`
//! crate renders that tree to and from JSON text.
//!
//! The API intentionally mirrors how this workspace *uses* serde, not
//! serde's full visitor architecture; swapping the real serde back in is
//! a manifest-only change for downstream crates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;

// Let the `::serde::...` paths emitted by the derive macros resolve when
// the derives are exercised inside this crate's own tests.
#[cfg(test)]
extern crate self as serde;

pub use serde_derive::{Deserialize, Serialize};

/// The self-describing tree every value (de)serializes through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` / Rust `Option::None`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered string-keyed map (struct fields, map entries).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The map entries, if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The sequence elements, if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Look up a field in a map value.
    pub fn get_field(&self, name: &str) -> Option<&Value> {
        self.as_map()?.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }

    /// A short name for error messages ("map", "seq", "number", ...).
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) | Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Seq(_) => "seq",
            Value::Map(_) => "map",
        }
    }
}

/// Deserialization error: what was expected, what was found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// A free-form error.
    pub fn custom(msg: impl fmt::Display) -> Error {
        Error(msg.to_string())
    }

    /// "expected X while deserializing Y, found Z".
    pub fn expected(what: &str, target: &str, found: &Value) -> Error {
        Error(format!("expected {what} for {target}, found {}", found.kind()))
    }

    /// A struct field is absent from the map.
    pub fn missing_field(target: &str, field: &str) -> Error {
        Error(format!("missing field `{field}` while deserializing {target}"))
    }

    /// An enum string names no known variant.
    pub fn unknown_variant(target: &str, variant: &str) -> Error {
        Error(format!("unknown variant `{variant}` for {target}"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves into a [`Value`] tree.
pub trait Serialize {
    /// Serialize `self` into the data model.
    fn serialize(&self) -> Value;
}

/// Types that can rebuild themselves from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Deserialize an instance from the data model.
    fn deserialize(v: &Value) -> Result<Self, Error>;
}

// `Value` round-trips through itself, so callers can parse arbitrary
// JSON into the self-describing tree (schema validation, event lines)
// without declaring a struct for it.
impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(v: &Value) -> Result<Value, Error> {
        Ok(v.clone())
    }
}

// ---- primitive impls -------------------------------------------------------

macro_rules! impl_serde_uint {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<$t, Error> {
                match *v {
                    Value::U64(n) => <$t>::try_from(n)
                        .map_err(|_| Error::custom(format!(
                            "integer {n} out of range for {}", stringify!($t)))),
                    _ => Err(Error::expected("unsigned integer", stringify!($t), v)),
                }
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                if *self >= 0 { Value::U64(*self as u64) } else { Value::I64(*self as i64) }
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<$t, Error> {
                match *v {
                    Value::U64(n) => <$t>::try_from(n)
                        .map_err(|_| Error::custom(format!(
                            "integer {n} out of range for {}", stringify!($t)))),
                    Value::I64(n) => <$t>::try_from(n)
                        .map_err(|_| Error::custom(format!(
                            "integer {n} out of range for {}", stringify!($t)))),
                    _ => Err(Error::expected("integer", stringify!($t), v)),
                }
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64, isize);

macro_rules! impl_serde_float {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<$t, Error> {
                match *v {
                    Value::F64(x) => Ok(x as $t),
                    Value::U64(n) => Ok(n as $t),
                    Value::I64(n) => Ok(n as $t),
                    _ => Err(Error::expected("number", stringify!($t), v)),
                }
            }
        }
    )*};
}

impl_serde_float!(f32, f64);

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<bool, Error> {
        match *v {
            Value::Bool(b) => Ok(b),
            _ => Err(Error::expected("bool", "bool", v)),
        }
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<String, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::expected("string", "String", v)),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(x) => x.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Option<T>, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Vec<T>, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::deserialize).collect(),
            _ => Err(Error::expected("seq", "Vec", v)),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(v: &Value) -> Result<Box<T>, Error> {
        T::deserialize(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Box<[T]> {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Box<[T]> {
    fn deserialize(v: &Value) -> Result<Box<[T]>, Error> {
        Vec::<T>::deserialize(v).map(Vec::into_boxed_slice)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn deserialize(v: &Value) -> Result<[T; N], Error> {
        let items = v.as_seq().ok_or_else(|| Error::expected("seq", "array", v))?;
        if items.len() != N {
            return Err(Error::custom(format!("expected {N} elements, found {}", items.len())));
        }
        let vec: Vec<T> = items.iter().map(T::deserialize).collect::<Result<_, _>>()?;
        Ok(vec.try_into().expect("length checked above"))
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+)),* $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize(&self) -> Value {
                Value::Seq(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let items = v.as_seq().ok_or_else(|| Error::expected("seq", "tuple", v))?;
                let expected = [$(stringify!($idx)),+].len();
                if items.len() != expected {
                    return Err(Error::custom(format!(
                        "expected a {expected}-tuple, found {} elements", items.len())));
                }
                Ok(($($name::deserialize(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_serde_tuple! {
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
}

impl<K, V> Serialize for BTreeMap<K, V>
where
    K: fmt::Display,
    V: Serialize,
{
    fn serialize(&self) -> Value {
        Value::Map(self.iter().map(|(k, v)| (k.to_string(), v.serialize())).collect())
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let entries = v.as_map().ok_or_else(|| Error::expected("map", "BTreeMap", v))?;
        entries.iter().map(|(k, v)| Ok((k.clone(), V::deserialize(v)?))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Serialize, Deserialize)]
    struct Derived {
        name: String,
        #[allow(dead_code)]
        hook: fn(u32) -> u32,
        count: usize,
    }

    impl Serialize for fn(u32) -> u32 {
        fn serialize(&self) -> Value {
            Value::Null
        }
    }

    impl Deserialize for fn(u32) -> u32 {
        fn deserialize(_: &Value) -> Result<Self, Error> {
            Ok(std::convert::identity)
        }
    }

    #[rustfmt::skip]
    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct TrailingTuple(u32, u32,);

    #[test]
    fn derive_handles_fn_pointer_fields_and_trailing_commas() {
        // `->` in the field type must not swallow the following field.
        let d = Derived { name: "x".into(), hook: std::convert::identity, count: 7 };
        let v = d.serialize();
        assert_eq!(v.get_field("count"), Some(&Value::U64(7)));
        assert_eq!(Derived::deserialize(&v).unwrap().count, 7);
        // A trailing comma must not inflate the tuple arity.
        let t = TrailingTuple(1, 2);
        assert_eq!(TrailingTuple::deserialize(&t.serialize()).unwrap(), t);
    }

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u32::deserialize(&17u32.serialize()).unwrap(), 17);
        assert_eq!(i64::deserialize(&(-4i64).serialize()).unwrap(), -4);
        assert_eq!(f64::deserialize(&3.25f64.serialize()).unwrap(), 3.25);
        assert_eq!(Option::<u8>::deserialize(&Value::Null).unwrap(), None);
        assert_eq!(Vec::<u8>::deserialize(&vec![1u8, 2].serialize()).unwrap(), vec![1, 2]);
    }

    #[test]
    fn type_errors_are_rejected() {
        assert!(u32::deserialize(&Value::Str("x".into())).is_err());
        assert!(u8::deserialize(&Value::U64(300)).is_err());
        assert!(Vec::<u8>::deserialize(&Value::Bool(true)).is_err());
    }
}
