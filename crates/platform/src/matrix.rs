//! Flat row-major `f64` matrix.
//!
//! Both paper matrices (`E`: machines × tasks, `Tr`: machine pairs × data
//! items) are dense and hot — the schedule evaluator reads them in its
//! inner loop — so they live in a single boxed slice (perf-book: one
//! allocation, no pointer chasing, row-contiguous access).

use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense row-major matrix of `f64`.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Box<[f64]>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with `fill`.
    pub fn filled(rows: usize, cols: usize, fill: f64) -> Matrix {
        Matrix { rows, cols, data: vec![fill; rows * cols].into_boxed_slice() }
    }

    /// Creates a matrix from a row-major vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Matrix {
        assert_eq!(data.len(), rows * cols, "matrix data length mismatch");
        Matrix { rows, cols, data: data.into_boxed_slice() }
    }

    /// Creates a matrix from nested rows.
    ///
    /// # Panics
    /// Panics if rows have unequal lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Matrix {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged matrix rows");
            data.extend_from_slice(row);
        }
        Matrix { rows: r, cols: c, data: data.into_boxed_slice() }
    }

    /// Builds a matrix by evaluating `f(row, col)` for every cell.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Matrix {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data: data.into_boxed_slice() }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Cell accessor.
    ///
    /// # Panics
    /// Panics on out-of-range indices (debug-friendly bounds message).
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        debug_assert!(row < self.rows && col < self.cols, "matrix index out of range");
        self.data[row * self.cols + col]
    }

    /// Mutable cell accessor.
    #[inline]
    pub fn get_mut(&mut self, row: usize, col: usize) -> &mut f64 {
        debug_assert!(row < self.rows && col < self.cols, "matrix index out of range");
        &mut self.data[row * self.cols + col]
    }

    /// Sets a cell.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        *self.get_mut(row, col) = value;
    }

    /// A whole row as a slice — the hot path for "execution times of task
    /// t on every machine" style queries is column access, but row access
    /// (`all tasks on machine m`) is contiguous.
    #[inline]
    pub fn row(&self, row: usize) -> &[f64] {
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Iterates over one column (strided).
    pub fn col_iter(&self, col: usize) -> impl ExactSizeIterator<Item = f64> + '_ {
        (0..self.rows).map(move |r| self.get(r, col))
    }

    /// All cells, row-major.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Minimum over a column together with its row index; `None` for an
    /// empty matrix. Ties resolve to the smallest row index.
    pub fn col_min(&self, col: usize) -> Option<(usize, f64)> {
        (0..self.rows)
            .map(|r| (r, self.get(r, col)))
            .min_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)))
    }

    /// Mean over a column; `None` for a matrix with zero rows.
    pub fn col_mean(&self, col: usize) -> Option<f64> {
        if self.rows == 0 {
            return None;
        }
        Some(self.col_iter(col).sum::<f64>() / self.rows as f64)
    }

    /// Rows of the column sorted ascending by value (ties by row index).
    /// Used by the SE allocation step to pick a task's `Y` best-matching
    /// machines (§4.5).
    pub fn col_ranking(&self, col: usize) -> Vec<usize> {
        let mut rows: Vec<usize> = (0..self.rows).collect();
        rows.sort_by(|&a, &b| self.get(a, col).total_cmp(&self.get(b, col)).then(a.cmp(&b)));
        rows
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows {
            write!(f, "  ")?;
            for c in 0..self.cols {
                write!(f, "{:>10.2} ", self.get(r, c))?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filled_and_shape() {
        let m = Matrix::filled(2, 3, 1.5);
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m.get(1, 2), 1.5);
        assert_eq!(m.as_slice().len(), 6);
    }

    #[test]
    fn from_vec_roundtrip() {
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(0, 1), 2.0);
        assert_eq!(m.get(1, 0), 3.0);
        assert_eq!(m.get(1, 1), 4.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn from_vec_bad_len() {
        let _ = Matrix::from_vec(2, 2, vec![1.0]);
    }

    #[test]
    fn from_rows_and_row_access() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m.row(0), &[1.0, 2.0]);
        assert_eq!(m.row(1), &[3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn from_rows_ragged_panics() {
        let _ = Matrix::from_rows(&[vec![1.0], vec![2.0, 3.0]]);
    }

    #[test]
    fn from_fn_builds_cells() {
        let m = Matrix::from_fn(3, 3, |r, c| (r * 10 + c) as f64);
        assert_eq!(m.get(2, 1), 21.0);
    }

    #[test]
    fn set_and_get_mut() {
        let mut m = Matrix::filled(1, 2, 0.0);
        m.set(0, 1, 9.0);
        *m.get_mut(0, 0) += 4.0;
        assert_eq!(m.row(0), &[4.0, 9.0]);
    }

    #[test]
    fn col_iter_and_stats() {
        let m = Matrix::from_rows(&[vec![5.0, 1.0], vec![2.0, 8.0], vec![7.0, 0.5]]);
        assert_eq!(m.col_iter(0).collect::<Vec<_>>(), vec![5.0, 2.0, 7.0]);
        assert_eq!(m.col_min(0), Some((1, 2.0)));
        assert_eq!(m.col_min(1), Some((2, 0.5)));
        assert!((m.col_mean(0).unwrap() - 14.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn col_min_tie_prefers_smaller_row() {
        let m = Matrix::from_rows(&[vec![3.0], vec![3.0]]);
        assert_eq!(m.col_min(0), Some((0, 3.0)));
    }

    #[test]
    fn col_ranking_sorted() {
        let m = Matrix::from_rows(&[vec![5.0], vec![2.0], vec![7.0], vec![2.0]]);
        assert_eq!(m.col_ranking(0), vec![1, 3, 0, 2]);
    }

    #[test]
    fn debug_format_contains_values() {
        let m = Matrix::from_rows(&[vec![1.0]]);
        let s = format!("{m:?}");
        assert!(s.contains("Matrix 1x1"));
        assert!(s.contains("1.00"));
    }
}
