//! Incremental construction of schedules by readiness-driven appending.
//!
//! Every constructive heuristic shares the same bookkeeping: track which
//! tasks are ready (all predecessors scheduled), compute earliest start /
//! finish times for candidate (task, machine) pairs, and commit one pair
//! at a time. The builder's internal times coincide exactly with what
//! [`mshc_schedule::Evaluator`] later reports for the finished
//! [`Solution`], because tasks are appended to machine queues in the same
//! order the evaluator walks them.

use mshc_platform::{HcInstance, MachineId};
use mshc_schedule::Solution;
use mshc_taskgraph::TaskId;

/// Partial-schedule builder.
#[derive(Debug, Clone)]
pub struct ListScheduleBuilder<'a> {
    inst: &'a HcInstance,
    finish: Vec<f64>,
    assignment: Vec<MachineId>,
    scheduled: Vec<bool>,
    machine_avail: Vec<f64>,
    order: Vec<TaskId>,
    missing_preds: Vec<u32>,
    ready: Vec<TaskId>,
}

impl<'a> ListScheduleBuilder<'a> {
    /// Starts an empty schedule for `inst`.
    pub fn new(inst: &'a HcInstance) -> ListScheduleBuilder<'a> {
        let g = inst.graph();
        let k = g.task_count();
        let missing_preds: Vec<u32> =
            (0..k).map(|i| g.in_degree(TaskId::from_usize(i)) as u32).collect();
        let ready = g.tasks().filter(|&t| missing_preds[t.index()] == 0).collect();
        ListScheduleBuilder {
            inst,
            finish: vec![0.0; k],
            assignment: vec![MachineId::new(0); k],
            scheduled: vec![false; k],
            machine_avail: vec![0.0; inst.machine_count()],
            order: Vec::with_capacity(k),
            missing_preds,
            ready,
        }
    }

    /// The bound instance.
    pub fn instance(&self) -> &'a HcInstance {
        self.inst
    }

    /// Tasks currently ready (unscheduled, all predecessors scheduled),
    /// in ascending id order for determinism.
    pub fn ready_tasks(&self) -> Vec<TaskId> {
        let mut r = self.ready.clone();
        r.sort_unstable();
        r
    }

    /// Whether every task has been scheduled.
    pub fn is_complete(&self) -> bool {
        self.order.len() == self.inst.task_count()
    }

    /// Number of tasks scheduled so far.
    pub fn scheduled_count(&self) -> usize {
        self.order.len()
    }

    /// Finish time of a scheduled task.
    ///
    /// # Panics
    /// Panics if `t` is not scheduled yet.
    pub fn finish_of(&self, t: TaskId) -> f64 {
        assert!(self.scheduled[t.index()], "{t} not scheduled yet");
        self.finish[t.index()]
    }

    /// Machine a scheduled task was committed to.
    ///
    /// # Panics
    /// Panics if `t` is not scheduled yet.
    pub fn assignment_of(&self, t: TaskId) -> MachineId {
        assert!(self.scheduled[t.index()], "{t} not scheduled yet");
        self.assignment[t.index()]
    }

    /// Earliest start time of ready task `t` on machine `m` under the
    /// append policy: `max(machine available, latest data arrival)`.
    pub fn est(&self, t: TaskId, m: MachineId) -> f64 {
        debug_assert!(!self.scheduled[t.index()]);
        let g = self.inst.graph();
        let sys = self.inst.system();
        let mut ready = self.machine_avail[m.index()];
        for e in g.in_edges(t) {
            debug_assert!(self.scheduled[e.src.index()], "{t} must be ready");
            let arrival = self.finish[e.src.index()]
                + sys.transfer_time(e.id, self.assignment[e.src.index()], m);
            ready = ready.max(arrival);
        }
        ready
    }

    /// Earliest finish time of ready task `t` on machine `m`.
    pub fn eft(&self, t: TaskId, m: MachineId) -> f64 {
        self.est(t, m) + self.inst.system().exec_time(m, t)
    }

    /// The machine minimizing EFT for `t` (ties to the smallest id), with
    /// the resulting finish time.
    pub fn best_eft(&self, t: TaskId) -> (MachineId, f64) {
        self.inst
            .system()
            .machine_ids()
            .map(|m| (m, self.eft(t, m)))
            .min_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)))
            .expect("at least one machine")
    }

    /// Commits ready task `t` to machine `m`; returns its finish time.
    ///
    /// # Panics
    /// Panics if `t` is not ready.
    pub fn schedule(&mut self, t: TaskId, m: MachineId) -> f64 {
        let pos =
            self.ready.iter().position(|&x| x == t).unwrap_or_else(|| panic!("{t} is not ready"));
        self.ready.swap_remove(pos);
        let finish = self.eft(t, m);
        self.finish[t.index()] = finish;
        self.assignment[t.index()] = m;
        self.scheduled[t.index()] = true;
        self.machine_avail[m.index()] = finish;
        self.order.push(t);
        for s in self.inst.graph().successors(t) {
            self.missing_preds[s.index()] -= 1;
            if self.missing_preds[s.index()] == 0 {
                self.ready.push(s);
            }
        }
        finish
    }

    /// Current makespan of the partial schedule.
    pub fn makespan(&self) -> f64 {
        self.machine_avail.iter().copied().fold(0.0, f64::max)
    }

    /// Freezes the completed schedule into a [`Solution`].
    ///
    /// # Panics
    /// Panics if tasks remain unscheduled.
    pub fn into_solution(self) -> Solution {
        assert!(self.is_complete(), "schedule incomplete");
        Solution::from_order(
            self.inst.graph(),
            self.inst.machine_count(),
            &self.order,
            &self.assignment,
        )
        .expect("readiness-driven appending yields a linear extension")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mshc_platform::{HcSystem, Matrix};
    use mshc_schedule::Evaluator;
    use mshc_taskgraph::TaskGraphBuilder;

    fn instance() -> HcInstance {
        let mut b = TaskGraphBuilder::new(4);
        for (s, d) in [(0, 1), (0, 2), (1, 3), (2, 3)] {
            b.add_edge(s, d).unwrap();
        }
        let g = b.build().unwrap();
        let exec = Matrix::from_rows(&[vec![2.0, 3.0, 4.0, 1.0], vec![4.0, 1.0, 2.0, 3.0]]);
        let transfer = Matrix::from_rows(&[vec![1.0, 1.0, 1.0, 1.0]]);
        let sys = HcSystem::with_anonymous_machines(2, exec, transfer).unwrap();
        HcInstance::new(g, sys).unwrap()
    }

    #[test]
    fn readiness_tracking() {
        let inst = instance();
        let mut b = ListScheduleBuilder::new(&inst);
        assert_eq!(b.ready_tasks(), vec![TaskId::new(0)]);
        assert!(!b.is_complete());
        b.schedule(TaskId::new(0), MachineId::new(0));
        assert_eq!(b.ready_tasks(), vec![TaskId::new(1), TaskId::new(2)]);
        b.schedule(TaskId::new(1), MachineId::new(1));
        b.schedule(TaskId::new(2), MachineId::new(1));
        assert_eq!(b.ready_tasks(), vec![TaskId::new(3)]);
        b.schedule(TaskId::new(3), MachineId::new(0));
        assert!(b.is_complete());
        assert_eq!(b.scheduled_count(), 4);
    }

    #[test]
    #[should_panic(expected = "not ready")]
    fn scheduling_unready_task_panics() {
        let inst = instance();
        let mut b = ListScheduleBuilder::new(&inst);
        b.schedule(TaskId::new(3), MachineId::new(0));
    }

    #[test]
    fn est_accounts_for_comm_and_availability() {
        let inst = instance();
        let mut b = ListScheduleBuilder::new(&inst);
        b.schedule(TaskId::new(0), MachineId::new(0)); // finish 2

        // s1 on m0: machine free at 2, data co-located => est 2
        assert_eq!(b.est(TaskId::new(1), MachineId::new(0)), 2.0);
        // s1 on m1: machine free at 0, data arrives 2+1=3 => est 3
        assert_eq!(b.est(TaskId::new(1), MachineId::new(1)), 3.0);
        // EFTs: m0: 2+3=5, m1: 3+1=4 => best is m1
        assert_eq!(b.best_eft(TaskId::new(1)), (MachineId::new(1), 4.0));
    }

    #[test]
    fn builder_times_match_evaluator() {
        let inst = instance();
        let mut b = ListScheduleBuilder::new(&inst);
        b.schedule(TaskId::new(0), MachineId::new(0));
        b.schedule(TaskId::new(2), MachineId::new(1));
        b.schedule(TaskId::new(1), MachineId::new(1));
        b.schedule(TaskId::new(3), MachineId::new(0));
        let internal_makespan = b.makespan();
        let finishes: Vec<f64> = (0..4).map(|i| b.finish_of(TaskId::new(i))).collect();
        let sol = b.into_solution();
        let r = Evaluator::new(&inst).report(&sol);
        assert_eq!(r.makespan, internal_makespan);
        for (i, expected) in finishes.iter().enumerate() {
            assert!((r.finish[i] - expected).abs() < 1e-12, "task {i}");
        }
    }

    #[test]
    #[should_panic(expected = "incomplete")]
    fn incomplete_into_solution_panics() {
        let inst = instance();
        let b = ListScheduleBuilder::new(&inst);
        let _ = b.into_solution();
    }

    #[test]
    #[should_panic(expected = "not scheduled yet")]
    fn finish_of_unscheduled_panics() {
        let inst = instance();
        let b = ListScheduleBuilder::new(&inst);
        let _ = b.finish_of(TaskId::new(0));
    }
}
