//! # mshc — Task Matching and Scheduling in Heterogeneous Systems Using Simulated Evolution
//!
//! A production-quality Rust reproduction of Barada, Sait & Baig (IPPS
//! 2001). This facade crate re-exports the whole suite:
//!
//! | crate | contents |
//! |---|---|
//! | [`taskgraph`] | DAG substrate: ids, adjacency, topological orders, levels, generators |
//! | [`platform`] | HC system: machines, execution matrix `E`, transfer matrix `Tr` |
//! | [`schedule`] | solution encoding, the three-tier objective-generic evaluation stack (scalar → batch → incremental), Gantt, DES replay, `Scheduler` trait |
//! | [`core`] | **the paper's contribution**: the simulated-evolution scheduler |
//! | [`ga`] | the Wang et al. genetic-algorithm baseline the paper compares against |
//! | [`heuristics`] | HEFT, CPOP, min-min family, random search, SA, tabu |
//! | [`workloads`] | §5 random workload generator (connectivity × heterogeneity × CCR) + scenario suites |
//! | [`portfolio`] | deterministic parallel tournament engine: race every scheduler across scenario grids |
//! | [`trace`] | per-iteration traces, CSV, ASCII plots |
//! | [`stats`] | summaries, online accumulators, trend fits |
//! | [`obs`] | determinism-safe observability: metrics registry, planes, spans, JSONL events |
//!
//! ## Thirty-second tour
//!
//! ```
//! use mshc::prelude::*;
//!
//! // A random paper-style workload: 40 tasks, 6 machines, high connectivity.
//! let spec = WorkloadSpec {
//!     tasks: 40,
//!     machines: 6,
//!     connectivity: Connectivity::High,
//!     heterogeneity: Heterogeneity::Medium,
//!     ccr: 0.5,
//!     seed: 7,
//! };
//! let inst = spec.generate();
//!
//! // Simulated evolution, 100 iterations.
//! let mut se = SeScheduler::new(SeConfig { seed: 7, ..SeConfig::default() });
//! let result = se.run(&inst, &RunBudget::iterations(100), None);
//!
//! // The solution is a valid combined matching+scheduling string...
//! result.solution.check(inst.graph()).unwrap();
//! // ...and beats the HEFT one-shot baseline on this seeded workload.
//! let heft = HeftScheduler::new().run(&inst, &RunBudget::default(), None);
//! assert!(result.makespan <= heft.makespan * 1.05);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use mshc_core as core;
pub use mshc_ga as ga;
pub use mshc_heuristics as heuristics;
pub use mshc_obs as obs;
pub use mshc_platform as platform;
pub use mshc_portfolio as portfolio;
pub use mshc_schedule as schedule;
pub use mshc_stats as stats;
pub use mshc_taskgraph as taskgraph;
pub use mshc_trace as trace;
pub use mshc_workloads as workloads;

/// Everything a typical user needs, one import away.
pub mod prelude {
    pub use mshc_core::{AllocationStrategy, SeConfig, SeScheduler};
    pub use mshc_ga::{GaConfig, GaScheduler};
    pub use mshc_heuristics::{
        CpopScheduler, HeftScheduler, ListPolicy, ListScheduler, RandomSearch, SaConfig,
        SimulatedAnnealing, TabuConfig, TabuSearch,
    };
    pub use mshc_platform::{
        ArchClass, HcInstance, HcSystem, InstanceMetrics, Machine, MachineId, Matrix,
    };
    pub use mshc_portfolio::{run_tournament, Leaderboard, TournamentSpec};
    pub use mshc_schedule::{
        replay, BatchEvaluator, CancelToken, CellFault, Disturbance, DisturbanceKind, EvalSnapshot,
        Evaluator, FaultPlan, Gantt, IncrementalEvaluator, Objective, ObjectiveKind,
        ObjectiveState, ReplanReport, Replanner, RunBudget, RunResult, Scheduler, SearchStep,
        Segment, Solution, StepVerdict, SteppableSearch, Termination,
    };
    pub use mshc_taskgraph::{DataId, TaskGraph, TaskGraphBuilder, TaskId};
    pub use mshc_trace::{AsciiPlot, Series, Trace, TraceRecord};
    pub use mshc_workloads::{
        figure1, Connectivity, DisturbanceTrace, DisturbanceTraceSpec, FigureWorkload,
        Heterogeneity, Scenario, WorkloadSpec,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_compose() {
        let inst = figure1();
        let mut se = SeScheduler::new(SeConfig { seed: 1, ..SeConfig::default() });
        let r = se.run(&inst, &RunBudget::iterations(20), None);
        r.solution.check(inst.graph()).unwrap();
        assert!(r.makespan > 0.0);
    }
}
