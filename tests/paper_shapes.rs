//! Figure-shape integration tests: the qualitative claims of the paper's
//! evaluation (§5), asserted on seeded workloads at reduced scale.
//!
//! These are the "does the reproduction behave like the paper says"
//! tests; EXPERIMENTS.md records the full-scale runs.

use mshc::prelude::*;
use mshc::stats::LinearFit;

/// Fig 3a: "Initially a large number of individuals should be selected …
/// in later iterations the number of selected individuals should decrease
/// gradually."
#[test]
fn fig3a_selected_count_decays() {
    let inst = FigureWorkload::Fig3.spec(2001).generate();
    let mut se = SeScheduler::new(SeConfig {
        seed: 2001,
        selection_bias: SeConfig::recommended_bias(inst.task_count()),
        ..SeConfig::default()
    });
    let mut trace = Trace::new();
    se.run(&inst, &RunBudget::iterations(80), Some(&mut trace));
    let pts = trace.selected_series();
    let fit = LinearFit::fit(pts.points());
    assert!(fit.slope < 0.0, "selected-count trend must be negative, got {}", fit.slope);
    let first = pts.points()[0].1;
    let last_quarter: Vec<f64> = pts.points()[60..].iter().map(|p| p.1).collect();
    let tail = last_quarter.iter().sum::<f64>() / last_quarter.len() as f64;
    assert!(tail < 0.7 * first, "first {first}, tail mean {tail}");
}

/// Fig 3b: the schedule length of the current solution trends downward.
#[test]
fn fig3b_schedule_length_decreases() {
    let inst = FigureWorkload::Fig3.spec(2001).generate();
    let mut se =
        SeScheduler::new(SeConfig { seed: 2001, selection_bias: 0.05, ..SeConfig::default() });
    let mut trace = Trace::new();
    se.run(&inst, &RunBudget::iterations(80), Some(&mut trace));
    let first = trace.records()[0].current_cost;
    let best = trace.last().unwrap().best_cost;
    assert!(best < 0.8 * first, "schedule length {first} should drop clearly, got {best}");
    // best-so-far is non-increasing by construction
    for w in trace.records().windows(2) {
        assert!(w[1].best_cost <= w[0].best_cost + 1e-12);
    }
}

/// Fig 4a: for *low* heterogeneity, larger Y gives equal-or-better final
/// quality (§5.2: "increasing Y almost always improved the quality").
#[test]
fn fig4a_larger_y_no_worse_on_low_heterogeneity() {
    let inst = FigureWorkload::Fig4Low.spec(2001).generate();
    let run_y = |y: usize| {
        let mut se = SeScheduler::new(SeConfig {
            seed: 2001,
            selection_bias: 0.05,
            y_limit: Some(y),
            ..SeConfig::default()
        });
        se.run(&inst, &RunBudget::iterations(60), None).makespan
    };
    let y2 = run_y(2);
    let y20 = run_y(20);
    assert!(
        y20 <= y2 * 1.02,
        "full Y ({y20}) should not lose clearly to Y=2 ({y2}) on low heterogeneity"
    );
}

/// Fig 4 timing claim: "the timing requirements for the SE algorithm
/// increase as Y increases" — measured as evaluations per run (the
/// deterministic cost axis).
#[test]
fn fig4_evaluations_grow_with_y() {
    let inst = FigureWorkload::Fig4High.spec(2001).generate();
    let evals_y = |y: usize| {
        let mut se = SeScheduler::new(SeConfig {
            seed: 2001,
            selection_bias: 0.05,
            y_limit: Some(y),
            ..SeConfig::default()
        });
        se.run(&inst, &RunBudget::iterations(10), None).evaluations
    };
    let e5 = evals_y(5);
    let e9 = evals_y(9);
    let e12 = evals_y(12);
    assert!(e5 < e9 && e9 < e12, "evaluations must grow with Y: {e5} {e9} {e12}");
}

/// Figs 5–6 shape: on *hard* workloads ("high connectivity, and/or high
/// heterogeneity, and/or high CCR", §5.3) SE reaches a better schedule
/// than GA within the same evaluation budget. The full-scale fig5/fig6
/// races (time axis, 100 tasks) live in EXPERIMENTS.md; this test pins
/// the shape on a scaled-down hard workload so it stays fast and exactly
/// deterministic in debug builds.
#[test]
fn fig5_6_se_beats_ga_on_hard_workloads() {
    // Seeds pinned against the vendored ChaCha8 stream (see vendor/):
    // SE's margin over GA is > 2% on both, so the shape is stable.
    for seed in [1u64, 10] {
        let inst = WorkloadSpec {
            tasks: 60,
            machines: 12,
            connectivity: Connectivity::High,
            heterogeneity: Heterogeneity::High,
            ccr: 1.0,
            seed,
        }
        .generate();
        let budget = RunBudget::evaluations(150_000);
        let se = SeScheduler::new(SeConfig {
            seed,
            selection_bias: SeConfig::recommended_bias(inst.task_count()),
            ..SeConfig::default()
        })
        .run(&inst, &budget, None);
        let ga =
            GaScheduler::new(GaConfig { seed, ..GaConfig::default() }).run(&inst, &budget, None);
        assert!(
            se.makespan < ga.makespan,
            "seed {seed}: SE ({}) should beat GA ({}) under an equal budget",
            se.makespan,
            ga.makespan
        );
    }
}

/// Fig 7 shape: on the easy workload the gap closes — GA is competitive
/// (the paper: "the conclusion is not as clear"). We assert the gap is
/// small rather than a winner.
#[test]
fn fig7_gap_is_small_on_easy_workload() {
    let inst = FigureWorkload::Fig7.spec(2001).generate();
    let budget = RunBudget::evaluations(120_000);
    let se = SeScheduler::new(SeConfig {
        seed: 2001,
        selection_bias: SeConfig::recommended_bias(inst.task_count()),
        ..SeConfig::default()
    })
    .run(&inst, &budget, None);
    let ga =
        GaScheduler::new(GaConfig { seed: 2001, ..GaConfig::default() }).run(&inst, &budget, None);
    let gap = (se.makespan - ga.makespan).abs() / se.makespan.min(ga.makespan);
    assert!(gap < 0.25, "easy workload: SE {} vs GA {} (gap {gap:.2})", se.makespan, ga.makespan);
}
