//! Typed errors for task-graph construction and queries.

use crate::ids::TaskId;
use std::fmt;

/// Errors produced when building or manipulating a [`crate::TaskGraph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An edge endpoint referred to a task index `>= task_count`.
    TaskOutOfRange {
        /// The offending task index.
        task: u32,
        /// Number of tasks in the graph under construction.
        task_count: u32,
    },
    /// A self-loop `s -> s` was added; DAGs cannot contain them.
    SelfLoop(TaskId),
    /// The same ordered pair of tasks was connected twice.
    ///
    /// The paper's model has at most one data item per task pair; multiple
    /// logical transfers between the same pair are merged into one data item
    /// whose size is the sum.
    DuplicateEdge(TaskId, TaskId),
    /// The edge set contains a directed cycle, so no topological order (and
    /// hence no valid schedule string, §4.1) exists. Contains one task on a
    /// cycle as a witness.
    Cycle(TaskId),
    /// The graph has no tasks. Every MSHC instance needs at least one
    /// subtask.
    Empty,
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::TaskOutOfRange { task, task_count } => {
                write!(f, "task index {task} out of range (graph has {task_count} tasks)")
            }
            GraphError::SelfLoop(t) => write!(f, "self-loop on task {t}"),
            GraphError::DuplicateEdge(a, b) => {
                write!(f, "duplicate edge {a} -> {b}; merge data items instead")
            }
            GraphError::Cycle(t) => {
                write!(f, "edge set contains a directed cycle through {t}")
            }
            GraphError::Empty => write!(f, "task graph must contain at least one task"),
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            GraphError::TaskOutOfRange { task: 9, task_count: 3 }.to_string(),
            "task index 9 out of range (graph has 3 tasks)"
        );
        assert_eq!(GraphError::SelfLoop(TaskId::new(2)).to_string(), "self-loop on task s2");
        assert_eq!(
            GraphError::DuplicateEdge(TaskId::new(0), TaskId::new(1)).to_string(),
            "duplicate edge s0 -> s1; merge data items instead"
        );
        assert!(GraphError::Cycle(TaskId::new(4)).to_string().contains("s4"));
        assert!(GraphError::Empty.to_string().contains("at least one"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&GraphError::Empty);
    }
}
