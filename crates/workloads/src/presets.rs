//! The exact workload classes behind each paper figure, plus the
//! reconstructed Figure-1 worked example.

use crate::spec::{Connectivity, Heterogeneity, WorkloadSpec};
use mshc_platform::{HcInstance, HcSystem, Matrix};
use mshc_taskgraph::TaskGraphBuilder;
use serde::{Deserialize, Serialize};

/// Which evaluation figure a workload class reproduces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FigureWorkload {
    /// Fig 3: large size, high connectivity (SE effectiveness).
    Fig3,
    /// Fig 4a: large size, low heterogeneity (Y sweep).
    Fig4Low,
    /// Fig 4b: large size, high heterogeneity (Y sweep).
    Fig4High,
    /// Fig 5: 100 tasks / 20 machines, high connectivity.
    Fig5,
    /// Fig 6: 100 tasks / 20 machines, CCR = 1.
    Fig6,
    /// Fig 7: 100 tasks / 20 machines, low connectivity, low
    /// heterogeneity, CCR = 0.1.
    Fig7,
}

impl FigureWorkload {
    /// All figure workloads in paper order.
    pub const ALL: [FigureWorkload; 6] = [
        FigureWorkload::Fig3,
        FigureWorkload::Fig4Low,
        FigureWorkload::Fig4High,
        FigureWorkload::Fig5,
        FigureWorkload::Fig6,
        FigureWorkload::Fig7,
    ];

    /// The spec for this figure with the given seed.
    ///
    /// Sizes follow §5.3's stated "100 tasks and 20 machines" for the
    /// comparison figures; Figs 3–4 say only "large size", which we map to
    /// the same scale.
    pub fn spec(self, seed: u64) -> WorkloadSpec {
        let large = WorkloadSpec::large(seed);
        match self {
            FigureWorkload::Fig3 => large.with_connectivity(Connectivity::High),
            FigureWorkload::Fig4Low => large.with_heterogeneity(Heterogeneity::Low),
            FigureWorkload::Fig4High => large.with_heterogeneity(Heterogeneity::High),
            FigureWorkload::Fig5 => large.with_connectivity(Connectivity::High),
            FigureWorkload::Fig6 => large.with_ccr(1.0),
            FigureWorkload::Fig7 => large
                .with_connectivity(Connectivity::Low)
                .with_heterogeneity(Heterogeneity::Low)
                .with_ccr(0.1),
        }
    }

    /// Stable identifier (`fig3`, `fig4-low`, ...).
    pub fn name(self) -> &'static str {
        match self {
            FigureWorkload::Fig3 => "fig3",
            FigureWorkload::Fig4Low => "fig4-low",
            FigureWorkload::Fig4High => "fig4-high",
            FigureWorkload::Fig5 => "fig5",
            FigureWorkload::Fig6 => "fig6",
            FigureWorkload::Fig7 => "fig7",
        }
    }
}

/// The reconstructed Figure-1 instance: the paper's 7-task / 6-data-item
/// DAG on a 2-machine system. The published `E`/`Tr` values are
/// OCR-garbled, so the matrices here are our documented substitution
/// (DESIGN.md); the topology and dimensions match the paper exactly.
pub fn figure1() -> HcInstance {
    let mut b = TaskGraphBuilder::new(7);
    for (s, d) in [(0, 2), (0, 3), (1, 4), (2, 5), (3, 5), (4, 6)] {
        b.add_edge(s, d).expect("figure-1 edges are unique and acyclic");
    }
    let graph = b.build().expect("figure-1 DAG is valid");
    let exec = Matrix::from_rows(&[
        vec![400.0, 700.0, 500.0, 300.0, 800.0, 600.0, 200.0],
        vec![600.0, 500.0, 400.0, 900.0, 435.0, 450.0, 350.0],
    ]);
    let transfer = Matrix::from_rows(&[vec![120.0, 80.0, 200.0, 60.0, 90.0, 150.0]]);
    let sys =
        HcSystem::with_anonymous_machines(2, exec, transfer).expect("figure-1 matrices are valid");
    HcInstance::new(graph, sys).expect("figure-1 dimensions agree")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mshc_platform::InstanceMetrics;

    #[test]
    fn figure1_dimensions_match_paper() {
        let inst = figure1();
        assert_eq!(inst.task_count(), 7);
        assert_eq!(inst.data_count(), 6);
        assert_eq!(inst.machine_count(), 2);
        assert_eq!(inst.system().exec_matrix().shape(), (2, 7));
        assert_eq!(inst.system().transfer_matrix().shape(), (1, 6));
    }

    #[test]
    fn every_figure_spec_generates() {
        for fw in FigureWorkload::ALL {
            let inst = fw.spec(1).generate();
            assert_eq!(inst.task_count(), 100, "{}", fw.name());
            assert_eq!(inst.machine_count(), 20, "{}", fw.name());
        }
    }

    #[test]
    fn fig7_is_the_easy_workload() {
        let hard = FigureWorkload::Fig5.spec(2).generate();
        let easy = FigureWorkload::Fig7.spec(2).generate();
        let mh = InstanceMetrics::compute(&hard);
        let me = InstanceMetrics::compute(&easy);
        assert!(me.connectivity < mh.connectivity);
        assert!(me.heterogeneity < mh.heterogeneity);
        assert!(me.ccr < mh.ccr);
    }

    #[test]
    fn fig6_has_unit_ccr() {
        let m = InstanceMetrics::compute(&FigureWorkload::Fig6.spec(3).generate());
        assert!((m.ccr - 1.0).abs() < 0.15, "measured {}", m.ccr);
    }

    #[test]
    fn names_are_stable() {
        let names: Vec<&str> = FigureWorkload::ALL.iter().map(|f| f.name()).collect();
        assert_eq!(names, vec!["fig3", "fig4-low", "fig4-high", "fig5", "fig6", "fig7"]);
    }
}
