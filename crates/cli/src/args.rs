//! Tiny flag parser — `--key value` pairs plus positional words. The
//! option surface is small enough that hand-rolling beats pulling an
//! argument-parsing dependency into the sanctioned set.

use std::collections::BTreeMap;

/// Parsed command line: positional words and `--key value` options.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Parsed {
    /// Positional (non-flag) words in order.
    pub positional: Vec<String>,
    /// `--key value` pairs; bare `--flag` stores an empty string.
    pub options: BTreeMap<String, String>,
}

/// Splits `argv`. A `--key` immediately followed by another `--key` (or
/// by nothing) is treated as a boolean flag.
pub fn parse(argv: &[String]) -> Parsed {
    let mut parsed = Parsed::default();
    let mut i = 0;
    while i < argv.len() {
        let a = &argv[i];
        if let Some(key) = a.strip_prefix("--") {
            let value = argv.get(i + 1).filter(|v| !v.starts_with("--"));
            match value {
                Some(v) => {
                    parsed.options.insert(key.to_string(), v.clone());
                    i += 2;
                }
                None => {
                    parsed.options.insert(key.to_string(), String::new());
                    i += 1;
                }
            }
        } else {
            parsed.positional.push(a.clone());
            i += 1;
        }
    }
    parsed
}

impl Parsed {
    /// String option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// Boolean flag presence.
    pub fn flag(&self, key: &str) -> bool {
        self.options.contains_key(key)
    }

    /// Typed option with a default; errors mention the flag name.
    pub fn get_parse<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.options.get(key) {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|_| format!("--{key}: cannot parse {raw:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn positional_and_options() {
        let p = parse(&argv(&["run", "--algo", "se", "--iters", "100", "--gantt"]));
        assert_eq!(p.positional, vec!["run"]);
        assert_eq!(p.get("algo"), Some("se"));
        assert_eq!(p.get_parse("iters", 0u64).unwrap(), 100);
        assert!(p.flag("gantt"));
        assert!(!p.flag("missing"));
    }

    #[test]
    fn flag_followed_by_flag() {
        let p = parse(&argv(&["--fast", "--seed", "9"]));
        assert!(p.flag("fast"));
        assert_eq!(p.get("seed"), Some("9"));
    }

    #[test]
    fn parse_errors_name_the_flag() {
        let p = parse(&argv(&["--iters", "abc"]));
        let e = p.get_parse("iters", 0u64).unwrap_err();
        assert!(e.contains("--iters"));
        assert!(e.contains("abc"));
    }

    #[test]
    fn defaults_apply() {
        let p = parse(&argv(&[]));
        assert_eq!(p.get_parse("tasks", 42usize).unwrap(), 42);
    }
}
