//! # mshc-trace
//!
//! Experiment tracing substrate for the `mshc` suite. Every figure in the
//! paper's evaluation (§5) is a *series* plot — number of selected
//! subtasks vs iteration (Fig 3a), schedule length vs iteration (Figs 3b,
//! 4a, 4b), best schedule length vs wall time (Figs 5–7) — so the
//! schedulers record per-iteration [`TraceRecord`]s into a [`Trace`], and
//! the harness turns traces into CSV files and quick terminal plots.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod csv;
pub mod plot;
pub mod record;
pub mod series;

pub use csv::{write_csv, CsvTable};
pub use plot::AsciiPlot;
pub use record::{Trace, TraceRecord};
pub use series::Series;
