//! The experiment runners behind every paper figure.

use mshc_core::{SeConfig, SeScheduler};
use mshc_ga::{GaConfig, GaScheduler};
use mshc_platform::HcInstance;
use mshc_schedule::{RunBudget, RunResult, Scheduler};
use mshc_trace::Trace;
use mshc_workloads::{FigureWorkload, Heterogeneity};
use rayon::prelude::*;
use std::time::Duration;

/// Scale knobs for a figure run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExperimentScale {
    /// SE iterations for Figs 3–4.
    pub iterations: u64,
    /// Wall-clock budget per algorithm for Figs 5–7.
    pub wall: Duration,
    /// Workload seed (recorded in EXPERIMENTS.md).
    pub seed: u64,
}

impl ExperimentScale {
    /// Paper-scale defaults (a few minutes total on a laptop).
    pub fn full() -> ExperimentScale {
        ExperimentScale { iterations: 1000, wall: Duration::from_secs(12), seed: 2001 }
    }

    /// Smoke-test scale (seconds; used by integration tests and `--fast`).
    pub fn fast() -> ExperimentScale {
        ExperimentScale { iterations: 60, wall: Duration::from_millis(800), seed: 2001 }
    }
}

/// Output of [`fig3`]: the SE run's trace on the Fig-3 workload.
#[derive(Debug, Clone)]
pub struct Fig3Result {
    /// The instance the run used.
    pub instance: HcInstance,
    /// Per-iteration trace (selected counts → Fig 3a, schedule length →
    /// Fig 3b).
    pub trace: Trace,
    /// Final result.
    pub result: RunResult,
}

/// Fig 3 (§5.1, SE effectiveness): run SE on a large, high-connectivity
/// workload and log the number of selected subtasks and the current
/// schedule length at every iteration.
pub fn fig3(scale: &ExperimentScale) -> Fig3Result {
    let inst = FigureWorkload::Fig3.spec(scale.seed).generate();
    let cfg = SeConfig {
        seed: scale.seed,
        selection_bias: SeConfig::recommended_bias(inst.task_count()),
        ..SeConfig::default()
    };
    let mut trace = Trace::new();
    let result = SeScheduler::new(cfg).run(
        &inst,
        &RunBudget::iterations(scale.iterations),
        Some(&mut trace),
    );
    Fig3Result { instance: inst, trace, result }
}

/// Output of [`fig4`]: one SE trace per `Y` value.
#[derive(Debug, Clone)]
pub struct Fig4Result {
    /// Which heterogeneity class was used (low → Fig 4a, high → Fig 4b).
    pub heterogeneity: Heterogeneity,
    /// `(Y, trace, final result)` per sweep point, in input order.
    pub runs: Vec<(usize, Trace, RunResult)>,
}

/// Fig 4 (§5.2, effect of `Y`): sweep the allocation fan-out limit `Y`
/// over a large workload of the given heterogeneity. The paper plots
/// `Y ∈ {5, 9, 12}` on 20 machines. Independent runs execute in parallel
/// (Rayon) — each owns its seeded RNG, so parallelism cannot perturb
/// results.
pub fn fig4(heterogeneity: Heterogeneity, ys: &[usize], scale: &ExperimentScale) -> Fig4Result {
    let figure = match heterogeneity {
        Heterogeneity::High => FigureWorkload::Fig4High,
        _ => FigureWorkload::Fig4Low,
    };
    let inst = figure.spec(scale.seed).generate();
    let runs: Vec<(usize, Trace, RunResult)> = ys
        .par_iter()
        .map(|&y| {
            let cfg = SeConfig {
                seed: scale.seed,
                selection_bias: SeConfig::recommended_bias(inst.task_count()),
                y_limit: Some(y),
                ..SeConfig::default()
            };
            let mut trace = Trace::new();
            let result = SeScheduler::new(cfg).run(
                &inst,
                &RunBudget::iterations(scale.iterations),
                Some(&mut trace),
            );
            (y, trace, result)
        })
        .collect();
    Fig4Result { heterogeneity, runs }
}

/// Output of [`fig5_7`]: the SE and GA races on one workload.
#[derive(Debug, Clone)]
pub struct RaceResult {
    /// Which figure's workload was raced.
    pub figure: FigureWorkload,
    /// SE trace and final result.
    pub se: (Trace, RunResult),
    /// GA trace and final result.
    pub ga: (Trace, RunResult),
}

/// Figs 5–7 (§5.3, SE vs GA): run both algorithms on the same workload
/// under the same wall-clock budget, recording best-so-far vs time.
pub fn fig5_7(figure: FigureWorkload, scale: &ExperimentScale) -> RaceResult {
    let inst = figure.spec(scale.seed).generate();
    let budget = RunBudget::wall(scale.wall);
    let bias = SeConfig::recommended_bias(inst.task_count());
    // SE and GA run in parallel on separate cores: both get the full wall
    // budget concurrently, halving harness latency without sharing state.
    let (se, ga) = rayon::join(
        || {
            let mut trace = Trace::new();
            let cfg = SeConfig { seed: scale.seed, selection_bias: bias, ..SeConfig::default() };
            let result = SeScheduler::new(cfg).run(&inst, &budget, Some(&mut trace));
            (trace, result)
        },
        || {
            let mut trace = Trace::new();
            let cfg = GaConfig { seed: scale.seed, ..GaConfig::default() };
            let result = GaScheduler::new(cfg).run(&inst, &budget, Some(&mut trace));
            (trace, result)
        },
    );
    RaceResult { figure, se, ga }
}

/// One row of the multi-seed aggregate comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct AggregateRow {
    /// Workload class (figure name).
    pub workload: &'static str,
    /// Algorithm name.
    pub algo: &'static str,
    /// Summary over the seeds (makespans).
    pub summary: mshc_stats::Summary,
}

/// Multi-seed robustness sweep: SE and GA on `seeds.len()` independent
/// instances of one figure's workload class, each under a fixed
/// evaluation budget, summarized with mean/std/min/max. The paper shows
/// single sample runs per figure ("samples of the results of the
/// experiments"); this aggregate quantifies how stable the reproduced
/// comparison is. Seeds run in parallel (independent RNGs).
pub fn aggregate_races(figure: FigureWorkload, seeds: &[u64], evals: u64) -> Vec<AggregateRow> {
    let runs: Vec<(f64, f64)> = seeds
        .par_iter()
        .map(|&seed| {
            let inst = figure.spec(seed).generate();
            let budget = RunBudget::evaluations(evals);
            let se = SeScheduler::new(SeConfig {
                seed,
                selection_bias: SeConfig::recommended_bias(inst.task_count()),
                ..SeConfig::default()
            })
            .run(&inst, &budget, None);
            let ga = GaScheduler::new(GaConfig { seed, ..GaConfig::default() })
                .run(&inst, &budget, None);
            (se.makespan, ga.makespan)
        })
        .collect();
    let se: Vec<f64> = runs.iter().map(|r| r.0).collect();
    let ga: Vec<f64> = runs.iter().map(|r| r.1).collect();
    vec![
        AggregateRow { workload: figure.name(), algo: "se", summary: mshc_stats::Summary::of(&se) },
        AggregateRow { workload: figure.name(), algo: "ga", summary: mshc_stats::Summary::of(&ga) },
    ]
}

/// Contention sensitivity of one figure workload: run SE under the
/// paper's contention-free model, then replay its best schedule on the
/// per-pair-link network. Returns `(contention_free, with_links)`
/// makespans; the ratio measures how much the §2 contention-free
/// assumption flatters the reported schedule lengths.
pub fn contention_probe(figure: FigureWorkload, scale: &ExperimentScale) -> (f64, f64) {
    use mshc_schedule::{replay_with, NetworkModel};
    let inst = figure.spec(scale.seed).generate();
    let cfg = SeConfig {
        seed: scale.seed,
        selection_bias: SeConfig::recommended_bias(inst.task_count()),
        ..SeConfig::default()
    };
    let result = SeScheduler::new(cfg).run(&inst, &RunBudget::iterations(scale.iterations), None);
    let linked = replay_with(&inst, &result.solution, NetworkModel::PerPairLink)
        .expect("valid solutions never deadlock");
    (result.makespan, linked.makespan)
}

/// Convenience: run every baseline heuristic (HEFT, CPOP, the list
/// family) on an instance and return `(name, makespan)` pairs — the
/// sanity band every iterative result is checked against.
pub fn baseline_band(inst: &HcInstance) -> Vec<(String, f64)> {
    use mshc_heuristics::{CpopScheduler, HeftScheduler, ListPolicy, ListScheduler};
    let budget = RunBudget::default();
    let mut out = Vec::new();
    let mut heft = HeftScheduler::new();
    out.push(("heft".to_string(), heft.run(inst, &budget, None).makespan));
    let mut heft_ins = HeftScheduler::with_insertion();
    out.push(("heft-ins".to_string(), heft_ins.run(inst, &budget, None).makespan));
    let mut cpop = CpopScheduler::new();
    out.push(("cpop".to_string(), cpop.run(inst, &budget, None).makespan));
    for policy in ListPolicy::ALL {
        let mut s = ListScheduler::new(policy);
        out.push((policy.name().to_string(), s.run(inst, &budget, None).makespan));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_fast_has_expected_shape() {
        let r = fig3(&ExperimentScale::fast());
        assert_eq!(r.trace.len(), 60);
        // Selected counts present on every record.
        assert!(r.trace.records().iter().all(|rec| rec.selected.is_some()));
        // Decay: mean of last 15 below first iteration.
        let first = r.trace.records()[0].selected.unwrap() as f64;
        let tail: f64 =
            r.trace.records()[45..].iter().map(|rec| rec.selected.unwrap() as f64).sum::<f64>()
                / 15.0;
        assert!(tail < first, "selection should decay: first {first}, tail {tail}");
        r.result.solution.check(r.instance.graph()).unwrap();
    }

    #[test]
    fn fig4_fast_runs_all_ys() {
        let r = fig4(Heterogeneity::Low, &[2, 5], &ExperimentScale::fast());
        assert_eq!(r.runs.len(), 2);
        assert_eq!(r.runs[0].0, 2);
        assert_eq!(r.runs[1].0, 5);
        for (_, trace, result) in &r.runs {
            assert_eq!(trace.len(), 60);
            assert!(result.makespan > 0.0);
        }
    }

    #[test]
    fn fig5_fast_races_both() {
        let r = fig5_7(FigureWorkload::Fig5, &ExperimentScale::fast());
        assert!(!r.se.0.is_empty());
        assert!(!r.ga.0.is_empty());
        assert!(r.se.1.makespan > 0.0);
        assert!(r.ga.1.makespan > 0.0);
    }

    #[test]
    fn contention_probe_inflates_or_holds() {
        let (free, linked) = contention_probe(FigureWorkload::Fig6, &ExperimentScale::fast());
        assert!(free > 0.0);
        assert!(linked >= free - 1e-9, "links can only delay: {linked} vs {free}");
    }

    #[test]
    fn aggregate_races_summarize_both_algorithms() {
        let rows = aggregate_races(FigureWorkload::Fig7, &[1, 2], 3_000);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].algo, "se");
        assert_eq!(rows[1].algo, "ga");
        for r in &rows {
            assert_eq!(r.workload, "fig7");
            assert_eq!(r.summary.n, 2);
            assert!(r.summary.mean > 0.0);
            assert!(r.summary.min <= r.summary.mean && r.summary.mean <= r.summary.max);
        }
    }

    #[test]
    fn baseline_band_covers_all_heuristics() {
        let inst = FigureWorkload::Fig7.spec(1).generate();
        let band = baseline_band(&inst);
        assert_eq!(band.len(), 8);
        assert!(band.iter().all(|(_, mk)| *mk > 0.0));
        let names: Vec<&str> = band.iter().map(|(n, _)| n.as_str()).collect();
        assert!(names.contains(&"heft"));
        assert!(names.contains(&"heft-ins"));
        assert!(names.contains(&"min-min"));
    }
}
