//! Shared workload shapes for the evaluation-throughput probes.
//!
//! The criterion `batch_candidates`/`short_scan` groups and the
//! `bench_eval` binary (the `BENCH_eval.json` emitter) must measure the
//! *same* candidate grids so their numbers stay comparable; both build
//! them here — along with [`spawn_crew_chunks`], the per-call
//! scoped-crew executor the persistent pool replaced, kept as the
//! baseline side of the `pool_reuse_speedup` series.

use mshc_platform::{HcInstance, MachineId};
use mshc_schedule::Solution;
use mshc_taskgraph::TaskId;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The SE allocation-scan shape at its widest: picks the task of `base`
/// with the widest valid range (ties to the lowest id) and returns its
/// full `(position × machine)` candidate grid minus the incumbent
/// placement — the biggest realistic single-task fan-out on this
/// instance.
pub fn widest_move_grid(inst: &HcInstance, base: &Solution) -> (TaskId, Vec<(usize, MachineId)>) {
    let g = inst.graph();
    let t = g
        .tasks()
        .max_by_key(|&t| {
            let (lo, hi) = base.valid_range(g, t);
            hi - lo
        })
        .expect("non-empty graph");
    let (lo, hi) = base.valid_range(g, t);
    let moves = (lo..=hi)
        .flat_map(|pos| (0..inst.machine_count()).map(move |m| (pos, MachineId::from_usize(m))))
        .filter(|&(pos, m)| pos != base.position_of(t) || m != base.machine_of(t))
        .collect();
    (t, moves)
}

/// The first `limit` candidates of [`widest_move_grid`] — the
/// "short bounded scan" preset. After bound pruning cut 99%+ of the
/// candidates (PR 5), the scans the searches actually submit are this
/// size, where executor overhead (thread spawn vs pool wake) dominates
/// the scoring work; the `pool_reuse_speedup` series is measured on it.
pub fn short_move_grid(
    inst: &HcInstance,
    base: &Solution,
    limit: usize,
) -> (TaskId, Vec<(usize, MachineId)>) {
    let (t, mut moves) = widest_move_grid(inst, base);
    moves.truncate(limit);
    (t, moves)
}

/// The pre-persistent-pool executor, preserved as a benchmark baseline:
/// spawns a fresh `std::thread::scope` crew **per call**, splits
/// `0..len` into the same chunk grid the vendored rayon uses
/// (`len.div_ceil(threads * 2)`), self-schedules chunks off an atomic
/// claim counter and merges results in chunk order. Bit-compatible with
/// the resident executor on the same fold — the only difference is
/// paying thread spawn/join latency on every invocation, which is
/// exactly what `pool_reuse_speedup` quantifies.
pub fn spawn_crew_chunks<T, F>(threads: usize, len: usize, fold_chunk: F) -> Vec<T>
where
    T: Send,
    F: Fn(Range<usize>) -> T + Sync,
{
    if len == 0 {
        return Vec::new();
    }
    if threads <= 1 {
        return vec![fold_chunk(0..len)];
    }
    let chunk_size = len.div_ceil(threads * 2).max(1);
    let num_chunks = len.div_ceil(chunk_size);
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(num_chunks));
    std::thread::scope(|scope| {
        let worker = || loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= num_chunks {
                return;
            }
            let lo = i * chunk_size;
            let hi = (lo + chunk_size).min(len);
            let out = fold_chunk(lo..hi);
            results.lock().expect("crew results").push((i, out));
        };
        for _ in 1..threads.min(num_chunks) {
            scope.spawn(worker);
        }
        worker();
    });
    let mut chunks = results.into_inner().expect("crew results");
    chunks.sort_unstable_by_key(|&(i, _)| i);
    chunks.into_iter().map(|(_, out)| out).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mshc_workloads::WorkloadSpec;
    use rand::SeedableRng;

    #[test]
    fn short_grid_is_a_prefix_of_the_widest_grid() {
        let inst = WorkloadSpec::small(3).generate();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
        let base = mshc_schedule::random_solution(&inst, &mut rng);
        let (t_full, full) = widest_move_grid(&inst, &base);
        let (t_short, short) = short_move_grid(&inst, &base, 24);
        assert_eq!(t_full, t_short);
        assert_eq!(short.len(), 24.min(full.len()));
        assert_eq!(&full[..short.len()], &short[..]);
    }

    #[test]
    fn spawn_crew_merges_in_chunk_order() {
        for threads in [1usize, 2, 4, 8] {
            for len in [0usize, 1, 7, 100] {
                let chunks = spawn_crew_chunks(threads, len, |r| r.collect::<Vec<usize>>());
                let flat: Vec<usize> = chunks.into_iter().flatten().collect();
                assert_eq!(flat, (0..len).collect::<Vec<usize>>(), "{threads}t len {len}");
            }
        }
    }

    #[test]
    fn grid_excludes_incumbent_and_stays_in_range() {
        let inst = WorkloadSpec::small(3).generate();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
        let base = mshc_schedule::random_solution(&inst, &mut rng);
        let (t, moves) = widest_move_grid(&inst, &base);
        let (lo, hi) = base.valid_range(inst.graph(), t);
        assert!(!moves.is_empty());
        for &(pos, m) in &moves {
            assert!((lo..=hi).contains(&pos));
            assert!(m.index() < inst.machine_count());
            assert!(pos != base.position_of(t) || m != base.machine_of(t));
        }
        assert_eq!(moves.len(), (hi - lo + 1) * inst.machine_count() - 1);
    }
}
