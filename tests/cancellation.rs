//! Cooperative cancellation and deadline invariants across every
//! steppable search: a cancellation fired at any slice boundary yields
//! a valid incumbent marked [`Termination::Cancelled`], never an error;
//! deterministic deadlines stop runs reproducibly; the replan flow is
//! bit-identical at any thread count.

use mshc::prelude::*;
use proptest::prelude::*;

fn steppables(seed: u64) -> Vec<(&'static str, Box<dyn SteppableSearch>)> {
    use mshc::core::SePendingBias;
    vec![
        (
            "se",
            Box::new(SePendingBias::new(SeConfig {
                seed,
                selection_bias: f64::NAN,
                ..SeConfig::default()
            })) as Box<dyn SteppableSearch>,
        ),
        ("ga", Box::new(GaScheduler::new(GaConfig { seed, ..GaConfig::default() }))),
        ("random", Box::new(RandomSearch::new(seed))),
        ("sa", Box::new(SimulatedAnnealing::new(SaConfig { seed, ..SaConfig::default() }))),
        ("tabu", Box::new(TabuSearch::new(TabuConfig { seed, ..TabuConfig::default() }))),
    ]
}

fn tiny_instance(seed: u64) -> HcInstance {
    WorkloadSpec { tasks: 14, machines: 3, ccr: 0.5, seed, ..WorkloadSpec::small(seed) }.generate()
}

#[test]
fn prefired_token_is_rejected_before_the_run_starts() {
    let token = CancelToken::new();
    token.cancel();
    let budget = RunBudget::iterations(10).with_cancel(token);
    let err = budget.validate().unwrap_err();
    assert!(err.to_string().contains("cancel"), "{err}");
}

#[test]
fn deadline_budgets_validate() {
    assert!(RunBudget::iterations(10).with_deadline_evals(1).validate().is_ok());
    assert!(RunBudget::default().with_deadline_evals(0).validate().is_err());
    assert!(RunBudget::default().with_deadline_wall(std::time::Duration::ZERO).validate().is_err());
    // A deadline alone bounds the budget.
    assert!(RunBudget::default().with_deadline_evals(100).validate().is_ok());
}

#[test]
fn deterministic_deadline_stops_every_search_reproducibly() {
    let inst = tiny_instance(42);
    for (name, mut s) in steppables(42) {
        let budget = RunBudget::iterations(200).with_deadline_evals(60);
        let a = s.run(&inst, &budget, None);
        a.solution.check(inst.graph()).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(
            matches!(a.termination, Termination::Deadline | Termination::Floor),
            "{name}: 200 iterations cannot fit under 60 evaluations: {:?}",
            a.termination
        );
        // The deadline is part of the deterministic contract: the same
        // run repeats bit for bit, evaluations included.
        let mut s2 = steppables(42).into_iter().find(|(n, _)| *n == name).unwrap().1;
        let b = s2.run(&inst, &budget, None);
        assert_eq!(a.evaluations, b.evaluations, "{name}");
        assert_eq!(a.iterations, b.iterations, "{name}");
        assert_eq!(a.makespan.to_bits(), b.makespan.to_bits(), "{name}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Firing the cancel token at an arbitrary slice boundary of any
    /// steppable search always degrades gracefully: the search stops at
    /// the next boundary, reports `Cancelled`, and hands back a valid
    /// incumbent with its certificate — never an error, never a hang.
    #[test]
    fn cancellation_at_any_slice_boundary_degrades_gracefully(
        boundary in 0u64..10,
        seed in 0u64..500,
    ) {
        let inst = tiny_instance(seed);
        for (name, mut s) in steppables(seed) {
            let token = CancelToken::new();
            let budget = RunBudget::iterations(50).with_cancel(token.clone());
            let mut state = s.start(&inst, &budget);
            let mut done_before_cancel = false;
            for _ in 0..boundary {
                if state.step(1, None).is_exhausted() {
                    done_before_cancel = true;
                    break;
                }
            }
            token.cancel();
            let verdict = state.step(u64::MAX, None);
            prop_assert!(verdict.is_exhausted(), "{name}: cancelled search must stop");
            let r = state.result();
            r.solution.check(inst.graph()).expect("incumbent stays valid");
            prop_assert!(r.iterations <= 50, "{name}: {}", r.iterations);
            if let Some(gap) = r.gap {
                prop_assert!(gap >= 1.0, "{name}: certificate holds under cancellation");
            }
            if !done_before_cancel {
                prop_assert_eq!(
                    r.termination,
                    Termination::Cancelled,
                    "{}: cancellation outranks budget in the verdict", name
                );
                // Cancellation is latched exactly once and the counts
                // stay exact: a re-run cancelled at the same boundary
                // reproduces the evaluation count bit for bit.
                let mut s2 =
                    steppables(seed).into_iter().find(|(n, _)| *n == name).unwrap().1;
                let token2 = CancelToken::new();
                let budget2 = RunBudget::iterations(50).with_cancel(token2.clone());
                let mut state2 = s2.start(&inst, &budget2);
                for _ in 0..boundary {
                    if state2.step(1, None).is_exhausted() {
                        break;
                    }
                }
                token2.cancel();
                state2.step(u64::MAX, None);
                let r2 = state2.result();
                prop_assert_eq!(r.evaluations, r2.evaluations, "{}", name);
                prop_assert_eq!(r.makespan.to_bits(), r2.makespan.to_bits(), "{}", name);
            }
        }
    }
}
