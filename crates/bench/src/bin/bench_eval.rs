//! `bench_eval` — evaluation-throughput probe and `BENCH_eval.json`
//! emitter.
//!
//! Measures candidate-evaluation throughput five ways on one paper-scale
//! workload (SE allocation-scan shape: "base with task `t` moved"):
//!
//! 1. **scalar / full** — one [`Evaluator`], move + full O(k + p) pass
//!    per candidate (the historic sequential baseline, and the "full
//!    re-evaluation" series of the full-vs-incremental comparison);
//! 2. **incremental** — one [`IncrementalEvaluator`] on a single thread:
//!    the base is primed once, every candidate is a checkpoint-resumed
//!    suffix replay. `incremental_speedup_vs_full` is the algorithmic
//!    win (same thread count, same candidates, same bits out);
//! 3. **bounded scan** — the same incremental evaluator driven the way
//!    the searches drive it: the running best rides along as a pruning
//!    bound and replays may splice on reconvergence.
//!    `bounded_speedup_vs_incremental` is the fast-path win, with the
//!    realized `pruned_fraction`/`spliced_fraction` alongside;
//! 4. **batch ×1** — [`BatchEvaluator`] pinned to a single worker thread
//!    (isolates batch-machinery overhead);
//! 5. **batch ×N** — [`BatchEvaluator`] on the requested pool (default:
//!    available parallelism, or `--threads N`) — thread parallelism
//!    compounding on top of the incremental scoring inside.
//!
//! Two executor-level series ride along since the persistent pool
//! landed: `thread_scaling_evals_per_sec` (batch throughput at 1/2/4/8
//! pool sizes on the wide grid) and `pool_reuse_speedup` — the resident
//! pool versus the old per-call `std::thread::scope` crew (preserved in
//! [`mshc_bench::probes::spawn_crew_chunks`]) on the **short bounded
//! scan** preset, where spawn latency used to dominate the scoring work.
//!
//! Since the GA moved onto tier 3, a **GA generation probe** races the
//! whole scheduler on the same preset with offspring fitness via
//! parent-primed prefix splicing (the default) against the
//! `--ga-full-eval` tier-1 escape hatch — same seed, identical bits
//! out, so `ga_prefix_speedup_vs_full` is pure evaluation-cost savings.
//! The `spliced_fraction` series is measured on its own
//! reconvergence-friendly grid ([`mshc_bench::probes::splice_move_grid`]);
//! the widest single-task grid prunes too early to ever reconverge.
//!
//! Writes the numbers as JSON (default `BENCH_eval.json`, `--out FILE`)
//! so CI can archive the perf trajectory per commit; the CI smoke step
//! asserts both the full and incremental series are present. `--quick`
//! shrinks the measurement for smoke runs.
//!
//! ```text
//! cargo run --release -p mshc-bench --bin bench_eval -- --threads 8
//! ```

use mshc_ga::GaScheduler;
use mshc_platform::{HcInstance, HcSystem, Matrix};
use mshc_portfolio::{TournamentSpec, ALGORITHMS};
use mshc_schedule::{
    BatchEvaluator, EvalSnapshot, Evaluator, IncrementalEvaluator, InstanceBound, MoveScore,
    ObjectiveKind, Replanner, RunBudget, Scheduler, Solution,
};
use mshc_taskgraph::TaskGraphBuilder;
use mshc_workloads::{tiny_suite, DisturbanceTrace, DisturbanceTraceSpec, WorkloadSpec};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::Serialize;
use std::hint::black_box;
use std::time::Instant;

/// The JSON payload CI archives.
#[derive(Debug, Serialize)]
struct BenchReport {
    /// Report schema version — bumped with `mshc_obs::SCHEMA_VERSION`
    /// whenever series are added, so downstream tooling can gate on it.
    schema_version: u32,
    tasks: usize,
    machines: usize,
    candidates: usize,
    rounds: usize,
    threads: usize,
    /// `std::thread::available_parallelism()` on the measuring host —
    /// context for comparing throughput series across machines.
    available_parallelism: usize,
    /// Full re-evaluation series: move + full pass per candidate, one
    /// thread.
    scalar_evals_per_sec: f64,
    /// Incremental series: suffix replay per candidate, one thread,
    /// auto checkpoint stride.
    incremental_evals_per_sec: f64,
    /// incremental over full, single-threaded — the algorithmic win
    /// (≥ 2x expected on the 100-task preset).
    incremental_speedup_vs_full: f64,
    /// Bounded argmin scan: the same grid with the running best threaded
    /// in as a pruning bound, splicing on — the SE/tabu production
    /// shape. Same bits out, pruned candidates still count.
    bounded_scan_evals_per_sec: f64,
    /// bounded over plain incremental (≥ 1.5x expected on the 100-task
    /// preset).
    bounded_speedup_vs_incremental: f64,
    /// Fraction of bounded-scan candidates abandoned by the bound cut.
    pruned_fraction: f64,
    /// Fraction of reconvergence-splice-probe candidates finished by a
    /// tail splice. Measured on `probes::splice_move_grid` (the
    /// schedule-neutral transposition grid): the widest single-task
    /// grid the bounded scan runs prunes 99%+ of its candidates before
    /// any tail could reconverge, so this series read 0.0 until it got
    /// its own probe.
    spliced_fraction: f64,
    batch_1thread_evals_per_sec: f64,
    batch_evals_per_sec: f64,
    /// batch ×N over scalar — the headline number (≥ 2x expected with
    /// ≥ 4 real cores, compounding with the incremental win).
    speedup_vs_scalar: f64,
    /// batch ×N over batch ×1 — pure thread scaling.
    thread_scaling: f64,
    /// Batch throughput at each pool size on the wide grid — the full
    /// scaling curve (the `thread_scaling` ratio is batch ×N over the
    /// first point).
    thread_scaling_evals_per_sec: Vec<ThreadScalingPoint>,
    /// Short bounded scan (24 candidates, 4-thread pool) on the
    /// resident work-stealing pool — the post-pruning production shape.
    short_scan_pool_evals_per_sec: f64,
    /// The same short scan on the retired per-call scoped-crew
    /// executor, re-priming per chunk the way the old arena checkout
    /// did.
    short_scan_spawn_evals_per_sec: f64,
    /// Resident pool over per-call spawn on the short-scan preset — the
    /// executor-rewrite headline (acceptance bar: ≥ 1.3x).
    pool_reuse_speedup: f64,
    /// Tournament-engine throughput: completed cells per second on the
    /// tiny scenario suite (6 algorithms × 2 scenarios × 2 seeds), races
    /// fanned out over the same pool as batch ×N.
    tournament_cells_per_sec: f64,
    /// Mean microseconds to compute the certified instance lower bound
    /// (`InstanceBound::compute`) on the 100-task preset — the one-off
    /// per-run cost the certificate stack adds.
    lower_bound_us_per_instance: f64,
    /// Mean certified optimality gap across the completed tournament
    /// cells (1.0 = provably optimal; tiny-suite makespan races are all
    /// certified, so no cell is excluded).
    mean_gap: f64,
    /// Fraction of certified-probe cells (every algorithm raced on an
    /// integer-exact balanced instance whose floor is reachable) that
    /// terminated early at the certified floor.
    early_stop_fraction: f64,
    /// Mean microseconds per disturbance for the full replan flow on a
    /// small preset: freeze the committed prefix, rebuild the residual
    /// instance, re-prime the incremental evaluator from the disturbed
    /// frontier, and re-run the search on the residue. Tracks the
    /// latency a dropout costs the serve path.
    replan_us_per_disturbance: f64,
    /// Fraction of tournament cells that completed only after bounded
    /// same-seed retries when a seeded fault plan panics a subset of
    /// cells — the chaos-harness health series (expected: exactly the
    /// injected fraction; more means real panics, fewer means faults
    /// stopped firing).
    degraded_cell_fraction: f64,
    /// GA offspring-fitness throughput with parent-primed prefix
    /// splicing on (the production configuration): evaluations per
    /// second across whole generations on the paper-scale preset.
    ga_generation_evals_per_sec: f64,
    /// Fraction of offspring string positions the GA's population pass
    /// never replayed — clone shortcuts contribute whole strings,
    /// primed checkpoints contribute shared prefixes.
    ga_prefix_reuse_fraction: f64,
    /// The prefix-splicing mechanism on its canonical shape (like
    /// `incremental_speedup_vs_full` and
    /// `bounded_speedup_vs_incremental` above): a converged-regime
    /// offspring cohort (`probes::ga_offspring_cohort` — crossover of
    /// near-identical parents degenerates to clones, mutations to
    /// single-task moves) scored by `score_population` vs per-child
    /// full passes, bit-identical either way (≥ 2x expected on the
    /// 100-task preset).
    ga_prefix_speedup_vs_full: f64,
    /// Whole-run GA wall-clock ratio, `--ga-full-eval` over default,
    /// same seed, from a *random* start — early generations are
    /// dominated by deep-divergence crossover offspring (the matching
    /// crossover redistributes machine genes by task id, which can
    /// surface at any string position), so this realizes far less than
    /// the cohort number above.
    ga_run_speedup_vs_full: f64,
    /// Work-stealing pool: chunks claimed from a foreign worker's queue
    /// over the GA probe window (timing plane of the obs registry —
    /// varies run to run, archived as an executor-health series).
    steal_count: u64,
    /// Injector-queue high-water mark over the same window.
    queue_depth_hwm: u64,
}

/// One point of the thread-scaling curve.
#[derive(Debug, Serialize)]
struct ThreadScalingPoint {
    threads: usize,
    evals_per_sec: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = "BENCH_eval.json".to_string();
    let mut threads = 0usize;
    let mut rounds = 60usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                out_path = args.get(i + 1).cloned().expect("--out needs a path");
                i += 2;
            }
            "--threads" => {
                threads =
                    args.get(i + 1).and_then(|v| v.parse().ok()).expect("--threads needs a number");
                i += 2;
            }
            "--quick" => {
                rounds = 6;
                i += 1;
            }
            other => panic!("unknown argument {other:?} (try --out, --threads, --quick)"),
        }
    }
    let available_parallelism = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let threads = if threads > 0 { threads } else { available_parallelism };

    // The scan-efficiency series come from the obs registry — the same
    // counters `mshc --metrics` exports — reset before each probe and
    // snapshotted after, with the per-evaluator `ScanStats` kept as a
    // cross-check. Recording is write-only, so leaving it enabled for
    // the whole run cannot change any measured bits (it does add a few
    // nanoseconds per counter bump, identically across compared series).
    mshc_obs::reset();
    mshc_obs::enable(true);

    // Paper-comparison scale: 100 tasks, 20 machines; the candidate grid
    // is the widest single-task (position × machine) fan-out on the
    // instance — the same shape the criterion `batch_candidates` group
    // measures (both come from `probes::widest_move_grid`).
    let spec = WorkloadSpec { tasks: 100, machines: 20, ..WorkloadSpec::large(2001) };
    let inst = spec.generate();
    let g = inst.graph();
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let base = mshc_schedule::random_solution(&inst, &mut rng);
    let (t, moves) = mshc_bench::probes::widest_move_grid(&inst, &base);
    let obj = ObjectiveKind::Makespan;
    let snapshot = EvalSnapshot::new(&inst);

    // Scalar baseline: move + full pass per candidate, one thread, no
    // batch machinery.
    let scalar_eps = {
        let mut eval = Evaluator::with_snapshot(&snapshot);
        let mut scratch: Solution = base.clone();
        let start = Instant::now();
        let mut evals = 0u64;
        for _ in 0..rounds {
            for &(pos, m) in &moves {
                scratch.move_task(g, t, pos, m).expect("in-range");
                black_box(eval.objective_value(&scratch, &obj));
                evals += 1;
            }
        }
        evals as f64 / start.elapsed().as_secs_f64()
    };

    let batch_eps = |n: usize| {
        let pool = rayon::ThreadPoolBuilder::new().num_threads(n).build().expect("pool");
        pool.install(|| {
            let mut batch = BatchEvaluator::new(&snapshot);
            // Warm the arenas once so steady-state throughput is measured.
            black_box(batch.score_moves(g, &base, t, &moves, &obj));
            let start = Instant::now();
            for _ in 0..rounds {
                black_box(batch.score_moves(g, &base, t, &moves, &obj));
            }
            (rounds * moves.len()) as f64 / start.elapsed().as_secs_f64()
        })
    };
    // Incremental move scan: prime once, suffix-replay per candidate —
    // same single thread, same candidates, bit-identical scores; the
    // throughput difference is purely algorithmic. The fast path is
    // explicitly off: this series is the plain (PR 3) suffix replay the
    // bounded series is judged against.
    let incremental_eps = {
        let mut inc = IncrementalEvaluator::with_snapshot(&snapshot);
        inc.set_pruning(false);
        inc.set_splicing(false);
        inc.prime(&base);
        let start = Instant::now();
        let mut evals = 0u64;
        for _ in 0..rounds {
            for &(pos, m) in &moves {
                black_box(inc.score_move(t, pos, m, &obj));
                evals += 1;
            }
        }
        evals as f64 / start.elapsed().as_secs_f64()
    };

    // Bounded argmin scan: identical candidates, but the running best
    // rides along as a pruning bound (and replays may splice on
    // reconvergence) — the shape SE's allocation scan and tabu's
    // neighborhood resolution actually run in production.
    mshc_obs::reset();
    let (bounded_eps, bounded_stats) = {
        let mut inc = IncrementalEvaluator::with_snapshot(&snapshot);
        inc.prime(&base);
        let start = Instant::now();
        let mut evals = 0u64;
        for _ in 0..rounds {
            let mut best = f64::INFINITY;
            for &(pos, m) in &moves {
                if let MoveScore::Exact(score) = inc.score_move_bounded(t, pos, m, best, &obj) {
                    if score < best {
                        best = score;
                    }
                }
                evals += 1;
            }
            black_box(best);
        }
        (evals as f64 / start.elapsed().as_secs_f64(), inc.stats())
    };
    // The registry saw exactly this probe since the reset, so the two
    // views must agree bit for bit (same integer counters, same ratio).
    let bounded_det = mshc_obs::snapshot().deterministic;
    assert_eq!(
        bounded_det.pruned_fraction(),
        bounded_stats.pruned_fraction(),
        "registry-sourced pruned fraction must match the evaluator's own stats"
    );

    // Reconvergence-splice scan: the schedule-neutral transposition
    // grid with the fast path on and pruning off, so every candidate
    // replays to a checkpoint boundary where the splice can fire. The
    // bounded scan above cannot exercise this path — its grid prunes
    // 99%+ of the candidates before any tail reconverges — so the
    // spliced_fraction series is measured here.
    mshc_obs::reset();
    let splice_stats = {
        let splice_moves = mshc_bench::probes::splice_move_grid(&inst, &base);
        assert!(!splice_moves.is_empty(), "paper-scale base has cross-machine adjacencies");
        let mut inc = IncrementalEvaluator::with_snapshot(&snapshot);
        inc.set_pruning(false);
        inc.prime(&base);
        for _ in 0..rounds {
            for &(st, pos, m) in &splice_moves {
                black_box(inc.score_move(st, pos, m, &obj));
            }
        }
        inc.stats()
    };
    let splice_det = mshc_obs::snapshot().deterministic;
    assert_eq!(
        splice_det.spliced_fraction(),
        splice_stats.spliced_fraction(),
        "registry-sourced spliced fraction must match the evaluator's own stats"
    );

    // The scaling curve at the canonical pool sizes; `batch ×1` and
    // `batch ×N` reuse curve points when the size matches.
    let scaling: Vec<ThreadScalingPoint> = [1usize, 2, 4, 8]
        .into_iter()
        .map(|n| ThreadScalingPoint { threads: n, evals_per_sec: batch_eps(n) })
        .collect();
    let curve_point = |n: usize| scaling.iter().find(|p| p.threads == n).map(|p| p.evals_per_sec);
    let batch1_eps = curve_point(1).expect("curve has the 1-thread point");
    let batchn_eps = curve_point(threads).unwrap_or_else(|| batch_eps(threads));

    // Pool-reuse duel on the short bounded scan: the resident pool vs a
    // per-call scoped crew (the retired executor, preserved in
    // `probes::spawn_crew_chunks`), both running the identical bounded
    // argmin at the same crew size. Short scans are the post-pruning
    // common case, so this isolates submit latency: pool wake vs thread
    // spawn/join.
    let crew = 4usize;
    let (t_short, short_moves) = mshc_bench::probes::short_move_grid(&inst, &base, 24);
    let short_reps = rounds * 40;
    let short_pool_eps = {
        let pool = rayon::ThreadPoolBuilder::new().num_threads(crew).build().expect("pool");
        pool.install(|| {
            let mut batch = BatchEvaluator::new(&snapshot);
            // Warm-up spawns the resident workers and fills the arenas.
            black_box(batch.best_move(g, &base, t_short, &short_moves, &obj));
            let start = Instant::now();
            for _ in 0..short_reps {
                black_box(batch.best_move(g, &base, t_short, &short_moves, &obj));
            }
            (short_reps * short_moves.len()) as f64 / start.elapsed().as_secs_f64()
        })
    };
    let short_spawn_eps = {
        use std::sync::Mutex;
        let arenas: Mutex<Vec<IncrementalEvaluator>> = Mutex::new(Vec::new());
        let scan = || {
            let chunk_best =
                mshc_bench::probes::spawn_crew_chunks(crew, short_moves.len(), |range| {
                    // The old arena checkout: pop from a shared mutex
                    // pool and re-prime on every chunk.
                    let mut inc = arenas
                        .lock()
                        .expect("spawn-side arenas")
                        .pop()
                        .unwrap_or_else(|| IncrementalEvaluator::with_snapshot(&snapshot));
                    inc.prime(&base);
                    let mut best = f64::INFINITY;
                    for i in range {
                        let (pos, m) = short_moves[i];
                        if let MoveScore::Exact(s) =
                            inc.score_move_bounded(t_short, pos, m, best, &obj)
                        {
                            if s < best {
                                best = s;
                            }
                        }
                    }
                    arenas.lock().expect("spawn-side arenas").push(inc);
                    best
                });
            chunk_best.into_iter().fold(f64::INFINITY, f64::min)
        };
        black_box(scan());
        let start = Instant::now();
        for _ in 0..short_reps {
            black_box(scan());
        }
        (short_reps * short_moves.len()) as f64 / start.elapsed().as_secs_f64()
    };

    // Tournament-engine probe: a fixed tiny grid raced end to end; the
    // cells/sec series tracks whole-subsystem throughput (workload
    // generation + all three evaluator tiers + aggregation) per commit.
    let tournament_cps = {
        let tournament = TournamentSpec {
            algorithms: ["se", "ga", "sa", "tabu", "heft", "min-min"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
            seeds: mshc_portfolio::replicate_seeds(2001, 2),
            iterations: if rounds <= 6 { 10 } else { 30 },
            ..TournamentSpec::new("tiny", tiny_suite())
        };
        let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().expect("pool");
        let run = pool
            .install(|| mshc_portfolio::run_tournament(&tournament))
            .expect("tiny tournament runs");
        let (board, timing) = mshc_portfolio::aggregate(&run);
        assert_eq!(board.failures, 0, "bench tournament must not have failing cells");
        let gaps: Vec<f64> = board.results.iter().filter_map(|c| c.gap).collect();
        assert!(!gaps.is_empty(), "makespan races must carry certificates");
        (timing.cells_per_sec, gaps.iter().sum::<f64>() / gaps.len() as f64)
    };
    let (tournament_cps, mean_gap) = tournament_cps;

    // Certificate probes. The bound computation is a one-off per-run
    // cost, so its series is microseconds per instance, not evals/sec.
    let lower_bound_us = {
        let reps = (rounds * 50).max(100);
        let start = Instant::now();
        for _ in 0..reps {
            black_box(InstanceBound::compute(black_box(&inst)));
        }
        start.elapsed().as_secs_f64() * 1e6 / reps as f64
    };

    // Early-stop probe: an integer-exact balanced instance (8
    // independent tasks, 2 machines, every execution 6.0 → certified
    // floor 24.0, reachable by any 4+4 split) raced by the full
    // portfolio. Iterative schedulers that land on the floor terminate
    // early; one-shot heuristics never do — the fraction tracks how
    // much of the portfolio the certificate actually short-circuits.
    let early_stop_fraction = {
        let g = TaskGraphBuilder::new(8).build().expect("trivial graph");
        let exec = Matrix::filled(2, 8, 6.0);
        let sys = HcSystem::with_anonymous_machines(2, exec, Matrix::filled(1, 0, 0.0))
            .expect("balanced system");
        let balanced = HcInstance::new(g, sys).expect("balanced instance");
        let budget = RunBudget::iterations(if rounds <= 6 { 40 } else { 120 });
        let stops = ALGORITHMS
            .iter()
            .filter(|name| {
                let mut s = mshc_portfolio::build_contestant(name, 2001).expect("known algorithm");
                s.run(&balanced, &budget).early_stopped
            })
            .count();
        stops as f64 / ALGORITHMS.len() as f64
    };

    // Replan probe: a fixed disturbance trace applied to a baseline SA
    // schedule on a small preset, timed end to end (prefix freeze +
    // residual instance build + evaluator re-prime + residual search).
    let replan_us = {
        let small =
            WorkloadSpec { tasks: 40, machines: 4, seed: 2001, ..WorkloadSpec::small(2001) }
                .generate();
        let budget = RunBudget::iterations(if rounds <= 6 { 10 } else { 30 });
        let mut search = mshc_heuristics::SimulatedAnnealing::new(mshc_heuristics::SaConfig {
            seed: 2001,
            ..mshc_heuristics::SaConfig::default()
        });
        let baseline = search.run(&small, &budget, None);
        let trace = DisturbanceTrace::generate(
            &DisturbanceTraceSpec::balanced(4, baseline.makespan, 4),
            2001,
        );
        let reps = (rounds / 2).max(3);
        let start = Instant::now();
        let mut applied = 0u64;
        for _ in 0..reps {
            let mut replanner = Replanner::new(&small, baseline.solution.clone());
            for d in &trace.events {
                black_box(replanner.apply(d, &mut search, &budget).expect("trace is applicable"));
                applied += 1;
            }
        }
        start.elapsed().as_secs_f64() * 1e6 / applied as f64
    };

    // Chaos probe: the tiny tournament under a seeded fault plan that
    // panics two named cells. Both must come back degraded (retried,
    // not dropped), nothing else may be touched.
    let degraded_cell_fraction = {
        let spec = TournamentSpec {
            algorithms: ["se", "sa", "heft"].iter().map(|s| s.to_string()).collect(),
            seeds: vec![2001],
            iterations: 6,
            ..TournamentSpec::new("chaos", tiny_suite())
        };
        let tags: Vec<String> = tiny_suite().iter().map(|sc| sc.tag()).collect();
        mshc_schedule::faults::arm(&mshc_schedule::FaultPlan {
            cell_panics: vec![
                mshc_schedule::CellFault {
                    algorithm: "se".into(),
                    scenario: tags[0].clone(),
                    seed: 2001,
                },
                mshc_schedule::CellFault {
                    algorithm: "sa".into(),
                    scenario: tags[1].clone(),
                    seed: 2001,
                },
            ],
            ..mshc_schedule::FaultPlan::default()
        });
        let run = mshc_portfolio::run_tournament(&spec).expect("chaos tournament runs");
        mshc_schedule::faults::disarm();
        let (board, _) = mshc_portfolio::aggregate(&run);
        assert_eq!(board.failures, 0, "retries must absorb both injected panics");
        assert_eq!(board.degraded, 2, "both injected cells must be flagged");
        board.degraded as f64 / board.cells as f64
    };

    // GA generation probe: the whole scheduler raced end to end on the
    // paper-scale preset, same seed, offspring fitness via
    // parent-primed prefix splicing (the default tier-3 path) vs the
    // --ga-full-eval tier-1 escape hatch. The runs are bit-identical —
    // asserted below — so the ratio is pure evaluation-cost savings.
    let (ga_eps, ga_reuse, ga_run_speedup, ga_best) = {
        let gens = if rounds <= 6 { 15 } else { 60 };
        let reps = (rounds / 3).max(2);
        let budget = RunBudget::iterations(gens);
        let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().expect("pool");
        pool.install(|| {
            let timed = |b: &RunBudget| {
                // Warm-up run spawns the pool workers and fills arenas.
                let mut result = GaScheduler::with_seed(2001).run(&inst, b, None);
                let start = Instant::now();
                for _ in 0..reps {
                    result = GaScheduler::with_seed(2001).run(&inst, b, None);
                }
                (start.elapsed().as_secs_f64() / reps as f64, result)
            };
            let (t_full, full) = timed(&budget.clone().with_ga_full_eval(true));
            // Reset so the registry window covers only the spliced-path
            // repetitions: its prefix-reuse fraction is then the same
            // ratio as a single run's (identical runs sum to identical
            // ratios, up to one f64 rounding in the division).
            mshc_obs::reset();
            let (t_spliced, spliced) = timed(&budget);
            assert_eq!(spliced.solution, full.solution, "splicing must not change the GA's bits");
            assert_eq!(spliced.objective_value, full.objective_value);
            assert_eq!(spliced.evaluations, full.evaluations);
            let ga_det = mshc_obs::snapshot().deterministic;
            let reuse = ga_det.prefix_reuse_fraction();
            assert!(
                (reuse - spliced.scan.prefix_reuse_fraction()).abs() < 1e-9,
                "registry-sourced prefix reuse ({reuse}) must match the run's own stats ({})",
                spliced.scan.prefix_reuse_fraction()
            );
            (spliced.evaluations as f64 / t_spliced, reuse, t_full / t_spliced, spliced.solution)
        })
    };

    // GA cohort probe: the prefix-splicing mechanism on its canonical
    // shape, mirroring how the incremental and bounded series isolate
    // theirs on the widest-grid scan. Parents are a tight cluster
    // around the GA's own incumbent (a converged population); offspring
    // carry the default operator mix at the selection fixpoint, where
    // crossover degenerates to clones. Scores are asserted bit-equal
    // between the two paths, so the ratio is pure evaluation cost.
    let ga_speedup = {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let mut parents = vec![ga_best];
        for _ in 0..3 {
            let mut p = parents[0].clone();
            let t = mshc_taskgraph::TaskId::from_usize(rng.gen_range(0..inst.task_count()));
            let (lo, hi) = p.valid_range(g, t);
            p.move_task(g, t, rng.gen_range(lo..=hi), p.machine_of(t)).expect("in-range");
            parents.push(p);
        }
        // Two generations' worth of offspring against one parent
        // cluster — converged populations move slowly, so consecutive
        // generations share their parent set and the per-parent prime
        // amortizes the way it does in a real converged run.
        let (children, descents) =
            mshc_bench::probes::ga_offspring_cohort(&inst, &parents, 200, &mut rng);
        let mut eval = Evaluator::with_snapshot(&snapshot);
        let parent_costs: Vec<f64> =
            parents.iter().map(|p| eval.objective_value(p, &obj)).collect();
        let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().expect("pool");
        pool.install(|| {
            let mut batch = BatchEvaluator::new(&snapshot);
            let spliced =
                batch.score_population(&parents, &parent_costs, &children, &descents, &obj);
            let start = Instant::now();
            for _ in 0..rounds {
                black_box(batch.score_population(
                    &parents,
                    &parent_costs,
                    &children,
                    &descents,
                    &obj,
                ));
            }
            let t_spliced = start.elapsed().as_secs_f64();
            let full = batch.scores(&children, &obj);
            let start = Instant::now();
            for _ in 0..rounds {
                black_box(batch.scores(&children, &obj));
            }
            let t_full = start.elapsed().as_secs_f64();
            assert_eq!(spliced, full, "cohort scores must be bit-identical on both paths");
            t_full / t_spliced
        })
    };

    // Executor-health series: the timing plane accumulated since the GA
    // probe's reset (GA generations + the cohort probe — the heaviest
    // pool traffic in the run). Bridged from the pool's own counters at
    // snapshot time.
    let obs_timing = mshc_obs::snapshot().timing;

    let report = BenchReport {
        schema_version: mshc_obs::SCHEMA_VERSION,
        tasks: inst.task_count(),
        machines: inst.machine_count(),
        candidates: moves.len(),
        rounds,
        threads,
        available_parallelism,
        scalar_evals_per_sec: scalar_eps,
        incremental_evals_per_sec: incremental_eps,
        incremental_speedup_vs_full: incremental_eps / scalar_eps,
        bounded_scan_evals_per_sec: bounded_eps,
        bounded_speedup_vs_incremental: bounded_eps / incremental_eps,
        pruned_fraction: bounded_det.pruned_fraction(),
        spliced_fraction: splice_det.spliced_fraction(),
        batch_1thread_evals_per_sec: batch1_eps,
        batch_evals_per_sec: batchn_eps,
        speedup_vs_scalar: batchn_eps / scalar_eps,
        thread_scaling: batchn_eps / batch1_eps,
        thread_scaling_evals_per_sec: scaling,
        short_scan_pool_evals_per_sec: short_pool_eps,
        short_scan_spawn_evals_per_sec: short_spawn_eps,
        pool_reuse_speedup: short_pool_eps / short_spawn_eps,
        tournament_cells_per_sec: tournament_cps,
        lower_bound_us_per_instance: lower_bound_us,
        mean_gap,
        early_stop_fraction,
        replan_us_per_disturbance: replan_us,
        degraded_cell_fraction,
        ga_generation_evals_per_sec: ga_eps,
        ga_prefix_reuse_fraction: ga_reuse,
        ga_prefix_speedup_vs_full: ga_speedup,
        ga_run_speedup_vs_full: ga_run_speedup,
        steal_count: obs_timing.steal_count,
        queue_depth_hwm: obs_timing.queue_depth_hwm,
    };
    let json = serde_json::to_string(&report).expect("report serializes");
    std::fs::write(&out_path, &json).expect("write BENCH_eval.json");
    println!("{json}");
    println!(
        "full {:.0}/s | incremental {:.0}/s ({:.2}x) | batch x1 {:.0}/s | batch x{} {:.0}/s \
         ({:.2}x)",
        scalar_eps,
        incremental_eps,
        report.incremental_speedup_vs_full,
        batch1_eps,
        threads,
        batchn_eps,
        report.speedup_vs_scalar
    );
    println!(
        "bounded scan {:.0}/s ({:.2}x vs incremental) | {:.1}% pruned | splice probe {:.1}% \
         spliced",
        bounded_eps,
        report.bounded_speedup_vs_incremental,
        100.0 * report.pruned_fraction,
        100.0 * report.spliced_fraction
    );
    println!(
        "ga: cohort splice {:.2}x vs full | run {:.0} evals/s, {:.1}% prefix reused, {:.2}x \
         whole-run",
        ga_speedup,
        ga_eps,
        100.0 * ga_reuse,
        ga_run_speedup
    );
    println!(
        "short scan ({} candidates, {} crew): pool {:.0}/s vs spawn {:.0}/s ({:.2}x pool reuse)",
        short_moves.len(),
        crew,
        short_pool_eps,
        short_spawn_eps,
        report.pool_reuse_speedup
    );
    println!("tournament: {:.2} cells/sec (tiny suite, {} threads)", tournament_cps, threads);
    println!(
        "executor: {} steals, queue depth hwm {} (GA probe window)",
        report.steal_count, report.queue_depth_hwm
    );
    println!(
        "certificates: lower bound {:.1}us/instance | mean gap {:.3}x | {:.0}% of the probe \
         portfolio early-stopped",
        lower_bound_us,
        mean_gap,
        100.0 * early_stop_fraction
    );
    println!("wrote {out_path}");
}
