//! Structured application workloads: classic kernels from the
//! heterogeneous-scheduling literature paired with a generated platform.
//!
//! The paper's introduction motivates HC with scientific applications
//! whose subtasks favor different architectures (SIMD, MIMD, FFT engines,
//! §1–2). These constructors build such applications — FFT pipelines,
//! Gaussian elimination, wavefront stencils — on top of the same
//! range-based platform model as [`crate::WorkloadSpec`], and are used by
//! the examples.

use crate::spec::Heterogeneity;
use mshc_platform::{HcInstance, HcSystem, Matrix};
use mshc_taskgraph::gen;
use mshc_taskgraph::TaskGraph;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Attaches a random platform (range-based heterogeneity, CCR-targeted
/// transfers) to an arbitrary task graph.
pub fn with_platform(
    graph: TaskGraph,
    machines: usize,
    heterogeneity: Heterogeneity,
    ccr: f64,
    seed: u64,
) -> HcInstance {
    assert!(machines >= 1, "need at least one machine");
    assert!(ccr.is_finite() && ccr >= 0.0, "CCR must be finite and >= 0");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let k = graph.task_count();
    let hi = heterogeneity.factor_range();
    let base: Vec<f64> = (0..k).map(|_| rng.gen_range(50.0..150.0)).collect();
    let exec = Matrix::from_fn(machines, k, |_, t| base[t] * rng.gen_range(1.0..=hi));
    let mean_factor = (1.0 + hi) / 2.0;
    let pairs = machines * (machines - 1) / 2;
    let transfer = Matrix::from_fn(pairs, graph.data_count(), |_, d| {
        let producer = graph.edges()[d].src;
        ccr * base[producer.index()] * mean_factor * rng.gen_range(0.8..1.2)
    });
    let sys = HcSystem::with_anonymous_machines(machines, exec, transfer)
        .expect("generated matrices valid");
    HcInstance::new(graph, sys).expect("dimensions agree")
}

/// FFT butterfly application on `2^m` points.
pub fn fft(
    m: u32,
    machines: usize,
    heterogeneity: Heterogeneity,
    ccr: f64,
    seed: u64,
) -> HcInstance {
    with_platform(gen::fft_butterfly(m).expect("m >= 1"), machines, heterogeneity, ccr, seed)
}

/// Gaussian elimination on an `n × n` matrix.
pub fn gaussian(
    n: usize,
    machines: usize,
    heterogeneity: Heterogeneity,
    ccr: f64,
    seed: u64,
) -> HcInstance {
    with_platform(gen::gaussian_elimination(n).expect("n >= 2"), machines, heterogeneity, ccr, seed)
}

/// Wavefront stencil (dynamic-programming dependence) on a grid.
pub fn stencil(
    rows: usize,
    cols: usize,
    machines: usize,
    heterogeneity: Heterogeneity,
    ccr: f64,
    seed: u64,
) -> HcInstance {
    with_platform(
        gen::diamond(rows, cols).expect("grid >= 1x1"),
        machines,
        heterogeneity,
        ccr,
        seed,
    )
}

/// Fork–join pipeline: `branches` parallel chains of `stage_len` stages.
pub fn fork_join(
    branches: usize,
    stage_len: usize,
    machines: usize,
    heterogeneity: Heterogeneity,
    ccr: f64,
    seed: u64,
) -> HcInstance {
    with_platform(
        gen::fork_join(branches, stage_len).expect("branches, stages >= 1"),
        machines,
        heterogeneity,
        ccr,
        seed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mshc_platform::InstanceMetrics;

    #[test]
    fn fft_workload_generates() {
        let inst = fft(3, 4, Heterogeneity::Medium, 0.5, 1);
        assert_eq!(inst.task_count(), 32);
        assert_eq!(inst.machine_count(), 4);
    }

    #[test]
    fn gaussian_workload_generates() {
        let inst = gaussian(5, 3, Heterogeneity::High, 1.0, 2);
        assert_eq!(inst.task_count(), 4 + 10); // n-1 pivots + n(n-1)/2 updates
    }

    #[test]
    fn stencil_ccr_tracks_target() {
        let inst = stencil(6, 6, 4, Heterogeneity::Low, 1.0, 3);
        let m = InstanceMetrics::compute(&inst);
        assert!((m.ccr - 1.0).abs() < 0.2, "measured {}", m.ccr);
    }

    #[test]
    fn fork_join_shape() {
        let inst = fork_join(4, 3, 4, Heterogeneity::Medium, 0.1, 4);
        assert_eq!(inst.task_count(), 2 + 12);
        assert_eq!(inst.graph().entry_tasks().len(), 1);
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            fft(3, 4, Heterogeneity::Medium, 0.5, 9),
            fft(3, 4, Heterogeneity::Medium, 0.5, 9)
        );
    }
}
