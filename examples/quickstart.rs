//! Quickstart: the paper's Figure-1 worked example, end to end.
//!
//! Builds the 7-subtask / 6-data-item application DAG on the 2-machine HC
//! system, encodes the Figure-2 schedule, evaluates it, then lets
//! simulated evolution search for something better.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use mshc::prelude::*;

fn main() {
    // --- the Figure-1 instance (reconstructed matrices; see DESIGN.md) ---
    let inst = figure1();
    println!(
        "instance: {} subtasks, {} data items, {} machines",
        inst.task_count(),
        inst.data_count(),
        inst.machine_count()
    );

    // --- the schedule of the paper's Figure 2, in canonical string form ---
    // m0 runs s0, s3, s4; m1 runs s1, s2, s5, s6.
    let order: Vec<TaskId> = (0..7).map(TaskId::new).collect();
    let machines = [0u32, 1, 1, 0, 0, 1, 1].map(MachineId::new);
    let fig2 = Solution::from_order(inst.graph(), 2, &order, &machines).unwrap();
    println!("\nFigure-2 string: {}", fig2.display_string());

    let mut eval = Evaluator::new(&inst);
    let report = eval.report(&fig2);
    println!("Figure-2 schedule length: {:.0}", report.makespan);
    let gantt = Gantt::build(&fig2, &report);
    print!("{}", gantt.render_ascii(&inst, 64));

    // The discrete-event simulator replays the same schedule and agrees.
    let sim = replay(&inst, &fig2).expect("valid solutions never deadlock");
    assert!((sim.makespan - report.makespan).abs() < 1e-9);
    println!("DES replay agrees: {:.0}\n", sim.makespan);

    // --- simulated evolution (the paper's algorithm) ---
    let cfg = SeConfig {
        seed: 2001,
        selection_bias: -0.2, // small instance: thorough search (§4.4)
        ..SeConfig::default()
    };
    let mut trace = Trace::new();
    let result = SeScheduler::new(cfg).run(&inst, &RunBudget::iterations(100), Some(&mut trace));
    println!("SE best string:  {}", result.solution.display_string());
    println!("SE schedule length: {:.0} after {} iterations", result.makespan, result.iterations);

    let report = eval.report(&result.solution);
    let gantt = Gantt::build(&result.solution, &report);
    print!("{}", gantt.render_ascii(&inst, 64));
    println!("machine utilization: {:.1}%", 100.0 * gantt.utilization());

    assert!(result.makespan <= report.makespan + 1e-9);
    println!(
        "\nimprovement over Figure-2 schedule: {:.1}%",
        100.0 * (1.0 - result.makespan / sim.makespan)
    );
}
