//! # mshc-stats
//!
//! Small statistics substrate for the `mshc` suite: batch summaries,
//! online (Welford) accumulators, normal-approximation confidence
//! intervals and least-squares trend fits. The benchmark harness uses
//! these to summarize repeated scheduler runs; no external stats crate is
//! pulled in.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fit;
pub mod online;
pub mod summary;

pub use fit::LinearFit;
pub use online::OnlineStats;
pub use summary::Summary;
