//! The tournament executor: races over the rayon pool, cells isolated
//! against panics, optional shared-incumbent portfolio rounds.
//!
//! Execution unit is the **race** (one instance × one objective): every
//! algorithm of the spec contests it, so the instance is generated once
//! and — in portfolio mode — the contestants can exchange incumbents at
//! round barriers through the [`SearchStep`] interface. Races fan out
//! over the rayon pool; results merge in race order, so the complete
//! outcome is **bit-identical at any thread count** (each race is
//! internally sequential and every evaluator in the stack is
//! thread-count-invariant by construction).
//!
//! A panicking cell (degenerate scenario parameters, a scheduler bug)
//! is caught with `std::panic::catch_unwind`, reported in that cell's
//! [`CellOutcome::error`], and never aborts the run: the remaining
//! cells of the race — and all other races — still complete.

use crate::spec::{build_contestant, Race, TournamentSpec};
use mshc_obs as obs;
use mshc_schedule::{RunResult, ScanStats, SearchStep, Solution};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

/// One algorithm's outcome on one race cell. Everything serialized here
/// is deterministic (no wall-clock fields — timing lives in
/// [`CellTiming`] and is reported separately), so leaderboard JSON is
/// bit-identical across thread counts and repeat runs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellOutcome {
    /// Algorithm name.
    pub algorithm: String,
    /// Scenario tag (stable cell coordinate).
    pub scenario: String,
    /// Replicate seed.
    pub seed: u64,
    /// Objective spelling.
    pub objective: String,
    /// Whether the cell completed (false = panicked; see `error`).
    pub ok: bool,
    /// Best value under the race objective (0.0 when failed).
    pub objective_value: f64,
    /// Best solution's makespan (0.0 when failed).
    pub makespan: f64,
    /// Iterations (generations) executed.
    pub iterations: u64,
    /// Schedule evaluations performed — part of the determinism
    /// contract: identical at any thread count.
    pub evaluations: u64,
    /// Certified instance lower bound on the makespan (`None` for
    /// non-makespan objectives and failed cells). Instance-level, so
    /// identical across every algorithm of a race — and, like every
    /// other serialized field, bit-identical at any thread count.
    #[serde(default)]
    pub lower_bound: Option<f64>,
    /// Certified optimality gap `objective_value / lower_bound` (≥ 1 by
    /// construction of the bound; `None` wherever `lower_bound` is).
    #[serde(default)]
    pub gap: Option<f64>,
    /// Whether the run terminated early because its incumbent reached
    /// the certified floor.
    #[serde(default)]
    pub early_stopped: bool,
    /// Same-seed attempts beyond the first this cell needed (injected
    /// or real panics caught and retried). 0 for clean cells.
    #[serde(default)]
    pub retries: u64,
    /// Whether the cell completed only after retries: marked in the
    /// leaderboard instead of being dropped.
    #[serde(default)]
    pub degraded: bool,
    /// Why the run stopped (`completed`/`budget`/`deadline`/
    /// `cancelled`/`floor`; empty for failed cells and files written
    /// before the termination taxonomy existed).
    #[serde(default)]
    pub termination: String,
    /// Panic message when `ok` is false, empty otherwise.
    pub error: String,
}

/// Per-cell diagnostics sidecar, kept out of the serialized outcome:
/// wall-clock cost plus the run's scan-efficiency counters. The scan
/// axes ride here rather than in [`CellOutcome`] because pruned/spliced
/// counts legitimately vary with the chunk grid (thread count), and the
/// serialized outcome must stay bit-identical across thread counts.
#[derive(Debug, Clone, Copy)]
pub struct CellTiming {
    /// Seconds spent executing the cell (in portfolio mode: this
    /// contestant's share of the race, excluding barrier bookkeeping).
    pub secs: f64,
    /// The cell's [`ScanStats`] (zeroed for failed cells and one-shot
    /// heuristics) — source of the per-cell efficiency columns in
    /// `tournament --csv`.
    pub scan: ScanStats,
}

/// Builds a cell's timing sidecar, recording the cell's wall time into
/// the registry's [`obs::Hist::CellUs`] histogram on the way.
fn cell_timing(secs: f64, scan: ScanStats) -> CellTiming {
    obs::observe(obs::Hist::CellUs, (secs * 1e6) as u64);
    CellTiming { secs, scan }
}

/// A finished tournament: per-cell outcomes in deterministic expansion
/// order plus the parallel wall-clock vector.
#[derive(Debug)]
pub struct TournamentRun {
    /// The spec that produced it.
    pub spec: TournamentSpec,
    /// One outcome per cell, race-major then algorithm order.
    pub cells: Vec<CellOutcome>,
    /// Timing for the same cells, same order.
    pub timing: Vec<CellTiming>,
    /// Wall-clock seconds for the whole tournament.
    pub total_secs: f64,
}

/// Executes the spec over the current rayon pool. Returns an error only
/// for an invalid spec; individual cell failures are reported per cell.
pub fn run_tournament(spec: &TournamentSpec) -> Result<TournamentRun, String> {
    let races = spec.expand()?;
    let start = Instant::now();
    let per_race: Vec<Vec<(CellOutcome, CellTiming)>> =
        races.par_iter().map(|race| run_race(spec, race)).collect();
    let total_secs = start.elapsed().as_secs_f64();
    let mut cells = Vec::with_capacity(spec.cell_count());
    let mut timing = Vec::with_capacity(spec.cell_count());
    for race_cells in per_race {
        for (outcome, t) in race_cells {
            cells.push(outcome);
            timing.push(t);
        }
    }
    Ok(TournamentRun { spec: spec.clone(), cells, timing, total_secs })
}

/// Renders a panic payload into a one-line message.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

fn failed_cell(race: &Race, algorithm: &str, error: String, retries: u64) -> CellOutcome {
    obs::add(obs::Counter::CellsPanicked, 1);
    obs::emit_event(
        "cell_panicked",
        &[
            ("algorithm", obs::EventValue::Str(algorithm)),
            ("scenario", obs::EventValue::Str(&race.scenario.tag())),
            ("seed", obs::EventValue::U64(race.seed)),
            ("objective", obs::EventValue::Str(&race.objective_label)),
            ("error", obs::EventValue::Str(&error)),
        ],
    );
    CellOutcome {
        algorithm: algorithm.to_string(),
        scenario: race.scenario.tag(),
        seed: race.seed,
        objective: race.objective_label.clone(),
        ok: false,
        objective_value: 0.0,
        makespan: 0.0,
        iterations: 0,
        evaluations: 0,
        lower_bound: None,
        gap: None,
        early_stopped: false,
        retries,
        degraded: retries > 0,
        termination: String::new(),
        error,
    }
}

fn finished_cell(race: &Race, algorithm: &str, result: &RunResult, retries: u64) -> CellOutcome {
    obs::add(obs::Counter::CellsCompleted, 1);
    if retries > 0 {
        obs::add(obs::Counter::CellsDegraded, 1);
    }
    obs::emit_event(
        "cell_finished",
        &[
            ("algorithm", obs::EventValue::Str(algorithm)),
            ("scenario", obs::EventValue::Str(&race.scenario.tag())),
            ("seed", obs::EventValue::U64(race.seed)),
            ("objective", obs::EventValue::Str(&race.objective_label)),
            ("objective_value", obs::EventValue::F64(result.objective_value)),
            ("makespan", obs::EventValue::F64(result.makespan)),
            ("iterations", obs::EventValue::U64(result.iterations)),
            ("evaluations", obs::EventValue::U64(result.evaluations)),
            ("early_stopped", obs::EventValue::Bool(result.early_stopped)),
            ("termination", obs::EventValue::Str(result.termination.as_str())),
        ],
    );
    CellOutcome {
        algorithm: algorithm.to_string(),
        scenario: race.scenario.tag(),
        seed: race.seed,
        objective: race.objective_label.clone(),
        ok: true,
        objective_value: result.objective_value,
        makespan: result.makespan,
        iterations: result.iterations,
        evaluations: result.evaluations,
        lower_bound: result.lower_bound,
        gap: result.gap,
        early_stopped: result.early_stopped,
        retries,
        degraded: retries > 0,
        termination: result.termination.as_str().to_string(),
        error: String::new(),
    }
}

/// Bumps the deterministic retry counter and emits the retry event.
fn note_retry(race: &Race, algorithm: &str, error: &str) {
    obs::add(obs::Counter::CellsRetried, 1);
    obs::emit_event(
        "cell_retried",
        &[
            ("algorithm", obs::EventValue::Str(algorithm)),
            ("scenario", obs::EventValue::Str(&race.scenario.tag())),
            ("seed", obs::EventValue::U64(race.seed)),
            ("error", obs::EventValue::Str(error)),
        ],
    );
}

/// The chaos hook on cell attempts: consumes a matching [`CellFault`]
/// from the armed fault plan (if any) and panics the attempt. Faults
/// are keyed by the cell's identity `(algorithm, scenario, seed)` and
/// consumed on use, so injection is deterministic at any thread count
/// and the same-seed retry finds the fault gone.
///
/// [`CellFault`]: mshc_schedule::CellFault
fn fault_gate(race: &Race, algorithm: &str) {
    if mshc_schedule::faults::take_cell_fault(algorithm, &race.scenario.tag(), race.seed) {
        panic!("{} injected cell panic", mshc_schedule::FAULT_PANIC_PREFIX);
    }
}

/// Runs one race: generates the instance once, then contests it with
/// every algorithm — independently, or cooperatively in portfolio mode.
fn run_race(spec: &TournamentSpec, race: &Race) -> Vec<(CellOutcome, CellTiming)> {
    let cells = run_race_inner(spec, race);
    obs::emit_event(
        "race_done",
        &[
            ("scenario", obs::EventValue::Str(&race.scenario.tag())),
            ("seed", obs::EventValue::U64(race.seed)),
            ("objective", obs::EventValue::Str(&race.objective_label)),
            ("cells", obs::EventValue::U64(cells.len() as u64)),
            ("failures", obs::EventValue::U64(cells.iter().filter(|(c, _)| !c.ok).count() as u64)),
        ],
    );
    cells
}

fn run_race_inner(spec: &TournamentSpec, race: &Race) -> Vec<(CellOutcome, CellTiming)> {
    let inst = match catch_unwind(AssertUnwindSafe(|| race.scenario.generate(race.seed))) {
        Ok(inst) => inst,
        Err(payload) => {
            // The whole race shares the instance; report the generation
            // failure on every cell.
            let msg = format!("workload generation panicked: {}", panic_message(payload));
            return spec
                .algorithms
                .iter()
                .map(|a| {
                    (failed_cell(race, a, msg.clone(), 0), cell_timing(0.0, ScanStats::default()))
                })
                .collect();
        }
    };
    let budget = spec.budget(race.objective);
    if spec.portfolio {
        run_race_portfolio(spec, race, &inst, &budget)
    } else {
        run_race_independent(spec, race, &inst, &budget)
    }
}

fn run_race_independent(
    spec: &TournamentSpec,
    race: &Race,
    inst: &mshc_platform::HcInstance,
    budget: &mshc_schedule::RunBudget,
) -> Vec<(CellOutcome, CellTiming)> {
    spec.algorithms
        .iter()
        .map(|algorithm| {
            let t0 = Instant::now();
            // Bounded deterministic same-seed retries: every attempt
            // re-runs with identical inputs, so a retry differs from the
            // first attempt only if the panic cause was external
            // (injected faults are consumed on use; real heisenbugs get
            // their second chance). Attempt count is part of the
            // deterministic outcome.
            let mut retries = 0u64;
            let (cell, scan) = loop {
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    let mut contestant =
                        build_contestant(algorithm, race.seed).expect("spec validated");
                    fault_gate(race, algorithm);
                    contestant.run(inst, budget)
                }));
                match outcome {
                    Ok(result) => {
                        break (finished_cell(race, algorithm, &result, retries), result.scan)
                    }
                    Err(payload) if retries < spec.cell_retries => {
                        retries += 1;
                        note_retry(race, algorithm, &panic_message(payload));
                    }
                    Err(payload) => {
                        break (
                            failed_cell(race, algorithm, panic_message(payload), retries),
                            ScanStats::default(),
                        )
                    }
                }
            };
            (cell, cell_timing(t0.elapsed().as_secs_f64(), scan))
        })
        .collect()
}

/// One contestant's live state during a portfolio race.
enum Lane<'a> {
    Alive { state: Box<dyn SearchStep + 'a>, secs: f64, exhausted: bool, retries: u64 },
    Dead { error: String, secs: f64, retries: u64 },
}

fn run_race_portfolio<'a>(
    spec: &TournamentSpec,
    race: &Race,
    inst: &'a mshc_platform::HcInstance,
    budget: &mshc_schedule::RunBudget,
) -> Vec<(CellOutcome, CellTiming)> {
    // Open every contestant's cooperative interface.
    let mut lanes: Vec<Lane<'a>> = spec
        .algorithms
        .iter()
        .map(|algorithm| {
            let t0 = Instant::now();
            // Same bounded retry policy as independent cells, applied to
            // the start phase (where injected cell faults fire). Step
            // and inject panics are not retried: mid-run state is gone.
            let mut retries = 0u64;
            loop {
                match catch_unwind(AssertUnwindSafe(|| {
                    let contestant =
                        build_contestant(algorithm, race.seed).expect("spec validated");
                    fault_gate(race, algorithm);
                    contestant.start(inst, budget)
                })) {
                    Ok(state) => {
                        break Lane::Alive {
                            state,
                            secs: t0.elapsed().as_secs_f64(),
                            exhausted: false,
                            retries,
                        }
                    }
                    Err(payload) if retries < spec.cell_retries => {
                        retries += 1;
                        note_retry(race, algorithm, &panic_message(payload));
                    }
                    Err(payload) => {
                        break Lane::Dead {
                            error: panic_message(payload),
                            secs: t0.elapsed().as_secs_f64(),
                            retries,
                        }
                    }
                }
            }
        })
        .collect();

    // Synchronized migration rounds: equal iteration slices, then the
    // single best incumbent is offered to every *other* lane. Slices
    // cover the whole budget (ceil division), so by the last round
    // every lane is exhausted; extra slices after exhaustion are no-ops.
    let slice = spec.iterations.div_ceil(spec.rounds).max(1);
    for _ in 0..spec.rounds {
        for lane in &mut lanes {
            if let Lane::Alive { state, secs, exhausted, retries } = lane {
                if *exhausted {
                    continue;
                }
                let t0 = Instant::now();
                match catch_unwind(AssertUnwindSafe(|| state.step(slice, None))) {
                    Ok(verdict) => {
                        *secs += t0.elapsed().as_secs_f64();
                        *exhausted = verdict.is_exhausted();
                    }
                    Err(payload) => {
                        let secs = *secs + t0.elapsed().as_secs_f64();
                        let retries = *retries;
                        *lane = Lane::Dead { error: panic_message(payload), secs, retries };
                    }
                }
            }
        }

        // Barrier: pick the best incumbent (ties break to the earliest
        // lane, so migration is deterministic), clone it out, offer it
        // to everyone else.
        let migrant: Option<(usize, Solution, f64)> = lanes
            .iter()
            .enumerate()
            .filter_map(|(i, lane)| match lane {
                Lane::Alive { state, .. } => {
                    state.incumbent().map(|inc| (i, inc.solution, inc.cost))
                }
                Lane::Dead { .. } => None,
            })
            .min_by(|a, b| a.2.total_cmp(&b.2).then(a.0.cmp(&b.0)))
            .map(|(i, sol, cost)| (i, sol.clone(), cost));
        if let Some((donor, solution, cost)) = migrant {
            for (i, lane) in lanes.iter_mut().enumerate() {
                if i == donor {
                    continue;
                }
                if let Lane::Alive { state, secs, retries, .. } = lane {
                    let t0 = Instant::now();
                    if let Err(payload) =
                        catch_unwind(AssertUnwindSafe(|| state.inject(&solution, cost)))
                    {
                        let secs = *secs + t0.elapsed().as_secs_f64();
                        let retries = *retries;
                        *lane = Lane::Dead { error: panic_message(payload), secs, retries };
                    }
                }
            }
        }

        if lanes.iter().all(|l| match l {
            Lane::Alive { exhausted, .. } => *exhausted,
            Lane::Dead { .. } => true,
        }) {
            break;
        }
    }

    // Finalize each lane into its cell.
    lanes
        .into_iter()
        .zip(&spec.algorithms)
        .map(|(lane, algorithm)| match lane {
            Lane::Alive { mut state, mut secs, retries, .. } => {
                let t0 = Instant::now();
                let (cell, scan) = match catch_unwind(AssertUnwindSafe(|| state.result())) {
                    Ok(result) => (finished_cell(race, algorithm, &result, retries), result.scan),
                    Err(payload) => (
                        failed_cell(race, algorithm, panic_message(payload), retries),
                        ScanStats::default(),
                    ),
                };
                secs += t0.elapsed().as_secs_f64();
                (cell, cell_timing(secs, scan))
            }
            Lane::Dead { error, secs, retries } => (
                failed_cell(race, algorithm, error, retries),
                cell_timing(secs, ScanStats::default()),
            ),
        })
        .collect()
}
