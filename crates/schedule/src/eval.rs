//! Analytic schedule evaluation.
//!
//! Because a [`Solution`] string is a linear extension of the DAG, start
//! and finish times follow from a single left-to-right pass (§4.1 makes
//! per-machine order = string order; precedence arrivals come from
//! already-finished tasks). Cost: O(k + p) per evaluation with zero
//! allocations after the first call — the evaluator owns reusable buffers
//! because the SE allocation step evaluates thousands of candidate strings
//! per iteration (§4.5).
//!
//! The evaluator walks an [`EvalSnapshot`] — a flattened copy of the
//! instance's adjacency and cost matrices — rather than the pointer-rich
//! [`HcInstance`] representation. Snapshots are shareable across threads,
//! which is how [`crate::BatchEvaluator`] runs many evaluators over one
//! instance concurrently.
//!
//! The pass folds an [`crate::ObjectiveState`] accumulator (running
//! makespan / flowtime / per-machine busy) **in string order** as tasks
//! complete, and [`Evaluator::objective_value`] scores incremental-capable
//! objectives from that fold. [`crate::IncrementalEvaluator`] replays
//! exactly the same fold from a checkpoint, which is what makes its
//! move scores bit-identical to a full pass here.

use crate::encoding::Solution;
use crate::objective::{EvalView, Objective, ObjectiveState, ObjectiveValues};
use crate::snapshot::EvalSnapshot;
use mshc_platform::HcInstance;
use mshc_taskgraph::TaskId;
use serde::{Deserialize, Serialize};
use std::borrow::Cow;

/// Start/finish times and objective values of one evaluated solution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduleReport {
    /// Start time of each task, indexed by task.
    pub start: Vec<f64>,
    /// Finish time of each task, indexed by task. The paper's `C_i`
    /// (actual cost of individual `e_i`, §4.3) is exactly `finish[i]`.
    pub finish: Vec<f64>,
    /// Busy (execution) time per machine, indexed by machine.
    pub machine_busy: Vec<f64>,
    /// Latest finish time — the schedule length the paper minimizes.
    pub makespan: f64,
    /// Sum of all task finish times (total flowtime).
    pub total_flowtime: f64,
    /// Certified instance lower bound on the makespan, stamped by
    /// [`attach_certificate`](Self::attach_certificate) (`None` until
    /// then — the evaluator scores one schedule and does not know the
    /// instance-wide floor).
    #[serde(default)]
    pub lower_bound: Option<f64>,
    /// Certified optimality gap `makespan / lower_bound` (≥ 1 by
    /// construction), stamped alongside [`lower_bound`](Self::lower_bound).
    #[serde(default)]
    pub gap: Option<f64>,
}

impl ScheduleReport {
    /// Assembles a report from raw per-task times plus the solution's
    /// machine assignment (used by the discrete-event replay, whose
    /// simulation loop produces only `start`/`finish`).
    ///
    /// `machine_busy` is always sized by the solution's **declared**
    /// machine count, not the highest machine actually used: machines
    /// that sit idle for the whole schedule appear as explicit `0.0`
    /// entries, so per-machine consumers (load-balance objectives, Gantt
    /// lanes) index without drift. Unvalidated solutions whose segments
    /// reference machines beyond the declared count grow the vector
    /// instead of panicking.
    pub fn from_times(start: Vec<f64>, finish: Vec<f64>, solution: &Solution) -> ScheduleReport {
        debug_assert_eq!(start.len(), solution.len(), "start times / solution length mismatch");
        debug_assert_eq!(finish.len(), solution.len(), "finish times / solution length mismatch");
        let mut machine_busy = vec![0.0; solution.machine_count()];
        for seg in solution.segments() {
            let i = seg.task.index();
            let m = seg.machine.index();
            if m >= machine_busy.len() {
                machine_busy.resize(m + 1, 0.0);
            }
            machine_busy[m] += finish[i] - start[i];
        }
        let makespan = finish.iter().copied().fold(0.0, f64::max);
        let total_flowtime = finish.iter().sum();
        ScheduleReport {
            start,
            finish,
            machine_busy,
            makespan,
            total_flowtime,
            lower_bound: None,
            gap: None,
        }
    }

    /// Stamps the certified instance floor and this schedule's
    /// optimality gap onto the report (see [`crate::InstanceBound`]).
    /// The gap is `None` exactly when the floor cannot certify the
    /// makespan (non-finite makespan — a validated instance always has
    /// a positive floor).
    pub fn attach_certificate(&mut self, inst: &HcInstance) {
        let bound = crate::InstanceBound::compute(inst);
        self.lower_bound = Some(bound.floor());
        self.gap = bound.gap(self.makespan);
    }

    /// Finish time of `t` (the paper's `C_i`).
    #[inline]
    pub fn finish_of(&self, t: TaskId) -> f64 {
        self.finish[t.index()]
    }

    /// Start time of `t`.
    #[inline]
    pub fn start_of(&self, t: TaskId) -> f64 {
        self.start[t.index()]
    }

    /// Mean task finish time.
    #[inline]
    pub fn mean_flowtime(&self) -> f64 {
        if self.finish.is_empty() {
            0.0
        } else {
            self.total_flowtime / self.finish.len() as f64
        }
    }

    /// The view an [`Objective`] scores.
    #[inline]
    pub fn view(&self) -> EvalView<'_> {
        EvalView { start: &self.start, finish: &self.finish, machine_busy: &self.machine_busy }
    }

    /// All built-in objective values of this schedule.
    pub fn objectives(&self) -> ObjectiveValues {
        ObjectiveValues::from_view(&self.view())
    }
}

/// Reusable schedule evaluator for one instance.
///
/// ```
/// use mshc_platform::{HcInstance, HcSystem, Matrix, MachineId};
/// use mshc_schedule::{Evaluator, Solution, Segment};
/// use mshc_taskgraph::{TaskGraphBuilder, TaskId};
///
/// let mut b = TaskGraphBuilder::new(2);
/// b.add_edge(0, 1).unwrap();
/// let g = b.build().unwrap();
/// let sys = HcSystem::with_anonymous_machines(
///     2,
///     Matrix::from_rows(&[vec![3.0, 4.0], vec![5.0, 2.0]]),
///     Matrix::from_rows(&[vec![6.0]]),
/// ).unwrap();
/// let inst = HcInstance::new(g, sys).unwrap();
/// let mut eval = Evaluator::new(&inst);
///
/// // Both on m0: 3 + 4 = 7, no communication.
/// let s = Solution::from_order(
///     inst.graph(), 2,
///     &[TaskId::new(0), TaskId::new(1)],
///     &[MachineId::new(0), MachineId::new(0)],
/// ).unwrap();
/// assert_eq!(eval.makespan(&s), 7.0);
///
/// // Split: 3 + 6 (transfer) + 2 = 11.
/// let s = Solution::from_order(
///     inst.graph(), 2,
///     &[TaskId::new(0), TaskId::new(1)],
///     &[MachineId::new(0), MachineId::new(1)],
/// ).unwrap();
/// assert_eq!(eval.makespan(&s), 11.0);
/// ```
#[derive(Debug)]
pub struct Evaluator<'a> {
    /// Owned when built straight from an instance; borrowed when many
    /// evaluators share one snapshot (the batch path).
    snap: Cow<'a, EvalSnapshot>,
    // Scratch buffers, reused across evaluations.
    finish: Vec<f64>,
    start: Vec<f64>,
    machine_avail: Vec<f64>,
    /// Objective accumulators folded during the pass, in string order
    /// (also carries the per-machine busy times the view exposes).
    state: ObjectiveState,
    /// Number of full evaluations performed (the deterministic cost axis
    /// reported alongside wall time by the Fig 5–7 harness).
    evaluations: u64,
}

impl<'a> Evaluator<'a> {
    /// Creates an evaluator for one instance, flattening it into an owned
    /// [`EvalSnapshot`].
    pub fn new(inst: &HcInstance) -> Evaluator<'static> {
        Evaluator::from_snap(Cow::Owned(EvalSnapshot::new(inst)))
    }

    /// Creates an evaluator borrowing a shared snapshot — the cheap
    /// constructor worker threads use.
    pub fn with_snapshot(snap: &'a EvalSnapshot) -> Evaluator<'a> {
        Evaluator::from_snap(Cow::Borrowed(snap))
    }

    fn from_snap(snap: Cow<'a, EvalSnapshot>) -> Evaluator<'a> {
        let k = snap.task_count();
        let l = snap.machine_count();
        Evaluator {
            snap,
            finish: vec![0.0; k],
            start: vec![0.0; k],
            machine_avail: vec![0.0; l],
            state: ObjectiveState::new(l),
            evaluations: 0,
        }
    }

    /// The snapshot this evaluator walks.
    #[inline]
    pub fn snapshot(&self) -> &EvalSnapshot {
        &self.snap
    }

    /// Total number of evaluations performed so far.
    #[inline]
    pub fn evaluations(&self) -> u64 {
        self.evaluations
    }

    /// Adds externally performed evaluations to the counter (used when a
    /// scheduler fans candidate evaluations out to worker threads with
    /// their own short-lived evaluators, so the run's reported evaluation
    /// count stays complete).
    #[inline]
    pub fn bump_evaluations(&mut self, n: u64) {
        self.evaluations += n;
    }

    /// Evaluates `solution`, returning only the makespan (hot path).
    ///
    /// # Panics
    /// Debug-asserts that the solution matches the instance dimensions.
    pub fn makespan(&mut self, solution: &Solution) -> f64 {
        self.pass(solution);
        self.state.max_finish()
    }

    /// Evaluates `solution` and scores it under `obj` (lower is better).
    /// For [`crate::objective::Makespan`] this equals
    /// [`makespan`](Self::makespan) exactly.
    ///
    /// Incremental-capable objectives (all [`crate::ObjectiveKind`]s) are
    /// finalized from the string-order accumulator fold, so this value is
    /// bit-identical to what [`crate::IncrementalEvaluator`] computes for
    /// the same solution via suffix replay.
    pub fn objective_value(&mut self, solution: &Solution, obj: &dyn Objective) -> f64 {
        self.pass(solution);
        if obj.supports_incremental() {
            obj.finalize(&self.state)
        } else {
            obj.value(&EvalView {
                start: &self.start,
                finish: &self.finish,
                machine_busy: self.state.machine_busy(),
            })
        }
    }

    /// Evaluates `solution`, returning the full per-task report.
    ///
    /// Allocates three fresh vectors per call; call sites that rebuild a
    /// report every iteration (the SE main loop feeding selection and
    /// traces, leaderboard refreshes) should hold one report and use
    /// [`report_into`](Self::report_into) instead.
    pub fn report(&mut self, solution: &Solution) -> ScheduleReport {
        let mut out = ScheduleReport {
            start: Vec::new(),
            finish: Vec::new(),
            machine_busy: Vec::new(),
            makespan: 0.0,
            total_flowtime: 0.0,
            lower_bound: None,
            gap: None,
        };
        self.report_into(solution, &mut out);
        out
    }

    /// Like [`report`](Self::report), but reuses `out`'s buffers —
    /// steady-state reporting performs no allocations. `out`'s previous
    /// contents are fully overwritten.
    pub fn report_into(&mut self, solution: &Solution, out: &mut ScheduleReport) {
        self.pass(solution);
        out.start.clear();
        out.start.extend_from_slice(&self.start);
        out.finish.clear();
        out.finish.extend_from_slice(&self.finish);
        out.machine_busy.clear();
        out.machine_busy.extend_from_slice(self.state.machine_busy());
        out.makespan = self.state.max_finish();
        out.total_flowtime = self.finish.iter().sum();
        // A refreshed report describes a new schedule; any previously
        // stamped certificate no longer applies.
        out.lower_bound = None;
        out.gap = None;
    }

    /// The single left-to-right pass computing start/finish times into the
    /// scratch buffers and folding the objective accumulators in string
    /// order.
    fn pass(&mut self, solution: &Solution) {
        let snap = self.snap.as_ref();
        debug_assert_eq!(solution.len(), snap.task_count(), "solution/instance mismatch");
        debug_assert_eq!(
            solution.machine_count(),
            snap.machine_count(),
            "solution/instance machine mismatch"
        );
        self.machine_avail.fill(0.0);
        self.state.reset(self.machine_avail.len());
        self.evaluations += 1;
        mshc_obs::add(mshc_obs::Counter::Evaluations, 1);
        crate::faults::eval_tick();
        for seg in solution.segments() {
            let t = seg.task;
            let m = seg.machine;
            let exec = snap.exec_time(m, t);
            let (start, finish) = snap.schedule_step(
                t,
                m,
                exec,
                |src| solution.machine_of(src),
                &self.finish,
                &self.machine_avail,
            );
            self.start[t.index()] = start;
            self.finish[t.index()] = finish;
            self.machine_avail[m.index()] = finish;
            self.state.fold(m, finish, exec);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::Segment;
    use mshc_platform::{HcSystem, MachineId, Matrix};
    use mshc_taskgraph::{TaskGraph, TaskGraphBuilder};

    fn seg(t: u32, m: u32) -> Segment {
        Segment { task: TaskId::new(t), machine: MachineId::new(m) }
    }

    /// Figure-1-style instance: 7 tasks, 6 data items, 2 machines, with
    /// matrices chosen by us (the paper's are OCR-garbled — see DESIGN.md).
    fn figure1_instance() -> HcInstance {
        let mut b = TaskGraphBuilder::new(7);
        for (s, d) in [(0, 2), (0, 3), (1, 4), (2, 5), (3, 5), (4, 6)] {
            b.add_edge(s, d).unwrap();
        }
        let g = b.build().unwrap();
        let exec = Matrix::from_rows(&[
            vec![400.0, 700.0, 500.0, 300.0, 800.0, 600.0, 200.0],
            vec![600.0, 500.0, 400.0, 900.0, 435.0, 450.0, 350.0],
        ]);
        let transfer = Matrix::from_rows(&[vec![120.0, 80.0, 200.0, 60.0, 90.0, 150.0]]);
        let sys = HcSystem::with_anonymous_machines(2, exec, transfer).unwrap();
        HcInstance::new(g, sys).unwrap()
    }

    fn figure2_solution(g: &TaskGraph) -> Solution {
        Solution::new(
            g,
            2,
            vec![seg(0, 0), seg(1, 1), seg(2, 1), seg(3, 0), seg(4, 0), seg(5, 1), seg(6, 1)],
        )
        .unwrap()
    }

    #[test]
    fn hand_computed_times() {
        let inst = figure1_instance();
        let mut eval = Evaluator::new(&inst);
        let s = figure2_solution(inst.graph());
        let r = eval.report(&s);
        // m0 order: s0 s3 s4; m1 order: s1 s2 s5 s6.
        // s0 on m0: [0, 400]
        assert_eq!(r.start_of(TaskId::new(0)), 0.0);
        assert_eq!(r.finish_of(TaskId::new(0)), 400.0);
        // s1 on m1: [0, 500]
        assert_eq!(r.finish_of(TaskId::new(1)), 500.0);
        // s2 on m1 needs d0 from s0@m0: arrives 400+120=520; m1 free at 500
        // => start 520, finish 920.
        assert_eq!(r.start_of(TaskId::new(2)), 520.0);
        assert_eq!(r.finish_of(TaskId::new(2)), 920.0);
        // s3 on m0 needs d1 from s0@m0 (co-located, 0): start at max(400, 400)
        // => finish 700.
        assert_eq!(r.finish_of(TaskId::new(3)), 700.0);
        // s4 on m0 needs d2 from s1@m1: arrives 500+200=700; m0 free at 700
        // => start 700, finish 1500.
        assert_eq!(r.start_of(TaskId::new(4)), 700.0);
        assert_eq!(r.finish_of(TaskId::new(4)), 1500.0);
        // s5 on m1 needs d3 from s2@m1 (920) and d4 from s3@m0 (700+90=790);
        // m1 free at 920 => start 920, finish 1370.
        assert_eq!(r.finish_of(TaskId::new(5)), 1370.0);
        // s6 on m1 needs d5 from s4@m0: arrives 1500+150=1650; m1 free 1370
        // => finish 1650+350=2000.
        assert_eq!(r.finish_of(TaskId::new(6)), 2000.0);
        assert_eq!(r.makespan, 2000.0);
        let mk = eval.makespan(&s);
        assert_eq!(mk, 2000.0);
        assert_eq!(eval.evaluations(), 2);
    }

    #[test]
    fn makespan_is_max_finish() {
        let inst = figure1_instance();
        let mut eval = Evaluator::new(&inst);
        let s = figure2_solution(inst.graph());
        let r = eval.report(&s);
        let max = r.finish.iter().copied().fold(0.0, f64::max);
        assert_eq!(r.makespan, max);
    }

    #[test]
    fn report_objective_values_are_consistent() {
        let inst = figure1_instance();
        let mut eval = Evaluator::new(&inst);
        let s = figure2_solution(inst.graph());
        let r = eval.report(&s);
        // Busy time per machine = sum of exec times of its tasks.
        // m0: 400 + 300 + 800 = 1500; m1: 500 + 400 + 450 + 350 = 1700.
        assert_eq!(r.machine_busy, vec![1500.0, 1700.0]);
        assert_eq!(r.total_flowtime, 400.0 + 500.0 + 920.0 + 700.0 + 1500.0 + 1370.0 + 2000.0);
        assert!((r.mean_flowtime() - r.total_flowtime / 7.0).abs() < 1e-12);
        let o = r.objectives();
        assert_eq!(o.makespan, r.makespan);
        assert_eq!(o.total_flowtime, r.total_flowtime);
        assert_eq!(o.load_imbalance, 1700.0 - 1600.0);
        // from_times reconstructs the same aggregates from raw arrays.
        let rebuilt = ScheduleReport::from_times(r.start.clone(), r.finish.clone(), &s);
        assert_eq!(rebuilt.makespan, r.makespan);
        assert_eq!(rebuilt.total_flowtime, r.total_flowtime);
        for (a, b) in rebuilt.machine_busy.iter().zip(&r.machine_busy) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn objective_value_matches_makespan_for_makespan_objective() {
        use crate::objective::{Makespan, ObjectiveKind};
        let inst = figure1_instance();
        let mut eval = Evaluator::new(&inst);
        let s = figure2_solution(inst.graph());
        let mk = eval.makespan(&s);
        assert_eq!(eval.objective_value(&s, &Makespan), mk);
        assert_eq!(eval.objective_value(&s, &ObjectiveKind::Makespan), mk);
        assert_eq!(eval.evaluations(), 3, "objective passes count as evaluations");
    }

    #[test]
    fn shared_snapshot_evaluator_matches_owned() {
        let inst = figure1_instance();
        let snap = EvalSnapshot::new(&inst);
        let s = figure2_solution(inst.graph());
        let owned = Evaluator::new(&inst).makespan(&s);
        let borrowed = Evaluator::with_snapshot(&snap).makespan(&s);
        assert_eq!(owned, borrowed);
        assert_eq!(Evaluator::new(&inst).snapshot(), &snap);
    }

    #[test]
    fn single_machine_serializes_everything() {
        let inst = figure1_instance();
        let g = inst.graph();
        // All on m0: makespan = sum of m0 execution times (no comms, no idle
        // gaps because the string is a linear extension).
        let order: Vec<TaskId> = (0..7).map(TaskId::new).collect();
        let s = Solution::from_order(g, 2, &order, &[MachineId::new(0); 7]).unwrap();
        let mut eval = Evaluator::new(&inst);
        let total: f64 =
            (0..7).map(|t| inst.system().exec_time(MachineId::new(0), TaskId::new(t))).sum();
        assert_eq!(eval.makespan(&s), total);
    }

    #[test]
    fn independent_tasks_run_in_parallel() {
        let g = TaskGraphBuilder::new(2).build().unwrap();
        let sys = HcSystem::with_anonymous_machines(
            2,
            Matrix::from_rows(&[vec![10.0, 10.0], vec![10.0, 10.0]]),
            Matrix::filled(1, 0, 0.0),
        )
        .unwrap();
        let inst = HcInstance::new(g, sys).unwrap();
        let s = Solution::new(inst.graph(), 2, vec![seg(0, 0), seg(1, 1)]).unwrap();
        let mut eval = Evaluator::new(&inst);
        assert_eq!(eval.makespan(&s), 10.0, "parallel");
        let s = Solution::new(inst.graph(), 2, vec![seg(0, 0), seg(1, 0)]).unwrap();
        assert_eq!(eval.makespan(&s), 20.0, "serialized");
    }

    #[test]
    fn string_order_affects_makespan() {
        // Two independent tasks a (long) and b (short) plus a consumer of b.
        // Putting a before b on the shared machine delays the consumer.
        let mut b = TaskGraphBuilder::new(3);
        b.add_edge(1, 2).unwrap(); // b -> c
        let g = b.build().unwrap();
        let sys = HcSystem::with_anonymous_machines(
            2,
            Matrix::from_rows(&[vec![100.0, 10.0, 10.0], vec![100.0, 10.0, 10.0]]),
            Matrix::from_rows(&[vec![0.0]]),
        )
        .unwrap();
        let inst = HcInstance::new(g, sys).unwrap();
        let mut eval = Evaluator::new(&inst);
        // a then b on m0, c on m1: c starts at 110 => 120. makespan 120.
        let s1 = Solution::new(inst.graph(), 2, vec![seg(0, 0), seg(1, 0), seg(2, 1)]).unwrap();
        // b then a on m0: b finishes 10, c on m1 finishes 20, a finishes 110.
        let s2 = Solution::new(inst.graph(), 2, vec![seg(1, 0), seg(0, 0), seg(2, 1)]).unwrap();
        assert_eq!(eval.makespan(&s1), 120.0);
        assert_eq!(eval.makespan(&s2), 110.0);
    }

    #[test]
    fn evaluations_counter_increments() {
        let inst = figure1_instance();
        let mut eval = Evaluator::new(&inst);
        let s = figure2_solution(inst.graph());
        for _ in 0..5 {
            eval.makespan(&s);
        }
        assert_eq!(eval.evaluations(), 5);
    }

    #[test]
    fn from_times_covers_idle_machines() {
        // Regression: a solution dimensioned for more machines than it
        // actually uses must still produce a busy vector with one entry
        // per declared machine — idle machines as explicit zeros, no
        // index drift for per-machine consumers.
        let inst = figure1_instance();
        let g = inst.graph();
        let order: Vec<TaskId> = (0..7).map(TaskId::new).collect();
        // Dimension for 5 machines but run everything on machine 1.
        let s = Solution::from_order(g, 5, &order, &[MachineId::new(1); 7]).unwrap();
        let start: Vec<f64> = (0..7).map(|i| i as f64 * 10.0).collect();
        let finish: Vec<f64> = start.iter().map(|s| s + 10.0).collect();
        let r = ScheduleReport::from_times(start, finish, &s);
        assert_eq!(r.machine_busy.len(), 5, "one busy entry per declared machine");
        assert_eq!(r.machine_busy[1], 70.0);
        for m in [0usize, 2, 3, 4] {
            assert_eq!(r.machine_busy[m], 0.0, "idle machine {m} must read 0.0");
        }
        // LoadBalance over the report sees the idle machines.
        use crate::objective::{LoadBalance, Objective};
        assert_eq!(LoadBalance.value(&r.view()), 70.0 - 70.0 / 5.0);
        // An unvalidated string referencing a machine beyond the declared
        // count grows the vector instead of panicking.
        let rogue = Solution::new_unchecked(
            2,
            vec![seg(0, 0), seg(1, 3), seg(2, 0), seg(3, 0), seg(4, 0), seg(5, 0), seg(6, 0)],
        );
        let start: Vec<f64> = vec![0.0; 7];
        let finish: Vec<f64> = vec![2.0; 7];
        let r = ScheduleReport::from_times(start, finish, &rogue);
        assert_eq!(r.machine_busy.len(), 4);
        assert_eq!(r.machine_busy[3], 2.0);
    }

    #[test]
    fn attach_certificate_stamps_floor_and_gap() {
        let inst = figure1_instance();
        let mut eval = Evaluator::new(&inst);
        let s = figure2_solution(inst.graph());
        let mut r = eval.report(&s);
        assert_eq!(r.lower_bound, None, "reports start uncertified");
        r.attach_certificate(&inst);
        // floor = max(CP over min execs = 1250, ceil(2685 / 2) = 1343).
        assert_eq!(r.lower_bound, Some(1343.0));
        assert_eq!(r.gap, Some(2000.0 / 1343.0));
        // A refreshed report describes a new schedule: the stale
        // certificate must not survive the rewrite.
        eval.report_into(&s, &mut r);
        assert_eq!(r.lower_bound, None);
        assert_eq!(r.gap, None);
    }

    #[test]
    fn report_times_are_consistent() {
        let inst = figure1_instance();
        let mut eval = Evaluator::new(&inst);
        let s = figure2_solution(inst.graph());
        let r = eval.report(&s);
        let sys = inst.system();
        for t in inst.graph().tasks() {
            let m = s.machine_of(t);
            assert!(
                (r.finish_of(t) - r.start_of(t) - sys.exec_time(m, t)).abs() < 1e-9,
                "finish - start == exec time for {t}"
            );
        }
    }
}
