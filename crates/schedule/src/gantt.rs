//! Gantt-chart extraction and terminal rendering.

use crate::encoding::Solution;
use crate::eval::ScheduleReport;
use mshc_platform::{HcInstance, MachineId};
use mshc_taskgraph::TaskId;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// One scheduled slot on a machine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GanttSlot {
    /// The task occupying the slot.
    pub task: TaskId,
    /// Start time.
    pub start: f64,
    /// Finish time.
    pub finish: f64,
}

/// Per-machine timeline view of an evaluated solution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Gantt {
    lanes: Vec<Vec<GanttSlot>>,
    makespan: f64,
}

impl Gantt {
    /// Builds the chart from a solution and its evaluation report.
    pub fn build(solution: &Solution, report: &ScheduleReport) -> Gantt {
        let mut lanes = vec![Vec::new(); solution.machine_count()];
        for seg in solution.segments() {
            lanes[seg.machine.index()].push(GanttSlot {
                task: seg.task,
                start: report.start_of(seg.task),
                finish: report.finish_of(seg.task),
            });
        }
        Gantt { lanes, makespan: report.makespan }
    }

    /// Timeline of machine `m`, in execution order.
    pub fn lane(&self, m: MachineId) -> &[GanttSlot] {
        &self.lanes[m.index()]
    }

    /// Number of machine lanes.
    pub fn machine_count(&self) -> usize {
        self.lanes.len()
    }

    /// The schedule length.
    pub fn makespan(&self) -> f64 {
        self.makespan
    }

    /// Fraction of total machine-time spent busy (`Σ exec / (l * makespan)`).
    pub fn utilization(&self) -> f64 {
        if self.makespan == 0.0 {
            return 0.0;
        }
        let busy: f64 =
            self.lanes.iter().flat_map(|lane| lane.iter().map(|s| s.finish - s.start)).sum();
        busy / (self.makespan * self.lanes.len() as f64)
    }

    /// Verifies non-overlap within every lane (sanity check used in
    /// tests): slots must be sorted and disjoint.
    pub fn lanes_disjoint(&self) -> bool {
        self.lanes.iter().all(|lane| lane.windows(2).all(|w| w[0].finish <= w[1].start + 1e-9))
    }

    /// Renders a fixed-width ASCII chart (each lane one row, `width`
    /// character cells across the makespan).
    pub fn render_ascii(&self, inst: &HcInstance, width: usize) -> String {
        let mut out = String::new();
        let scale = if self.makespan > 0.0 { width as f64 / self.makespan } else { 0.0 };
        for (mi, lane) in self.lanes.iter().enumerate() {
            let name = &inst.system().machines()[mi].name;
            let mut row = vec![b'.'; width];
            for slot in lane {
                let a = (slot.start * scale).floor() as usize;
                let b = ((slot.finish * scale).ceil() as usize).min(width).max(a + 1);
                let label = format!("{}", slot.task.raw());
                for (i, cell) in row[a..b.min(width)].iter_mut().enumerate() {
                    *cell = if i < label.len() { label.as_bytes()[i] } else { b'#' };
                }
            }
            let _ = writeln!(out, "{name:<22} |{}|", String::from_utf8_lossy(&row));
        }
        let _ = writeln!(out, "{:<22} 0 .. {:.1}", "time", self.makespan);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::Segment;
    use crate::eval::Evaluator;
    use mshc_platform::{HcSystem, Matrix};
    use mshc_taskgraph::TaskGraphBuilder;

    fn instance() -> HcInstance {
        let mut b = TaskGraphBuilder::new(3);
        b.add_edge(0, 2).unwrap();
        let g = b.build().unwrap();
        let sys = HcSystem::with_anonymous_machines(
            2,
            Matrix::from_rows(&[vec![4.0, 2.0, 3.0], vec![4.0, 2.0, 3.0]]),
            Matrix::from_rows(&[vec![1.0]]),
        )
        .unwrap();
        HcInstance::new(g, sys).unwrap()
    }

    fn seg(t: u32, m: u32) -> Segment {
        Segment { task: TaskId::new(t), machine: MachineId::new(m) }
    }

    #[test]
    fn build_and_query() {
        let inst = instance();
        let s = Solution::new(inst.graph(), 2, vec![seg(0, 0), seg(1, 1), seg(2, 0)]).unwrap();
        let mut eval = Evaluator::new(&inst);
        let r = eval.report(&s);
        let g = Gantt::build(&s, &r);
        assert_eq!(g.machine_count(), 2);
        assert_eq!(g.lane(MachineId::new(0)).len(), 2);
        assert_eq!(g.lane(MachineId::new(1)).len(), 1);
        assert_eq!(g.makespan(), r.makespan);
        assert!(g.lanes_disjoint());
    }

    #[test]
    fn utilization_bounds() {
        let inst = instance();
        let s = Solution::new(inst.graph(), 2, vec![seg(0, 0), seg(1, 1), seg(2, 0)]).unwrap();
        let mut eval = Evaluator::new(&inst);
        let r = eval.report(&s);
        let g = Gantt::build(&s, &r);
        let u = g.utilization();
        assert!(u > 0.0 && u <= 1.0, "utilization {u} out of range");
    }

    #[test]
    fn ascii_contains_machine_names() {
        let inst = instance();
        let s = Solution::new(inst.graph(), 2, vec![seg(0, 0), seg(1, 1), seg(2, 0)]).unwrap();
        let mut eval = Evaluator::new(&inst);
        let r = eval.report(&s);
        let g = Gantt::build(&s, &r);
        let art = g.render_ascii(&inst, 40);
        assert!(art.contains("m0"));
        assert!(art.contains("m1"));
        assert!(art.contains("time"));
        assert_eq!(art.lines().count(), 3);
    }

    #[test]
    fn empty_machine_lane_is_idle() {
        let inst = instance();
        let s = Solution::new(inst.graph(), 2, vec![seg(0, 0), seg(1, 0), seg(2, 0)]).unwrap();
        let mut eval = Evaluator::new(&inst);
        let r = eval.report(&s);
        let g = Gantt::build(&s, &r);
        assert!(g.lane(MachineId::new(1)).is_empty());
        assert!(g.lanes_disjoint());
    }
}
