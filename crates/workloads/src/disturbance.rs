//! Seeded disturbance-trace generation for dropout/replan experiments.
//!
//! A [`DisturbanceTrace`] is an ordered sequence of
//! [`Disturbance`] events (machine failures, slowdowns, task-duration
//! inflation) drawn deterministically from a seed — the disturbance
//! analogue of [`Scenario::generate`](crate::Scenario::generate): any
//! disturbed run anywhere reproduces from `(scenario, seed, trace
//! spec, trace seed)` alone. The replanner (`mshc-schedule`'s
//! [`Replanner`](mshc_schedule::Replanner)) consumes the events in
//! order, freezing the committed prefix at each event time and
//! re-searching the residual problem.
//!
//! Traces respect two structural constraints by construction:
//! event times are strictly increasing (the replanner rejects
//! out-of-order disturbances), and at most `machine_count - 1`
//! failures are drawn so at least one survivor always remains.

use mshc_schedule::{Disturbance, DisturbanceKind};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Declarative shape of a disturbance trace, minus the seed.
///
/// Kept flat (no nested enums with payloads) so it serializes with the
/// vendored serde derive, like [`Scenario`](crate::Scenario).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DisturbanceTraceSpec {
    /// Number of events to draw.
    pub events: usize,
    /// Events are placed in `(0, horizon)`, strictly increasing. Use
    /// the baseline makespan (or an estimate) so events land inside
    /// the schedule; later events degenerate to no-op replans.
    pub horizon: f64,
    /// Machine count of the target platform; failure/slowdown events
    /// pick a machine in `0..machines`, and at most `machines - 1`
    /// failures are drawn overall.
    pub machines: u32,
    /// Relative weight of machine-failure events (the weights need not
    /// sum to anything; zero disables the kind).
    pub failure_weight: u32,
    /// Relative weight of machine-slowdown events.
    pub slowdown_weight: u32,
    /// Relative weight of task-inflation events.
    pub inflation_weight: u32,
}

impl DisturbanceTraceSpec {
    /// A balanced default: all three kinds equally likely.
    pub fn balanced(events: usize, horizon: f64, machines: u32) -> DisturbanceTraceSpec {
        DisturbanceTraceSpec {
            events,
            horizon,
            machines,
            failure_weight: 1,
            slowdown_weight: 1,
            inflation_weight: 1,
        }
    }

    /// Failures only — the paper-motivated dropout stress case.
    pub fn dropout(events: usize, horizon: f64, machines: u32) -> DisturbanceTraceSpec {
        DisturbanceTraceSpec {
            events,
            horizon,
            machines,
            failure_weight: 1,
            slowdown_weight: 0,
            inflation_weight: 0,
        }
    }
}

/// A seeded, reproducible sequence of disturbances.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DisturbanceTrace {
    /// The seed the events were drawn from.
    pub seed: u64,
    /// Events in strictly increasing virtual-time order.
    pub events: Vec<Disturbance>,
}

impl DisturbanceTrace {
    /// Draws a trace from `spec` with `seed`. Deterministic: the same
    /// `(spec, seed)` always yields the same byte-identical trace.
    ///
    /// Kind choice, machine choice and factors come from a dedicated
    /// `ChaCha8` stream; event times are drawn up front and sorted so
    /// they are strictly increasing regardless of kind mix. Failure
    /// events stop being drawn once only one machine would remain
    /// (they fall back to slowdowns), so a generated trace can always
    /// be applied in full.
    pub fn generate(spec: &DisturbanceTraceSpec, seed: u64) -> DisturbanceTrace {
        assert!(spec.machines > 0, "disturbance trace needs at least one machine");
        assert!(
            spec.horizon.is_finite() && spec.horizon > 0.0,
            "disturbance horizon must be positive and finite"
        );
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xD157_0000_0000_0000);
        // Draw times first, then de-duplicate by nudging: sorting
        // floats drawn from a continuous range collides with
        // probability ~0, but determinism must not hinge on "almost
        // never", so equal neighbours are separated explicitly.
        let mut times: Vec<f64> =
            (0..spec.events).map(|_| rng.gen_range(f64::EPSILON..spec.horizon)).collect();
        times.sort_by(f64::total_cmp);
        for i in 1..times.len() {
            if times[i] <= times[i - 1] {
                times[i] = mshc_schedule::next_up(times[i - 1]);
            }
        }

        let total = spec.failure_weight + spec.slowdown_weight + spec.inflation_weight;
        assert!(total > 0, "at least one disturbance kind must have positive weight");
        let mut failures_left = spec.machines.saturating_sub(1);
        let mut alive: Vec<u32> = (0..spec.machines).collect();
        let events = times
            .into_iter()
            .map(|time| {
                let mut roll = rng.gen_range(0..total);
                let mut kind = if roll < spec.failure_weight {
                    DisturbanceKind::MachineFailure
                } else {
                    roll -= spec.failure_weight;
                    if roll < spec.slowdown_weight {
                        DisturbanceKind::MachineSlowdown
                    } else {
                        DisturbanceKind::TaskInflation
                    }
                };
                if kind == DisturbanceKind::MachineFailure && failures_left == 0 {
                    kind = DisturbanceKind::MachineSlowdown;
                }
                match kind {
                    DisturbanceKind::MachineFailure => {
                        let pick = rng.gen_range(0..alive.len());
                        let machine = alive.swap_remove(pick);
                        failures_left -= 1;
                        Disturbance { kind, time, machine, factor: 1.0 }
                    }
                    DisturbanceKind::MachineSlowdown => {
                        let pick = rng.gen_range(0..alive.len());
                        let machine = alive[pick];
                        let factor = rng.gen_range(1.25..4.0);
                        Disturbance { kind, time, machine, factor }
                    }
                    DisturbanceKind::TaskInflation => {
                        let factor = rng.gen_range(1.05..2.0);
                        Disturbance { kind, time, machine: 0, factor }
                    }
                }
            })
            .collect();
        DisturbanceTrace { seed, events }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_are_deterministic_and_ordered() {
        let spec = DisturbanceTraceSpec::balanced(16, 500.0, 4);
        let a = DisturbanceTrace::generate(&spec, 11);
        let b = DisturbanceTrace::generate(&spec, 11);
        assert_eq!(a, b);
        let c = DisturbanceTrace::generate(&spec, 12);
        assert_ne!(a, c, "different seeds draw different traces");
        assert_eq!(a.events.len(), 16);
        for w in a.events.windows(2) {
            assert!(w[0].time < w[1].time, "strictly increasing times");
        }
        for e in &a.events {
            assert!(e.time > 0.0 && e.time < 500.0);
            assert!(e.machine < 4);
            match e.kind {
                DisturbanceKind::MachineFailure => assert_eq!(e.factor, 1.0),
                DisturbanceKind::MachineSlowdown => assert!(e.factor > 1.0 && e.factor < 4.0),
                DisturbanceKind::TaskInflation => assert!(e.factor > 1.0 && e.factor < 2.0),
            }
        }
    }

    #[test]
    fn failures_always_leave_a_survivor() {
        // All-failure weighting on a 3-machine platform: at most 2
        // failures appear, the rest degrade to slowdowns, and no
        // machine fails twice.
        let spec = DisturbanceTraceSpec::dropout(10, 100.0, 3);
        let trace = DisturbanceTrace::generate(&spec, 99);
        let failed: Vec<u32> = trace
            .events
            .iter()
            .filter(|e| e.kind == DisturbanceKind::MachineFailure)
            .map(|e| e.machine)
            .collect();
        assert!(failed.len() <= 2, "at least one survivor: {failed:?}");
        let mut unique = failed.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), failed.len(), "no machine fails twice");
        // Slowdown fallbacks never target a failed machine.
        let mut dead: Vec<u32> = Vec::new();
        for e in &trace.events {
            match e.kind {
                DisturbanceKind::MachineFailure => dead.push(e.machine),
                DisturbanceKind::MachineSlowdown => {
                    assert!(!dead.contains(&e.machine), "slowdown on dead machine");
                }
                DisturbanceKind::TaskInflation => {}
            }
        }
    }

    #[test]
    fn traces_round_trip_through_json() {
        let spec = DisturbanceTraceSpec::balanced(5, 50.0, 2);
        let trace = DisturbanceTrace::generate(&spec, 3);
        let json = serde_json::to_string(&trace).unwrap();
        let back: DisturbanceTrace = serde_json::from_str(&json).unwrap();
        assert_eq!(trace, back);
    }
}
