//! The workload taxonomy and generator.

use mshc_platform::{HcInstance, HcSystem, Matrix};
use mshc_taskgraph::gen::{layered, LayeredConfig};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Connectivity class (§5): how many data items the DAG carries relative
/// to its size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Connectivity {
    /// Sparse DAG (edge probability ≈ 0.15).
    Low,
    /// Medium density (≈ 0.4).
    Medium,
    /// Dense DAG (≈ 0.8).
    High,
}

impl Connectivity {
    /// Edge probability between consecutive layers.
    pub fn edge_prob(self) -> f64 {
        match self {
            Connectivity::Low => 0.15,
            Connectivity::Medium => 0.4,
            Connectivity::High => 0.8,
        }
    }

    /// Stable identifier.
    pub fn name(self) -> &'static str {
        match self {
            Connectivity::Low => "low",
            Connectivity::Medium => "medium",
            Connectivity::High => "high",
        }
    }
}

/// Heterogeneity class (§5): how much execution times differ across
/// machines for the same subtask.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Heterogeneity {
    /// Near-homogeneous machines (`u ~ U(1, 1.25)`).
    Low,
    /// Moderate spread (`u ~ U(1, 2.5)`).
    Medium,
    /// Strong spread (`u ~ U(1, 8)`) — "highly heterogeneous" workloads
    /// where a task's best machine is ~8× faster than its worst.
    High,
}

impl Heterogeneity {
    /// Upper bound of the multiplicative factor range (lower bound is 1).
    pub fn factor_range(self) -> f64 {
        match self {
            Heterogeneity::Low => 1.25,
            Heterogeneity::Medium => 2.5,
            Heterogeneity::High => 8.0,
        }
    }

    /// Stable identifier.
    pub fn name(self) -> &'static str {
        match self {
            Heterogeneity::Low => "low",
            Heterogeneity::Medium => "medium",
            Heterogeneity::High => "high",
        }
    }
}

/// A fully specified random workload: one point of the paper's taxonomy
/// plus a seed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Number of subtasks `k`.
    pub tasks: usize,
    /// Number of machines `l`.
    pub machines: usize,
    /// Connectivity class.
    pub connectivity: Connectivity,
    /// Heterogeneity class.
    pub heterogeneity: Heterogeneity,
    /// Target communication-to-cost ratio (paper uses 0.1 and 1.0).
    pub ccr: f64,
    /// RNG seed; generation is fully deterministic.
    pub seed: u64,
}

impl WorkloadSpec {
    /// The paper's "small size" default: 20 tasks on 5 machines.
    pub fn small(seed: u64) -> WorkloadSpec {
        WorkloadSpec {
            tasks: 20,
            machines: 5,
            connectivity: Connectivity::Medium,
            heterogeneity: Heterogeneity::Medium,
            ccr: 0.5,
            seed,
        }
    }

    /// The paper's "large size" comparison setting (§5.3): 100 tasks on
    /// 20 machines.
    pub fn large(seed: u64) -> WorkloadSpec {
        WorkloadSpec {
            tasks: 100,
            machines: 20,
            connectivity: Connectivity::Medium,
            heterogeneity: Heterogeneity::Medium,
            ccr: 0.5,
            seed,
        }
    }

    /// Builder-style setters.
    pub fn with_connectivity(mut self, c: Connectivity) -> WorkloadSpec {
        self.connectivity = c;
        self
    }

    /// Sets the heterogeneity class.
    pub fn with_heterogeneity(mut self, h: Heterogeneity) -> WorkloadSpec {
        self.heterogeneity = h;
        self
    }

    /// Sets the target CCR.
    pub fn with_ccr(mut self, ccr: f64) -> WorkloadSpec {
        self.ccr = ccr;
        self
    }

    /// A short tag for file names: `k100_l20_chigh_hlow_ccr0.1_s42`.
    pub fn tag(&self) -> String {
        format!(
            "k{}_l{}_c{}_h{}_ccr{}_s{}",
            self.tasks,
            self.machines,
            self.connectivity.name(),
            self.heterogeneity.name(),
            self.ccr,
            self.seed
        )
    }

    /// Deterministically expands the spec into a full instance.
    ///
    /// # Panics
    /// Panics on degenerate parameters (0 tasks/machines, non-positive or
    /// non-finite CCR target below 0).
    pub fn generate(&self) -> HcInstance {
        assert!(self.tasks >= 1, "need at least one task");
        assert!(self.machines >= 1, "need at least one machine");
        assert!(self.ccr.is_finite() && self.ccr >= 0.0, "CCR must be finite and >= 0");
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);

        // --- DAG ---
        let cfg = LayeredConfig {
            tasks: self.tasks,
            mean_width: (self.tasks / 10).clamp(2, 12).min(self.tasks),
            edge_prob: self.connectivity.edge_prob(),
            skip_prob: self.connectivity.edge_prob() / 8.0,
        };
        let graph = layered(&cfg, &mut rng).expect("tasks >= 1");

        // --- execution times (range-based heterogeneity) ---
        let hi = self.heterogeneity.factor_range();
        let base: Vec<f64> = (0..self.tasks).map(|_| rng.gen_range(50.0..150.0)).collect();
        let exec =
            Matrix::from_fn(self.machines, self.tasks, |_, t| base[t] * rng.gen_range(1.0..=hi));

        // --- transfer times targeting the CCR ---
        // mean_exec(t) = base[t] * E[u] = base[t] * (1 + hi) / 2.
        let mean_factor = (1.0 + hi) / 2.0;
        let pairs = self.machines * (self.machines - 1) / 2;
        let transfer = Matrix::from_fn(pairs, graph.data_count(), |_, d| {
            let producer = graph.edges()[d].src;
            let mean_exec = base[producer.index()] * mean_factor;
            self.ccr * mean_exec * rng.gen_range(0.8..1.2)
        });

        let sys = HcSystem::with_anonymous_machines(self.machines, exec, transfer)
            .expect("generated matrices are valid by construction");
        HcInstance::new(graph, sys).expect("dimensions agree by construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mshc_platform::InstanceMetrics;

    #[test]
    fn generation_is_deterministic() {
        let spec = WorkloadSpec::large(7);
        assert_eq!(spec.generate(), spec.generate());
        let other = WorkloadSpec { seed: 8, ..spec };
        assert_ne!(spec.generate(), other.generate());
    }

    #[test]
    fn sizes_match_spec() {
        let spec = WorkloadSpec::large(1);
        let inst = spec.generate();
        assert_eq!(inst.task_count(), 100);
        assert_eq!(inst.machine_count(), 20);
        let small = WorkloadSpec::small(1).generate();
        assert_eq!(small.task_count(), 20);
        assert_eq!(small.machine_count(), 5);
    }

    #[test]
    fn connectivity_orders_data_item_counts() {
        let base = WorkloadSpec::large(3);
        let lo = base.with_connectivity(Connectivity::Low).generate();
        let hi = base.with_connectivity(Connectivity::High).generate();
        assert!(
            hi.data_count() as f64 > 2.5 * lo.data_count() as f64,
            "high {} vs low {}",
            hi.data_count(),
            lo.data_count()
        );
    }

    #[test]
    fn heterogeneity_orders_measured_cv() {
        let base = WorkloadSpec::large(4);
        let measure =
            |h| InstanceMetrics::compute(&base.with_heterogeneity(h).generate()).heterogeneity;
        let (lo, mid, hi) = (
            measure(Heterogeneity::Low),
            measure(Heterogeneity::Medium),
            measure(Heterogeneity::High),
        );
        assert!(lo < mid && mid < hi, "CV ordering violated: {lo} {mid} {hi}");
        assert!(lo < 0.15, "low heterogeneity should be nearly homogeneous: {lo}");
        assert!(hi > 0.4, "high heterogeneity should spread widely: {hi}");
    }

    #[test]
    fn measured_ccr_tracks_target() {
        for target in [0.1, 0.5, 1.0] {
            let spec = WorkloadSpec::large(5).with_ccr(target);
            let m = InstanceMetrics::compute(&spec.generate());
            assert!(
                (m.ccr - target).abs() < target * 0.15 + 0.01,
                "target {target}, measured {}",
                m.ccr
            );
        }
    }

    #[test]
    fn zero_ccr_means_free_communication() {
        let inst = WorkloadSpec::small(6).with_ccr(0.0).generate();
        assert!(inst.system().transfer_matrix().as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn single_machine_workload() {
        let spec = WorkloadSpec {
            tasks: 10,
            machines: 1,
            connectivity: Connectivity::Medium,
            heterogeneity: Heterogeneity::Low,
            ccr: 1.0,
            seed: 0,
        };
        let inst = spec.generate();
        assert_eq!(inst.machine_count(), 1);
        assert_eq!(inst.system().transfer_matrix().rows(), 0);
    }

    #[test]
    fn tag_is_filename_safe() {
        let tag = WorkloadSpec::large(42).with_connectivity(Connectivity::High).with_ccr(0.1).tag();
        assert_eq!(tag, "k100_l20_chigh_hmedium_ccr0.1_s42");
        assert!(!tag.contains(' ') && !tag.contains('/'));
    }

    #[test]
    #[should_panic(expected = "CCR")]
    fn negative_ccr_rejected() {
        let _ = WorkloadSpec::small(0).with_ccr(-1.0).generate();
    }
}
