//! Domain example: an FFT signal-processing pipeline on a heterogeneous
//! suite — the kind of application the paper's introduction motivates
//! (subtasks "each well suited to a single machine architecture", §1).
//!
//! A 16-point FFT butterfly (80 subtasks) runs on 6 machines of mixed
//! architecture with strong heterogeneity: the special-purpose FFT engine
//! is ~8× faster on butterfly ranks. We compare one-shot HEFT against
//! simulated evolution and the GA under equal evaluation budgets.
//!
//! ```text
//! cargo run --release --example radar_fft
//! ```

use mshc::prelude::*;
use mshc::workloads::structured;

fn main() {
    let inst = structured::fft(4, 6, Heterogeneity::High, 0.8, 42);
    let metrics = InstanceMetrics::compute(&inst);
    println!(
        "FFT workload: {} tasks, {} machines | connectivity {:.2}, heterogeneity {:.2}, CCR {:.2}",
        metrics.tasks, metrics.machines, metrics.connectivity, metrics.heterogeneity, metrics.ccr
    );

    // One-shot baselines.
    let unbounded = RunBudget::default();
    let heft = HeftScheduler::new().run(&inst, &unbounded, None);
    let cpop = CpopScheduler::new().run(&inst, &unbounded, None);
    let minmin = ListScheduler::new(ListPolicy::MinMin).run(&inst, &unbounded, None);
    println!("\none-shot baselines:");
    println!("  heft    {:>10.0}", heft.makespan);
    println!("  cpop    {:>10.0}", cpop.makespan);
    println!("  min-min {:>10.0}", minmin.makespan);

    // Iterative schedulers under the same evaluation budget. (One SE
    // iteration re-places every low-goodness task at a cost of
    // |valid range| × Y evaluations each, so SE consumes this budget in
    // far fewer — but much bigger — steps than the GA.) The butterfly
    // graph is wide (16 entry tasks) and highly heterogeneous, so the
    // thorough end of the paper's bias range pays off here.
    let budget = RunBudget::evaluations(1_000_000);
    let mut se =
        SeScheduler::new(SeConfig { seed: 42, selection_bias: -0.3, ..SeConfig::default() });
    let se_result = se.run(&inst, &budget, None);
    let mut ga = GaScheduler::new(GaConfig { seed: 42, ..GaConfig::default() });
    let ga_result = ga.run(&inst, &budget, None);
    println!("\niterative (1M evaluations each):");
    println!("  se      {:>10.0}   ({} iterations)", se_result.makespan, se_result.iterations);
    println!("  ga      {:>10.0}   ({} generations)", ga_result.makespan, ga_result.iterations);

    // Where did SE put the butterfly ranks? Count tasks per machine.
    println!("\nSE task placement:");
    for m in inst.system().machine_ids() {
        let lane = se_result.solution.machine_order(m);
        println!("  {:<22} {:>3} tasks", inst.system().machines()[m.index()].name, lane.len());
    }

    let best = se_result.makespan.min(ga_result.makespan).min(heft.makespan);
    println!("\nbest schedule length: {best:.0}");
}
