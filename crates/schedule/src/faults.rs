//! Deterministic fault injection for chaos testing.
//!
//! A [`FaultPlan`] is a declarative, seeded description of the faults to
//! inject into a run: panic at the Nth counted evaluation (which, when
//! the Nth evaluation lands inside a parallel batch chunk, doubles as
//! poisoned-arena injection), panic specific tournament cells on their
//! first attempt, and machine-dropout disturbances for `mshc replan`.
//! Plans are JSON documents loaded via `--faults plan.json`:
//!
//! ```json
//! {
//!   "seed": 42,
//!   "panic_at_evaluations": 1000,
//!   "cell_panics": [
//!     { "algorithm": "se", "scenario": "t16-m4-dense-hihet-cc10", "seed": 7 }
//!   ],
//!   "dropouts": [
//!     { "kind": "MachineFailure", "time": 12.5, "machine": 1, "factor": 1.0 }
//!   ]
//! }
//! ```
//!
//! Injection is **armed process-globally** ([`arm`]/[`disarm`]) so the
//! hooks sitting on the evaluator hot paths cost one relaxed load when
//! disarmed (the default). Cell panics are *consuming*: the first
//! attempt of a matching cell takes its fault and panics, the same-seed
//! retry finds the fault gone and succeeds — deterministically, at any
//! thread count, because faults are keyed by the cell's identity
//! `(algorithm, scenario, seed)` rather than by arrival order.
//!
//! Nothing in this module runs unless a plan is armed, and the chaos CI
//! job byte-compares fault-free lanes against a no-faults run to prove
//! the harness itself cannot perturb results.

use crate::replan::Disturbance;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// Prefix every injected panic message carries, so harnesses (and
/// humans reading leaderboards) can tell injected faults from real
/// bugs.
pub const FAULT_PANIC_PREFIX: &str = "fault injection:";

/// A cell-level fault: panic the *first* attempt of the tournament cell
/// identified by `(algorithm, scenario, seed)`. Consumed on use, so the
/// engine's deterministic same-seed retry succeeds and the cell lands
/// in the leaderboard marked `degraded` instead of being dropped.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellFault {
    /// The contestant's stable identifier (e.g. `"se"`, `"ga"`).
    pub algorithm: String,
    /// The scenario label the cell runs on.
    pub scenario: String,
    /// The cell's replicate seed.
    pub seed: u64,
}

/// A declarative, seeded fault-injection plan (see the module docs for
/// the JSON schema).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed for deriving randomized injections (dropout traces).
    #[serde(default)]
    pub seed: u64,
    /// Panic when the process-wide counted-evaluation tick reaches this
    /// value (1-based: `Some(1)` panics the very first evaluation).
    /// Ticks count exactly the evaluations the budget counts, across
    /// every evaluator tier — when the Nth lands inside a batch chunk
    /// the panic poisons that worker's arena, which is the point.
    #[serde(default)]
    pub panic_at_evaluations: Option<u64>,
    /// Cells to panic on their first attempt (consumed on use).
    #[serde(default)]
    pub cell_panics: Vec<CellFault>,
    /// Machine-dropout / slowdown / inflation disturbances for
    /// `mshc replan --faults` (applied in ascending time order).
    #[serde(default)]
    pub dropouts: Vec<Disturbance>,
}

impl FaultPlan {
    /// Parses a plan from its JSON wire format.
    pub fn from_json(s: &str) -> Result<FaultPlan, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// Serializes a plan to its JSON wire format.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("fault plan serialization is infallible")
    }
}

static ARMED: AtomicBool = AtomicBool::new(false);
static EVAL_PANIC_AT: AtomicU64 = AtomicU64::new(0);
static EVAL_TICKS: AtomicU64 = AtomicU64::new(0);
static CELL_FAULTS: Mutex<Vec<CellFault>> = Mutex::new(Vec::new());

fn cell_faults() -> std::sync::MutexGuard<'static, Vec<CellFault>> {
    // A panic while holding the lock is exactly what this module
    // provokes on purpose; the list stays consistent (faults are
    // removed before the panic), so poisoning is benign.
    CELL_FAULTS.lock().unwrap_or_else(|e| e.into_inner())
}

/// Installs `plan`'s panic injections process-globally and resets the
/// evaluation tick. Tests and the CLI pair this with [`disarm`];
/// arming is idempotent (the last plan wins).
pub fn arm(plan: &FaultPlan) {
    EVAL_TICKS.store(0, Ordering::Relaxed);
    EVAL_PANIC_AT.store(plan.panic_at_evaluations.unwrap_or(0), Ordering::Relaxed);
    *cell_faults() = plan.cell_panics.clone();
    ARMED.store(true, Ordering::Release);
}

/// Removes all armed injections (the default state).
pub fn disarm() {
    ARMED.store(false, Ordering::Release);
    EVAL_PANIC_AT.store(0, Ordering::Relaxed);
    EVAL_TICKS.store(0, Ordering::Relaxed);
    cell_faults().clear();
}

/// Whether a fault plan is currently armed.
pub fn armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// The hook on every counted-evaluation site: one relaxed load when
/// disarmed, a tick (and possibly an injected panic) when armed.
#[inline]
pub fn eval_tick() {
    if ARMED.load(Ordering::Relaxed) {
        eval_tick_armed();
    }
}

#[cold]
fn eval_tick_armed() {
    let at = EVAL_PANIC_AT.load(Ordering::Relaxed);
    if at == 0 {
        return;
    }
    let tick = EVAL_TICKS.fetch_add(1, Ordering::Relaxed) + 1;
    if tick == at {
        panic!("{FAULT_PANIC_PREFIX} evaluation {at} poisoned by fault plan");
    }
}

/// Consumes (and reports) a pending cell fault for the cell identified
/// by `(algorithm, scenario, seed)`. Returns `true` exactly once per
/// matching fault — the caller is expected to panic its attempt; the
/// retry finds the fault consumed.
pub fn take_cell_fault(algorithm: &str, scenario: &str, seed: u64) -> bool {
    if !ARMED.load(Ordering::Relaxed) {
        return false;
    }
    let mut faults = cell_faults();
    if let Some(i) = faults
        .iter()
        .position(|f| f.algorithm == algorithm && f.scenario == scenario && f.seed == seed)
    {
        faults.swap_remove(i);
        true
    } else {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replan::DisturbanceKind;

    /// Serializes arm/disarm across tests (they share process globals).
    static LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn plan_round_trips_and_defaults() {
        let plan = FaultPlan {
            seed: 42,
            panic_at_evaluations: Some(10),
            cell_panics: vec![CellFault {
                algorithm: "se".into(),
                scenario: "tiny".into(),
                seed: 7,
            }],
            dropouts: vec![Disturbance {
                kind: DisturbanceKind::MachineFailure,
                time: 12.5,
                machine: 1,
                factor: 1.0,
            }],
        };
        let back = FaultPlan::from_json(&plan.to_json()).expect("round trip");
        assert_eq!(back, plan);
        // An empty document is a valid, empty plan.
        let empty = FaultPlan::from_json("{}").expect("empty plan");
        assert_eq!(empty, FaultPlan::default());
        assert!(empty.panic_at_evaluations.is_none());
    }

    #[test]
    fn disarmed_hooks_are_inert() {
        let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        disarm();
        assert!(!armed());
        eval_tick(); // must not panic or tick
        assert!(!take_cell_fault("se", "tiny", 1));
    }

    #[test]
    fn eval_tick_panics_at_the_nth_evaluation() {
        let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let plan = FaultPlan { panic_at_evaluations: Some(3), ..FaultPlan::default() };
        arm(&plan);
        eval_tick();
        eval_tick();
        let err = std::panic::catch_unwind(eval_tick).expect_err("third tick panics");
        let msg = err.downcast_ref::<String>().expect("string payload");
        assert!(msg.starts_with(FAULT_PANIC_PREFIX), "panic is identifiable: {msg}");
        // Ticks past the target are inert again.
        eval_tick();
        disarm();
    }

    #[test]
    fn cell_faults_are_consumed_once() {
        let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let fault = CellFault { algorithm: "ga".into(), scenario: "tiny".into(), seed: 3 };
        let plan = FaultPlan { cell_panics: vec![fault], ..FaultPlan::default() };
        arm(&plan);
        assert!(!take_cell_fault("ga", "tiny", 4), "seed mismatch leaves the fault");
        assert!(!take_cell_fault("se", "tiny", 3), "algorithm mismatch leaves the fault");
        assert!(take_cell_fault("ga", "tiny", 3), "first attempt takes the fault");
        assert!(!take_cell_fault("ga", "tiny", 3), "the retry finds it consumed");
        disarm();
        assert!(!armed());
    }
}
