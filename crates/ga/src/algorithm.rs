//! The GA generation loop: evaluate → roulette-select → crossover →
//! mutate, with elitism.

use crate::chromosome::{order_valid_range, Chromosome};
use crate::config::GaConfig;
use mshc_obs as obs;
use mshc_platform::{HcInstance, MachineId};
use mshc_schedule::{
    certified_gap, run_stepped, BatchEvaluator, Descent, EvalSnapshot, Evaluator, Incumbent,
    InstanceBound, ObjectiveKind, RunBudget, RunResult, ScanStats, Scheduler, SearchStep, Solution,
    StepVerdict, SteppableSearch,
};
use mshc_taskgraph::TaskId;
use mshc_trace::{Trace, TraceRecord};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::time::Instant;

/// The Wang et al. genetic-algorithm scheduler.
#[derive(Debug, Clone)]
pub struct GaScheduler {
    config: GaConfig,
}

impl GaScheduler {
    /// Creates a scheduler; panics on invalid configuration.
    pub fn new(config: GaConfig) -> GaScheduler {
        config.validate();
        GaScheduler { config }
    }

    /// Defaults with a specific seed.
    pub fn with_seed(seed: u64) -> GaScheduler {
        GaScheduler::new(GaConfig::default().with_seed(seed))
    }

    /// The configuration.
    pub fn config(&self) -> &GaConfig {
        &self.config
    }
}

/// Roulette-wheel pick over linearly rescaled fitness: weight
/// `w_i = worst - cost_i + ε·span`, so the worst chromosome keeps a small
/// nonzero chance. Returns an index.
fn roulette<R: Rng + ?Sized>(costs: &[f64], rng: &mut R) -> usize {
    let worst = costs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let best = costs.iter().copied().fold(f64::INFINITY, f64::min);
    let span = (worst - best).max(f64::MIN_POSITIVE);
    let floor = 0.05 * span;
    let total: f64 = costs.iter().map(|&c| worst - c + floor).sum();
    let mut target = rng.gen::<f64>() * total;
    for (i, &c) in costs.iter().enumerate() {
        target -= worst - c + floor;
        if target <= 0.0 {
            return i;
        }
    }
    costs.len() - 1
}

/// First string position where `a` and `b` differ (`a.len()` if equal).
/// Segment-level comparison is the only sound way to find a child's
/// divergence from its parent: the matching crossover is task-id-indexed,
/// so a machine difference can surface at *any* string position
/// regardless of the cut points.
fn first_divergence(a: &Solution, b: &Solution) -> usize {
    a.segments().iter().zip(b.segments()).position(|(x, y)| x != y).unwrap_or(a.len())
}

/// How one offspring was constructed, recorded during breeding so the
/// fitness pass can classify its [`Descent`] from a parent without
/// reverse-engineering the operators.
struct Lineage {
    /// Index of parent A (the prefix donor) in the previous generation.
    parent: usize,
    /// Whether crossover ran (divergence must then be measured, not
    /// derived from cut points — see [`first_divergence`]).
    crossed: bool,
    /// Scheduling mutation that actually changed the order: the task and
    /// its new position.
    sched: Option<(TaskId, usize)>,
    /// Matching mutation that actually changed a machine: the task.
    matched: Option<TaskId>,
}

impl Lineage {
    /// Classifies the child against its parent's solution string.
    fn descent(&self, parent: &Solution, child: &Solution) -> Descent {
        if !self.crossed {
            match (self.sched, self.matched) {
                (None, None) => return Descent::Clone { parent: self.parent },
                // A single disturbed task — including the
                // order-and-machine hit on the same task — is exactly
                // the incremental evaluator's native move shape.
                (Some((t, _)), m) if m.is_none() || m == Some(t) => {
                    return Descent::Move {
                        parent: self.parent,
                        task: t,
                        pos: child.position_of(t),
                        machine: child.machine_of(t),
                    };
                }
                (None, Some(t)) => {
                    return Descent::Move {
                        parent: self.parent,
                        task: t,
                        pos: child.position_of(t),
                        machine: child.machine_of(t),
                    };
                }
                // Two different tasks disturbed: fall through to the
                // measured-divergence route.
                _ => {}
            }
        }
        match first_divergence(parent, child) {
            d if d == child.len() => Descent::Clone { parent: self.parent },
            0 => Descent::Fresh,
            d => Descent::Suffix { parent: self.parent, diverge: d },
        }
    }
}

impl Scheduler for GaScheduler {
    fn name(&self) -> &str {
        "ga"
    }

    fn run(
        &mut self,
        inst: &HcInstance,
        budget: &RunBudget,
        trace: Option<&mut Trace>,
    ) -> RunResult {
        budget.validate().expect("GA is an anytime algorithm");
        // One maximal slice of the stepped state machine — plain and
        // stepped runs are the same code path, hence bit-identical.
        run_stepped(self, inst, budget, trace)
    }
}

impl SteppableSearch for GaScheduler {
    fn start<'a>(&mut self, inst: &'a HcInstance, budget: &RunBudget) -> Box<dyn SearchStep + 'a> {
        let start = Instant::now();
        let cfg = self.config;
        let objective = budget.objective;
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        // Whole-population fitness goes through the batch evaluator: one
        // call per generation, fanned out over worker threads. From
        // generation 1 on, offspring carry lineage metadata and ride the
        // parent-primed prefix-splicing path (`score_population`): a
        // crossover child shares a literal prefix with parent A up to
        // its first divergence, mutation-only children are native
        // single-task moves, and exact clones reuse the parent's score
        // outright — all bit-identical to a full pass, so roulette
        // pressure and evaluation counts are unchanged (the
        // `--ga-full-eval` escape hatch routes back through full
        // passes). Generation 0 has no parents and full-evaluates.
        let snapshot = EvalSnapshot::new(inst);
        let mut sols: Vec<Solution> = Vec::with_capacity(cfg.population);

        // ---- initial population ----
        let mut pop: Vec<Chromosome> =
            (0..cfg.population).map(|_| Chromosome::random(inst, &mut rng)).collect();
        if cfg.seed_with_heuristic {
            pop[0] = Chromosome::seeded(inst);
        }
        sols.extend(pop.iter().map(|c| c.to_solution(inst)));
        let mut evaluations = 0;
        let costs = {
            let mut batch = BatchEvaluator::new(&snapshot).with_stride(budget.checkpoint_stride);
            let costs = batch.scores(&sols, &objective);
            evaluations += batch.evaluations();
            costs
        };

        let best_idx = argmin(&costs);
        let best = pop[best_idx].clone();
        let best_cost = costs[best_idx];

        // The certified floor for early termination and gap reporting
        // (makespan objective only); consumes no RNG and counts no
        // evaluations, so it cannot perturb the trajectory.
        let lower_bound = objective.is_makespan().then(|| InstanceBound::compute(inst).floor());

        Box::new(GaState {
            inst,
            cfg,
            budget: budget.clone(),
            objective,
            rng,
            snapshot,
            pop,
            costs,
            sols,
            best_solution: best.to_solution(inst),
            best,
            best_cost,
            generations: 0,
            stall: 0,
            evaluations,
            scan: ScanStats::default(),
            lower_bound,
            early_stopped: false,
            cancelled: false,
            start,
        })
    }
}

/// A paused GA run: the population with its fitness, incumbent tracking
/// and accumulated budget accounting.
struct GaState<'a> {
    inst: &'a HcInstance,
    cfg: GaConfig,
    budget: RunBudget,
    objective: ObjectiveKind,
    rng: ChaCha8Rng,
    snapshot: EvalSnapshot,
    pop: Vec<Chromosome>,
    costs: Vec<f64>,
    sols: Vec<Solution>,
    best: Chromosome,
    /// `best` in solution form, maintained eagerly so
    /// [`SearchStep::incumbent`] can hand out a borrow.
    best_solution: Solution,
    best_cost: f64,
    generations: u64,
    stall: u64,
    evaluations: u64,
    /// Population-scoring counters accumulated across steps (suffixed /
    /// prefix-reused / splice diagnostics; all deterministic).
    scan: ScanStats,
    /// The certified instance floor (`Some` iff makespan objective).
    lower_bound: Option<f64>,
    /// Set when the incumbent reached the floor and the run stopped
    /// early (the incumbent is then provably optimal).
    early_stopped: bool,
    /// Latched cooperative-cancellation flag (checked at generation
    /// boundaries only, so evaluation counts stay exact).
    cancelled: bool,
    start: Instant,
}

impl SearchStep for GaState<'_> {
    fn name(&self) -> &str {
        "ga"
    }

    fn step(&mut self, max_iterations: u64, mut trace: Option<&mut Trace>) -> StepVerdict {
        let g = self.inst.graph();
        let k = self.inst.task_count();
        let l = self.inst.machine_count();
        let mut batch =
            BatchEvaluator::new(&self.snapshot).with_stride(self.budget.checkpoint_stride);
        let mut stepped = 0u64;

        // Generation 0 (or an injected migrant) may already sit on the
        // certified floor — then nothing can improve and the run stops.
        self.early_stopped =
            self.early_stopped || self.budget.floor_reached(self.lower_bound, self.best_cost);
        while !self.early_stopped
            && stepped < max_iterations
            && !self.budget.observe_cancel(&mut self.cancelled)
            && !self.budget.halted(
                self.generations,
                self.evaluations + batch.evaluations(),
                self.start.elapsed(),
                self.stall,
            )
        {
            // ---- next generation ----
            let mut next = Vec::with_capacity(self.cfg.population);
            let mut lineage = Vec::with_capacity(self.cfg.population);
            // Elitism: carry the best chromosomes over unchanged.
            let mut ranked: Vec<usize> = (0..self.pop.len()).collect();
            ranked.sort_by(|&a, &b| self.costs[a].total_cmp(&self.costs[b]).then(a.cmp(&b)));
            for &i in ranked.iter().take(self.cfg.elites) {
                next.push(self.pop[i].clone());
                lineage.push(Lineage { parent: i, crossed: false, sched: None, matched: None });
            }
            while next.len() < self.cfg.population {
                // RNG consumption order is the fitness-bit contract:
                // roulette(pa), roulette(pb), crossover draw (+cuts),
                // sched-mutation draw (+task,pos), match-mutation draw
                // (+task,machine). Lineage recording must not add draws.
                let ia = roulette(&self.costs, &mut self.rng);
                let ib = roulette(&self.costs, &mut self.rng);
                let pa = &self.pop[ia];
                let pb = &self.pop[ib];
                let crossed = self.rng.gen::<f64>() < self.cfg.crossover_prob;
                let mut child = if crossed {
                    let cut_s = self.rng.gen_range(0..=k);
                    let cut_m = self.rng.gen_range(0..=k);
                    Chromosome {
                        order: pa.crossover_order(pb, cut_s),
                        matching: pa.crossover_matching(pb, cut_m),
                    }
                } else {
                    pa.clone()
                };
                let mut sched = None;
                if self.rng.gen::<f64>() < self.cfg.sched_mutation_prob {
                    let t = TaskId::from_usize(self.rng.gen_range(0..k));
                    let (lo, hi) = order_valid_range(g, &child.order, t);
                    let pos = self.rng.gen_range(lo..=hi);
                    let old = child.order.iter().position(|&x| x == t).expect("task present");
                    let moved = child.mutate_order(g, t, pos);
                    debug_assert!(moved);
                    if pos != old {
                        sched = Some((t, pos));
                    }
                }
                let mut matched = None;
                if self.rng.gen::<f64>() < self.cfg.match_mutation_prob {
                    let t = TaskId::from_usize(self.rng.gen_range(0..k));
                    let m = MachineId::from_usize(self.rng.gen_range(0..l));
                    if child.matching[t.index()] != m {
                        matched = Some(t);
                    }
                    child.mutate_matching(t, m);
                }
                next.push(child);
                lineage.push(Lineage { parent: ia, crossed, sched, matched });
            }
            // The outgoing generation becomes the parent pool: its
            // solutions are the primable bases, its costs serve clones.
            let parent_sols = std::mem::take(&mut self.sols);
            let parent_costs = std::mem::take(&mut self.costs);
            self.pop = next;
            let inst = self.inst;
            self.sols.extend(self.pop.iter().map(|c| c.to_solution(inst)));
            self.costs = if self.budget.ga_full_eval {
                batch.scores(&self.sols, &self.objective)
            } else {
                let descents: Vec<Descent> = self
                    .sols
                    .iter()
                    .zip(&lineage)
                    .map(|(child, li)| li.descent(&parent_sols[li.parent], child))
                    .collect();
                batch.score_population(
                    &parent_sols,
                    &parent_costs,
                    &self.sols,
                    &descents,
                    &self.objective,
                )
            };

            let best_idx = argmin(&self.costs);
            if self.costs[best_idx] < self.best_cost {
                self.best_cost = self.costs[best_idx];
                self.best = self.pop[best_idx].clone();
                self.best_solution = self.best.to_solution(inst);
                self.stall = 0;
                if self.budget.floor_reached(self.lower_bound, self.best_cost) {
                    self.early_stopped = true;
                }
            } else {
                self.stall += 1;
            }
            self.generations += 1;
            obs::add(obs::Counter::Iterations, 1);
            stepped += 1;

            if let Some(tr) = trace.as_deref_mut() {
                tr.push(TraceRecord {
                    iteration: self.generations - 1,
                    elapsed_secs: self.start.elapsed().as_secs_f64(),
                    evaluations: self.evaluations + batch.evaluations(),
                    current_cost: self.costs[best_idx],
                    best_cost: self.best_cost,
                    selected: None,
                    population_mean: Some(self.costs.iter().sum::<f64>() / self.costs.len() as f64),
                });
            }
        }

        self.evaluations += batch.evaluations();
        self.scan.merge(batch.scan_stats());
        if self.early_stopped
            || self.cancelled
            || self.budget.halted(
                self.generations,
                self.evaluations,
                self.start.elapsed(),
                self.stall,
            )
        {
            StepVerdict::Exhausted
        } else {
            StepVerdict::Running
        }
    }

    fn incumbent(&self) -> Option<Incumbent<'_>> {
        Some(Incumbent { solution: &self.best_solution, cost: self.best_cost })
    }

    fn inject(&mut self, migrant: &Solution, cost: f64) {
        // Replace the worst chromosome when the migrant beats it; the
        // injected individual then competes through elitism and roulette
        // like any other. No RNG is consumed and no evaluation counted
        // (the cost arrives precomputed under the shared objective).
        let worst = self
            .costs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1).then(b.0.cmp(&a.0)))
            .map(|(i, _)| i)
            .expect("non-empty population");
        if cost < self.costs[worst] {
            self.pop[worst] = Chromosome::from_solution(migrant);
            self.costs[worst] = cost;
            // Keep the cached solution in sync: next generation's
            // lineage classification uses `sols` as the primable bases
            // (`from_solution` → `to_solution` round-trips exactly).
            self.sols[worst] = migrant.clone();
            if cost < self.best_cost {
                self.best = self.pop[worst].clone();
                self.best_solution = self.best.to_solution(self.inst);
                self.best_cost = cost;
                self.stall = 0;
            }
        }
    }

    fn result(&mut self) -> RunResult {
        let solution = self.best_solution.clone();
        let makespan = if self.objective.is_makespan() {
            self.best_cost
        } else {
            // Reporting pass, deliberately uncounted.
            Evaluator::with_snapshot(&self.snapshot).makespan(&solution)
        };
        RunResult {
            solution,
            makespan,
            objective_value: self.best_cost,
            iterations: self.generations,
            evaluations: self.evaluations,
            elapsed: self.start.elapsed(),
            scan: self.scan,
            lower_bound: self.lower_bound,
            gap: certified_gap(self.lower_bound, self.best_cost),
            early_stopped: self.early_stopped,
            termination: self.budget.termination(
                self.generations,
                self.evaluations,
                self.start.elapsed(),
                self.stall,
                self.early_stopped,
                self.cancelled,
            ),
        }
    }
}

fn argmin(costs: &[f64]) -> usize {
    costs
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.total_cmp(b.1).then(a.0.cmp(&b.0)))
        .map(|(i, _)| i)
        .expect("non-empty population")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mshc_platform::{HcSystem, Matrix};
    use mshc_schedule::replay;
    use mshc_taskgraph::gen::{layered, LayeredConfig};

    fn random_instance(tasks: usize, machines: usize, seed: u64) -> HcInstance {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let cfg = LayeredConfig { tasks, mean_width: 4, edge_prob: 0.5, skip_prob: 0.05 };
        let graph = layered(&cfg, &mut rng).unwrap();
        let exec = Matrix::from_fn(machines, tasks, |_, _| rng.gen_range(10.0..100.0));
        let pairs = machines * (machines - 1) / 2;
        let transfer = Matrix::from_fn(pairs, graph.data_count(), |_, _| rng.gen_range(1.0..30.0));
        let sys = HcSystem::with_anonymous_machines(machines, exec, transfer).unwrap();
        HcInstance::new(graph, sys).unwrap()
    }

    #[test]
    fn roulette_prefers_low_cost() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let costs = vec![100.0, 10.0, 100.0, 100.0];
        let mut hits = [0usize; 4];
        for _ in 0..4000 {
            hits[roulette(&costs, &mut rng)] += 1;
        }
        assert!(hits[1] > hits[0] * 3, "cheapest chromosome must dominate: {hits:?}");
        assert!(hits.iter().all(|&h| h > 0), "everyone keeps a nonzero chance: {hits:?}");
    }

    #[test]
    fn roulette_uniform_when_costs_equal() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let costs = vec![5.0; 4];
        let mut hits = [0usize; 4];
        for _ in 0..4000 {
            hits[roulette(&costs, &mut rng)] += 1;
        }
        for &h in &hits {
            assert!((800..1200).contains(&h), "roughly uniform: {hits:?}");
        }
    }

    #[test]
    fn ga_improves_over_random_baseline() {
        let inst = random_instance(30, 4, 21);
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let mut eval = Evaluator::new(&inst);
        let baseline: f64 = (0..20)
            .map(|_| eval.makespan(&mshc_schedule::random_solution(&inst, &mut rng)))
            .sum::<f64>()
            / 20.0;
        let mut ga = GaScheduler::with_seed(3);
        let r = ga.run(&inst, &RunBudget::iterations(60), None);
        assert!(r.makespan < baseline, "GA ({}) must beat random mean ({baseline})", r.makespan);
    }

    #[test]
    fn ga_result_valid_and_matches_replay() {
        let inst = random_instance(25, 3, 22);
        let mut ga = GaScheduler::with_seed(4);
        let r = ga.run(&inst, &RunBudget::iterations(30), None);
        r.solution.check(inst.graph()).unwrap();
        let sim = replay(&inst, &r.solution).unwrap();
        assert!((sim.makespan - r.makespan).abs() < 1e-9);
    }

    #[test]
    fn ga_is_deterministic_under_seed() {
        let inst = random_instance(20, 3, 23);
        let a = GaScheduler::with_seed(7).run(&inst, &RunBudget::iterations(20), None);
        let b = GaScheduler::with_seed(7).run(&inst, &RunBudget::iterations(20), None);
        assert_eq!(a.solution, b.solution);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.makespan, a.objective_value, "default objective is makespan");
    }

    #[test]
    fn ga_is_bit_identical_across_thread_counts() {
        // Batch population fitness must not perturb a single GA decision,
        // whatever the worker-thread count.
        let inst = random_instance(20, 3, 28);
        let budget = RunBudget::iterations(15);
        let baseline = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap()
            .install(|| GaScheduler::with_seed(5).run(&inst, &budget, None));
        for threads in [2usize, 8] {
            let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
            let r = pool.install(|| GaScheduler::with_seed(5).run(&inst, &budget, None));
            assert_eq!(r.solution, baseline.solution, "{threads} threads");
            assert_eq!(r.makespan, baseline.makespan, "{threads} threads");
            assert_eq!(r.evaluations, baseline.evaluations, "{threads} threads");
        }
    }

    #[test]
    fn spliced_fitness_is_bit_identical_to_full_eval() {
        // The tentpole contract: parent-primed prefix splicing must not
        // move a single fitness bit — same solutions, same objective
        // values, same evaluation counts, same per-generation trace —
        // across seeds, objectives and checkpoint strides.
        let inst = random_instance(24, 4, 61);
        let k = inst.task_count();
        let weighted = ObjectiveKind::Weighted { makespan: 1.0, flowtime: 0.3, balance: 0.7 };
        for seed in [3u64, 19] {
            for kind in [ObjectiveKind::Makespan, ObjectiveKind::TotalFlowtime, weighted] {
                for stride in [None, Some(1), Some(k + 3)] {
                    let budget = RunBudget::iterations(12)
                        .with_objective(kind)
                        .with_checkpoint_stride(stride);
                    let mut full_trace = Trace::new();
                    let full = GaScheduler::with_seed(seed).run(
                        &inst,
                        &budget.clone().with_ga_full_eval(true),
                        Some(&mut full_trace),
                    );
                    let mut spliced_trace = Trace::new();
                    let spliced =
                        GaScheduler::with_seed(seed).run(&inst, &budget, Some(&mut spliced_trace));
                    let tag = format!("seed {seed}, {}, stride {stride:?}", kind.label());
                    assert_eq!(spliced.solution, full.solution, "{tag}");
                    assert_eq!(spliced.objective_value, full.objective_value, "{tag}");
                    assert_eq!(spliced.evaluations, full.evaluations, "{tag}");
                    assert_eq!(spliced.iterations, full.iterations, "{tag}");
                    // Traces match record-for-record on every
                    // deterministic field (elapsed wall time obviously
                    // differs between the two runs).
                    assert_eq!(spliced_trace.records().len(), full_trace.records().len(), "{tag}");
                    for (s, f) in spliced_trace.records().iter().zip(full_trace.records()) {
                        assert_eq!(s.iteration, f.iteration, "{tag}");
                        assert_eq!(s.evaluations, f.evaluations, "{tag}");
                        assert_eq!(s.current_cost, f.current_cost, "{tag}");
                        assert_eq!(s.best_cost, f.best_cost, "{tag}");
                        assert_eq!(s.population_mean, f.population_mean, "{tag}");
                    }
                    // The spliced run actually rode the fast path...
                    assert!(spliced.scan.suffixed > 0, "{tag}");
                    assert!(spliced.scan.prefix_reused > 0, "{tag}");
                    // ...and the escape hatch really is full evaluation.
                    assert_eq!(full.scan.suffix_total, 0, "{tag}");
                }
            }
        }
    }

    #[test]
    fn ga_scan_stats_are_thread_invariant() {
        // The population counters are a pure function of the
        // chromosomes (no bound, no pruning), so `run --report` output
        // is byte-identical at any worker-thread count.
        let inst = random_instance(22, 3, 62);
        let budget = RunBudget::iterations(10);
        let baseline = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap()
            .install(|| GaScheduler::with_seed(6).run(&inst, &budget, None));
        assert!(baseline.scan.suffix_total > 0);
        for threads in [2usize, 8] {
            let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
            let r = pool.install(|| GaScheduler::with_seed(6).run(&inst, &budget, None));
            assert_eq!(r.scan, baseline.scan, "{threads} threads");
        }
    }

    #[test]
    fn ga_optimizes_alternate_objectives() {
        use mshc_schedule::{objective_from_report, replay, ObjectiveKind};
        let inst = random_instance(22, 4, 29);
        for kind in [ObjectiveKind::TotalFlowtime, ObjectiveKind::MeanFlowtime] {
            let budget = RunBudget::iterations(25).with_objective(kind);
            let r = GaScheduler::with_seed(11).run(&inst, &budget, None);
            r.solution.check(inst.graph()).unwrap();
            let sim = replay(&inst, &r.solution).unwrap();
            assert!(
                (r.objective_value - objective_from_report(&kind, &sim)).abs() < 1e-9,
                "{}",
                kind.label()
            );
            assert!((r.makespan - sim.makespan).abs() < 1e-9);
        }
    }

    #[test]
    fn elitism_makes_best_monotone() {
        let inst = random_instance(20, 3, 24);
        let mut trace = Trace::new();
        GaScheduler::with_seed(8).run(&inst, &RunBudget::iterations(40), Some(&mut trace));
        for w in trace.records().windows(2) {
            assert!(w[1].best_cost <= w[0].best_cost + 1e-12, "elitism keeps best monotone");
        }
        // current (best-of-generation) can never beat best-so-far
        for r in trace.records() {
            assert!(r.current_cost >= r.best_cost - 1e-12);
            assert!(r.population_mean.unwrap() >= r.current_cost - 1e-9);
            assert!(r.selected.is_none());
        }
    }

    #[test]
    fn seeded_heuristic_bounds_generation_zero() {
        // With seeding on, generation 0's best is at least as good as the
        // deterministic heuristic chromosome.
        let inst = random_instance(25, 4, 25);
        let seed_cost =
            Evaluator::new(&inst).makespan(&Chromosome::seeded(&inst).to_solution(&inst));
        let mut trace = Trace::new();
        GaScheduler::new(GaConfig { seed: 9, ..Default::default() }).run(
            &inst,
            &RunBudget::iterations(1),
            Some(&mut trace),
        );
        assert!(trace.records()[0].best_cost <= seed_cost + 1e-9);
    }

    #[test]
    fn budget_wall_clock_stops() {
        let inst = random_instance(30, 4, 26);
        let mut ga = GaScheduler::with_seed(10);
        let r = ga.run(&inst, &RunBudget::wall(std::time::Duration::from_millis(50)), None);
        assert!(r.elapsed >= std::time::Duration::from_millis(50));
        assert!(r.elapsed < std::time::Duration::from_secs(10));
        assert!(r.iterations > 0);
    }

    #[test]
    #[should_panic(expected = "anytime")]
    fn unbounded_budget_rejected() {
        let inst = random_instance(5, 2, 27);
        GaScheduler::with_seed(0).run(&inst, &RunBudget::default(), None);
    }

    #[test]
    fn scheduler_name() {
        assert_eq!(GaScheduler::with_seed(0).name(), "ga");
    }

    #[test]
    fn stepped_run_matches_plain_run_at_any_slice_size() {
        let inst = random_instance(20, 3, 50);
        let budget = RunBudget::iterations(12);
        let plain = GaScheduler::with_seed(4).run(&inst, &budget, None);
        for slice in [1u64, 5] {
            let mut ga = GaScheduler::with_seed(4);
            let mut state = ga.start(&inst, &budget);
            assert_eq!(state.name(), "ga");
            while !state.step(slice, None).is_exhausted() {}
            let stepped = state.result();
            assert_eq!(stepped.solution, plain.solution, "slice {slice}");
            assert_eq!(stepped.evaluations, plain.evaluations, "slice {slice}");
            assert_eq!(stepped.iterations, plain.iterations, "slice {slice}");
        }
    }

    #[test]
    fn inject_replaces_worst_and_updates_incumbent() {
        let inst = random_instance(18, 3, 51);
        let mut ga = GaScheduler::with_seed(5);
        let mut state = ga.start(&inst, &RunBudget::iterations(30));
        let _ = state.step(2, None);
        let before = state.incumbent().expect("population always has a best").cost;
        // Donate a strong solution from a longer independent run.
        let donor = GaScheduler::with_seed(99).run(&inst, &RunBudget::iterations(60), None);
        state.inject(&donor.solution, donor.objective_value);
        if donor.objective_value < before {
            let inc = state.incumbent().unwrap();
            assert_eq!(inc.cost, donor.objective_value);
            assert_eq!(inc.solution, &donor.solution);
        }
        while !state.step(u64::MAX, None).is_exhausted() {}
        let r = state.result();
        r.solution.check(inst.graph()).unwrap();
        assert!(r.objective_value <= before.min(donor.objective_value) + 1e-9);
    }

    #[test]
    fn chromosome_solution_roundtrip_via_from_solution() {
        let inst = random_instance(15, 3, 52);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for _ in 0..20 {
            let c = Chromosome::random(&inst, &mut rng);
            let sol = c.to_solution(&inst);
            let back = Chromosome::from_solution(&sol);
            assert!(back.check(&inst));
            assert_eq!(back.to_solution(&inst), sol, "round-trip preserves the schedule");
        }
    }
}
