//! Leaderboard aggregation and report rendering.
//!
//! Aggregates per-cell outcomes into per-algorithm standings through
//! `mshc-stats` ([`Summary`]): wins and win rate (a win = matching the
//! race minimum exactly), mean competition rank across races, mean/best
//! raw objective, and total evaluations. Everything serialized in a
//! [`Leaderboard`] is deterministic — wall-clock throughput lives in
//! [`Timing`] and is printed by `--report`, never written into the
//! leaderboard JSON, so the file is bit-identical at any thread count.

use crate::engine::{CellOutcome, CellTiming, TournamentRun};
use mshc_stats::Summary;
use mshc_trace::CsvTable;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One algorithm's aggregate standing across every cell it contested.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Standing {
    /// Algorithm name.
    pub algorithm: String,
    /// Cells contested (races × its participation).
    pub cells: usize,
    /// Cells that panicked instead of finishing.
    pub failures: usize,
    /// Races where this algorithm matched the best objective value.
    pub wins: usize,
    /// `wins / completed cells` (0 when nothing completed).
    pub win_rate: f64,
    /// Mean competition rank across completed cells (1 = sole or tied
    /// best; ties share the better rank). 0 when nothing completed.
    pub mean_rank: f64,
    /// Mean raw objective value across completed cells (mixes scenario
    /// scales; rank and win rate are the scale-free columns).
    pub mean_objective: f64,
    /// Best raw objective value across completed cells.
    pub best_objective: f64,
    /// Total schedule evaluations across completed cells.
    pub total_evaluations: u64,
    /// Mean certified optimality gap across completed cells that carry
    /// a certificate (`None` when none do — non-makespan objectives).
    /// Scale-free like rank: 1.0 means provably optimal everywhere.
    #[serde(default)]
    pub mean_gap: Option<f64>,
    /// Best (smallest) certified gap across certified cells.
    #[serde(default)]
    pub best_gap: Option<f64>,
    /// Completed cells that terminated early at the certified floor.
    #[serde(default)]
    pub early_stops: usize,
    /// Completed cells that needed same-seed retries to finish
    /// (degraded: kept on the board, flagged instead of dropped).
    #[serde(default)]
    pub degraded: usize,
}

/// The deterministic tournament artifact (`mshc tournament --out`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Leaderboard {
    /// Suite name from the spec.
    pub suite: String,
    /// Whether portfolio (shared-incumbent) mode was on.
    pub portfolio: bool,
    /// Per-run iteration budget.
    pub iterations: u64,
    /// Race count (scenarios × seeds × objectives).
    pub races: usize,
    /// Cell count (races × algorithms).
    pub cells: usize,
    /// Cells that failed (panicked) instead of finishing.
    pub failures: usize,
    /// Cells that completed only after bounded same-seed retries.
    #[serde(default)]
    pub degraded: usize,
    /// Per-algorithm standings, best first (wins desc, then mean rank
    /// asc, then name).
    pub standings: Vec<Standing>,
    /// Every cell outcome in deterministic expansion order.
    pub results: Vec<CellOutcome>,
}

/// Wall-clock summary, reported on stdout (never serialized into the
/// leaderboard — timing is the one non-deterministic axis).
#[derive(Debug, Clone)]
pub struct Timing {
    /// Whole-tournament wall time in seconds.
    pub total_secs: f64,
    /// Total schedule evaluations across completed cells.
    pub total_evaluations: u64,
    /// Aggregate evaluations per second (sum of evals over total wall).
    pub evals_per_sec: f64,
    /// Completed tournament cells per second.
    pub cells_per_sec: f64,
}

/// Builds the leaderboard and timing summary from a finished run.
pub fn aggregate(run: &TournamentRun) -> (Leaderboard, Timing) {
    let spec = &run.spec;
    let races = run.cells.len() / spec.algorithms.len().max(1);

    // Race key → minimum completed objective value (the win line).
    let mut race_best: BTreeMap<(&str, u64, &str), f64> = BTreeMap::new();
    for cell in run.cells.iter().filter(|c| c.ok) {
        let key = (cell.scenario.as_str(), cell.seed, cell.objective.as_str());
        race_best
            .entry(key)
            .and_modify(|best| {
                if cell.objective_value < *best {
                    *best = cell.objective_value;
                }
            })
            .or_insert(cell.objective_value);
    }

    let mut standings: Vec<Standing> = spec
        .algorithms
        .iter()
        .map(|algorithm| {
            let mine: Vec<&CellOutcome> =
                run.cells.iter().filter(|c| &c.algorithm == algorithm).collect();
            let done: Vec<&CellOutcome> = mine.iter().copied().filter(|c| c.ok).collect();
            let failures = mine.len() - done.len();
            let mut wins = 0usize;
            let mut rank_sum = 0.0f64;
            for cell in &done {
                let key = (cell.scenario.as_str(), cell.seed, cell.objective.as_str());
                let best = race_best[&key];
                if cell.objective_value == best {
                    wins += 1;
                }
                // Competition rank: 1 + number of strictly better
                // completed contestants in the same race.
                let better = run
                    .cells
                    .iter()
                    .filter(|c| c.ok && (c.scenario.as_str(), c.seed, c.objective.as_str()) == key)
                    .filter(|c| c.objective_value < cell.objective_value)
                    .count();
                rank_sum += (1 + better) as f64;
            }
            let values: Vec<f64> = done.iter().map(|c| c.objective_value).collect();
            let summary = if values.is_empty() { None } else { Some(Summary::of(&values)) };
            let gaps: Vec<f64> = done.iter().filter_map(|c| c.gap).collect();
            let gap_summary = if gaps.is_empty() { None } else { Some(Summary::of(&gaps)) };
            Standing {
                algorithm: algorithm.clone(),
                cells: mine.len(),
                failures,
                wins,
                win_rate: if done.is_empty() { 0.0 } else { wins as f64 / done.len() as f64 },
                mean_rank: if done.is_empty() { 0.0 } else { rank_sum / done.len() as f64 },
                mean_objective: summary.map_or(0.0, |s| s.mean),
                best_objective: summary.map_or(0.0, |s| s.min),
                total_evaluations: done.iter().map(|c| c.evaluations).sum(),
                mean_gap: gap_summary.as_ref().map(|s| s.mean),
                best_gap: gap_summary.as_ref().map(|s| s.min),
                early_stops: done.iter().filter(|c| c.early_stopped).count(),
                degraded: done.iter().filter(|c| c.degraded).count(),
            }
        })
        .collect();
    standings.sort_by(|a, b| {
        b.wins
            .cmp(&a.wins)
            .then(a.mean_rank.total_cmp(&b.mean_rank))
            .then(a.algorithm.cmp(&b.algorithm))
    });

    let failures = run.cells.iter().filter(|c| !c.ok).count();
    let degraded = run.cells.iter().filter(|c| c.ok && c.degraded).count();
    let leaderboard = Leaderboard {
        suite: spec.suite.clone(),
        portfolio: spec.portfolio,
        iterations: spec.iterations,
        races,
        cells: run.cells.len(),
        failures,
        degraded,
        standings,
        results: run.cells.clone(),
    };
    let total_evaluations: u64 = run.cells.iter().filter(|c| c.ok).map(|c| c.evaluations).sum();
    let completed = run.cells.len() - failures;
    let timing = Timing {
        total_secs: run.total_secs,
        total_evaluations,
        evals_per_sec: if run.total_secs > 0.0 {
            total_evaluations as f64 / run.total_secs
        } else {
            f64::INFINITY
        },
        cells_per_sec: if run.total_secs > 0.0 {
            completed as f64 / run.total_secs
        } else {
            f64::INFINITY
        },
    };
    (leaderboard, timing)
}

/// Per-cell CSV export (via `mshc-trace`'s writer): one row per cell in
/// deterministic order. Free-form fields (the objective spelling —
/// `weighted:1,0.5,0.5` carries commas — and panic messages) are
/// sanitized of CSV metacharacters, which the minimal writer rejects.
///
/// `timing` is the run's per-cell diagnostics sidecar
/// ([`TournamentRun::timing`], same order as `board.results`): it feeds
/// the scan-efficiency fraction columns. Pass `&[]` when re-exporting a
/// deserialized leaderboard with no live run — the fractions render as
/// zeros. The CSV carries diagnostic (thread-count-dependent) columns by
/// design and is never byte-compared by CI, unlike the leaderboard JSON.
pub fn cells_csv(board: &Leaderboard, timing: &[CellTiming]) -> CsvTable {
    let sanitize = |s: &str| s.replace([',', '"', '\n'], ";");
    let mut table = CsvTable::new([
        "algorithm",
        "scenario",
        "seed",
        "objective",
        "ok",
        "objective_value",
        "makespan",
        "iterations",
        "evaluations",
        "error",
        "lower_bound",
        "gap",
        "early_stopped",
        "pruned_fraction",
        "spliced_fraction",
        "prefix_reuse_fraction",
        "retries",
        "degraded",
        "termination",
    ]);
    // New columns (certificates, then scan-efficiency fractions) append
    // after the historic ones, so column indices of pre-existing
    // consumers stay valid; `None` serializes as the empty cell.
    let opt = |v: Option<f64>| v.map_or_else(String::new, |x| format!("{x}"));
    for (i, c) in board.results.iter().enumerate() {
        let scan = timing.get(i).map(|t| t.scan).unwrap_or_default();
        table.push_row([
            c.algorithm.clone(),
            c.scenario.clone(),
            c.seed.to_string(),
            sanitize(&c.objective),
            c.ok.to_string(),
            format!("{}", c.objective_value),
            format!("{}", c.makespan),
            c.iterations.to_string(),
            c.evaluations.to_string(),
            sanitize(&c.error),
            opt(c.lower_bound),
            opt(c.gap),
            c.early_stopped.to_string(),
            format!("{:.6}", scan.pruned_fraction()),
            format!("{:.6}", scan.spliced_fraction()),
            format!("{:.6}", scan.prefix_reuse_fraction()),
            c.retries.to_string(),
            c.degraded.to_string(),
            sanitize(&c.termination),
        ]);
    }
    table
}

/// Renders the `--report` text: total cells, per-cell failures and
/// aggregate throughput.
pub fn render_report(board: &Leaderboard, timing: &Timing) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "tournament: {} suite | {} races x {} algorithms = {} cells | portfolio {}",
        board.suite,
        board.races,
        board.standings.len(),
        board.cells,
        if board.portfolio { "on" } else { "off" }
    );
    let _ = writeln!(
        out,
        "{:<10} {:>6} {:>9} {:>10} {:>14} {:>14} {:>9} {:>14} {:>9}",
        "algorithm",
        "wins",
        "win-rate",
        "mean-rank",
        "mean-obj",
        "best-obj",
        "mean-gap",
        "evals",
        "failed"
    );
    for s in &board.standings {
        let gap = s.mean_gap.map_or_else(|| "-".to_string(), |g| format!("{g:.3}"));
        let _ = writeln!(
            out,
            "{:<10} {:>6} {:>8.1}% {:>10.2} {:>14.2} {:>14.2} {:>9} {:>14} {:>9}",
            s.algorithm,
            s.wins,
            100.0 * s.win_rate,
            s.mean_rank,
            s.mean_objective,
            s.best_objective,
            gap,
            s.total_evaluations,
            s.failures
        );
    }
    let _ = writeln!(
        out,
        "cells: {} total, {} completed, {} failed, {} degraded",
        board.cells,
        board.cells - board.failures,
        board.failures,
        board.degraded
    );
    for c in board.results.iter().filter(|c| !c.ok) {
        let _ = writeln!(
            out,
            "  FAILED {} on {} seed {} ({}): {}",
            c.algorithm, c.scenario, c.seed, c.objective, c.error
        );
    }
    for c in board.results.iter().filter(|c| c.ok && c.degraded) {
        let _ = writeln!(
            out,
            "  DEGRADED {} on {} seed {} ({}): completed after {} retries",
            c.algorithm, c.scenario, c.seed, c.objective, c.retries
        );
    }
    let _ = writeln!(
        out,
        "throughput: {:.0} evals/sec aggregate ({} evals, {:.2} cells/sec, {:.3}s wall)",
        timing.evals_per_sec, timing.total_evaluations, timing.cells_per_sec, timing.total_secs
    );
    out
}
