//! Discrete-event replay of a solution.
//!
//! The analytic evaluator ([`crate::Evaluator`]) computes times with a
//! closed-form pass. This module *executes* the same schedule on an
//! explicit event-driven simulator — machines hold FIFO work queues in the
//! string's per-machine order, data transfers complete as timed events —
//! and reports the observed finish times. Property tests across the suite
//! assert the two agree exactly; this is the correctness anchor for every
//! scheduler built on the evaluator.
//!
//! Unlike the analytic pass, the simulator does **not** require the string
//! to be a global linear extension — only the per-machine orders matter —
//! so it also serves as an oracle for the (strictly larger) space of
//! schedules expressible with inconsistent strings, and it detects
//! cross-machine ordering deadlocks that the `Solution` invariant rules
//! out by construction.

use crate::encoding::Solution;
use crate::eval::ScheduleReport;
use mshc_platform::HcInstance;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;

/// Simulation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// No runnable event remains but some tasks never executed — the
    /// per-machine orders and the DAG form a circular wait. Impossible for
    /// validated [`Solution`]s; reachable via `Solution::new_unchecked`.
    Deadlock {
        /// Number of tasks that never ran.
        stuck_tasks: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Deadlock { stuck_tasks } => {
                write!(f, "schedule deadlocked with {stuck_tasks} tasks never executed")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// A timed event in the simulator.
#[derive(Debug, Clone, Copy, PartialEq)]
enum EventKind {
    /// A machine finished executing a task.
    TaskFinish { task: u32, machine: u32 },
    /// A data item arrived at its consumer's machine.
    DataArrival { edge: u32 },
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct Event {
    time: f64,
    seq: u64, // FIFO tie-break for equal times => deterministic replay
    kind: EventKind,
}

impl Eq for Event {}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse for earliest-first.
        other.time.total_cmp(&self.time).then(other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Network model used by the replay simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NetworkModel {
    /// The paper's model (§2): links never contend; a transfer departs
    /// the moment its producer finishes.
    #[default]
    ContentionFree,
    /// Extension: one exclusive link per unordered machine pair;
    /// transfers crossing the same pair serialize FIFO in the order
    /// their producers finish. Probes how sensitive the paper's results
    /// are to its contention-free assumption — makespans under this
    /// model are always ≥ the contention-free ones.
    PerPairLink,
}

/// Replays `solution` on `inst` under the paper's contention-free
/// network, returning the observed report.
pub fn replay(inst: &HcInstance, solution: &Solution) -> Result<ScheduleReport, SimError> {
    replay_with(inst, solution, NetworkModel::ContentionFree)
}

/// Replays `solution` on `inst` under the chosen [`NetworkModel`].
pub fn replay_with(
    inst: &HcInstance,
    solution: &Solution,
    network: NetworkModel,
) -> Result<ScheduleReport, SimError> {
    let g = inst.graph();
    let sys = inst.system();
    let k = g.task_count();
    let l = inst.machine_count();

    // Per-machine FIFO queues in string order.
    let mut queues: Vec<std::collections::VecDeque<u32>> =
        vec![std::collections::VecDeque::new(); l];
    for seg in solution.segments() {
        queues[seg.machine.index()].push_back(seg.task.raw());
    }

    let mut inputs_missing: Vec<u32> =
        (0..k).map(|i| g.in_degree(mshc_taskgraph::TaskId::from_usize(i)) as u32).collect();
    let mut machine_busy = vec![false; l];
    let mut start = vec![f64::NAN; k];
    let mut finish = vec![f64::NAN; k];
    let mut executed = 0usize;

    let mut heap: BinaryHeap<Event> = BinaryHeap::new();
    let mut seq = 0u64;
    let mut push = |heap: &mut BinaryHeap<Event>, time: f64, kind: EventKind| {
        heap.push(Event { time, seq, kind });
        seq += 1;
    };
    // Per-pair link availability (only used by NetworkModel::PerPairLink).
    let mut link_avail = vec![0.0f64; mshc_platform::pair_count(l).max(1)];

    // A machine dispatches its queue head when the head's inputs are all
    // present and the machine is idle.
    let try_dispatch =
        |mi: usize,
         now: f64,
         queues: &mut [std::collections::VecDeque<u32>],
         machine_busy: &mut [bool],
         inputs_missing: &[u32],
         start: &mut [f64],
         heap: &mut BinaryHeap<Event>,
         push: &mut dyn FnMut(&mut BinaryHeap<Event>, f64, EventKind)| {
            if machine_busy[mi] {
                return;
            }
            if let Some(&head) = queues[mi].front() {
                if inputs_missing[head as usize] == 0 {
                    queues[mi].pop_front();
                    machine_busy[mi] = true;
                    start[head as usize] = now;
                    let m = mshc_platform::MachineId::from_usize(mi);
                    let t = mshc_taskgraph::TaskId::new(head);
                    let done = now + sys.exec_time(m, t);
                    push(heap, done, EventKind::TaskFinish { task: head, machine: mi as u32 });
                }
            }
        };

    // Kick off time zero on every machine.
    for mi in 0..l {
        try_dispatch(
            mi,
            0.0,
            &mut queues,
            &mut machine_busy,
            &inputs_missing,
            &mut start,
            &mut heap,
            &mut push,
        );
    }

    while let Some(Event { time, kind, .. }) = heap.pop() {
        match kind {
            EventKind::TaskFinish { task, machine } => {
                finish[task as usize] = time;
                executed += 1;
                machine_busy[machine as usize] = false;
                let t = mshc_taskgraph::TaskId::new(task);
                // Emit each output data item as a timed arrival.
                for e in g.out_edges(t) {
                    let from = solution.machine_of(e.src);
                    let to = solution.machine_of(e.dst);
                    let cost = sys.transfer_time(e.id, from, to);
                    let arrive = match network {
                        NetworkModel::ContentionFree => time + cost,
                        NetworkModel::PerPairLink => {
                            if from == to {
                                time // co-located: no link involved
                            } else {
                                let pair = mshc_platform::pair_index(l, from, to);
                                let depart = time.max(link_avail[pair]);
                                link_avail[pair] = depart + cost;
                                depart + cost
                            }
                        }
                    };
                    push(&mut heap, arrive, EventKind::DataArrival { edge: e.id.raw() });
                }
                // The machine may now dispatch its next head.
                try_dispatch(
                    machine as usize,
                    time,
                    &mut queues,
                    &mut machine_busy,
                    &inputs_missing,
                    &mut start,
                    &mut heap,
                    &mut push,
                );
            }
            EventKind::DataArrival { edge } => {
                let e = g.edge(mshc_taskgraph::DataId::new(edge));
                inputs_missing[e.dst.index()] -= 1;
                if inputs_missing[e.dst.index()] == 0 {
                    // Its machine may have been blocked on this head.
                    let mi = solution.machine_of(e.dst).index();
                    try_dispatch(
                        mi,
                        time,
                        &mut queues,
                        &mut machine_busy,
                        &inputs_missing,
                        &mut start,
                        &mut heap,
                        &mut push,
                    );
                }
            }
        }
    }

    if executed != k {
        return Err(SimError::Deadlock { stuck_tasks: k - executed });
    }
    Ok(ScheduleReport::from_times(start, finish, solution))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::Segment;
    use crate::eval::Evaluator;
    use mshc_platform::{HcSystem, MachineId, Matrix};
    use mshc_taskgraph::{TaskGraphBuilder, TaskId};

    fn seg(t: u32, m: u32) -> Segment {
        Segment { task: TaskId::new(t), machine: MachineId::new(m) }
    }

    fn figure1_instance() -> HcInstance {
        let mut b = TaskGraphBuilder::new(7);
        for (s, d) in [(0, 2), (0, 3), (1, 4), (2, 5), (3, 5), (4, 6)] {
            b.add_edge(s, d).unwrap();
        }
        let g = b.build().unwrap();
        let exec = Matrix::from_rows(&[
            vec![400.0, 700.0, 500.0, 300.0, 800.0, 600.0, 200.0],
            vec![600.0, 500.0, 400.0, 900.0, 435.0, 450.0, 350.0],
        ]);
        let transfer = Matrix::from_rows(&[vec![120.0, 80.0, 200.0, 60.0, 90.0, 150.0]]);
        let sys = HcSystem::with_anonymous_machines(2, exec, transfer).unwrap();
        HcInstance::new(g, sys).unwrap()
    }

    #[test]
    fn replay_matches_analytic_on_figure1() {
        let inst = figure1_instance();
        let s = Solution::new(
            inst.graph(),
            2,
            vec![seg(0, 0), seg(1, 1), seg(2, 1), seg(3, 0), seg(4, 0), seg(5, 1), seg(6, 1)],
        )
        .unwrap();
        let analytic = Evaluator::new(&inst).report(&s);
        let simulated = replay(&inst, &s).unwrap();
        assert_eq!(analytic.makespan, simulated.makespan);
        for t in inst.graph().tasks() {
            assert!(
                (analytic.finish_of(t) - simulated.finish_of(t)).abs() < 1e-9,
                "finish mismatch for {t}: {} vs {}",
                analytic.finish_of(t),
                simulated.finish_of(t)
            );
        }
    }

    #[test]
    fn replay_matches_analytic_on_random_solutions() {
        use rand::{Rng, SeedableRng};
        let inst = figure1_instance();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(77);
        let mut eval = Evaluator::new(&inst);
        for _ in 0..200 {
            let s = crate::init::random_solution(&inst, &mut rng);
            let _ = rng.gen_range(0..3); // decouple streams a little
            let a = eval.report(&s);
            let b = replay(&inst, &s).unwrap();
            assert!((a.makespan - b.makespan).abs() < 1e-9);
            for t in inst.graph().tasks() {
                assert!((a.finish_of(t) - b.finish_of(t)).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn deadlock_detected_on_inconsistent_string() {
        // Tasks: a -> b, c -> d. Put [b-order-first then a] on m0 via an
        // unchecked string whose per-machine order contradicts the DAG
        // cross-machine: m0 runs d then a; m1 runs b then c.
        // b waits for a (m0, behind d), d waits for c (m1, behind b):
        // circular wait.
        let mut bld = TaskGraphBuilder::new(4);
        bld.add_edge(0, 1).unwrap(); // a -> b
        bld.add_edge(2, 3).unwrap(); // c -> d
        let g = bld.build().unwrap();
        let sys = HcSystem::with_anonymous_machines(
            2,
            Matrix::filled(2, 4, 1.0),
            Matrix::filled(1, 2, 1.0),
        )
        .unwrap();
        let inst = HcInstance::new(g, sys).unwrap();
        let s = Solution::new_unchecked(2, vec![seg(3, 0), seg(0, 0), seg(1, 1), seg(2, 1)]);
        // m0 queue: d, a — d waits on c. m1 queue: b, c — b waits on a.
        let err = replay(&inst, &s).unwrap_err();
        assert_eq!(err, SimError::Deadlock { stuck_tasks: 4 });
        assert!(err.to_string().contains("deadlock"));
    }

    #[test]
    fn replay_handles_valid_but_nonextension_strings() {
        // Per-machine consistent but global order not a linear extension:
        // the simulator must still produce the schedule.
        let mut bld = TaskGraphBuilder::new(3);
        bld.add_edge(0, 1).unwrap();
        let g = bld.build().unwrap();
        let sys = HcSystem::with_anonymous_machines(
            2,
            Matrix::filled(2, 3, 2.0),
            Matrix::from_rows(&[vec![5.0]]),
        )
        .unwrap();
        let inst = HcInstance::new(g, sys).unwrap();
        // String order: s1 (m1), s0 (m0), s2 (m0) — s1 before its
        // predecessor s0 but on another machine.
        let s = Solution::new_unchecked(2, vec![seg(1, 1), seg(0, 0), seg(2, 0)]);
        let r = replay(&inst, &s).unwrap();
        // s0: [0,2] on m0; d0 arrives at m1 at 7; s1: [7,9]; s2 on m0 after
        // s0: [2,4]. Makespan 9.
        assert_eq!(r.finish_of(TaskId::new(0)), 2.0);
        assert_eq!(r.finish_of(TaskId::new(1)), 9.0);
        assert_eq!(r.finish_of(TaskId::new(2)), 4.0);
        assert_eq!(r.makespan, 9.0);
    }

    #[test]
    fn contention_model_never_faster() {
        use rand::SeedableRng;
        let inst = figure1_instance();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(44);
        for _ in 0..100 {
            let s = crate::init::random_solution(&inst, &mut rng);
            let free = replay_with(&inst, &s, NetworkModel::ContentionFree).unwrap();
            let link = replay_with(&inst, &s, NetworkModel::PerPairLink).unwrap();
            assert!(link.makespan >= free.makespan - 1e-9);
            for t in inst.graph().tasks() {
                assert!(link.finish_of(t) >= free.finish_of(t) - 1e-9, "{t}");
            }
        }
    }

    #[test]
    fn contention_serializes_simultaneous_transfers() {
        // Two producers on m0 finish back to back; both feed consumers on
        // m1. With one link per pair the second transfer waits for the
        // first.
        let mut bld = TaskGraphBuilder::new(4);
        bld.add_edge(0, 2).unwrap();
        bld.add_edge(1, 3).unwrap();
        let g = bld.build().unwrap();
        let exec = Matrix::filled(2, 4, 1.0);
        let transfer = Matrix::from_rows(&[vec![10.0, 10.0]]);
        let sys = HcSystem::with_anonymous_machines(2, exec, transfer).unwrap();
        let inst = HcInstance::new(g, sys).unwrap();
        let s = Solution::new(inst.graph(), 2, vec![seg(0, 0), seg(1, 0), seg(2, 1), seg(3, 1)])
            .unwrap();
        let free = replay_with(&inst, &s, NetworkModel::ContentionFree).unwrap();
        // free: s0 [0,1], s1 [1,2]; d0 arrives 11, d1 arrives 12;
        // s2 [11,12], s3 [12,13].
        assert_eq!(free.makespan, 13.0);
        let link = replay_with(&inst, &s, NetworkModel::PerPairLink).unwrap();
        // link: d0 occupies the pair link [1,11]; d1 departs at 11,
        // arrives 21; s2 [11,12], s3 [21,22].
        assert_eq!(link.finish_of(TaskId::new(2)), 12.0);
        assert_eq!(link.finish_of(TaskId::new(3)), 22.0);
        assert_eq!(link.makespan, 22.0);
    }

    #[test]
    fn colocated_transfers_ignore_links() {
        let mut bld = TaskGraphBuilder::new(2);
        bld.add_edge(0, 1).unwrap();
        let g = bld.build().unwrap();
        let sys = HcSystem::with_anonymous_machines(
            2,
            Matrix::filled(2, 2, 3.0),
            Matrix::from_rows(&[vec![50.0]]),
        )
        .unwrap();
        let inst = HcInstance::new(g, sys).unwrap();
        let s = Solution::new(inst.graph(), 2, vec![seg(0, 0), seg(1, 0)]).unwrap();
        let link = replay_with(&inst, &s, NetworkModel::PerPairLink).unwrap();
        assert_eq!(link.makespan, 6.0, "same-machine data never crosses a link");
    }

    #[test]
    fn event_ordering_is_earliest_first() {
        let a = Event { time: 1.0, seq: 5, kind: EventKind::DataArrival { edge: 0 } };
        let b = Event { time: 2.0, seq: 1, kind: EventKind::DataArrival { edge: 1 } };
        let mut h = BinaryHeap::new();
        h.push(b);
        h.push(a);
        assert_eq!(h.pop().unwrap().time, 1.0);
    }

    #[test]
    fn equal_times_pop_in_insertion_order() {
        let a = Event { time: 3.0, seq: 0, kind: EventKind::DataArrival { edge: 0 } };
        let b = Event { time: 3.0, seq: 1, kind: EventKind::DataArrival { edge: 1 } };
        let mut h = BinaryHeap::new();
        h.push(b);
        h.push(a);
        assert_eq!(h.pop().unwrap().seq, 0);
    }
}
