//! The combined matching + scheduling string (§4.1 of the paper).

use crate::error::ScheduleError;
use mshc_platform::MachineId;
use mshc_taskgraph::{TaskGraph, TaskId};
use serde::{Deserialize, Serialize};

/// One segment of the solution string: subtask `task` is assigned to
/// machine `machine`; its position in the string orders it relative to the
/// other tasks on the same machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Segment {
    /// The subtask.
    pub task: TaskId,
    /// The machine the subtask is matched to.
    pub machine: MachineId,
}

/// A complete candidate solution to MSHC.
///
/// Invariants, enforced by every constructor and mutator:
///
/// 1. the segment sequence contains every task exactly once;
/// 2. the task order is a linear extension of the DAG (every task after
///    all of its predecessors);
/// 3. every machine id is `< machine_count`.
///
/// Because of (2), the per-machine execution orders read off the string
/// are always precedence-consistent, and the makespan evaluator can run in
/// a single left-to-right pass.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Solution {
    segments: Vec<Segment>,
    /// `position[t] = index of t's segment` — kept in sync with `segments`.
    position: Vec<u32>,
    machine_count: u32,
}

impl Solution {
    /// Validates and wraps a segment string.
    pub fn new(
        graph: &TaskGraph,
        machine_count: usize,
        segments: Vec<Segment>,
    ) -> Result<Solution, ScheduleError> {
        let k = graph.task_count();
        if segments.len() != k {
            return Err(ScheduleError::LengthMismatch { got: segments.len(), expected: k });
        }
        let mut position = vec![u32::MAX; k];
        for (i, seg) in segments.iter().enumerate() {
            if seg.task.index() >= k || position[seg.task.index()] != u32::MAX {
                return Err(ScheduleError::NotAPermutation);
            }
            position[seg.task.index()] = i as u32;
            if seg.machine.index() >= machine_count {
                return Err(ScheduleError::MachineOutOfRange {
                    machine: seg.machine.raw(),
                    machine_count,
                });
            }
        }
        for e in graph.edges() {
            if position[e.src.index()] > position[e.dst.index()] {
                return Err(ScheduleError::PrecedenceViolation { earlier: e.src, later: e.dst });
            }
        }
        Ok(Solution { segments, position, machine_count: machine_count as u32 })
    }

    /// Builds a solution from a task order and a per-task machine
    /// assignment (`assignment[t.index()]`).
    pub fn from_order(
        graph: &TaskGraph,
        machine_count: usize,
        order: &[TaskId],
        assignment: &[MachineId],
    ) -> Result<Solution, ScheduleError> {
        if assignment.len() != graph.task_count() {
            return Err(ScheduleError::LengthMismatch {
                got: assignment.len(),
                expected: graph.task_count(),
            });
        }
        let segments =
            order.iter().map(|&t| Segment { task: t, machine: assignment[t.index()] }).collect();
        Solution::new(graph, machine_count, segments)
    }

    /// Wraps segments **without validating** the linear-extension
    /// invariant. Only for tests and failure-injection experiments (e.g.
    /// demonstrating that the discrete-event replay detects deadlocks on
    /// inconsistent strings). Everything else must use [`Solution::new`].
    #[doc(hidden)]
    pub fn new_unchecked(machine_count: usize, segments: Vec<Segment>) -> Solution {
        let k = segments.len();
        let mut position = vec![u32::MAX; k];
        for (i, seg) in segments.iter().enumerate() {
            position[seg.task.index()] = i as u32;
        }
        Solution { segments, position, machine_count: machine_count as u32 }
    }

    /// Number of segments (= tasks).
    #[inline]
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// Whether the string is empty (never true for a valid instance).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Number of machines this solution is dimensioned for.
    #[inline]
    pub fn machine_count(&self) -> usize {
        self.machine_count as usize
    }

    /// The segment string.
    #[inline]
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// The segment at `position`.
    #[inline]
    pub fn segment_at(&self, position: usize) -> Segment {
        self.segments[position]
    }

    /// Machine assigned to `t`.
    #[inline]
    pub fn machine_of(&self, t: TaskId) -> MachineId {
        self.segments[self.position_of(t)].machine
    }

    /// Position of `t`'s segment in the string.
    #[inline]
    pub fn position_of(&self, t: TaskId) -> usize {
        self.position[t.index()] as usize
    }

    /// Task order (ignores machines).
    pub fn order(&self) -> impl ExactSizeIterator<Item = TaskId> + Clone + '_ {
        self.segments.iter().map(|s| s.task)
    }

    /// Execution order on machine `m`, left-to-right.
    pub fn machine_order(&self, m: MachineId) -> Vec<TaskId> {
        self.segments.iter().filter(|s| s.machine == m).map(|s| s.task).collect()
    }

    /// Per-task machine assignment as a dense vector.
    pub fn assignment(&self) -> Vec<MachineId> {
        let mut a = vec![MachineId::new(0); self.len()];
        for seg in &self.segments {
            a[seg.task.index()] = seg.machine;
        }
        a
    }

    /// The inclusive range of string positions at which `t`'s segment may
    /// sit without violating precedence: from just after its latest-placed
    /// predecessor to just before its earliest-placed successor (§4.2's
    /// "valid range of positions").
    ///
    /// Positions refer to the string *after* removing `t` and re-inserting
    /// it, which coincides with current positions for every target inside
    /// the range. The current position is always inside the range.
    pub fn valid_range(&self, graph: &TaskGraph, t: TaskId) -> (usize, usize) {
        let mut lo = 0usize;
        for p in graph.predecessors(t) {
            lo = lo.max(self.position_of(p) + 1);
        }
        let mut hi = self.len() - 1;
        for s in graph.successors(t) {
            hi = hi.min(self.position_of(s).saturating_sub(1));
        }
        debug_assert!(lo <= hi, "linear extension guarantees a non-empty range");
        (lo, hi)
    }

    /// Moves `t` to string position `new_pos` (remove-then-insert
    /// semantics) and assigns it to `new_machine`.
    ///
    /// Fails if `new_pos` is outside the valid range or the machine is out
    /// of range; on failure the solution is unchanged.
    pub fn move_task(
        &mut self,
        graph: &TaskGraph,
        t: TaskId,
        new_pos: usize,
        new_machine: MachineId,
    ) -> Result<(), ScheduleError> {
        if new_machine.index() >= self.machine_count() {
            return Err(ScheduleError::MachineOutOfRange {
                machine: new_machine.raw(),
                machine_count: self.machine_count(),
            });
        }
        let range = self.valid_range(graph, t);
        if new_pos < range.0 || new_pos > range.1 {
            return Err(ScheduleError::OutOfValidRange { task: t, position: new_pos, range });
        }
        let old_pos = self.position_of(t);
        let seg = Segment { task: t, machine: new_machine };
        self.segments.remove(old_pos);
        self.segments.insert(new_pos, seg);
        // Refresh positions over the disturbed span only.
        let (lo, hi) = (old_pos.min(new_pos), old_pos.max(new_pos));
        for i in lo..=hi {
            self.position[self.segments[i].task.index()] = i as u32;
        }
        Ok(())
    }

    /// Changes only the machine of `t`, keeping the order.
    pub fn reassign(&mut self, t: TaskId, machine: MachineId) -> Result<(), ScheduleError> {
        if machine.index() >= self.machine_count() {
            return Err(ScheduleError::MachineOutOfRange {
                machine: machine.raw(),
                machine_count: self.machine_count(),
            });
        }
        let p = self.position_of(t);
        self.segments[p].machine = machine;
        Ok(())
    }

    /// Checks the full invariant set against `graph` (used by property
    /// tests; ordinary code can rely on the constructors).
    pub fn check(&self, graph: &TaskGraph) -> Result<(), ScheduleError> {
        Solution::new(graph, self.machine_count(), self.segments.clone()).map(|_| ())
    }

    /// Renders the string in the paper's Figure-2 style:
    /// `s0:m0 | s1:m1 | ...`.
    pub fn display_string(&self) -> String {
        let parts: Vec<String> =
            self.segments.iter().map(|s| format!("{}:{}", s.task, s.machine)).collect();
        parts.join(" | ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mshc_taskgraph::TaskGraphBuilder;

    fn figure1() -> TaskGraph {
        let mut b = TaskGraphBuilder::new(7);
        for (s, d) in [(0, 2), (0, 3), (1, 4), (2, 5), (3, 5), (4, 6)] {
            b.add_edge(s, d).unwrap();
        }
        b.build().unwrap()
    }

    fn seg(t: u32, m: u32) -> Segment {
        Segment { task: TaskId::new(t), machine: MachineId::new(m) }
    }

    /// The schedule the paper's Figure 2 denotes, in canonical (linear
    /// extension) form: m0 runs s0, s3, s4; m1 runs s1, s2, s5, s6.
    fn figure2_solution(g: &TaskGraph) -> Solution {
        Solution::new(
            g,
            2,
            vec![seg(0, 0), seg(1, 1), seg(2, 1), seg(3, 0), seg(4, 0), seg(5, 1), seg(6, 1)],
        )
        .unwrap()
    }

    #[test]
    fn figure2_machine_orders() {
        let g = figure1();
        let s = figure2_solution(&g);
        let m0: Vec<u32> = s.machine_order(MachineId::new(0)).iter().map(|t| t.raw()).collect();
        let m1: Vec<u32> = s.machine_order(MachineId::new(1)).iter().map(|t| t.raw()).collect();
        assert_eq!(m0, vec![0, 3, 4]);
        assert_eq!(m1, vec![1, 2, 5, 6]);
    }

    #[test]
    fn accessors() {
        let g = figure1();
        let s = figure2_solution(&g);
        assert_eq!(s.len(), 7);
        assert!(!s.is_empty());
        assert_eq!(s.machine_count(), 2);
        assert_eq!(s.machine_of(TaskId::new(3)), MachineId::new(0));
        assert_eq!(s.position_of(TaskId::new(5)), 5);
        assert_eq!(s.segment_at(1), seg(1, 1));
        let asg = s.assignment();
        assert_eq!(asg[0], MachineId::new(0));
        assert_eq!(asg[2], MachineId::new(1));
        let order: Vec<u32> = s.order().map(|t| t.raw()).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn display_string_format() {
        let g = figure1();
        let s = figure2_solution(&g);
        assert!(s.display_string().starts_with("s0:m0 | s1:m1"));
    }

    #[test]
    fn rejects_non_permutation() {
        let g = figure1();
        let mut segs: Vec<Segment> = (0..7).map(|i| seg(i, 0)).collect();
        segs[6] = seg(0, 0); // duplicate s0
        assert_eq!(Solution::new(&g, 2, segs).unwrap_err(), ScheduleError::NotAPermutation);
    }

    #[test]
    fn rejects_length_mismatch() {
        let g = figure1();
        let segs: Vec<Segment> = (0..5).map(|i| seg(i, 0)).collect();
        assert!(matches!(
            Solution::new(&g, 2, segs).unwrap_err(),
            ScheduleError::LengthMismatch { got: 5, expected: 7 }
        ));
    }

    #[test]
    fn rejects_precedence_violation() {
        let g = figure1();
        // s5 before its predecessor s2
        let segs =
            vec![seg(0, 0), seg(1, 0), seg(5, 0), seg(2, 0), seg(3, 0), seg(4, 0), seg(6, 0)];
        assert!(matches!(
            Solution::new(&g, 2, segs).unwrap_err(),
            ScheduleError::PrecedenceViolation { .. }
        ));
    }

    #[test]
    fn rejects_machine_out_of_range() {
        let g = figure1();
        let segs: Vec<Segment> = (0..7).map(|i| seg(i, if i == 3 { 5 } else { 0 })).collect();
        assert!(matches!(
            Solution::new(&g, 2, segs).unwrap_err(),
            ScheduleError::MachineOutOfRange { machine: 5, machine_count: 2 }
        ));
    }

    #[test]
    fn from_order_builds_same_solution() {
        let g = figure1();
        let order: Vec<TaskId> = (0..7).map(TaskId::new).collect();
        let assignment: Vec<MachineId> =
            [0, 1, 1, 0, 0, 1, 1].iter().map(|&m| MachineId::new(m)).collect();
        let s = Solution::from_order(&g, 2, &order, &assignment).unwrap();
        assert_eq!(s, figure2_solution(&g));
    }

    #[test]
    fn valid_range_figure1() {
        let g = figure1();
        let s = figure2_solution(&g);
        // s4 (pos 4): pred s1 at 1, succ s6 at 6 => [2, 5]
        assert_eq!(s.valid_range(&g, TaskId::new(4)), (2, 5));
        // s0 (pos 0): no preds, succs s2@2, s3@3 => [0, 1]
        assert_eq!(s.valid_range(&g, TaskId::new(0)), (0, 1));
        // s6 (pos 6): pred s4@4, no succs => [5, 6]
        assert_eq!(s.valid_range(&g, TaskId::new(6)), (5, 6));
    }

    #[test]
    fn valid_range_contains_current_position() {
        let g = figure1();
        let s = figure2_solution(&g);
        for t in g.tasks() {
            let (lo, hi) = s.valid_range(&g, t);
            let p = s.position_of(t);
            assert!(lo <= p && p <= hi, "{t}: pos {p} outside [{lo},{hi}]");
        }
    }

    #[test]
    fn move_task_within_range() {
        let g = figure1();
        let mut s = figure2_solution(&g);
        // Move s4 from position 4 to position 2 on machine m1.
        s.move_task(&g, TaskId::new(4), 2, MachineId::new(1)).unwrap();
        assert_eq!(s.position_of(TaskId::new(4)), 2);
        assert_eq!(s.machine_of(TaskId::new(4)), MachineId::new(1));
        s.check(&g).unwrap();
        // Order now: s0 s1 s4 s2 s3 s5 s6
        let order: Vec<u32> = s.order().map(|t| t.raw()).collect();
        assert_eq!(order, vec![0, 1, 4, 2, 3, 5, 6]);
        // positions stay consistent for every task
        for t in g.tasks() {
            assert_eq!(s.segment_at(s.position_of(t)).task, t);
        }
    }

    #[test]
    fn move_task_to_same_position_changes_machine_only() {
        let g = figure1();
        let mut s = figure2_solution(&g);
        s.move_task(&g, TaskId::new(2), 2, MachineId::new(0)).unwrap();
        let order: Vec<u32> = s.order().map(|t| t.raw()).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4, 5, 6]);
        assert_eq!(s.machine_of(TaskId::new(2)), MachineId::new(0));
    }

    #[test]
    fn move_task_rejects_out_of_range_position() {
        let g = figure1();
        let mut s = figure2_solution(&g);
        let before = s.clone();
        let err = s.move_task(&g, TaskId::new(4), 6, MachineId::new(0)).unwrap_err();
        assert!(matches!(err, ScheduleError::OutOfValidRange { .. }));
        assert_eq!(s, before, "failed move must leave solution unchanged");
    }

    #[test]
    fn move_task_rejects_bad_machine() {
        let g = figure1();
        let mut s = figure2_solution(&g);
        let err = s.move_task(&g, TaskId::new(4), 3, MachineId::new(7)).unwrap_err();
        assert!(matches!(err, ScheduleError::MachineOutOfRange { .. }));
    }

    #[test]
    fn reassign_changes_machine() {
        let g = figure1();
        let mut s = figure2_solution(&g);
        s.reassign(TaskId::new(5), MachineId::new(0)).unwrap();
        assert_eq!(s.machine_of(TaskId::new(5)), MachineId::new(0));
        assert!(s.reassign(TaskId::new(5), MachineId::new(9)).is_err());
    }

    #[test]
    fn moves_preserve_validity_under_stress() {
        use rand::{Rng, SeedableRng};
        let g = figure1();
        let mut s = figure2_solution(&g);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(12);
        for _ in 0..500 {
            let t = TaskId::new(rng.gen_range(0..7));
            let (lo, hi) = s.valid_range(&g, t);
            let pos = rng.gen_range(lo..=hi);
            let m = MachineId::new(rng.gen_range(0..2));
            s.move_task(&g, t, pos, m).unwrap();
        }
        s.check(&g).unwrap();
    }
}
