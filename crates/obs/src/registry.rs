//! The process-wide metrics registry: metric identities and the sharded
//! atomic storage behind [`add`], [`gauge_max`] and [`observe`].
//!
//! Recording is **wait-free and allocation-free**: a counter bump is one
//! relaxed atomic add on a thread-sharded cache line, a gauge update is
//! one relaxed `fetch_max`, a histogram observation is one relaxed add
//! on a log₂ bucket. When the registry is disabled (the default) every
//! entry point is a single relaxed load and a predictable branch; with
//! the `noop` cargo feature the calls compile away entirely.
//!
//! None of this can perturb results: recording performs no allocation,
//! takes no lock, draws no randomness, and never feeds a value back
//! into any caller's control flow — see the crate docs for the full
//! determinism argument.

use crate::snapshot::{DeterministicPlane, Histogram, Snapshot, TimingPlane, BUCKETS};
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering::Relaxed};

/// Which artifact class a metric may flow into.
///
/// The split is the registry's load-bearing design decision, inherited
/// from the house invariant (bit-identical results at any thread
/// count):
///
/// * [`Plane::Deterministic`] metrics are reproducible run-to-run at a
///   fixed thread count (evaluation counts are even thread-count
///   *invariant*). They may appear in artifacts that CI byte-compares.
/// * [`Plane::Timing`] metrics depend on wall clocks or OS scheduling
///   (steal totals, queue depths, span durations) and are **always
///   excluded** from deterministic artifacts — they live only in
///   `--metrics` exports and JSONL event streams, which are never
///   byte-compared.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Plane {
    /// Bit-stable at a fixed thread count; safe for compared artifacts.
    Deterministic,
    /// Wall-clock / scheduling dependent; never byte-compared.
    Timing,
}

/// Monotonic counters of the deterministic plane.
///
/// Every variant counts *algorithmic events* — candidates scored, prunes
/// taken, cells finished — whose totals are reproducible at a fixed
/// thread count. The scan axes mirror
/// [`ScanStats`](../../mshc_schedule/struct.ScanStats.html): the same
/// evaluator bump sites drive both the per-run struct and this registry,
/// so the two views cannot drift.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// Tier-1 full evaluation passes ([`Evaluator`] objective scorings).
    ///
    /// [`Evaluator`]: ../../mshc_schedule/struct.Evaluator.html
    Evaluations,
    /// Tier-3 move/suffix scorings (pruned candidates included — the
    /// evaluation-count contract).
    ScanScored,
    /// Scorings abandoned by the bound cut.
    ScanPruned,
    /// Scorings completed early by a reconvergence splice.
    ScanSpliced,
    /// Population children scored through the parent-primed path.
    ScanSuffixed,
    /// String positions served from primed prefixes instead of replay.
    ScanPrefixReused,
    /// Total string positions across population children scored.
    ScanSuffixTotal,
    /// Scheduler iterations (SE) / generations (GA) executed.
    Iterations,
    /// Runs that terminated early at a certified floor.
    EarlyStops,
    /// Tournament cells that completed.
    CellsCompleted,
    /// Tournament cells that panicked.
    CellsPanicked,
    /// Cell retry attempts after a panic (one per retry, not per cell).
    CellsRetried,
    /// Cells that completed only after at least one retry.
    CellsDegraded,
    /// Runs interrupted by a fired [`CancelToken`]; latched once per
    /// run, like `EarlyStops`.
    ///
    /// [`CancelToken`]: ../../mshc_schedule/struct.CancelToken.html
    Cancellations,
    /// Replanning passes executed after a disturbance.
    Replans,
}

/// Number of [`Counter`] variants (storage array length).
const COUNTERS: usize = Counter::Replans as usize + 1;

impl Counter {
    /// Every counter, in storage order.
    pub const ALL: [Counter; COUNTERS] = [
        Counter::Evaluations,
        Counter::ScanScored,
        Counter::ScanPruned,
        Counter::ScanSpliced,
        Counter::ScanSuffixed,
        Counter::ScanPrefixReused,
        Counter::ScanSuffixTotal,
        Counter::Iterations,
        Counter::EarlyStops,
        Counter::CellsCompleted,
        Counter::CellsPanicked,
        Counter::CellsRetried,
        Counter::CellsDegraded,
        Counter::Cancellations,
        Counter::Replans,
    ];

    /// Stable wire name (the snapshot JSON field).
    pub fn name(self) -> &'static str {
        match self {
            Counter::Evaluations => "evaluations",
            Counter::ScanScored => "scan_scored",
            Counter::ScanPruned => "scan_pruned",
            Counter::ScanSpliced => "scan_spliced",
            Counter::ScanSuffixed => "scan_suffixed",
            Counter::ScanPrefixReused => "scan_prefix_reused",
            Counter::ScanSuffixTotal => "scan_suffix_total",
            Counter::Iterations => "iterations",
            Counter::EarlyStops => "early_stops",
            Counter::CellsCompleted => "cells_completed",
            Counter::CellsPanicked => "cells_panicked",
            Counter::CellsRetried => "cells_retried",
            Counter::CellsDegraded => "cells_degraded",
            Counter::Cancellations => "cancellations",
            Counter::Replans => "replans",
        }
    }

    /// Counters are deterministic-plane by construction.
    pub fn plane(self) -> Plane {
        Plane::Deterministic
    }
}

/// Maximum-tracking gauges (relaxed `fetch_max` semantics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Gauge {
    /// Deepest pool ticket queue observed (bridged from the pool shim).
    QueueDepthHwm,
    /// Resident workers spawned (high-water; the crew never shrinks).
    SpawnedWorkers,
}

/// Number of [`Gauge`] variants (storage array length).
const GAUGES: usize = Gauge::SpawnedWorkers as usize + 1;

impl Gauge {
    /// Gauges track scheduling/pool state: timing plane.
    pub fn plane(self) -> Plane {
        Plane::Timing
    }
}

/// Log₂-bucketed duration histograms (microsecond samples).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Hist {
    /// Whole parallel move/population scan latency.
    ScanLatencyUs,
    /// Tournament cell wall time.
    CellUs,
    /// Generic named-span duration ([`crate::span`]).
    SpanUs,
    /// Replanning latency per disturbance (freeze + residual search).
    ReplanUs,
}

/// Number of [`Hist`] variants (storage array length).
const HISTS: usize = Hist::ReplanUs as usize + 1;

impl Hist {
    /// Histograms sample wall clocks: timing plane.
    pub fn plane(self) -> Plane {
        Plane::Timing
    }
}

/// Counter shards. More shards than typical worker counts would buy
/// nothing: the shard index is assigned round-robin per thread, so with
/// 8 shards the first 8 recording threads never contend at all.
const SHARDS: usize = 8;

/// One cache-line-aligned shard of every counter, so two threads
/// bumping different shards never share a line.
#[repr(align(64))]
struct Shard {
    counters: [AtomicU64; COUNTERS],
}

static SHARD_STORE: [Shard; SHARDS] =
    [const { Shard { counters: [const { AtomicU64::new(0) }; COUNTERS] } }; SHARDS];
static GAUGE_STORE: [AtomicU64; GAUGES] = [const { AtomicU64::new(0) }; GAUGES];
static HIST_STORE: [[AtomicU64; BUCKETS]; HISTS] =
    [const { [const { AtomicU64::new(0) }; BUCKETS] }; HISTS];

/// Whether recording is active (off by default; [`enable`]).
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Round-robin shard assignment for recording threads.
static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// This thread's counter shard, assigned on first use.
    static MY_SHARD: Cell<usize> = const { Cell::new(usize::MAX) };
}

#[inline]
fn shard_index() -> usize {
    MY_SHARD.with(|s| {
        let v = s.get();
        if v != usize::MAX {
            v
        } else {
            let v = NEXT_SHARD.fetch_add(1, Relaxed) % SHARDS;
            s.set(v);
            v
        }
    })
}

/// Turns recording on or off process-wide. Off (the default), every
/// recording entry point is a relaxed load and a branch; existing
/// counts are kept (pair with [`reset`] to start a clean window).
/// Under the `noop` feature this is itself a no-op and the registry
/// stays permanently disabled.
pub fn enable(on: bool) {
    if cfg!(feature = "noop") {
        return;
    }
    ENABLED.store(on, Relaxed);
}

/// Whether recording is currently active.
#[inline]
pub fn enabled() -> bool {
    !cfg!(feature = "noop") && ENABLED.load(Relaxed)
}

/// Adds `n` to a counter. Wait-free, allocation-free; a no-op while the
/// registry is disabled.
#[inline]
pub fn add(counter: Counter, n: u64) {
    if !enabled() {
        return;
    }
    SHARD_STORE[shard_index()].counters[counter as usize].fetch_add(n, Relaxed);
}

/// Folds `value` into a maximum-tracking gauge. A no-op while disabled.
#[inline]
pub fn gauge_max(gauge: Gauge, value: u64) {
    if !enabled() {
        return;
    }
    GAUGE_STORE[gauge as usize].fetch_max(value, Relaxed);
}

/// Records one sample (in the histogram's native unit, microseconds for
/// the built-in duration histograms) into a log₂ bucket. A no-op while
/// disabled.
#[inline]
pub fn observe(hist: Hist, value: u64) {
    if !enabled() {
        return;
    }
    HIST_STORE[hist as usize][Histogram::bucket_index(value)].fetch_add(1, Relaxed);
}

/// Reads one counter's current total across all shards. Mainly for
/// tests and in-process probes; exports use [`snapshot`].
pub fn counter_value(counter: Counter) -> u64 {
    SHARD_STORE.iter().map(|s| s.counters[counter as usize].load(Relaxed)).sum()
}

/// Assembles a consistent-enough view of every metric: counter totals
/// summed across shards, gauges and histograms as stored, and the pool
/// shim's telemetry bridged into the timing plane. ("Consistent
/// enough": concurrent recorders may land between two shard reads —
/// snapshots taken while the process is quiescent, as the CLI and bench
/// probes do, are exact.)
///
/// Snapshots reflect stored counts whether or not the registry is
/// enabled, so a disabled registry snapshots as zeros plus the always-on
/// pool telemetry.
pub fn snapshot() -> Snapshot {
    let mut det = DeterministicPlane::default();
    for c in Counter::ALL {
        *det.field_mut(c) = counter_value(c);
    }
    let pool = rayon::pool_stats();
    // The pool bridge routes through the gauge machinery (fetch_max,
    // like any other gauge) so `reset` semantics are uniform; bridging
    // bypasses the enabled check because it happens at snapshot time,
    // never on a hot path.
    GAUGE_STORE[Gauge::QueueDepthHwm as usize].fetch_max(pool.queue_depth_hwm, Relaxed);
    GAUGE_STORE[Gauge::SpawnedWorkers as usize].fetch_max(rayon::spawned_workers() as u64, Relaxed);
    let hist = |h: Hist| Histogram {
        buckets: HIST_STORE[h as usize].iter().map(|b| b.load(Relaxed)).collect(),
    };
    let timing = TimingPlane {
        steal_count: pool.steals,
        ops_submitted: pool.ops_submitted,
        chunk_claims: pool.chunk_claims,
        wake_epochs: pool.wake_epochs,
        queue_depth_hwm: GAUGE_STORE[Gauge::QueueDepthHwm as usize].load(Relaxed),
        spawned_workers: GAUGE_STORE[Gauge::SpawnedWorkers as usize].load(Relaxed),
        per_worker_chunks: pool.per_worker_chunks,
        foreign_chunks: pool.foreign_chunks,
        scan_latency_us: hist(Hist::ScanLatencyUs),
        cell_us: hist(Hist::CellUs),
        span_us: hist(Hist::SpanUs),
        replan_us: hist(Hist::ReplanUs),
    };
    Snapshot::assemble(det, timing)
}

/// Zeroes every counter, gauge and histogram, and the pool shim's
/// telemetry. Callers isolate measurement windows with
/// `reset(); ...; snapshot()`.
pub fn reset() {
    for shard in &SHARD_STORE {
        for c in &shard.counters {
            c.store(0, Relaxed);
        }
    }
    for g in &GAUGE_STORE {
        g.store(0, Relaxed);
    }
    for h in &HIST_STORE {
        for b in h {
            b.store(0, Relaxed);
        }
    }
    rayon::reset_pool_stats();
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The global registry is process state shared by every test in the
    /// binary, so each test works on deltas it produced itself via
    /// distinct counters, or serializes through this lock.
    pub(crate) static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn guard() -> std::sync::MutexGuard<'static, ()> {
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let _g = guard();
        reset();
        enable(false);
        add(Counter::Evaluations, 5);
        gauge_max(Gauge::QueueDepthHwm, 9);
        observe(Hist::SpanUs, 100);
        assert_eq!(counter_value(Counter::Evaluations), 0);
        let snap = snapshot();
        assert_eq!(snap.deterministic.evaluations, 0);
        assert_eq!(snap.timing.span_us.count(), 0);
    }

    #[test]
    #[cfg_attr(feature = "noop", ignore = "recording is compiled out under the noop feature")]
    fn enabled_registry_sums_across_threads_and_shards() {
        if cfg!(feature = "noop") {
            return;
        }
        let _g = guard();
        reset();
        enable(true);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        add(Counter::ScanScored, 1);
                    }
                });
            }
        });
        add(Counter::ScanScored, 10);
        assert_eq!(counter_value(Counter::ScanScored), 4010);
        enable(false);
    }

    #[test]
    #[cfg_attr(feature = "noop", ignore = "recording is compiled out under the noop feature")]
    fn gauges_keep_the_maximum() {
        if cfg!(feature = "noop") {
            return;
        }
        let _g = guard();
        reset();
        enable(true);
        gauge_max(Gauge::SpawnedWorkers, 3);
        gauge_max(Gauge::SpawnedWorkers, 7);
        gauge_max(Gauge::SpawnedWorkers, 5);
        let snap = snapshot();
        assert!(snap.timing.spawned_workers >= 7);
        enable(false);
    }

    #[test]
    fn reset_zeroes_every_store() {
        let _g = guard();
        enable(true);
        add(Counter::Iterations, 3);
        observe(Hist::CellUs, 17);
        reset();
        assert_eq!(counter_value(Counter::Iterations), 0);
        let snap = snapshot();
        assert_eq!(snap.timing.cell_us.count(), 0);
        assert_eq!(snap.deterministic.iterations, 0);
        enable(false);
    }

    #[test]
    fn counter_names_are_unique_and_stable() {
        let mut names: Vec<&str> = Counter::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Counter::ALL.len());
        assert_eq!(Counter::Evaluations.plane(), Plane::Deterministic);
        assert_eq!(Gauge::QueueDepthHwm.plane(), Plane::Timing);
        assert_eq!(Hist::ScanLatencyUs.plane(), Plane::Timing);
    }
}
