//! The complete MSHC problem instance: a task graph plus the HC system it
//! runs on.

use crate::error::PlatformError;
use crate::system::HcSystem;
use mshc_taskgraph::TaskGraph;
use serde::{Deserialize, Serialize};

/// A matched pair of application DAG and HC system — everything a
/// scheduler needs. Construction checks that the system's matrix
/// dimensions agree with the graph's task/data counts, so downstream code
/// can index freely.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HcInstance {
    graph: TaskGraph,
    system: HcSystem,
}

impl HcInstance {
    /// Bundles `graph` and `system`, validating that `E` has one column per
    /// task and `Tr` one column per data item.
    pub fn new(graph: TaskGraph, system: HcSystem) -> Result<HcInstance, PlatformError> {
        if system.task_count() != graph.task_count() {
            return Err(PlatformError::ExecShape {
                expected: (system.machine_count(), graph.task_count()),
                actual: (system.machine_count(), system.task_count()),
            });
        }
        if system.data_count() != graph.data_count() {
            return Err(PlatformError::TransferShape {
                expected: (system.transfer_matrix().rows(), graph.data_count()),
                actual: system.transfer_matrix().shape(),
            });
        }
        Ok(HcInstance { graph, system })
    }

    /// The application DAG.
    #[inline]
    pub fn graph(&self) -> &TaskGraph {
        &self.graph
    }

    /// The HC system.
    #[inline]
    pub fn system(&self) -> &HcSystem {
        &self.system
    }

    /// Number of subtasks `k`.
    #[inline]
    pub fn task_count(&self) -> usize {
        self.graph.task_count()
    }

    /// Number of machines `l`.
    #[inline]
    pub fn machine_count(&self) -> usize {
        self.system.machine_count()
    }

    /// Number of data items `p`.
    #[inline]
    pub fn data_count(&self) -> usize {
        self.graph.data_count()
    }

    /// Splits the instance back into its parts.
    pub fn into_parts(self) -> (TaskGraph, HcSystem) {
        (self.graph, self.system)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;
    use mshc_taskgraph::TaskGraphBuilder;

    fn graph3() -> TaskGraph {
        let mut b = TaskGraphBuilder::new(3);
        b.add_edge(0, 1).unwrap();
        b.add_edge(1, 2).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn valid_instance() {
        let g = graph3();
        let sys = HcSystem::with_anonymous_machines(
            2,
            Matrix::filled(2, 3, 1.0),
            Matrix::filled(1, 2, 0.5),
        )
        .unwrap();
        let inst = HcInstance::new(g, sys).unwrap();
        assert_eq!(inst.task_count(), 3);
        assert_eq!(inst.machine_count(), 2);
        assert_eq!(inst.data_count(), 2);
        let (g, s) = inst.into_parts();
        assert_eq!(g.task_count(), 3);
        assert_eq!(s.machine_count(), 2);
    }

    #[test]
    fn rejects_task_mismatch() {
        let g = graph3();
        let sys = HcSystem::with_anonymous_machines(
            2,
            Matrix::filled(2, 4, 1.0), // 4 task columns, graph has 3
            Matrix::filled(1, 2, 0.5),
        )
        .unwrap();
        assert!(matches!(HcInstance::new(g, sys), Err(PlatformError::ExecShape { .. })));
    }

    #[test]
    fn rejects_data_mismatch() {
        let g = graph3();
        let sys = HcSystem::with_anonymous_machines(
            2,
            Matrix::filled(2, 3, 1.0),
            Matrix::filled(1, 5, 0.5), // 5 data columns, graph has 2
        )
        .unwrap();
        assert!(matches!(HcInstance::new(g, sys), Err(PlatformError::TransferShape { .. })));
    }
}
