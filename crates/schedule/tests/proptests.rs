//! Property tests for the solution substrate: encoding invariants,
//! evaluator semantics and the DES cross-check, on random instances
//! built without the workload crate (kept dependency-light).

use mshc_platform::{HcInstance, HcSystem, MachineId, Matrix};
use mshc_schedule::{
    objective_from_report, random_solution, replay, replay_with, BatchEvaluator, EvalSnapshot,
    Evaluator, Gantt, IncrementalEvaluator, MoveScore, NetworkModel, Objective, ObjectiveKind,
    Solution,
};
use mshc_taskgraph::gen::{erdos_dag, layered, LayeredConfig};
use mshc_taskgraph::TaskId;
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A random mixed-task move sample inside `base`'s valid ranges — the
/// shape the bounded scans serve.
fn sample_moves(
    inst: &HcInstance,
    base: &Solution,
    n: usize,
    rng: &mut ChaCha8Rng,
) -> Vec<(TaskId, usize, MachineId)> {
    (0..n)
        .map(|_| {
            let t = TaskId::new(rng.gen_range(0..inst.task_count() as u32));
            let (lo, hi) = base.valid_range(inst.graph(), t);
            (
                t,
                rng.gen_range(lo..=hi),
                MachineId::new(rng.gen_range(0..inst.machine_count() as u32)),
            )
        })
        .collect()
}

/// Tabu's sequential selection rule over exact scores: skip
/// non-admissible moves unless they beat `aspiration`, keep the first
/// strict minimum among the rest.
fn reference_choice(
    scores: &[f64],
    admissible: Option<&[bool]>,
    aspiration: f64,
) -> Option<(usize, f64)> {
    let mut chosen: Option<(usize, f64)> = None;
    for (i, &cost) in scores.iter().enumerate() {
        let adm = admissible.is_none_or(|a| a[i]);
        if (!adm && cost >= aspiration) || chosen.is_some_and(|(_, c)| c <= cost) {
            continue;
        }
        chosen = Some((i, cost));
    }
    chosen
}

fn instance_strategy() -> impl Strategy<Value = HcInstance> {
    (1usize..25, 1usize..6, 0.0f64..0.9, any::<u64>(), prop::bool::ANY).prop_map(
        |(k, l, p, seed, use_layered)| {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let graph = if use_layered {
                layered(
                    &LayeredConfig {
                        tasks: k,
                        mean_width: (k / 3).max(1),
                        edge_prob: p,
                        skip_prob: 0.0,
                    },
                    &mut rng,
                )
                .unwrap()
            } else {
                erdos_dag(k, p, &mut rng).unwrap()
            };
            let exec = Matrix::from_fn(l, k, |_, _| rng.gen_range(1.0..50.0));
            let pairs = l * (l - 1) / 2;
            let transfer =
                Matrix::from_fn(pairs, graph.data_count(), |_, _| rng.gen_range(0.0..20.0));
            let sys = HcSystem::with_anonymous_machines(l, exec, transfer).unwrap();
            HcInstance::new(graph, sys).unwrap()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The two independent time computations agree everywhere.
    #[test]
    fn analytic_and_des_agree(inst in instance_strategy(), seed in any::<u64>()) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let sol = random_solution(&inst, &mut rng);
        let a = Evaluator::new(&inst).report(&sol);
        let b = replay(&inst, &sol).unwrap();
        prop_assert!((a.makespan - b.makespan).abs() < 1e-9);
        for t in inst.graph().tasks() {
            prop_assert!((a.finish_of(t) - b.finish_of(t)).abs() < 1e-9);
            prop_assert!((a.start_of(t) - b.start_of(t)).abs() < 1e-9);
        }
    }

    /// Start/finish times satisfy the model's constraints directly:
    /// machine exclusivity, data arrivals, exec durations.
    #[test]
    fn report_satisfies_model_constraints(inst in instance_strategy(), seed in any::<u64>()) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let sol = random_solution(&inst, &mut rng);
        let r = Evaluator::new(&inst).report(&sol);
        let sys = inst.system();
        // exec durations
        for t in inst.graph().tasks() {
            let m = sol.machine_of(t);
            prop_assert!((r.finish_of(t) - r.start_of(t) - sys.exec_time(m, t)).abs() < 1e-9);
            prop_assert!(r.start_of(t) >= -1e-12);
        }
        // data arrivals
        for e in inst.graph().edges() {
            let arrival = r.finish_of(e.src)
                + sys.transfer_time(e.id, sol.machine_of(e.src), sol.machine_of(e.dst));
            prop_assert!(r.start_of(e.dst) >= arrival - 1e-9, "{:?}", e);
        }
        // machine exclusivity: per-machine slots disjoint (via Gantt)
        let g = Gantt::build(&sol, &r);
        prop_assert!(g.lanes_disjoint());
        prop_assert!(g.utilization() > 0.0 && g.utilization() <= 1.0 + 1e-12);
        prop_assert_eq!(g.makespan(), r.makespan);
    }

    /// Valid ranges bracket exactly the insertions the checker accepts.
    #[test]
    fn valid_range_is_tight(inst in instance_strategy(), seed in any::<u64>()) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let sol = random_solution(&inst, &mut rng);
        let g = inst.graph();
        let t = TaskId::new(rng.gen_range(0..inst.task_count() as u32));
        let (lo, hi) = sol.valid_range(g, t);
        for pos in 0..sol.len() {
            let mut probe = sol.clone();
            let ok = probe.move_task(g, t, pos, probe.machine_of(t)).is_ok();
            prop_assert_eq!(ok, (lo..=hi).contains(&pos));
            if ok {
                prop_assert!(probe.check(g).is_ok());
            } else {
                prop_assert_eq!(&probe, &sol, "failed move must not mutate");
            }
        }
    }

    /// Per-machine orders derived from the string are subsequences of the
    /// string order and partition the task set.
    #[test]
    fn machine_orders_partition_tasks(inst in instance_strategy(), seed in any::<u64>()) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let sol = random_solution(&inst, &mut rng);
        let mut seen = vec![false; inst.task_count()];
        for m in inst.system().machine_ids() {
            let lane = sol.machine_order(m);
            for w in lane.windows(2) {
                prop_assert!(sol.position_of(w[0]) < sol.position_of(w[1]));
            }
            for t in lane {
                prop_assert!(!seen[t.index()], "task on two machines");
                seen[t.index()] = true;
                prop_assert_eq!(sol.machine_of(t), m);
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    /// Every objective computed analytically (one evaluator pass) agrees
    /// with the same objective read off the discrete-event simulator's
    /// replay report — the `sim.rs` oracle covers the whole objective
    /// family, not just makespan.
    #[test]
    fn objectives_agree_with_des_replay(inst in instance_strategy(), seed in any::<u64>()) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let sol = random_solution(&inst, &mut rng);
        let mut eval = Evaluator::new(&inst);
        let sim = replay(&inst, &sol).unwrap();
        let weighted = ObjectiveKind::Weighted { makespan: 1.0, flowtime: 0.4, balance: 0.6 };
        for kind in ObjectiveKind::BASIC.into_iter().chain([weighted]) {
            let analytic = eval.objective_value(&sol, &kind);
            let oracle = objective_from_report(&kind, &sim);
            prop_assert!(
                (analytic - oracle).abs() < 1e-9 * analytic.abs().max(1.0),
                "{}: analytic {analytic} vs replay {oracle}",
                kind.name()
            );
        }
        // The report carries the same values.
        let report = eval.report(&sol);
        let o = report.objectives();
        prop_assert!((o.makespan - sim.makespan).abs() < 1e-9);
        prop_assert!((o.total_flowtime - sim.total_flowtime).abs() < 1e-9);
    }

    /// Batch evaluation is pointwise identical to the scalar evaluator
    /// on random candidate sets, for every objective.
    #[test]
    fn batch_matches_scalar_on_random_candidates(inst in instance_strategy(), seed in any::<u64>()) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let candidates: Vec<_> = (0..8).map(|_| random_solution(&inst, &mut rng)).collect();
        let snap = EvalSnapshot::new(&inst);
        let mut batch = BatchEvaluator::new(&snap);
        let mut scalar = Evaluator::new(&inst);
        for kind in ObjectiveKind::BASIC {
            let got = batch.scores(&candidates, &kind);
            for (sol, &score) in candidates.iter().zip(&got) {
                prop_assert_eq!(scalar.objective_value(sol, &kind), score, "{}", kind.name());
            }
        }
    }

    /// The incremental move evaluator is bit-identical to a full
    /// re-evaluation of the materialized move, for **every** objective
    /// kind, on random workloads, random moves and checkpoint strides
    /// from 1 to beyond the task count (stride must never change a bit;
    /// it is a pure memory/speed trade-off).
    #[test]
    fn incremental_score_move_equals_full_reevaluation(
        inst in instance_strategy(),
        seed in any::<u64>(),
        stride_sel in 0usize..5,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let g = inst.graph();
        let k = inst.task_count();
        let base = random_solution(&inst, &mut rng);
        let stride = match stride_sel {
            0 => Some(1),
            1 => Some(2),
            2 => Some((k / 2).max(1)),
            3 => Some(k + 7), // beyond k: degenerates to replay-from-zero
            _ => None,        // auto ⌈√k⌉
        };
        let snap = EvalSnapshot::new(&inst);
        let mut inc = IncrementalEvaluator::with_snapshot(&snap);
        inc.set_stride(stride);
        inc.prime(&base);
        let mut scalar = Evaluator::new(&inst);
        let weighted = ObjectiveKind::Weighted { makespan: 1.0, flowtime: 0.4, balance: 0.6 };
        // The primed base itself scores identically.
        for kind in ObjectiveKind::BASIC.into_iter().chain([weighted]) {
            prop_assert_eq!(inc.base_score(&kind), scalar.objective_value(&base, &kind));
        }
        for _ in 0..12 {
            let t = TaskId::new(rng.gen_range(0..k as u32));
            let (lo, hi) = base.valid_range(g, t);
            let pos = rng.gen_range(lo..=hi);
            let m = MachineId::new(rng.gen_range(0..inst.machine_count() as u32));
            let mut cand = base.clone();
            cand.move_task(g, t, pos, m).unwrap();
            for kind in ObjectiveKind::BASIC.into_iter().chain([weighted]) {
                let fast = inc.score_move(t, pos, m, &kind);
                let slow = scalar.objective_value(&cand, &kind);
                prop_assert_eq!(
                    fast, slow,
                    "{} stride {:?}: move ({}, {}, {})", kind.name(), stride, t, pos, m
                );
            }
        }
    }

    /// Every [`MoveScore::Pruned`] verdict is sound: the candidate's true
    /// (full-evaluation) score is at least the bound it was pruned
    /// against, and every [`MoveScore::Exact`] is bit-identical to the
    /// unbounded scoring — across random workloads, strides, bounds and
    /// objectives. This is the property the whole bounded fast path
    /// rests on: an invalid lower bound (critical-cone, chain-tail or
    /// machine-load floor, or a rounding overshoot) would fail it.
    #[test]
    fn pruned_verdicts_are_sound_and_exact_scores_exact(
        inst in instance_strategy(),
        seed in any::<u64>(),
        stride_sel in 0usize..3,
        tighten in 0.7f64..1.3,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let g = inst.graph();
        let k = inst.task_count();
        let base = random_solution(&inst, &mut rng);
        let stride = [Some(1), Some((k / 2).max(1)), None][stride_sel];
        let snap = EvalSnapshot::new(&inst);
        let mut inc = IncrementalEvaluator::with_snapshot(&snap);
        inc.set_stride(stride);
        inc.prime(&base);
        let mut scalar = Evaluator::new(&inst);
        let weighted = ObjectiveKind::Weighted { makespan: 1.0, flowtime: 0.4, balance: 0.6 };
        let base_score = inc.base_score(&ObjectiveKind::Makespan);
        for (t, pos, m) in sample_moves(&inst, &base, 10, &mut rng) {
            let mut cand = base.clone();
            cand.move_task(g, t, pos, m).unwrap();
            for kind in ObjectiveKind::BASIC.into_iter().chain([weighted]) {
                let truth = scalar.objective_value(&cand, &kind);
                // Bounds straddling the score distribution, ties included.
                for bound in [truth, base_score * tighten, truth * tighten, f64::INFINITY] {
                    match inc.score_move_bounded(t, pos, m, bound, &kind) {
                        MoveScore::Exact(s) => prop_assert_eq!(
                            s, truth, "{} stride {:?} bound {}", kind.name(), stride, bound
                        ),
                        MoveScore::Pruned => prop_assert!(
                            truth >= bound,
                            "{}: pruned at bound {bound} but true score {truth} beats it \
                             (stride {:?}, move {t} -> ({pos}, {m}))",
                            kind.name(), stride
                        ),
                    }
                }
            }
        }
        let stats = inc.stats();
        prop_assert_eq!(stats.scored, inc.evaluations(), "every call counts once");
    }

    /// The bounded batch argmin commits exactly what the unbounded
    /// score-everything-then-fold scan commits — same index (tie-breaks
    /// included), same exact score, same evaluation count — across
    /// random workloads, strides, thread counts, and the tabu-style
    /// admissibility/aspiration rule.
    #[test]
    fn bounded_scan_commits_identical_argmin_value_and_count(
        inst in instance_strategy(),
        seed in any::<u64>(),
        stride_sel in 0usize..3,
        threads_sel in 0usize..3,
        kind_sel in 0usize..3,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let g = inst.graph();
        let k = inst.task_count();
        let base = random_solution(&inst, &mut rng);
        let moves = sample_moves(&inst, &base, 24, &mut rng);
        let stride = [Some(1), Some((k / 2).max(1)), None][stride_sel];
        let threads = [1usize, 2, 8][threads_sel];
        let kind = [
            ObjectiveKind::Makespan,
            ObjectiveKind::TotalFlowtime,
            ObjectiveKind::Weighted { makespan: 1.0, flowtime: 0.4, balance: 0.6 },
        ][kind_sel];
        let snap = EvalSnapshot::new(&inst);
        // Unbounded reference: exact scores, sequential fold.
        let scores = BatchEvaluator::new(&snap).score_task_moves(g, &base, &moves, &kind);
        let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap();

        // Plain argmin (admit everything).
        let mut batch = BatchEvaluator::new(&snap).with_stride(stride);
        let got = pool.install(|| batch.best_task_move(g, &base, &moves, None, 0.0, &kind));
        let want = reference_choice(&scores, None, 0.0);
        prop_assert_eq!(got.map(|b| (b.index, b.score)), want, "plain argmin, {threads} threads");
        prop_assert_eq!(batch.evaluations(), moves.len() as u64, "one evaluation per candidate");

        // Tabu-style rule: random admissibility + a mid-range aspiration.
        let admissible: Vec<bool> = (0..moves.len()).map(|_| rng.gen_bool(0.5)).collect();
        let aspiration =
            scores[rng.gen_range(0..scores.len())] * [0.9, 1.0, 1.1][rng.gen_range(0..3)];
        let got = pool.install(|| {
            BatchEvaluator::new(&snap).with_stride(stride).best_task_move(
                g, &base, &moves, Some(&admissible), aspiration, &kind,
            )
        });
        let want = reference_choice(&scores, Some(&admissible), aspiration);
        prop_assert_eq!(
            got.map(|b| (b.index, b.score)), want,
            "aspiration {aspiration}, {threads} threads, stride {:?}", stride
        );

        // The single-task grid scan (SE's shape) agrees with min_by over
        // exact scores, index tie-break included.
        let t = moves[0].0;
        let (lo, hi) = base.valid_range(g, t);
        let grid: Vec<(usize, MachineId)> = (lo..=hi)
            .flat_map(|p| (0..inst.machine_count() as u32).map(move |m| (p, MachineId::new(m))))
            .collect();
        let grid_scores = BatchEvaluator::new(&snap).score_moves(g, &base, t, &grid, &kind);
        let want = grid_scores
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1).then(a.0.cmp(&b.0)))
            .map(|(i, &s)| (i, s));
        let got = pool.install(|| {
            BatchEvaluator::new(&snap).with_stride(stride).best_move(g, &base, t, &grid, &kind)
        });
        prop_assert_eq!(got.map(|b| (b.index, b.score)), want, "grid scan");
    }

    /// Contention can only delay: the per-pair-link network dominates the
    /// contention-free one pointwise.
    #[test]
    fn contention_dominates_pointwise(inst in instance_strategy(), seed in any::<u64>()) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let sol = random_solution(&inst, &mut rng);
        let free = replay_with(&inst, &sol, NetworkModel::ContentionFree).unwrap();
        let link = replay_with(&inst, &sol, NetworkModel::PerPairLink).unwrap();
        prop_assert!(link.makespan >= free.makespan - 1e-9);
        for t in inst.graph().tasks() {
            prop_assert!(link.finish_of(t) >= free.finish_of(t) - 1e-9);
        }
    }

    /// Reassigning a machine keeps the string order intact.
    #[test]
    fn solution_reassign_keeps_order(inst in instance_strategy(), seed in any::<u64>()) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut sol = random_solution(&inst, &mut rng);
        let before: Vec<TaskId> = sol.order().collect();
        let t = TaskId::new(rng.gen_range(0..inst.task_count() as u32));
        let m = MachineId::new(rng.gen_range(0..inst.machine_count() as u32));
        sol.reassign(t, m).unwrap();
        let after: Vec<TaskId> = sol.order().collect();
        prop_assert_eq!(before, after);
        prop_assert_eq!(sol.machine_of(t), m);
        prop_assert!(sol.check(inst.graph()).is_ok());
    }

    /// Every representable objective kind round-trips through its CLI
    /// spelling: `parse(label()) == kind`, and `FromStr` agrees with
    /// `parse` on the same input.
    #[test]
    fn objective_label_parse_roundtrip(
        which in 0usize..5,
        mk in 0.0f64..1e6,
        ft in 0.0f64..1e6,
        lb in 0.0f64..1e6,
    ) {
        let kind = match which {
            0 => ObjectiveKind::Makespan,
            1 => ObjectiveKind::TotalFlowtime,
            2 => ObjectiveKind::MeanFlowtime,
            3 => ObjectiveKind::LoadBalance,
            _ => ObjectiveKind::Weighted { makespan: mk, flowtime: ft, balance: lb },
        };
        let label = kind.label();
        prop_assert_eq!(ObjectiveKind::parse(&label), Some(kind));
        prop_assert_eq!(label.parse::<ObjectiveKind>(), Ok(kind));
    }

    /// Junk never parses silently: whatever `FromStr` rejects, `parse`
    /// rejects too (no panic, no silent default on malformed input).
    #[test]
    fn objective_parse_never_panics_and_agrees_with_from_str(
        bytes in prop::collection::vec(0x20u8..0x7f, 0..30),
    ) {
        let s = String::from_utf8(bytes).expect("printable ASCII");
        let via_parse = ObjectiveKind::parse(&s);
        let via_from_str = s.parse::<ObjectiveKind>().ok();
        prop_assert_eq!(via_parse, via_from_str);
    }

    /// Malformed weighted spellings are rejected with an error that
    /// names the offending weight, for every malformation class
    /// (wrong arity, negative components, non-numeric junk).
    #[test]
    fn malformed_weighted_inputs_error_descriptively(
        w in prop::collection::vec(-10.0f64..10.0, 0..6),
        junk_pick in 0usize..4,
    ) {
        let spelling = format!(
            "weighted:{}",
            w.iter().map(|v| v.to_string()).collect::<Vec<_>>().join(",")
        );
        let parsed = spelling.parse::<ObjectiveKind>();
        if w.len() == 3 && w.iter().all(|v| *v >= 0.0) {
            prop_assert!(parsed.is_ok());
        } else {
            prop_assert!(parsed.unwrap_err().contains("weight"));
        }
        let junk = ["x", "nan", "inf", "1.0.0"][junk_pick];
        let with_junk = format!("weighted:1,{junk},3");
        prop_assert!(with_junk.parse::<ObjectiveKind>().is_err());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// `score_suffix` is bit-identical to a scalar full pass for every
    /// objective, on arbitrary children built by stacking random moves
    /// on the primed base, with any divergence index at or below the
    /// true first divergence, at every checkpoint stride.
    #[test]
    fn score_suffix_equals_full_reevaluation(
        inst in instance_strategy(),
        seed in any::<u64>(),
        stride_sel in 0usize..5,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let g = inst.graph();
        let k = inst.task_count();
        let base = random_solution(&inst, &mut rng);
        let stride = match stride_sel {
            0 => Some(1),
            1 => Some(2),
            2 => Some((k / 2).max(1)),
            3 => Some(k + 7), // beyond k: degenerates to replay-from-zero
            _ => None,        // auto ⌈√k⌉
        };
        let snap = EvalSnapshot::new(&inst);
        let mut inc = IncrementalEvaluator::with_snapshot(&snap);
        inc.set_stride(stride);
        inc.set_pruning(false);
        inc.prime(&base);
        let mut scalar = Evaluator::new(&inst);
        let weighted = ObjectiveKind::Weighted { makespan: 1.0, flowtime: 0.4, balance: 0.6 };
        for round in 0..8 {
            // Children at increasing distance from the base, including
            // the identical child (divergence k).
            let mut child = base.clone();
            for _ in 0..round {
                let t = TaskId::new(rng.gen_range(0..k as u32));
                let (lo, hi) = child.valid_range(g, t);
                let pos = rng.gen_range(lo..=hi);
                let m = MachineId::new(rng.gen_range(0..inst.machine_count() as u32));
                child.move_task(g, t, pos, m).unwrap();
            }
            let diverge = base
                .segments()
                .iter()
                .zip(child.segments())
                .position(|(a, b)| a != b)
                .unwrap_or(k);
            for kind in ObjectiveKind::BASIC.into_iter().chain([weighted]) {
                let slow = scalar.objective_value(&child, &kind);
                // The exact divergence index and any sound (smaller)
                // one must agree with the full pass bit for bit.
                for d in [diverge, diverge / 2, 0] {
                    prop_assert_eq!(
                        inc.score_suffix(&child, d, &kind), slow,
                        "{} stride {:?} diverge {} (true {})", kind.name(), stride, d, diverge
                    );
                }
            }
        }
    }
}
