//! Serialization round-trips: instances, solutions and traces survive
//! JSON (the CLI's persistence format) without loss.

use mshc::prelude::*;

#[test]
fn instance_roundtrips_through_json() {
    let spec = WorkloadSpec::small(3).with_connectivity(Connectivity::High).with_ccr(1.0);
    let inst = spec.generate();
    let json = serde_json::to_string(&inst).unwrap();
    let back: HcInstance = serde_json::from_str(&json).unwrap();
    assert_eq!(inst, back);
    // And the round-tripped instance behaves identically.
    let mk_a = HeftScheduler::new().run(&inst, &RunBudget::default(), None).makespan;
    let mk_b = HeftScheduler::new().run(&back, &RunBudget::default(), None).makespan;
    assert_eq!(mk_a, mk_b);
}

#[test]
fn figure1_roundtrips() {
    let inst = figure1();
    let json = serde_json::to_string(&inst).unwrap();
    let back: HcInstance = serde_json::from_str(&json).unwrap();
    assert_eq!(inst, back);
}

#[test]
fn solution_roundtrips_and_revalidates() {
    let inst = WorkloadSpec::small(4).generate();
    let mut se = SeScheduler::new(SeConfig { seed: 4, ..SeConfig::default() });
    let r = se.run(&inst, &RunBudget::iterations(10), None);
    let json = serde_json::to_string(&r.solution).unwrap();
    let back: Solution = serde_json::from_str(&json).unwrap();
    assert_eq!(r.solution, back);
    back.check(inst.graph()).unwrap();
    assert_eq!(Evaluator::new(&inst).makespan(&back), r.makespan);
}

#[test]
fn trace_roundtrips() {
    let inst = WorkloadSpec::small(5).generate();
    let mut trace = Trace::new();
    SeScheduler::new(SeConfig { seed: 5, ..SeConfig::default() }).run(
        &inst,
        &RunBudget::iterations(8),
        Some(&mut trace),
    );
    let json = serde_json::to_string(&trace).unwrap();
    let back: Trace = serde_json::from_str(&json).unwrap();
    assert_eq!(trace, back);
    assert_eq!(back.len(), 8);
}

#[test]
fn malformed_instance_json_is_rejected() {
    // A graph/system dimension mismatch must not deserialize into a
    // usable instance silently — serde rebuilds the struct fields, so we
    // verify the evaluator's debug assertions are not the only guard:
    // hand-corrupted JSON fails at the type level.
    let bad = r#"{"graph": "not a graph", "system": 3}"#;
    assert!(serde_json::from_str::<HcInstance>(bad).is_err());
    assert!(serde_json::from_str::<Solution>("[1,2,3]").is_err());
}

#[test]
fn workload_spec_roundtrips() {
    let spec = WorkloadSpec::large(9).with_heterogeneity(Heterogeneity::High).with_ccr(0.1);
    let json = serde_json::to_string(&spec).unwrap();
    let back: WorkloadSpec = serde_json::from_str(&json).unwrap();
    assert_eq!(spec, back);
    assert_eq!(spec.generate(), back.generate());
}
