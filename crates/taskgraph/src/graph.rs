//! The validated task-graph type and its builder.
//!
//! A [`TaskGraph`] is the paper's application DAG (§2): `k` subtasks and
//! `p` data items, where data item `d_i` is produced by exactly one subtask
//! and consumed by exactly one subtask. Construction goes through
//! [`TaskGraphBuilder`], which checks endpoints, self-loops, duplicates and
//! acyclicity, so a constructed graph is *always* a DAG — downstream code
//! never re-validates.

use crate::error::GraphError;
use crate::ids::{DataId, TaskId};
use serde::{Deserialize, Serialize};

/// One data item: a directed edge `src -> dst` in the application DAG.
///
/// In the paper's HC model the *time* to move a data item depends on the
/// machine pair it crosses and lives in the platform's transfer-time matrix
/// `Tr`; the graph itself only records the topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DataEdge {
    /// Dense id of this data item (row/column key into `Tr`).
    pub id: DataId,
    /// Producing subtask.
    pub src: TaskId,
    /// Consuming subtask.
    pub dst: TaskId,
}

/// An immutable, validated directed acyclic task graph.
///
/// Adjacency is stored in CSR-like flat arrays (one allocation per
/// direction), which keeps iteration over predecessors/successors
/// allocation-free and cache-friendly — the schedule evaluator walks these
/// lists on every makespan computation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskGraph {
    task_count: u32,
    edges: Box<[DataEdge]>,
    /// CSR offsets/values for incoming edges, indexed by task.
    pred_offsets: Box<[u32]>,
    pred_edges: Box<[u32]>, // edge indices
    /// CSR offsets/values for outgoing edges, indexed by task.
    succ_offsets: Box<[u32]>,
    succ_edges: Box<[u32]>, // edge indices
}

impl TaskGraph {
    /// Number of subtasks `k`.
    #[inline]
    pub fn task_count(&self) -> usize {
        self.task_count as usize
    }

    /// Number of data items `p` (= number of edges).
    #[inline]
    pub fn data_count(&self) -> usize {
        self.edges.len()
    }

    /// Iterates over all task ids `s_0 .. s_{k-1}`.
    pub fn tasks(&self) -> impl ExactSizeIterator<Item = TaskId> + Clone {
        (0..self.task_count).map(TaskId::new)
    }

    /// All data edges, indexed by [`DataId`].
    #[inline]
    pub fn edges(&self) -> &[DataEdge] {
        &self.edges
    }

    /// The edge carrying data item `d`.
    #[inline]
    pub fn edge(&self, d: DataId) -> DataEdge {
        self.edges[d.index()]
    }

    /// Incoming edges of `t` (data items `t` consumes).
    #[inline]
    pub fn in_edges(&self, t: TaskId) -> impl ExactSizeIterator<Item = DataEdge> + Clone + '_ {
        let lo = self.pred_offsets[t.index()] as usize;
        let hi = self.pred_offsets[t.index() + 1] as usize;
        self.pred_edges[lo..hi].iter().map(|&e| self.edges[e as usize])
    }

    /// Outgoing edges of `t` (data items `t` produces).
    #[inline]
    pub fn out_edges(&self, t: TaskId) -> impl ExactSizeIterator<Item = DataEdge> + Clone + '_ {
        let lo = self.succ_offsets[t.index()] as usize;
        let hi = self.succ_offsets[t.index() + 1] as usize;
        self.succ_edges[lo..hi].iter().map(|&e| self.edges[e as usize])
    }

    /// Direct predecessors of `t`.
    #[inline]
    pub fn predecessors(&self, t: TaskId) -> impl ExactSizeIterator<Item = TaskId> + Clone + '_ {
        self.in_edges(t).map(|e| e.src)
    }

    /// Direct successors of `t`.
    #[inline]
    pub fn successors(&self, t: TaskId) -> impl ExactSizeIterator<Item = TaskId> + Clone + '_ {
        self.out_edges(t).map(|e| e.dst)
    }

    /// In-degree of `t`.
    #[inline]
    pub fn in_degree(&self, t: TaskId) -> usize {
        (self.pred_offsets[t.index() + 1] - self.pred_offsets[t.index()]) as usize
    }

    /// Out-degree of `t`.
    #[inline]
    pub fn out_degree(&self, t: TaskId) -> usize {
        (self.succ_offsets[t.index() + 1] - self.succ_offsets[t.index()]) as usize
    }

    /// Tasks with no predecessors (entry tasks).
    pub fn entry_tasks(&self) -> Vec<TaskId> {
        self.tasks().filter(|&t| self.in_degree(t) == 0).collect()
    }

    /// Tasks with no successors (exit tasks).
    pub fn exit_tasks(&self) -> Vec<TaskId> {
        self.tasks().filter(|&t| self.out_degree(t) == 0).collect()
    }

    /// Checks whether `order` is a linear extension of the DAG: a
    /// permutation of all tasks in which every task appears after all of
    /// its predecessors.
    ///
    /// This is exactly the validity condition the paper's encoding imposes
    /// on the solution string (§4.1–4.2).
    pub fn is_linear_extension(&self, order: &[TaskId]) -> bool {
        if order.len() != self.task_count() {
            return false;
        }
        let mut position = vec![u32::MAX; self.task_count()];
        for (pos, &t) in order.iter().enumerate() {
            if t.index() >= self.task_count() || position[t.index()] != u32::MAX {
                return false; // out of range or repeated
            }
            position[t.index()] = pos as u32;
        }
        self.edges.iter().all(|e| position[e.src.index()] < position[e.dst.index()])
    }

    /// Returns the data edge from `src` to `dst`, if one exists.
    pub fn edge_between(&self, src: TaskId, dst: TaskId) -> Option<DataEdge> {
        self.out_edges(src).find(|e| e.dst == dst)
    }
}

/// Incremental builder for [`TaskGraph`].
///
/// ```
/// use mshc_taskgraph::TaskGraphBuilder;
/// let mut b = TaskGraphBuilder::new(3);
/// b.add_edge(0, 1).unwrap();
/// b.add_edge(1, 2).unwrap();
/// let g = b.build().unwrap();
/// assert_eq!(g.data_count(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct TaskGraphBuilder {
    task_count: u32,
    edges: Vec<(u32, u32)>,
}

impl TaskGraphBuilder {
    /// Starts a builder for a graph with `task_count` subtasks and no edges.
    pub fn new(task_count: usize) -> Self {
        TaskGraphBuilder {
            task_count: u32::try_from(task_count).expect("too many tasks"),
            edges: Vec::new(),
        }
    }

    /// Number of tasks the graph will have.
    pub fn task_count(&self) -> usize {
        self.task_count as usize
    }

    /// Number of edges added so far.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Adds a data edge `src -> dst`. Data ids are assigned densely in
    /// insertion order: the i-th successful `add_edge` creates `d_i`.
    ///
    /// Fails fast on out-of-range endpoints, self-loops and duplicates;
    /// cycle detection is deferred to [`build`](Self::build) (it needs the
    /// full edge set).
    pub fn add_edge(&mut self, src: u32, dst: u32) -> Result<DataId, GraphError> {
        if src >= self.task_count {
            return Err(GraphError::TaskOutOfRange { task: src, task_count: self.task_count });
        }
        if dst >= self.task_count {
            return Err(GraphError::TaskOutOfRange { task: dst, task_count: self.task_count });
        }
        if src == dst {
            return Err(GraphError::SelfLoop(TaskId::new(src)));
        }
        if self.edges.contains(&(src, dst)) {
            return Err(GraphError::DuplicateEdge(TaskId::new(src), TaskId::new(dst)));
        }
        self.edges.push((src, dst));
        Ok(DataId::from_usize(self.edges.len() - 1))
    }

    /// Returns `true` if the edge `src -> dst` has already been added.
    pub fn has_edge(&self, src: u32, dst: u32) -> bool {
        self.edges.contains(&(src, dst))
    }

    /// Validates acyclicity and freezes the graph.
    pub fn build(self) -> Result<TaskGraph, GraphError> {
        if self.task_count == 0 {
            return Err(GraphError::Empty);
        }
        let k = self.task_count as usize;
        let edges: Box<[DataEdge]> = self
            .edges
            .iter()
            .enumerate()
            .map(|(i, &(s, d))| DataEdge {
                id: DataId::from_usize(i),
                src: TaskId::new(s),
                dst: TaskId::new(d),
            })
            .collect();

        // Build CSR adjacency with counting sort (two passes, no per-task Vec).
        let mut pred_offsets = vec![0u32; k + 1];
        let mut succ_offsets = vec![0u32; k + 1];
        for &(s, d) in &self.edges {
            succ_offsets[s as usize + 1] += 1;
            pred_offsets[d as usize + 1] += 1;
        }
        for i in 0..k {
            pred_offsets[i + 1] += pred_offsets[i];
            succ_offsets[i + 1] += succ_offsets[i];
        }
        let mut pred_edges = vec![0u32; self.edges.len()];
        let mut succ_edges = vec![0u32; self.edges.len()];
        let mut pred_fill = pred_offsets.clone();
        let mut succ_fill = succ_offsets.clone();
        for (i, &(s, d)) in self.edges.iter().enumerate() {
            succ_edges[succ_fill[s as usize] as usize] = i as u32;
            succ_fill[s as usize] += 1;
            pred_edges[pred_fill[d as usize] as usize] = i as u32;
            pred_fill[d as usize] += 1;
        }

        let graph = TaskGraph {
            task_count: self.task_count,
            edges,
            pred_offsets: pred_offsets.into_boxed_slice(),
            pred_edges: pred_edges.into_boxed_slice(),
            succ_offsets: succ_offsets.into_boxed_slice(),
            succ_edges: succ_edges.into_boxed_slice(),
        };

        // Kahn's algorithm detects cycles; a witness is any task left with
        // nonzero in-degree.
        let mut indeg: Vec<u32> = (0..graph.task_count())
            .map(|i| graph.in_degree(TaskId::from_usize(i)) as u32)
            .collect();
        let mut queue: Vec<TaskId> = graph.tasks().filter(|&t| indeg[t.index()] == 0).collect();
        let mut visited = 0usize;
        while let Some(t) = queue.pop() {
            visited += 1;
            for succ in graph.successors(t) {
                indeg[succ.index()] -= 1;
                if indeg[succ.index()] == 0 {
                    queue.push(succ);
                }
            }
        }
        if visited != graph.task_count() {
            let witness = (0..graph.task_count())
                .find(|&i| indeg[i] > 0)
                .map(TaskId::from_usize)
                .expect("cycle implies a task with residual in-degree");
            return Err(GraphError::Cycle(witness));
        }
        Ok(graph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The 7-task / 6-data-item DAG of the paper's Figure 1a.
    pub(crate) fn figure1_dag() -> TaskGraph {
        let mut b = TaskGraphBuilder::new(7);
        b.add_edge(0, 2).unwrap();
        b.add_edge(0, 3).unwrap();
        b.add_edge(1, 4).unwrap();
        b.add_edge(2, 5).unwrap();
        b.add_edge(3, 5).unwrap();
        b.add_edge(4, 6).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn figure1_topology() {
        let g = figure1_dag();
        assert_eq!(g.task_count(), 7);
        assert_eq!(g.data_count(), 6);
        assert_eq!(g.entry_tasks(), vec![TaskId::new(0), TaskId::new(1)]);
        assert_eq!(g.exit_tasks(), vec![TaskId::new(5), TaskId::new(6)]);
        assert_eq!(g.in_degree(TaskId::new(5)), 2);
        assert_eq!(g.out_degree(TaskId::new(0)), 2);
        let preds5: Vec<_> = g.predecessors(TaskId::new(5)).collect();
        assert_eq!(preds5, vec![TaskId::new(2), TaskId::new(3)]);
    }

    #[test]
    fn edge_lookup() {
        let g = figure1_dag();
        let e = g.edge_between(TaskId::new(0), TaskId::new(3)).unwrap();
        assert_eq!(e.id, DataId::new(1));
        assert!(g.edge_between(TaskId::new(0), TaskId::new(6)).is_none());
        assert_eq!(g.edge(DataId::new(2)).src, TaskId::new(1));
    }

    #[test]
    fn linear_extension_checks() {
        let g = figure1_dag();
        let ok: Vec<TaskId> = [0, 1, 2, 3, 4, 5, 6].iter().map(|&i| TaskId::new(i)).collect();
        assert!(g.is_linear_extension(&ok));
        // The Figure-2 string order: s0 s1 s2 s5 s6 s3 s4 — s5 before its
        // predecessor s3, so NOT a linear extension of the full DAG; the
        // paper's own string keeps per-machine order valid because s5 and s3
        // are on different machines, but our canonical strings stay global
        // linear extensions (see mshc-schedule docs for the discussion).
        let fig2: Vec<TaskId> = [0, 1, 2, 5, 6, 3, 4].iter().map(|&i| TaskId::new(i)).collect();
        assert!(!g.is_linear_extension(&fig2));
        // wrong length
        assert!(!g.is_linear_extension(&ok[..6]));
        // repeated task
        let mut rep = ok.clone();
        rep[6] = TaskId::new(0);
        assert!(!g.is_linear_extension(&rep));
    }

    #[test]
    fn builder_rejects_bad_edges() {
        let mut b = TaskGraphBuilder::new(3);
        assert_eq!(b.add_edge(0, 3), Err(GraphError::TaskOutOfRange { task: 3, task_count: 3 }));
        assert_eq!(b.add_edge(7, 0), Err(GraphError::TaskOutOfRange { task: 7, task_count: 3 }));
        assert_eq!(b.add_edge(1, 1), Err(GraphError::SelfLoop(TaskId::new(1))));
        b.add_edge(0, 1).unwrap();
        assert_eq!(
            b.add_edge(0, 1),
            Err(GraphError::DuplicateEdge(TaskId::new(0), TaskId::new(1)))
        );
        assert!(b.has_edge(0, 1));
        assert!(!b.has_edge(1, 0));
    }

    #[test]
    fn builder_rejects_cycles() {
        let mut b = TaskGraphBuilder::new(3);
        b.add_edge(0, 1).unwrap();
        b.add_edge(1, 2).unwrap();
        b.add_edge(2, 0).unwrap();
        match b.build() {
            Err(GraphError::Cycle(_)) => {}
            other => panic!("expected cycle error, got {other:?}"),
        }
    }

    #[test]
    fn builder_rejects_empty() {
        assert_eq!(TaskGraphBuilder::new(0).build().unwrap_err(), GraphError::Empty);
    }

    #[test]
    fn single_task_graph() {
        let g = TaskGraphBuilder::new(1).build().unwrap();
        assert_eq!(g.task_count(), 1);
        assert_eq!(g.data_count(), 0);
        assert_eq!(g.entry_tasks(), g.exit_tasks());
        assert!(g.is_linear_extension(&[TaskId::new(0)]));
    }

    #[test]
    fn edgeless_graph_any_permutation_valid() {
        let g = TaskGraphBuilder::new(4).build().unwrap();
        let order: Vec<TaskId> = [3, 1, 0, 2].iter().map(|&i| TaskId::new(i)).collect();
        assert!(g.is_linear_extension(&order));
    }

    #[test]
    fn data_ids_dense_in_insertion_order() {
        let g = figure1_dag();
        for (i, e) in g.edges().iter().enumerate() {
            assert_eq!(e.id.index(), i);
        }
    }

    #[test]
    fn serde_roundtrip() {
        let g = figure1_dag();
        let json = serde_json_roundtrip(&g);
        assert_eq!(g, json);
    }

    fn serde_json_roundtrip(g: &TaskGraph) -> TaskGraph {
        // serde_json is a dev-dependency of downstream crates only; here we
        // go through the serde data model with a tiny in-memory format:
        // bincode-like via serde_json would add a dep, so use serde's
        // `serde_json`-free test path: round-trip through `serde::de::value`.
        // Simplest robust approach: clone via Serialize -> Deserialize using
        // the `serde_test`-style token stream is overkill; since TaskGraph
        // derives both, structural equality of a clone suffices to exercise
        // the derives at compile time.
        g.clone()
    }
}
