//! Pluggable scoring objectives over an evaluated schedule.
//!
//! The paper minimizes the schedule length (makespan) only. Production
//! scheduling cares about more: mean job turnaround (flowtime), how
//! evenly the machine suite is loaded, and blends of all three. An
//! [`Objective`] maps the timing arrays a single evaluator pass produces
//! — per-task start/finish plus per-machine busy time — to one scalar
//! where **lower is always better**, so every search algorithm in the
//! suite (SE, GA, SA, tabu, random) optimizes any objective through the
//! same argmin machinery.
//!
//! [`ObjectiveKind`] is the plumbing-friendly, `Copy` enumeration of the
//! built-in objectives; it is what [`crate::RunBudget`] carries from the
//! CLI down into every scheduler. Custom objectives only need the trait.

use crate::eval::ScheduleReport;
use mshc_platform::MachineId;
use serde::{Deserialize, Serialize};

/// Borrowed view of one evaluated schedule: everything an objective may
/// score, produced by a single evaluator pass (or assembled from a
/// [`ScheduleReport`], e.g. the discrete-event replay oracle).
#[derive(Debug, Clone, Copy)]
pub struct EvalView<'a> {
    /// Start time per task, indexed by task.
    pub start: &'a [f64],
    /// Finish time per task, indexed by task.
    pub finish: &'a [f64],
    /// Total execution (busy) time per machine, indexed by machine.
    pub machine_busy: &'a [f64],
}

/// Running accumulator for incremental (suffix-replay) objective scoring.
///
/// One completed task is folded at a time, in **string order** — the
/// order the single left-to-right evaluator pass completes tasks in. The
/// state is everything the built-in objectives need: the running
/// finish-time maximum (makespan), the running finish-time sum
/// (flowtime), the folded task count, and the per-machine busy times
/// (load balance).
///
/// Both the scalar [`crate::Evaluator`]'s full pass and the
/// checkpoint-resumed suffix replay of [`crate::IncrementalEvaluator`]
/// fold tasks in the same order over the same values, so
/// [`Objective::finalize`] produces **bit-identical** scores on every
/// route (max is order-independent for non-negative times; the sums fold
/// identical values in identical order).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ObjectiveState {
    max_finish: f64,
    finish_sum: f64,
    tasks: usize,
    machine_busy: Vec<f64>,
}

impl ObjectiveState {
    /// An empty fold over `machines` machines.
    pub fn new(machines: usize) -> ObjectiveState {
        ObjectiveState {
            max_finish: 0.0,
            finish_sum: 0.0,
            tasks: 0,
            machine_busy: vec![0.0; machines],
        }
    }

    /// Resets to the empty fold over `machines` machines, reusing the
    /// busy-vector allocation.
    pub fn reset(&mut self, machines: usize) {
        self.max_finish = 0.0;
        self.finish_sum = 0.0;
        self.tasks = 0;
        self.machine_busy.clear();
        self.machine_busy.resize(machines, 0.0);
    }

    /// Folds one completed task: it finished at `finish` on `machine`,
    /// occupying it for `exec` time units.
    #[inline]
    pub fn fold(&mut self, machine: MachineId, finish: f64, exec: f64) {
        self.max_finish = self.max_finish.max(finish);
        self.finish_sum += finish;
        self.machine_busy[machine.index()] += exec;
        self.tasks += 1;
    }

    /// Restores a checkpointed fold (the scalar part plus a copy of the
    /// busy vector) — how [`crate::IncrementalEvaluator`] resumes from
    /// the nearest checkpoint instead of refolding the whole prefix.
    pub fn load(&mut self, max_finish: f64, finish_sum: f64, tasks: usize, machine_busy: &[f64]) {
        self.max_finish = max_finish;
        self.finish_sum = finish_sum;
        self.tasks = tasks;
        self.machine_busy.clear();
        self.machine_busy.extend_from_slice(machine_busy);
    }

    /// Running maximum of folded finish times.
    #[inline]
    pub fn max_finish(&self) -> f64 {
        self.max_finish
    }

    /// Running sum of folded finish times (string order).
    #[inline]
    pub fn finish_sum(&self) -> f64 {
        self.finish_sum
    }

    /// Number of tasks folded so far.
    #[inline]
    pub fn tasks(&self) -> usize {
        self.tasks
    }

    /// Busy (execution) time per machine, indexed by machine.
    #[inline]
    pub fn machine_busy(&self) -> &[f64] {
        &self.machine_busy
    }
}

/// A scalar schedule-quality measure; **lower is better**.
///
/// Implementations must be pure functions of the view — they are invoked
/// concurrently from [`crate::BatchEvaluator`] worker threads (hence the
/// `Sync` supertrait).
///
/// Objectives that can be computed from the [`ObjectiveState`]
/// accumulators alone (all five built-in kinds) additionally implement
/// [`supports_incremental`](Objective::supports_incremental) /
/// [`finalize`](Objective::finalize), which is what lets
/// [`crate::IncrementalEvaluator`] score a single-task move by replaying
/// only the suffix of the string the move disturbs.
pub trait Objective: Sync {
    /// Short stable identifier (CSV columns, CLI, reports).
    fn name(&self) -> &str;

    /// Scores one evaluated schedule.
    fn value(&self, view: &EvalView<'_>) -> f64;

    /// Whether [`finalize`](Objective::finalize) is implemented — i.e.
    /// whether this objective is a pure function of the
    /// [`ObjectiveState`] accumulators and therefore eligible for
    /// incremental suffix-replay scoring. Defaults to `false`; custom
    /// objectives that need the full timing arrays simply keep the
    /// default and every evaluator falls back to full passes.
    fn supports_incremental(&self) -> bool {
        false
    }

    /// Scores a completed accumulator fold. Only called when
    /// [`supports_incremental`](Objective::supports_incremental) is
    /// true; the default panics.
    fn finalize(&self, state: &ObjectiveState) -> f64 {
        let _ = state;
        panic!("objective {:?} does not support incremental scoring", self.name())
    }
}

/// The schedule length the paper minimizes: the latest finish time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Makespan;

impl Objective for Makespan {
    fn name(&self) -> &str {
        "makespan"
    }

    #[inline]
    fn value(&self, view: &EvalView<'_>) -> f64 {
        view.finish.iter().copied().fold(0.0, f64::max)
    }

    fn supports_incremental(&self) -> bool {
        true
    }

    #[inline]
    fn finalize(&self, state: &ObjectiveState) -> f64 {
        state.max_finish()
    }
}

/// Sum of all task finish times (total flowtime / total completion time).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TotalFlowtime;

impl Objective for TotalFlowtime {
    fn name(&self) -> &str {
        "total-flowtime"
    }

    #[inline]
    fn value(&self, view: &EvalView<'_>) -> f64 {
        view.finish.iter().sum()
    }

    fn supports_incremental(&self) -> bool {
        true
    }

    #[inline]
    fn finalize(&self, state: &ObjectiveState) -> f64 {
        state.finish_sum()
    }
}

/// Mean task finish time — total flowtime normalized by task count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MeanFlowtime;

impl Objective for MeanFlowtime {
    fn name(&self) -> &str {
        "mean-flowtime"
    }

    #[inline]
    fn value(&self, view: &EvalView<'_>) -> f64 {
        if view.finish.is_empty() {
            0.0
        } else {
            view.finish.iter().sum::<f64>() / view.finish.len() as f64
        }
    }

    fn supports_incremental(&self) -> bool {
        true
    }

    #[inline]
    fn finalize(&self, state: &ObjectiveState) -> f64 {
        if state.tasks() == 0 {
            0.0
        } else {
            state.finish_sum() / state.tasks() as f64
        }
    }
}

/// Machine load imbalance: the busiest machine's excess over the mean
/// busy time. Zero means perfectly balanced load.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LoadBalance;

impl Objective for LoadBalance {
    fn name(&self) -> &str {
        "load-balance"
    }

    #[inline]
    fn value(&self, view: &EvalView<'_>) -> f64 {
        if view.machine_busy.is_empty() {
            return 0.0;
        }
        let max = view.machine_busy.iter().copied().fold(0.0, f64::max);
        let mean = view.machine_busy.iter().sum::<f64>() / view.machine_busy.len() as f64;
        max - mean
    }

    fn supports_incremental(&self) -> bool {
        true
    }

    #[inline]
    fn finalize(&self, state: &ObjectiveState) -> f64 {
        // Same fold as `value`, over the accumulated busy vector — the
        // two routes are bit-identical by construction.
        if state.machine_busy().is_empty() {
            return 0.0;
        }
        let max = state.machine_busy().iter().copied().fold(0.0, f64::max);
        let mean = state.machine_busy().iter().sum::<f64>() / state.machine_busy().len() as f64;
        max - mean
    }
}

/// Weighted blend `w_mk·makespan + w_ft·mean_flowtime + w_lb·imbalance`.
///
/// Mean flowtime (not total) keeps the three components on comparable
/// scales, so unit weights are a sensible starting point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Weighted {
    /// Weight on the makespan component.
    pub makespan: f64,
    /// Weight on the mean-flowtime component.
    pub flowtime: f64,
    /// Weight on the load-imbalance component.
    pub balance: f64,
}

impl Objective for Weighted {
    fn name(&self) -> &str {
        "weighted"
    }

    #[inline]
    fn value(&self, view: &EvalView<'_>) -> f64 {
        self.makespan * Makespan.value(view)
            + self.flowtime * MeanFlowtime.value(view)
            + self.balance * LoadBalance.value(view)
    }

    fn supports_incremental(&self) -> bool {
        true
    }

    #[inline]
    fn finalize(&self, state: &ObjectiveState) -> f64 {
        self.makespan * Makespan.finalize(state)
            + self.flowtime * MeanFlowtime.finalize(state)
            + self.balance * LoadBalance.finalize(state)
    }
}

/// The built-in objectives as plumbable configuration.
///
/// `Copy + PartialEq` so [`crate::RunBudget`] stays a plain value type;
/// dispatches to the unit objectives above through its own [`Objective`]
/// impl. (Not serde-derived: the run budget is never persisted; the CLI
/// round-trips through [`parse`](ObjectiveKind::parse)/
/// [`label`](ObjectiveKind::label) instead.)
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub enum ObjectiveKind {
    /// Minimize the schedule length (the paper's objective; the default).
    #[default]
    Makespan,
    /// Minimize the sum of task finish times.
    TotalFlowtime,
    /// Minimize the mean task finish time.
    MeanFlowtime,
    /// Minimize the machine load imbalance.
    LoadBalance,
    /// Minimize a weighted blend of the three components.
    Weighted {
        /// Weight on the makespan component.
        makespan: f64,
        /// Weight on the mean-flowtime component.
        flowtime: f64,
        /// Weight on the load-imbalance component.
        balance: f64,
    },
}

impl ObjectiveKind {
    /// Every non-parameterized kind, for sweeps and tests.
    pub const BASIC: [ObjectiveKind; 4] = [
        ObjectiveKind::Makespan,
        ObjectiveKind::TotalFlowtime,
        ObjectiveKind::MeanFlowtime,
        ObjectiveKind::LoadBalance,
    ];

    /// Parses a CLI spelling: `makespan`, `total-flowtime`,
    /// `mean-flowtime`, `load-balance`, or `weighted:MK,FT,LB` (three
    /// comma-separated weights). Returns `None` on any malformed input;
    /// the [`FromStr`](std::str::FromStr) impl reports *why* instead.
    pub fn parse(s: &str) -> Option<ObjectiveKind> {
        s.parse().ok()
    }

    /// Parses the weight list of a `weighted:MK,FT,LB` spelling with
    /// descriptive errors for each way the input can be malformed.
    fn parse_weights(weights: &str) -> Result<ObjectiveKind, String> {
        const COMPONENTS: [&str; 3] = ["makespan (MK)", "flowtime (FT)", "balance (LB)"];
        let parts: Vec<&str> = weights.split(',').collect();
        if parts.len() != 3 {
            return Err(format!(
                "weighted objective needs exactly 3 comma-separated weights (MK,FT,LB), got {} \
                 in {weights:?}",
                parts.len()
            ));
        }
        let mut w = [0.0f64; 3];
        for (i, part) in parts.iter().enumerate() {
            let trimmed = part.trim();
            if trimmed.is_empty() {
                return Err(format!("weighted objective: missing {} weight", COMPONENTS[i]));
            }
            let v: f64 = trimmed.parse().map_err(|_| {
                format!("weighted objective: {} weight {trimmed:?} is not a number", COMPONENTS[i])
            })?;
            if !v.is_finite() {
                return Err(format!(
                    "weighted objective: {} weight {trimmed:?} must be finite",
                    COMPONENTS[i]
                ));
            }
            if v < 0.0 {
                return Err(format!(
                    "weighted objective: {} weight {v} must be >= 0 (objectives are minimized; \
                     negative weights would reward worse schedules)",
                    COMPONENTS[i]
                ));
            }
            w[i] = v;
        }
        Ok(ObjectiveKind::Weighted { makespan: w[0], flowtime: w[1], balance: w[2] })
    }

    /// The CLI spelling; `parse(kind.label())` round-trips.
    pub fn label(&self) -> String {
        match *self {
            ObjectiveKind::Makespan => "makespan".to_string(),
            ObjectiveKind::TotalFlowtime => "total-flowtime".to_string(),
            ObjectiveKind::MeanFlowtime => "mean-flowtime".to_string(),
            ObjectiveKind::LoadBalance => "load-balance".to_string(),
            ObjectiveKind::Weighted { makespan, flowtime, balance } => {
                format!("weighted:{makespan},{flowtime},{balance}")
            }
        }
    }

    /// Whether this is the plain makespan objective (lets reporting
    /// paths reuse an already-known makespan instead of re-evaluating).
    #[inline]
    pub fn is_makespan(&self) -> bool {
        matches!(self, ObjectiveKind::Makespan)
    }
}

impl std::str::FromStr for ObjectiveKind {
    type Err = String;

    /// Like [`ObjectiveKind::parse`], but malformed input yields a
    /// descriptive error: unknown names list the valid spellings, and
    /// `weighted:` inputs report exactly which component is missing,
    /// non-numeric, non-finite or negative.
    fn from_str(s: &str) -> Result<ObjectiveKind, String> {
        match s {
            "makespan" => Ok(ObjectiveKind::Makespan),
            "total-flowtime" => Ok(ObjectiveKind::TotalFlowtime),
            "mean-flowtime" => Ok(ObjectiveKind::MeanFlowtime),
            "load-balance" => Ok(ObjectiveKind::LoadBalance),
            other => match other.strip_prefix("weighted:") {
                Some(weights) => ObjectiveKind::parse_weights(weights),
                None => Err(format!(
                    "unknown objective {other:?} (expected makespan, total-flowtime, \
                     mean-flowtime, load-balance or weighted:MK,FT,LB)"
                )),
            },
        }
    }
}

impl Objective for ObjectiveKind {
    fn name(&self) -> &str {
        match self {
            ObjectiveKind::Makespan => "makespan",
            ObjectiveKind::TotalFlowtime => "total-flowtime",
            ObjectiveKind::MeanFlowtime => "mean-flowtime",
            ObjectiveKind::LoadBalance => "load-balance",
            ObjectiveKind::Weighted { .. } => "weighted",
        }
    }

    #[inline]
    fn value(&self, view: &EvalView<'_>) -> f64 {
        match *self {
            ObjectiveKind::Makespan => Makespan.value(view),
            ObjectiveKind::TotalFlowtime => TotalFlowtime.value(view),
            ObjectiveKind::MeanFlowtime => MeanFlowtime.value(view),
            ObjectiveKind::LoadBalance => LoadBalance.value(view),
            ObjectiveKind::Weighted { makespan, flowtime, balance } => {
                Weighted { makespan, flowtime, balance }.value(view)
            }
        }
    }

    fn supports_incremental(&self) -> bool {
        true
    }

    #[inline]
    fn finalize(&self, state: &ObjectiveState) -> f64 {
        match *self {
            ObjectiveKind::Makespan => Makespan.finalize(state),
            ObjectiveKind::TotalFlowtime => TotalFlowtime.finalize(state),
            ObjectiveKind::MeanFlowtime => MeanFlowtime.finalize(state),
            ObjectiveKind::LoadBalance => LoadBalance.finalize(state),
            ObjectiveKind::Weighted { makespan, flowtime, balance } => {
                Weighted { makespan, flowtime, balance }.finalize(state)
            }
        }
    }
}

/// The per-objective summary attached to a [`ScheduleReport`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ObjectiveValues {
    /// Latest finish time.
    pub makespan: f64,
    /// Sum of finish times.
    pub total_flowtime: f64,
    /// Mean finish time.
    pub mean_flowtime: f64,
    /// Busiest machine's excess over mean busy time.
    pub load_imbalance: f64,
}

impl ObjectiveValues {
    /// Computes all built-in objective values from one view.
    pub fn from_view(view: &EvalView<'_>) -> ObjectiveValues {
        ObjectiveValues {
            makespan: Makespan.value(view),
            total_flowtime: TotalFlowtime.value(view),
            mean_flowtime: MeanFlowtime.value(view),
            load_imbalance: LoadBalance.value(view),
        }
    }
}

/// Scores a finished [`ScheduleReport`] under `obj` — the bridge that
/// lets the discrete-event replay (`sim.rs`) act as an oracle for every
/// objective, not just makespan.
pub fn objective_from_report(obj: &dyn Objective, report: &ScheduleReport) -> f64 {
    obj.value(&report.view())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view<'a>(start: &'a [f64], finish: &'a [f64], busy: &'a [f64]) -> EvalView<'a> {
        EvalView { start, finish, machine_busy: busy }
    }

    #[test]
    fn makespan_is_max_finish() {
        let v = view(&[0.0, 1.0], &[4.0, 9.0], &[4.0, 8.0]);
        assert_eq!(Makespan.value(&v), 9.0);
        assert_eq!(Makespan.name(), "makespan");
    }

    #[test]
    fn flowtimes() {
        let v = view(&[0.0, 0.0, 0.0], &[2.0, 4.0, 6.0], &[12.0]);
        assert_eq!(TotalFlowtime.value(&v), 12.0);
        assert_eq!(MeanFlowtime.value(&v), 4.0);
    }

    #[test]
    fn load_balance_zero_when_even() {
        let v = view(&[], &[], &[5.0, 5.0, 5.0]);
        assert_eq!(LoadBalance.value(&v), 0.0);
        let v = view(&[], &[], &[9.0, 3.0]);
        assert_eq!(LoadBalance.value(&v), 3.0);
    }

    #[test]
    fn weighted_blends_components() {
        let v = view(&[0.0, 0.0], &[2.0, 6.0], &[8.0, 0.0]);
        // makespan 6, mean flowtime 4, imbalance 4.
        let w = Weighted { makespan: 1.0, flowtime: 0.5, balance: 0.25 };
        assert_eq!(w.value(&v), 6.0 + 2.0 + 1.0);
    }

    #[test]
    fn kind_dispatch_matches_units() {
        let v = view(&[0.0, 0.0], &[3.0, 5.0], &[3.0, 5.0]);
        assert_eq!(ObjectiveKind::Makespan.value(&v), Makespan.value(&v));
        assert_eq!(ObjectiveKind::TotalFlowtime.value(&v), TotalFlowtime.value(&v));
        assert_eq!(ObjectiveKind::MeanFlowtime.value(&v), MeanFlowtime.value(&v));
        assert_eq!(ObjectiveKind::LoadBalance.value(&v), LoadBalance.value(&v));
        let k = ObjectiveKind::Weighted { makespan: 2.0, flowtime: 1.0, balance: 0.0 };
        let u = Weighted { makespan: 2.0, flowtime: 1.0, balance: 0.0 };
        assert_eq!(k.value(&v), u.value(&v));
    }

    #[test]
    fn finalize_matches_value_on_a_hand_fold() {
        // Fold three tasks on two machines and check every built-in
        // objective finalizes to the same number `value` computes from
        // the equivalent arrays.
        let mut state = ObjectiveState::new(2);
        for (m, finish, exec) in [(0u32, 4.0, 4.0), (1, 7.0, 7.0), (0, 9.0, 5.0)] {
            state.fold(MachineId::new(m), finish, exec);
        }
        assert_eq!(state.tasks(), 3);
        assert_eq!(state.max_finish(), 9.0);
        assert_eq!(state.finish_sum(), 20.0);
        assert_eq!(state.machine_busy(), &[9.0, 7.0]);
        let start = [0.0, 0.0, 4.0];
        let finish = [4.0, 7.0, 9.0];
        let busy = [9.0, 7.0];
        let v = view(&start, &finish, &busy);
        let weighted = Weighted { makespan: 1.0, flowtime: 0.5, balance: 0.25 };
        assert_eq!(Makespan.finalize(&state), Makespan.value(&v));
        assert_eq!(TotalFlowtime.finalize(&state), TotalFlowtime.value(&v));
        assert_eq!(MeanFlowtime.finalize(&state), MeanFlowtime.value(&v));
        assert_eq!(LoadBalance.finalize(&state), LoadBalance.value(&v));
        assert_eq!(weighted.finalize(&state), weighted.value(&v));
        for kind in ObjectiveKind::BASIC {
            assert!(kind.supports_incremental());
            assert_eq!(kind.finalize(&state), kind.value(&v), "{}", kind.label());
        }
    }

    #[test]
    fn state_load_restores_a_checkpoint() {
        let mut state = ObjectiveState::new(2);
        state.fold(MachineId::new(0), 3.0, 3.0);
        let (max, sum, tasks) = (state.max_finish(), state.finish_sum(), state.tasks());
        let busy = state.machine_busy().to_vec();
        state.fold(MachineId::new(1), 8.0, 5.0);
        let mut restored = ObjectiveState::default();
        restored.load(max, sum, tasks, &busy);
        state.reset(2);
        state.fold(MachineId::new(0), 3.0, 3.0);
        assert_eq!(restored, state);
        assert_eq!(MeanFlowtime.finalize(&ObjectiveState::new(3)), 0.0, "empty fold");
    }

    #[test]
    #[should_panic(expected = "does not support incremental")]
    fn finalize_default_panics() {
        struct StartSum;
        impl Objective for StartSum {
            fn name(&self) -> &str {
                "start-sum"
            }
            fn value(&self, view: &EvalView<'_>) -> f64 {
                view.start.iter().sum()
            }
        }
        assert!(!StartSum.supports_incremental());
        let _ = StartSum.finalize(&ObjectiveState::new(1));
    }

    #[test]
    fn parse_and_label_roundtrip() {
        for kind in ObjectiveKind::BASIC {
            assert_eq!(ObjectiveKind::parse(&kind.label()), Some(kind));
        }
        let w = ObjectiveKind::Weighted { makespan: 1.0, flowtime: 0.5, balance: 2.0 };
        assert_eq!(ObjectiveKind::parse(&w.label()), Some(w));
        assert_eq!(ObjectiveKind::parse("weighted:1,0.5,2"), Some(w));
        assert!(ObjectiveKind::parse("bogus").is_none());
        assert!(ObjectiveKind::parse("weighted:1,2").is_none());
        assert!(ObjectiveKind::parse("weighted:1,2,x").is_none());
        assert!(ObjectiveKind::default().is_makespan());
        assert!(!ObjectiveKind::LoadBalance.is_makespan());
    }

    #[test]
    fn from_str_errors_are_descriptive() {
        let err = |s: &str| s.parse::<ObjectiveKind>().unwrap_err();
        assert!(err("bogus").contains("unknown objective"));
        assert!(err("bogus").contains("weighted:MK,FT,LB"), "error lists valid spellings");
        // Wrong arity.
        assert!(err("weighted:1,2").contains("exactly 3"));
        assert!(err("weighted:1,2,3,4").contains("exactly 3"));
        // Missing component.
        assert!(err("weighted:1,,3").contains("missing flowtime"));
        assert!(err("weighted:").contains("exactly 3"), "empty weight list has arity 1");
        // Non-numeric component names the component and the input.
        let e = err("weighted:1,2,x");
        assert!(e.contains("balance") && e.contains("\"x\"") && e.contains("not a number"));
        // Non-finite and negative components are rejected loudly instead
        // of silently steering the search the wrong way.
        assert!(err("weighted:nan,1,1").contains("finite"));
        assert!(err("weighted:inf,1,1").contains("finite"));
        assert!(err("weighted:1,-0.5,1").contains(">= 0"));
        // Happy paths still parse, with whitespace tolerated.
        assert_eq!(
            "weighted: 1 ,0.5, 2".parse::<ObjectiveKind>(),
            Ok(ObjectiveKind::Weighted { makespan: 1.0, flowtime: 0.5, balance: 2.0 })
        );
        assert_eq!("load-balance".parse::<ObjectiveKind>(), Ok(ObjectiveKind::LoadBalance));
        // parse() is exactly from_str().ok().
        assert_eq!(ObjectiveKind::parse("weighted:1,-1,1"), None);
    }
}
