//! Per-iteration trace records emitted by the iterative schedulers.

use serde::{Deserialize, Serialize};

/// One iteration (SE) or generation (GA) worth of observations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Iteration / generation number, starting at 0.
    pub iteration: u64,
    /// Wall-clock seconds since the run started.
    pub elapsed_secs: f64,
    /// Cumulative full schedule evaluations performed so far — the
    /// deterministic cost axis (wall time varies with host load).
    pub evaluations: u64,
    /// Schedule length of the *current* solution (SE) or best-of-
    /// generation (GA).
    pub current_cost: f64,
    /// Best schedule length seen so far.
    pub best_cost: f64,
    /// SE only: number of subtasks placed in the selection set this
    /// iteration (the Fig 3a quantity).
    pub selected: Option<u32>,
    /// GA only: mean schedule length over the population.
    pub population_mean: Option<f64>,
}

/// An append-only sequence of [`TraceRecord`]s for one scheduler run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    records: Vec<TraceRecord>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Trace {
        Trace::default()
    }

    /// Appends a record.
    pub fn push(&mut self, r: TraceRecord) {
        self.records.push(r);
    }

    /// All records in order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether no records were taken.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The last record, if any.
    pub fn last(&self) -> Option<&TraceRecord> {
        self.records.last()
    }

    /// Extracts `(iteration, selected)` — the Fig 3a series. Records
    /// without a selection count are skipped.
    pub fn selected_series(&self) -> crate::series::Series {
        let pts = self
            .records
            .iter()
            .filter_map(|r| r.selected.map(|s| (r.iteration as f64, s as f64)))
            .collect();
        crate::series::Series::from_points("selected", pts)
    }

    /// Extracts `(iteration, current_cost)` — the Fig 3b / Fig 4 series.
    pub fn current_cost_series(&self) -> crate::series::Series {
        let pts = self.records.iter().map(|r| (r.iteration as f64, r.current_cost)).collect();
        crate::series::Series::from_points("current_cost", pts)
    }

    /// Extracts `(elapsed_secs, best_cost)` — the Fig 5–7 series.
    pub fn best_vs_time_series(&self) -> crate::series::Series {
        let pts = self.records.iter().map(|r| (r.elapsed_secs, r.best_cost)).collect();
        crate::series::Series::from_points("best_cost", pts)
    }

    /// Extracts `(evaluations, best_cost)` — the deterministic cost axis.
    pub fn best_vs_evals_series(&self) -> crate::series::Series {
        let pts = self.records.iter().map(|r| (r.evaluations as f64, r.best_cost)).collect();
        crate::series::Series::from_points("best_cost", pts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(i: u64, cur: f64, best: f64, sel: Option<u32>) -> TraceRecord {
        TraceRecord {
            iteration: i,
            elapsed_secs: i as f64 * 0.5,
            evaluations: i * 10,
            current_cost: cur,
            best_cost: best,
            selected: sel,
            population_mean: None,
        }
    }

    #[test]
    fn push_and_query() {
        let mut t = Trace::new();
        assert!(t.is_empty());
        t.push(rec(0, 10.0, 10.0, Some(5)));
        t.push(rec(1, 8.0, 8.0, Some(3)));
        assert_eq!(t.len(), 2);
        assert_eq!(t.last().unwrap().iteration, 1);
        assert_eq!(t.records()[0].best_cost, 10.0);
    }

    #[test]
    fn series_extraction() {
        let mut t = Trace::new();
        t.push(rec(0, 10.0, 10.0, Some(5)));
        t.push(rec(1, 8.0, 8.0, None));
        t.push(rec(2, 9.0, 8.0, Some(2)));
        assert_eq!(t.selected_series().points(), &[(0.0, 5.0), (2.0, 2.0)]);
        assert_eq!(t.current_cost_series().points(), &[(0.0, 10.0), (1.0, 8.0), (2.0, 9.0)]);
        assert_eq!(t.best_vs_time_series().points(), &[(0.0, 10.0), (0.5, 8.0), (1.0, 8.0)]);
        assert_eq!(t.best_vs_evals_series().points(), &[(0.0, 10.0), (10.0, 8.0), (20.0, 8.0)]);
    }
}
