//! Typed errors for platform construction.

use std::fmt;

/// Errors produced when assembling an [`crate::HcSystem`] or
/// [`crate::HcInstance`].
#[derive(Debug, Clone, PartialEq)]
pub enum PlatformError {
    /// The machine set is empty.
    NoMachines,
    /// The execution-time matrix has the wrong shape.
    ExecShape {
        /// Expected `(machines, tasks)`.
        expected: (usize, usize),
        /// Actual `(rows, cols)`.
        actual: (usize, usize),
    },
    /// The transfer-time matrix has the wrong shape.
    TransferShape {
        /// Expected `(machine_pairs, data_items)`.
        expected: (usize, usize),
        /// Actual `(rows, cols)`.
        actual: (usize, usize),
    },
    /// A cost entry was NaN, infinite or negative.
    InvalidCost {
        /// Which matrix: `"E"` or `"Tr"`.
        matrix: &'static str,
        /// Row of the offending entry.
        row: usize,
        /// Column of the offending entry.
        col: usize,
        /// The offending value.
        value: f64,
    },
    /// An execution time was zero or negative — the paper's model requires
    /// strictly positive execution times (goodness `O_i / C_i` divides by
    /// finishing times).
    NonPositiveExecution {
        /// Machine row.
        machine: usize,
        /// Task column.
        task: usize,
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for PlatformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlatformError::NoMachines => write!(f, "HC system needs at least one machine"),
            PlatformError::ExecShape { expected, actual } => write!(
                f,
                "execution matrix shape {actual:?} != expected (machines x tasks) {expected:?}"
            ),
            PlatformError::TransferShape { expected, actual } => write!(
                f,
                "transfer matrix shape {actual:?} != expected (machine pairs x data items) {expected:?}"
            ),
            PlatformError::InvalidCost { matrix, row, col, value } => {
                write!(f, "{matrix}[{row}][{col}] = {value} is not a finite non-negative cost")
            }
            PlatformError::NonPositiveExecution { machine, task, value } => {
                write!(f, "E[{machine}][{task}] = {value}; execution times must be > 0")
            }
        }
    }
}

impl std::error::Error for PlatformError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages() {
        assert!(PlatformError::NoMachines.to_string().contains("at least one"));
        let e = PlatformError::ExecShape { expected: (2, 7), actual: (3, 7) };
        assert!(e.to_string().contains("(3, 7)"));
        let e = PlatformError::InvalidCost { matrix: "Tr", row: 0, col: 1, value: f64::NAN };
        assert!(e.to_string().contains("Tr[0][1]"));
        let e = PlatformError::NonPositiveExecution { machine: 1, task: 2, value: 0.0 };
        assert!(e.to_string().contains("E[1][2]"));
    }
}
