//! # mshc-bench
//!
//! Benchmark and figure-regeneration harness for the SE paper. The
//! library half hosts the experiment runners (shared by the `figures`
//! binary, the Criterion benches and the integration tests); the
//! `benches/` half hosts one Criterion target per figure family plus
//! substrate microbenchmarks.
//!
//! Experiment ↔ figure map (see DESIGN.md §4 for the full index):
//!
//! | paper figure | runner | output |
//! |---|---|---|
//! | Fig 3a/3b | [`experiments::fig3`] | `results/fig3a.csv`, `results/fig3b.csv` |
//! | Fig 4a | [`experiments::fig4`] (low heterogeneity) | `results/fig4a.csv` |
//! | Fig 4b | [`experiments::fig4`] (high heterogeneity) | `results/fig4b.csv` |
//! | Fig 5 | [`experiments::fig5_7`] (high connectivity) | `results/fig5.csv` |
//! | Fig 6 | [`experiments::fig5_7`] (CCR = 1) | `results/fig6.csv` |
//! | Fig 7 | [`experiments::fig5_7`] (easy workload) | `results/fig7.csv` |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod probes;
pub mod report;
