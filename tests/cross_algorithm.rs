//! Cross-algorithm invariants: every scheduler in the suite, on the same
//! seeded workloads, must produce precedence-valid solutions whose
//! makespan agrees with both the analytic evaluator and the independent
//! discrete-event replay.

use mshc::prelude::*;
use std::time::Duration;

fn all_schedulers(seed: u64) -> Vec<Box<dyn Scheduler>> {
    vec![
        Box::new(SeScheduler::new(SeConfig { seed, ..SeConfig::default() })),
        Box::new(GaScheduler::new(GaConfig { seed, ..GaConfig::default() })),
        Box::new(HeftScheduler::new()),
        Box::new(HeftScheduler::with_insertion()),
        Box::new(CpopScheduler::new()),
        Box::new(ListScheduler::new(ListPolicy::Met)),
        Box::new(ListScheduler::new(ListPolicy::Mct)),
        Box::new(ListScheduler::new(ListPolicy::Olb)),
        Box::new(ListScheduler::new(ListPolicy::MinMin)),
        Box::new(ListScheduler::new(ListPolicy::MaxMin)),
        Box::new(RandomSearch::new(seed)),
        Box::new(SimulatedAnnealing::new(SaConfig { seed, ..SaConfig::default() })),
        Box::new(TabuSearch::new(TabuConfig { seed, ..TabuConfig::default() })),
    ]
}

#[test]
fn every_scheduler_valid_and_consistent_on_every_workload_class() {
    let specs = [
        WorkloadSpec::small(1),
        WorkloadSpec::small(2).with_connectivity(Connectivity::High),
        WorkloadSpec::small(3).with_heterogeneity(Heterogeneity::High).with_ccr(1.0),
    ];
    for spec in specs {
        let inst = spec.generate();
        let budget = RunBudget::iterations(25);
        for mut s in all_schedulers(spec.seed) {
            let r = s.run(&inst, &budget, None);
            r.solution
                .check(inst.graph())
                .unwrap_or_else(|e| panic!("{} invalid on {}: {e}", s.name(), spec.tag()));
            let analytic = Evaluator::new(&inst).makespan(&r.solution);
            assert!(
                (analytic - r.makespan).abs() < 1e-9,
                "{} reported {} but evaluator says {analytic}",
                s.name(),
                r.makespan
            );
            let sim = replay(&inst, &r.solution).expect("valid schedules never deadlock");
            assert!((sim.makespan - r.makespan).abs() < 1e-9, "{}: DES replay disagrees", s.name());
        }
    }
}

#[test]
fn iterative_schedulers_beat_random_search() {
    let inst = WorkloadSpec::small(5).with_connectivity(Connectivity::High).generate();
    let budget = RunBudget::evaluations(8_000);
    let random = RandomSearch::new(5).run(&inst, &budget, None).makespan;
    for (name, mk) in [
        (
            "se",
            SeScheduler::new(SeConfig { seed: 5, selection_bias: -0.1, ..SeConfig::default() })
                .run(&inst, &budget, None)
                .makespan,
        ),
        (
            "ga",
            GaScheduler::new(GaConfig { seed: 5, ..GaConfig::default() })
                .run(&inst, &budget, None)
                .makespan,
        ),
        (
            "sa",
            SimulatedAnnealing::new(SaConfig { seed: 5, ..SaConfig::default() })
                .run(&inst, &budget, None)
                .makespan,
        ),
        (
            "tabu",
            TabuSearch::new(TabuConfig { seed: 5, ..TabuConfig::default() })
                .run(&inst, &budget, None)
                .makespan,
        ),
    ] {
        assert!(mk <= random * 1.02, "{name} ({mk}) should not lose to random search ({random})");
    }
}

#[test]
fn se_competitive_with_heft_given_budget() {
    // SE starts from a random solution; with a reasonable budget it should
    // reach (at least) HEFT's one-shot quality on a seeded mid-size
    // workload.
    let inst = WorkloadSpec {
        tasks: 40,
        machines: 6,
        connectivity: Connectivity::Medium,
        heterogeneity: Heterogeneity::Medium,
        ccr: 0.5,
        seed: 11,
    }
    .generate();
    let heft = HeftScheduler::new().run(&inst, &RunBudget::default(), None).makespan;
    let se = SeScheduler::new(SeConfig { seed: 11, selection_bias: -0.1, ..SeConfig::default() })
        .run(&inst, &RunBudget::iterations(400), None)
        .makespan;
    assert!(se <= heft * 1.05, "SE ({se}) should be competitive with HEFT ({heft})");
}

#[test]
fn wall_clock_budgets_are_honored_by_all_iterative_schedulers() {
    let inst = WorkloadSpec::small(6).generate();
    let wall = Duration::from_millis(120);
    let budget = RunBudget::wall(wall);
    for mut s in all_schedulers(6) {
        let name = s.name().to_string();
        if ["heft", "cpop", "met", "mct", "olb", "min-min", "max-min"].contains(&name.as_str()) {
            continue; // one-shot algorithms ignore budgets
        }
        let r = s.run(&inst, &budget, None);
        assert!(
            r.elapsed < wall + Duration::from_secs(5),
            "{name} overran the wall budget grossly: {:?}",
            r.elapsed
        );
        assert!(r.iterations >= 1);
    }
}

#[test]
fn makespan_never_below_dataflow_bound() {
    // Lower bound: every task executed on its globally fastest machine
    // with zero communication and infinite parallelism = the longest path
    // of best-case execution times. No schedule can beat it.
    use mshc::taskgraph::CriticalPath;
    let spec = WorkloadSpec::small(7).with_heterogeneity(Heterogeneity::High);
    let inst = spec.generate();
    let sys = inst.system();
    let bound = CriticalPath::compute(
        inst.graph(),
        |t| sys.machine_ids().map(|m| sys.exec_time(m, t)).fold(f64::INFINITY, f64::min),
        |_, _| 0.0,
    )
    .length;
    for mut s in all_schedulers(7) {
        let r = s.run(&inst, &RunBudget::iterations(20), None);
        assert!(
            r.makespan >= bound - 1e-9,
            "{} reported {} below the dataflow bound {bound}",
            s.name(),
            r.makespan
        );
    }
}
