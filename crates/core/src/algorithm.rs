//! The SE main loop: evaluation → selection → allocation (§3–4).

use crate::config::{AllocationStrategy, SeConfig};
use crate::goodness::{goodness, optimal_costs};
use mshc_platform::{HcInstance, MachineId};
use mshc_schedule::{
    BatchEvaluator, EvalSnapshot, Evaluator, IncrementalEvaluator, Objective, ObjectiveKind,
    RunBudget, RunResult, Scheduler, Solution,
};
use mshc_taskgraph::{Levels, TaskId};
use mshc_trace::{Trace, TraceRecord};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::time::Instant;

/// The simulated-evolution scheduler.
///
/// Construct with an [`SeConfig`] and drive through the
/// [`Scheduler`] trait. A scheduler value is reusable: each
/// [`run`](Scheduler::run) starts fresh from the configured seed.
#[derive(Debug, Clone)]
pub struct SeScheduler {
    config: SeConfig,
}

impl SeScheduler {
    /// Creates a scheduler with the given configuration.
    pub fn new(config: SeConfig) -> SeScheduler {
        SeScheduler { config }
    }

    /// Paper-faithful defaults with the bias auto-set from the instance
    /// size at run time.
    pub fn with_seed(seed: u64) -> SeScheduler {
        SeScheduler::new(SeConfig { seed, ..SeConfig::default() })
    }

    /// The configuration.
    pub fn config(&self) -> &SeConfig {
        &self.config
    }
}

impl Scheduler for SeScheduler {
    fn name(&self) -> &str {
        "se"
    }

    fn run(
        &mut self,
        inst: &HcInstance,
        budget: &RunBudget,
        mut trace: Option<&mut Trace>,
    ) -> RunResult {
        budget.validate().expect("SE is an anytime algorithm");
        let start = Instant::now();
        let g = inst.graph();
        let cfg = self.config;
        let objective = budget.objective;
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);

        // ---- one-time precomputation (§4.3: O_i never changes) ----
        let optimal = optimal_costs(inst);
        let levels = Levels::compute(g);
        let y = cfg.y_limit.unwrap_or(inst.machine_count()).clamp(1, inst.machine_count());
        let allowed: Vec<Vec<MachineId>> = g
            .tasks()
            .map(|t| {
                let mut ranking = inst.system().machine_ranking(t);
                ranking.truncate(y);
                ranking
            })
            .collect();

        // One flattened snapshot shared by the scalar evaluator, the
        // incremental move evaluator and the batch workers for the
        // whole run.
        let snapshot = EvalSnapshot::new(inst);
        let mut eval = Evaluator::with_snapshot(&snapshot);
        let mut inc = IncrementalEvaluator::with_snapshot(&snapshot);
        inc.set_stride(budget.checkpoint_stride);
        let mut batch = BatchEvaluator::new(&snapshot).with_stride(budget.checkpoint_stride);
        let mut moves = Vec::new();

        // ---- initial solution (§4.2) ----
        let perturb = cfg.init_perturbations.unwrap_or(2 * inst.task_count());
        let mut current = mshc_schedule::init::random_solution_with(inst, perturb, &mut rng);
        let mut report = eval.report(&current);
        let mut score = objective.value(&report.view());
        let mut best = current.clone();
        let mut best_score = score;

        let mut iterations = 0u64;
        let mut stall = 0u64;
        let mut selected = Vec::with_capacity(inst.task_count());
        let mut bias = cfg.selection_bias;

        while !budget.exhausted(iterations, eval.evaluations(), start.elapsed(), stall) {
            // ---- evaluation + selection (§4.4) ----
            // Goodness stays the paper's finish-time ratio for every
            // objective: it measures how well an individual task sits,
            // which is what drives selection pressure; the objective
            // decides which *whole schedules* win.
            selected.clear();
            for t in g.tasks() {
                let gi = goodness(optimal[t.index()], report.finish_of(t));
                if rng.gen::<f64>() > gi + bias {
                    selected.push(t);
                }
            }
            let selected_count = selected.len() as u32;
            if let Some(adapt) = cfg.adaptive_bias {
                // Closed loop: over-selection raises the bias (restricts),
                // under-selection lowers it (loosens). Clamped to the
                // paper's published range.
                let fraction = selected_count as f64 / inst.task_count() as f64;
                bias = (bias + adapt.gain * (fraction - adapt.target_fraction)).clamp(-0.3, 0.1);
            }
            levels.sort_by_level(&mut selected);

            // ---- allocation (§4.5) ----
            for &t in &selected {
                allocate(
                    &mut current,
                    inst,
                    &mut eval,
                    &mut inc,
                    &mut batch,
                    &mut moves,
                    t,
                    &allowed[t.index()],
                    &cfg,
                    objective,
                );
            }

            report = eval.report(&current);
            score = objective.value(&report.view());
            if score < best_score {
                best_score = score;
                best = current.clone();
                stall = 0;
            } else {
                stall += 1;
            }
            iterations += 1;

            if let Some(tr) = trace.as_deref_mut() {
                tr.push(TraceRecord {
                    iteration: iterations - 1,
                    elapsed_secs: start.elapsed().as_secs_f64(),
                    evaluations: eval.evaluations(),
                    current_cost: score,
                    best_cost: best_score,
                    selected: Some(selected_count),
                    population_mean: None,
                });
            }
        }

        let makespan = if objective.is_makespan() {
            best_score
        } else {
            // Reporting pass, deliberately uncounted: `evaluations` is
            // the search-cost axis of the figures.
            Evaluator::with_snapshot(&snapshot).makespan(&best)
        };
        RunResult {
            solution: best,
            makespan,
            objective_value: best_score,
            iterations,
            evaluations: eval.evaluations(),
            elapsed: start.elapsed(),
        }
    }
}

/// Constructively re-places `t`: try every valid string position × every
/// allowed machine; commit per the configured strategy. The solution is
/// left at the committed placement.
///
/// The allocation step *relocates* selected individuals (§4.5): the
/// task's exact current `(position, machine)` pair is excluded from the
/// candidate grid, so a selected task always moves. This is what keeps SE
/// from being a pure monotone descent — a forced move can be uphill, and
/// §3 explicitly wants allocation to improve "without being too greedy".
/// (The best solution seen is tracked by the main loop, so uphill steps
/// never lose the incumbent.) The sole exception is a task with no
/// alternative placement (valid range of one position and a single
/// allowed machine), which stays put.
///
/// Three evaluation routes, all committing the same argmin (ties break
/// to the earliest candidate in `(position, machine)` grid order, so the
/// routes are bit-identical for every built-in objective):
///
/// * `parallel_allocation` (best-fit only) — the whole grid is scored in
///   one [`BatchEvaluator::score_moves`] call across worker threads
///   (which itself routes through per-thread incremental evaluators);
/// * `incremental_eval` — the serial incremental scan: the base is
///   primed once and every candidate is scored by checkpoint-resumed
///   suffix replay, without mutating the solution. Works for every
///   [`ObjectiveKind`] through the accumulator-finalize interface;
/// * otherwise — serial full objective passes (the ablation baseline,
///   and the only route for custom non-incremental objectives).
///
/// [`AllocationStrategy::FirstImprovement`] is inherently sequential
/// (the commit depends on scan order cutting the scan short), so it
/// always takes the serial route even when `parallel_allocation` is set.
#[allow(clippy::too_many_arguments)]
fn allocate(
    sol: &mut Solution,
    inst: &HcInstance,
    eval: &mut Evaluator<'_>,
    inc: &mut IncrementalEvaluator<'_>,
    batch: &mut BatchEvaluator<'_>,
    moves: &mut Vec<(usize, MachineId)>,
    t: TaskId,
    machines: &[MachineId],
    cfg: &SeConfig,
    objective: ObjectiveKind,
) {
    let g = inst.graph();
    let (lo, hi) = sol.valid_range(g, t);
    debug_assert!(!machines.is_empty());
    let orig_pos = sol.position_of(t);
    let orig_m = sol.machine_of(t);
    if hi == lo && machines.len() == 1 && machines[0] == orig_m {
        return; // nowhere else to go
    }

    if cfg.parallel_allocation && cfg.allocation == AllocationStrategy::BestFit {
        moves.clear();
        moves.extend(
            (lo..=hi)
                .flat_map(|pos| machines.iter().map(move |&m| (pos, m)))
                .filter(|&(pos, m)| pos != orig_pos || m != orig_m),
        );
        let scores = batch.score_moves(g, sol, t, moves, &objective);
        eval.bump_evaluations(scores.len() as u64);
        let (idx, _cost) = scores
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1).then(a.0.cmp(&b.0)))
            .expect("non-empty candidate grid");
        let (pos, m) = moves[idx];
        sol.move_task(g, t, pos, m).expect("committing the best candidate");
        return;
    }

    let use_incremental = cfg.incremental_eval && objective.supports_incremental();
    // The incremental route primes once (a full pass) and reads the
    // current cost off the fold for free. It is charged 2 evaluations —
    // one for the current-cost read, one for the priming pass — exactly
    // what this route has always charged (a counted current-cost pass
    // plus a counted prime), so evaluation budgets and reported counts
    // are stable across releases. The full-pass ablation route charges
    // 1 (no prime), as it always has: decisions are bit-identical
    // between the routes, evaluation *counts* are not — don't compare
    // the flag settings under a max_evaluations budget.
    let current_cost = if use_incremental {
        inc.prime(sol);
        eval.bump_evaluations(2);
        inc.base_score(&objective)
    } else {
        eval.objective_value(sol, &objective)
    };
    let mut best_pos = orig_pos;
    let mut best_m = orig_m;
    let mut best_cost = f64::INFINITY;
    'search: for pos in lo..=hi {
        for &m in machines {
            if pos == orig_pos && m == orig_m {
                continue; // relocation is mandatory
            }
            let cost = if use_incremental {
                eval.bump_evaluations(1);
                inc.score_move(t, pos, m, &objective)
            } else {
                sol.move_task(g, t, pos, m).expect("candidate within valid range");
                eval.objective_value(sol, &objective)
            };
            if cost < best_cost {
                best_cost = cost;
                best_pos = pos;
                best_m = m;
                if cfg.allocation == AllocationStrategy::FirstImprovement && cost < current_cost {
                    break 'search;
                }
            }
        }
    }
    sol.move_task(g, t, best_pos, best_m).expect("committing the best candidate");
}

#[cfg(test)]
mod tests {
    use super::*;
    use mshc_platform::{HcSystem, Matrix};
    use mshc_schedule::replay;
    use mshc_taskgraph::gen::{layered, LayeredConfig};
    use mshc_taskgraph::TaskGraphBuilder;

    /// Deterministic random instance: layered DAG + uniform random
    /// matrices, all seeded.
    fn random_instance(tasks: usize, machines: usize, seed: u64) -> HcInstance {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let cfg = LayeredConfig { tasks, mean_width: 4, edge_prob: 0.5, skip_prob: 0.05 };
        let graph = layered(&cfg, &mut rng).unwrap();
        let exec = Matrix::from_fn(machines, tasks, |_, _| rng.gen_range(10.0..100.0));
        let pairs = machines * (machines - 1) / 2;
        let transfer = Matrix::from_fn(pairs, graph.data_count(), |_, _| rng.gen_range(1.0..30.0));
        let sys = HcSystem::with_anonymous_machines(machines, exec, transfer).unwrap();
        HcInstance::new(graph, sys).unwrap()
    }

    #[test]
    fn se_improves_over_initial_solution() {
        let inst = random_instance(30, 4, 1);
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let mut eval = Evaluator::new(&inst);
        // Mean makespan of random solutions as the "no search" baseline.
        let baseline: f64 = (0..20)
            .map(|_| eval.makespan(&mshc_schedule::random_solution(&inst, &mut rng)))
            .sum::<f64>()
            / 20.0;
        let mut se =
            SeScheduler::new(SeConfig { seed: 5, selection_bias: -0.1, ..Default::default() });
        let result = se.run(&inst, &RunBudget::iterations(60), None);
        assert!(
            result.makespan < baseline * 0.85,
            "SE ({}) should beat random baseline ({baseline}) clearly",
            result.makespan
        );
    }

    #[test]
    fn se_result_is_valid_and_matches_des_replay() {
        let inst = random_instance(25, 3, 2);
        let mut se = SeScheduler::with_seed(3);
        let result = se.run(&inst, &RunBudget::iterations(40), None);
        result.solution.check(inst.graph()).unwrap();
        let sim = replay(&inst, &result.solution).unwrap();
        assert!((sim.makespan - result.makespan).abs() < 1e-9);
        let analytic = Evaluator::new(&inst).makespan(&result.solution);
        assert!((analytic - result.makespan).abs() < 1e-9);
    }

    #[test]
    fn se_is_deterministic_under_seed() {
        let inst = random_instance(20, 3, 4);
        let run = |seed| SeScheduler::with_seed(seed).run(&inst, &RunBudget::iterations(25), None);
        let a = run(11);
        let b = run(11);
        assert_eq!(a.solution, b.solution);
        assert_eq!(a.makespan, b.makespan);
        let c = run(12);
        assert!(c.solution != a.solution || c.makespan == a.makespan);
    }

    #[test]
    fn parallel_allocation_matches_serial_at_every_thread_count() {
        // The determinism guard: the batch path must commit bit-identical
        // decisions to the serial scan with 1, 2 and N worker threads.
        let inst = random_instance(18, 4, 6);
        let serial = SeScheduler::new(SeConfig { seed: 21, ..Default::default() }).run(
            &inst,
            &RunBudget::iterations(15),
            None,
        );
        for threads in [1usize, 2, 8] {
            let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
            let parallel = pool.install(|| {
                SeScheduler::new(SeConfig {
                    seed: 21,
                    parallel_allocation: true,
                    ..Default::default()
                })
                .run(&inst, &RunBudget::iterations(15), None)
            });
            assert_eq!(
                serial.solution, parallel.solution,
                "deterministic argmin must agree ({threads} threads)"
            );
            assert_eq!(serial.makespan, parallel.makespan, "{threads} threads");
        }
    }

    #[test]
    fn first_improvement_ignores_parallel_allocation_flag() {
        // FirstImprovement is order-dependent, so the batch route must
        // not serve it: with both flags set, runs match the serial
        // first-improvement scan exactly.
        let inst = random_instance(16, 3, 41);
        let budget = RunBudget::iterations(12);
        let serial = SeScheduler::new(SeConfig {
            seed: 8,
            allocation: AllocationStrategy::FirstImprovement,
            ..Default::default()
        })
        .run(&inst, &budget, None);
        let flagged = SeScheduler::new(SeConfig {
            seed: 8,
            allocation: AllocationStrategy::FirstImprovement,
            parallel_allocation: true,
            ..Default::default()
        })
        .run(&inst, &budget, None);
        assert_eq!(serial.solution, flagged.solution);
        assert_eq!(serial.evaluations, flagged.evaluations);
    }

    #[test]
    fn objective_generic_se_optimizes_each_objective() {
        use mshc_schedule::{objective_from_report, replay};
        let inst = random_instance(24, 4, 16);
        for kind in [
            ObjectiveKind::TotalFlowtime,
            ObjectiveKind::MeanFlowtime,
            ObjectiveKind::Weighted { makespan: 1.0, flowtime: 0.5, balance: 0.5 },
        ] {
            let budget = RunBudget::iterations(30).with_objective(kind);
            let r = SeScheduler::with_seed(9).run(&inst, &budget, None);
            r.solution.check(inst.graph()).unwrap();
            // Reported objective value matches the DES replay oracle.
            let sim = replay(&inst, &r.solution).unwrap();
            let oracle = objective_from_report(&kind, &sim);
            assert!(
                (r.objective_value - oracle).abs() < 1e-9,
                "{}: {} vs oracle {oracle}",
                kind.label(),
                r.objective_value
            );
            // Makespan is still reported truthfully alongside.
            assert!((r.makespan - sim.makespan).abs() < 1e-9);
        }
    }

    #[test]
    fn flowtime_objective_changes_the_search_target() {
        // On a seeded instance, optimizing total flowtime must reach a
        // flowtime at least as good as what the makespan run stumbles
        // into, and the makespan run must win on makespan — i.e. the
        // objective genuinely steers the search.
        let inst = random_instance(30, 4, 17);
        let mk_run = SeScheduler::with_seed(3).run(&inst, &RunBudget::iterations(80), None);
        let ft_budget = RunBudget::iterations(80).with_objective(ObjectiveKind::TotalFlowtime);
        let ft_run = SeScheduler::with_seed(3).run(&inst, &ft_budget, None);
        let mut eval = Evaluator::new(&inst);
        let mk_run_ft = eval.objective_value(&mk_run.solution, &ObjectiveKind::TotalFlowtime);
        assert!(
            ft_run.objective_value <= mk_run_ft + 1e-9,
            "flowtime run ({}) must beat/match the makespan run's flowtime ({mk_run_ft})",
            ft_run.objective_value
        );
        assert!(
            mk_run.makespan <= ft_run.makespan + 1e-9,
            "makespan run ({}) must beat/match the flowtime run's makespan ({})",
            mk_run.makespan,
            ft_run.makespan
        );
    }

    #[test]
    fn makespan_objective_value_equals_makespan() {
        let inst = random_instance(15, 3, 19);
        let r = SeScheduler::with_seed(2).run(&inst, &RunBudget::iterations(20), None);
        assert_eq!(r.makespan, r.objective_value);
    }

    #[test]
    fn adaptive_bias_tracks_target_fraction() {
        use crate::config::AdaptiveBias;
        let inst = random_instance(40, 5, 18);
        let target = 0.25;
        let mut se = SeScheduler::new(SeConfig {
            seed: 6,
            selection_bias: 0.0,
            adaptive_bias: Some(AdaptiveBias { target_fraction: target, gain: 0.08 }),
            ..Default::default()
        });
        let mut trace = Trace::new();
        let r = se.run(&inst, &RunBudget::iterations(120), Some(&mut trace));
        r.solution.check(inst.graph()).unwrap();
        // Mean selection fraction over the second half of the run should
        // hover near the target; a fixed bias on the same instance drifts
        // to near-zero selection as goodness saturates.
        let tail: Vec<f64> =
            trace.records()[60..].iter().map(|rec| rec.selected.unwrap() as f64 / 40.0).collect();
        let mean = tail.iter().sum::<f64>() / tail.len() as f64;
        assert!(
            (mean - target).abs() < 0.12,
            "adaptive selection fraction {mean} should track target {target}"
        );
    }

    #[test]
    fn incremental_eval_matches_full_eval_runs() {
        // The suffix-checkpoint fast path must not change a single
        // decision: whole runs are bit-identical with the flag on/off.
        for seed in [3u64, 17, 91] {
            let inst = random_instance(22, 4, seed);
            let fast =
                SeScheduler::new(SeConfig { seed, incremental_eval: true, ..Default::default() })
                    .run(&inst, &RunBudget::iterations(20), None);
            let slow =
                SeScheduler::new(SeConfig { seed, incremental_eval: false, ..Default::default() })
                    .run(&inst, &RunBudget::iterations(20), None);
            assert_eq!(fast.solution, slow.solution, "seed {seed}");
            assert_eq!(fast.makespan, slow.makespan);
        }
    }

    #[test]
    fn budget_limits_iterations_and_stall() {
        let inst = random_instance(15, 3, 7);
        let mut se = SeScheduler::with_seed(1);
        let r = se.run(&inst, &RunBudget::iterations(8), None);
        assert_eq!(r.iterations, 8);

        let r = se.run(&inst, &RunBudget::iterations(10_000).with_stall(5), None);
        assert!(r.iterations < 10_000, "stall window must cut the run short");
    }

    #[test]
    fn evaluation_budget_respected_approximately() {
        let inst = random_instance(15, 3, 8);
        let mut se = SeScheduler::with_seed(2);
        let r = se.run(&inst, &RunBudget::evaluations(2_000), None);
        // The loop checks between iterations, so the overshoot is at most
        // one iteration's worth of allocations.
        assert!(r.evaluations >= 2_000);
        assert!(r.evaluations < 2_000 + 15 * 15 * 3 + 20);
    }

    #[test]
    fn trace_records_selected_counts_and_costs() {
        let inst = random_instance(20, 3, 9);
        let mut se =
            SeScheduler::new(SeConfig { seed: 4, selection_bias: -0.2, ..Default::default() });
        let mut trace = Trace::new();
        let r = se.run(&inst, &RunBudget::iterations(30), Some(&mut trace));
        assert_eq!(trace.len(), 30);
        for (i, rec) in trace.records().iter().enumerate() {
            assert_eq!(rec.iteration, i as u64);
            assert!(rec.selected.is_some());
            assert!(rec.best_cost <= rec.current_cost + 1e-9);
            assert!(rec.best_cost > 0.0);
        }
        assert_eq!(trace.last().unwrap().best_cost, r.makespan);
        // best_cost is non-increasing
        for w in trace.records().windows(2) {
            assert!(w[1].best_cost <= w[0].best_cost + 1e-12);
        }
    }

    #[test]
    fn selection_pressure_decays() {
        // Fig 3a shape: the mean selected count over the last quarter of a
        // run should be well below the first iteration's.
        let inst = random_instance(40, 5, 10);
        let mut se =
            SeScheduler::new(SeConfig { seed: 6, selection_bias: 0.0, ..Default::default() });
        let mut trace = Trace::new();
        se.run(&inst, &RunBudget::iterations(80), Some(&mut trace));
        let recs = trace.records();
        let first = recs[0].selected.unwrap() as f64;
        let tail: Vec<f64> = recs[60..].iter().map(|r| r.selected.unwrap() as f64).collect();
        let tail_mean = tail.iter().sum::<f64>() / tail.len() as f64;
        assert!(
            tail_mean < first * 0.7,
            "selected tasks must decay: first {first}, tail mean {tail_mean}"
        );
    }

    #[test]
    fn y_limits_machines_used_by_allocation() {
        // With Y=1 every allocated task must end on its best machine; run
        // long enough that every task is re-allocated at least once.
        let inst = random_instance(15, 4, 11);
        let mut se = SeScheduler::new(SeConfig {
            seed: 13,
            y_limit: Some(1),
            selection_bias: -0.9, // select (almost) everything
            ..Default::default()
        });
        let r = se.run(&inst, &RunBudget::iterations(10), None);
        let sys = inst.system();
        for t in inst.graph().tasks() {
            assert_eq!(
                r.solution.machine_of(t),
                sys.best_machine(t),
                "Y=1 pins {t} to its best machine"
            );
        }
    }

    #[test]
    fn y_larger_than_machine_count_clamps() {
        let inst = random_instance(12, 3, 12);
        let mut se =
            SeScheduler::new(SeConfig { seed: 1, y_limit: Some(99), ..Default::default() });
        let r = se.run(&inst, &RunBudget::iterations(5), None);
        r.solution.check(inst.graph()).unwrap();
    }

    #[test]
    fn first_improvement_strategy_runs_and_is_valid() {
        let inst = random_instance(20, 3, 14);
        let best_fit = SeScheduler::new(SeConfig { seed: 5, ..Default::default() }).run(
            &inst,
            &RunBudget::iterations(20),
            None,
        );
        let first = SeScheduler::new(SeConfig {
            seed: 5,
            allocation: AllocationStrategy::FirstImprovement,
            ..Default::default()
        })
        .run(&inst, &RunBudget::iterations(20), None);
        first.solution.check(inst.graph()).unwrap();
        assert!(
            first.evaluations <= best_fit.evaluations,
            "first-improvement must not evaluate more than best-fit"
        );
    }

    #[test]
    fn single_task_instance_terminates() {
        let g = TaskGraphBuilder::new(1).build().unwrap();
        let sys = HcSystem::with_anonymous_machines(
            2,
            Matrix::from_rows(&[vec![5.0], vec![3.0]]),
            Matrix::filled(1, 0, 0.0),
        )
        .unwrap();
        let inst = HcInstance::new(g, sys).unwrap();
        let mut se = SeScheduler::with_seed(0);
        let r = se.run(&inst, &RunBudget::iterations(10), None);
        assert_eq!(r.makespan, 3.0, "single task lands on its best machine");
    }

    #[test]
    #[should_panic(expected = "anytime")]
    fn unbounded_budget_rejected() {
        let inst = random_instance(5, 2, 15);
        SeScheduler::with_seed(0).run(&inst, &RunBudget::default(), None);
    }

    #[test]
    fn scheduler_name() {
        assert_eq!(SeScheduler::with_seed(0).name(), "se");
    }
}
