//! Fig 3 bench target: the cost of SE iterations on the Fig-3 workload
//! (large size, high connectivity), including the serial vs parallel
//! allocation ablation called out in DESIGN.md.

use criterion::{criterion_group, criterion_main, Criterion};
use mshc_core::{SeConfig, SeScheduler};
use mshc_schedule::{RunBudget, Scheduler};
use mshc_workloads::FigureWorkload;
use std::hint::black_box;

fn bench_se_iterations(c: &mut Criterion) {
    let inst = FigureWorkload::Fig3.spec(2001).generate();
    let mut group = c.benchmark_group("fig3_se");
    group.bench_function("5_iterations_serial", |b| {
        b.iter(|| {
            let mut se =
                SeScheduler::new(SeConfig { seed: 1, selection_bias: 0.05, ..SeConfig::default() });
            black_box(se.run(&inst, &RunBudget::iterations(5), None).makespan)
        })
    });
    group.bench_function("5_iterations_parallel_alloc", |b| {
        b.iter(|| {
            let mut se = SeScheduler::new(SeConfig {
                seed: 1,
                selection_bias: 0.05,
                parallel_allocation: true,
                ..SeConfig::default()
            });
            black_box(se.run(&inst, &RunBudget::iterations(5), None).makespan)
        })
    });
    group.bench_function("5_iterations_full_eval", |b| {
        b.iter(|| {
            let mut se = SeScheduler::new(SeConfig {
                seed: 1,
                selection_bias: 0.05,
                incremental_eval: false,
                ..SeConfig::default()
            });
            black_box(se.run(&inst, &RunBudget::iterations(5), None).makespan)
        })
    });
    group.finish();
}

fn bench_goodness_precompute(c: &mut Criterion) {
    let inst = FigureWorkload::Fig3.spec(2001).generate();
    c.bench_function("fig3_se/optimal_costs_precompute", |b| {
        b.iter(|| black_box(mshc_core::optimal_costs(&inst)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(8)).warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_se_iterations, bench_goodness_precompute
}
criterion_main!(benches);
