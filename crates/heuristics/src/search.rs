//! Iterative metaheuristic baselines: random search, simulated annealing
//! and tabu search over the same valid-range move neighborhood SE uses.
//!
//! All three optimize whatever [`ObjectiveKind`] the run budget carries.
//! The move-based searches are move-oriented end to end: SA scores each
//! proposal through an [`IncrementalEvaluator`] (suffix replay against
//! the primed current solution — no mutate/undo per rejected proposal),
//! and tabu scores each iteration's sampled neighborhood through the
//! parallel [`BatchEvaluator`] in one call (which routes through
//! per-thread incremental evaluators itself).

use mshc_platform::{HcInstance, MachineId};
use mshc_schedule::{
    random_solution, BatchEvaluator, EvalSnapshot, Evaluator, IncrementalEvaluator, ObjectiveKind,
    RunBudget, RunResult, Scheduler, Solution,
};
use mshc_taskgraph::TaskId;
use mshc_trace::{Trace, TraceRecord};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Makespan to report alongside a best objective value: reuses the value
/// when the objective *is* makespan, otherwise runs one (uncounted)
/// reporting pass.
fn reported_makespan(
    inst: &HcInstance,
    best: &Solution,
    best_value: f64,
    objective: ObjectiveKind,
) -> f64 {
    if objective.is_makespan() {
        best_value
    } else {
        Evaluator::new(inst).makespan(best)
    }
}

/// Uniformly samples a neighbor move `(task, position, machine)` from the
/// valid-range neighborhood of `sol` **without applying it** — the
/// move-oriented searches score moves against the unmutated base.
///
/// The RNG consumption order (task, position, machine) is pinned: it is
/// what keeps the incremental SA bit-identical to the historic
/// mutate-evaluate-undo loop.
fn sample_move<R: Rng + ?Sized>(
    sol: &Solution,
    inst: &HcInstance,
    rng: &mut R,
) -> (TaskId, usize, MachineId) {
    let t = TaskId::from_usize(rng.gen_range(0..inst.task_count()));
    let (lo, hi) = sol.valid_range(inst.graph(), t);
    let pos = rng.gen_range(lo..=hi);
    let m = MachineId::from_usize(rng.gen_range(0..inst.machine_count()));
    (t, pos, m)
}

/// Pure random restarts: sample fresh random valid solutions, keep the
/// best. The weakest sensible baseline; everything else should beat it.
#[derive(Debug, Clone)]
pub struct RandomSearch {
    seed: u64,
}

impl RandomSearch {
    /// Creates the search with a seed.
    pub fn new(seed: u64) -> RandomSearch {
        RandomSearch { seed }
    }
}

impl Scheduler for RandomSearch {
    fn name(&self) -> &str {
        "random"
    }

    fn run(
        &mut self,
        inst: &HcInstance,
        budget: &RunBudget,
        mut trace: Option<&mut Trace>,
    ) -> RunResult {
        budget.validate().expect("random search needs a budget");
        let start = Instant::now();
        let objective = budget.objective;
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let mut eval = Evaluator::new(inst);
        let mut best = random_solution(inst, &mut rng);
        let mut best_cost = eval.objective_value(&best, &objective);
        let mut iterations = 1u64;
        let mut stall = 0u64;
        while !budget.exhausted(iterations, eval.evaluations(), start.elapsed(), stall) {
            let cand = random_solution(inst, &mut rng);
            let cost = eval.objective_value(&cand, &objective);
            if cost < best_cost {
                best_cost = cost;
                best = cand;
                stall = 0;
            } else {
                stall += 1;
            }
            iterations += 1;
            if let Some(tr) = trace.as_deref_mut() {
                tr.push(TraceRecord {
                    iteration: iterations - 1,
                    elapsed_secs: start.elapsed().as_secs_f64(),
                    evaluations: eval.evaluations(),
                    current_cost: cost,
                    best_cost,
                    selected: None,
                    population_mean: None,
                });
            }
        }
        let makespan = reported_makespan(inst, &best, best_cost, objective);
        RunResult {
            solution: best,
            makespan,
            objective_value: best_cost,
            iterations,
            evaluations: eval.evaluations(),
            elapsed: start.elapsed(),
        }
    }
}

/// Simulated-annealing parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SaConfig {
    /// Initial temperature as a fraction of the initial makespan.
    pub initial_temp_fraction: f64,
    /// Geometric cooling factor per iteration.
    pub cooling: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SaConfig {
    fn default() -> Self {
        SaConfig { initial_temp_fraction: 0.2, cooling: 0.999, seed: 42 }
    }
}

/// Simulated annealing over the valid-range move neighborhood (the
/// Flan/Freund-style genetic-simulated-annealing lineage the paper cites
/// as \[8\], reduced to its SA core).
///
/// Proposals are scored through an [`IncrementalEvaluator`] primed on
/// the current solution: a rejected proposal costs only a suffix replay
/// (and no mutate/undo), an accepted one re-primes the evaluator. The
/// trajectory is bit-identical to the historic full-evaluation loop for
/// the makespan objective.
#[derive(Debug, Clone)]
pub struct SimulatedAnnealing {
    config: SaConfig,
}

impl SimulatedAnnealing {
    /// Creates the scheduler.
    pub fn new(config: SaConfig) -> SimulatedAnnealing {
        assert!(config.cooling > 0.0 && config.cooling < 1.0, "cooling in (0,1)");
        assert!(config.initial_temp_fraction > 0.0, "temperature must be positive");
        SimulatedAnnealing { config }
    }
}

impl Scheduler for SimulatedAnnealing {
    fn name(&self) -> &str {
        "sa"
    }

    fn run(
        &mut self,
        inst: &HcInstance,
        budget: &RunBudget,
        mut trace: Option<&mut Trace>,
    ) -> RunResult {
        budget.validate().expect("SA needs a budget");
        let start = Instant::now();
        let cfg = self.config;
        let objective = budget.objective;
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        let mut inc = IncrementalEvaluator::new(inst);
        inc.set_stride(budget.checkpoint_stride);
        let mut current = random_solution(inst, &mut rng);
        inc.prime(&current);
        let mut current_cost = inc.base_score(&objective);
        // One evaluation for the initial priming pass; thereafter one per
        // proposal (re-primes on acceptance are uncounted cache rebuilds,
        // keeping the axis identical to the historic full-pass loop).
        let evals = |inc: &IncrementalEvaluator<'_>| 1 + inc.evaluations();
        let mut best = current.clone();
        let mut best_cost = current_cost;
        let mut temp = current_cost.max(f64::MIN_POSITIVE) * cfg.initial_temp_fraction;
        let mut iterations = 0u64;
        let mut stall = 0u64;
        while !budget.exhausted(iterations, evals(&inc), start.elapsed(), stall) {
            // Propose a move and score it by suffix replay — the current
            // solution is only mutated on acceptance.
            let (t, pos, m) = sample_move(&current, inst, &mut rng);
            let cand_cost = inc.score_move(t, pos, m, &objective);
            let accept = cand_cost <= current_cost
                || rng.gen::<f64>() < ((current_cost - cand_cost) / temp.max(1e-12)).exp();
            if accept {
                current.move_task(inst.graph(), t, pos, m).expect("in-range move");
                current_cost = cand_cost;
                inc.prime(&current);
            }
            if current_cost < best_cost {
                best_cost = current_cost;
                best = current.clone();
                stall = 0;
            } else {
                stall += 1;
            }
            temp *= cfg.cooling;
            iterations += 1;
            if let Some(tr) = trace.as_deref_mut() {
                tr.push(TraceRecord {
                    iteration: iterations - 1,
                    elapsed_secs: start.elapsed().as_secs_f64(),
                    evaluations: evals(&inc),
                    current_cost,
                    best_cost,
                    selected: None,
                    population_mean: None,
                });
            }
        }
        let makespan = reported_makespan(inst, &best, best_cost, objective);
        let evaluations = evals(&inc);
        RunResult {
            solution: best,
            makespan,
            objective_value: best_cost,
            iterations,
            evaluations,
            elapsed: start.elapsed(),
        }
    }
}

/// Tabu-search parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TabuConfig {
    /// Iterations a moved task stays tabu.
    pub tenure: u64,
    /// Neighbor moves sampled per iteration.
    pub samples: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TabuConfig {
    fn default() -> Self {
        TabuConfig { tenure: 8, samples: 24, seed: 42 }
    }
}

/// Sampled-neighborhood tabu search: each iteration samples `samples`
/// moves, scores the whole sample in one [`BatchEvaluator`] call, applies
/// the best whose task is not tabu (aspiration: a move beating the global
/// best is always allowed), and marks the moved task tabu for `tenure`
/// iterations. Moves are drawn *before* any is scored, so results are
/// bit-identical to the historic move-eval-undo loop at any thread count.
#[derive(Debug, Clone)]
pub struct TabuSearch {
    config: TabuConfig,
}

impl TabuSearch {
    /// Creates the scheduler.
    pub fn new(config: TabuConfig) -> TabuSearch {
        assert!(config.samples > 0, "need at least one sample per iteration");
        TabuSearch { config }
    }
}

impl Scheduler for TabuSearch {
    fn name(&self) -> &str {
        "tabu"
    }

    fn run(
        &mut self,
        inst: &HcInstance,
        budget: &RunBudget,
        mut trace: Option<&mut Trace>,
    ) -> RunResult {
        budget.validate().expect("tabu search needs a budget");
        let start = Instant::now();
        let cfg = self.config;
        let g = inst.graph();
        let objective = budget.objective;
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        let snapshot = EvalSnapshot::new(inst);
        let mut eval = Evaluator::with_snapshot(&snapshot);
        let mut batch = BatchEvaluator::new(&snapshot).with_stride(budget.checkpoint_stride);
        let mut sampled: Vec<(TaskId, usize, MachineId)> = Vec::with_capacity(cfg.samples);
        let mut current = random_solution(inst, &mut rng);
        let mut current_cost = eval.objective_value(&current, &objective);
        let mut best = current.clone();
        let mut best_cost = current_cost;
        let mut tabu_until = vec![0u64; inst.task_count()];
        let mut iterations = 0u64;
        let mut stall = 0u64;
        let evals = |eval: &Evaluator<'_>, batch: &BatchEvaluator<'_>| {
            eval.evaluations() + batch.evaluations()
        };
        while !budget.exhausted(iterations, evals(&eval, &batch), start.elapsed(), stall) {
            // Sample the neighborhood, then score the whole sample at once.
            sampled.clear();
            for _ in 0..cfg.samples {
                let t = TaskId::from_usize(rng.gen_range(0..inst.task_count()));
                let (lo, hi) = current.valid_range(g, t);
                let pos = rng.gen_range(lo..=hi);
                let m = MachineId::from_usize(rng.gen_range(0..inst.machine_count()));
                sampled.push((t, pos, m));
            }
            let costs = batch.score_task_moves(g, &current, &sampled, &objective);
            let mut chosen: Option<(TaskId, usize, MachineId, f64)> = None;
            for (&(t, pos, m), &cost) in sampled.iter().zip(&costs) {
                let tabu = tabu_until[t.index()] > iterations;
                let aspiration = cost < best_cost;
                if (tabu && !aspiration) || chosen.as_ref().is_some_and(|c| c.3 <= cost) {
                    continue;
                }
                chosen = Some((t, pos, m, cost));
            }
            if let Some((t, pos, m, cost)) = chosen {
                current.move_task(g, t, pos, m).expect("apply chosen");
                current_cost = cost;
                tabu_until[t.index()] = iterations + cfg.tenure;
                if current_cost < best_cost {
                    best_cost = current_cost;
                    best = current.clone();
                    stall = 0;
                } else {
                    stall += 1;
                }
            } else {
                stall += 1;
            }
            iterations += 1;
            if let Some(tr) = trace.as_deref_mut() {
                tr.push(TraceRecord {
                    iteration: iterations - 1,
                    elapsed_secs: start.elapsed().as_secs_f64(),
                    evaluations: evals(&eval, &batch),
                    current_cost,
                    best_cost,
                    selected: None,
                    population_mean: None,
                });
            }
        }
        let makespan = reported_makespan(inst, &best, best_cost, objective);
        let evaluations = evals(&eval, &batch);
        RunResult {
            solution: best,
            makespan,
            objective_value: best_cost,
            iterations,
            evaluations,
            elapsed: start.elapsed(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mshc_platform::{HcSystem, Matrix};
    use mshc_taskgraph::gen::{layered, LayeredConfig};

    fn random_instance(tasks: usize, machines: usize, seed: u64) -> HcInstance {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let cfg = LayeredConfig { tasks, mean_width: 4, edge_prob: 0.5, skip_prob: 0.05 };
        let graph = layered(&cfg, &mut rng).unwrap();
        let exec = Matrix::from_fn(machines, tasks, |_, _| rng.gen_range(10.0..100.0));
        let pairs = machines * (machines - 1) / 2;
        let transfer = Matrix::from_fn(pairs, graph.data_count(), |_, _| rng.gen_range(1.0..30.0));
        let sys = HcSystem::with_anonymous_machines(machines, exec, transfer).unwrap();
        HcInstance::new(graph, sys).unwrap()
    }

    #[test]
    fn random_search_finds_valid_solutions() {
        let inst = random_instance(20, 3, 31);
        let mut rs = RandomSearch::new(1);
        let r = rs.run(&inst, &RunBudget::iterations(100), None);
        r.solution.check(inst.graph()).unwrap();
        assert_eq!(r.iterations, 100);
        assert_eq!(rs.name(), "random");
    }

    #[test]
    fn sa_improves_on_its_own_start_and_is_valid() {
        let inst = random_instance(25, 4, 32);
        let mut sa = SimulatedAnnealing::new(SaConfig { seed: 2, ..Default::default() });
        let mut trace = Trace::new();
        let r = sa.run(&inst, &RunBudget::iterations(2_000), Some(&mut trace));
        r.solution.check(inst.graph()).unwrap();
        let first = trace.records()[0].current_cost;
        assert!(r.makespan < first, "SA best {} must beat its start {first}", r.makespan);
        assert_eq!(sa.name(), "sa");
    }

    #[test]
    fn sa_rejected_moves_are_undone_correctly() {
        // Validity after thousands of accept/undo cycles is the regression
        // this guards.
        let inst = random_instance(15, 3, 33);
        let mut sa =
            SimulatedAnnealing::new(SaConfig { seed: 3, cooling: 0.9, ..Default::default() });
        let r = sa.run(&inst, &RunBudget::iterations(3_000), None);
        r.solution.check(inst.graph()).unwrap();
        let mk = Evaluator::new(&inst).makespan(&r.solution);
        assert!((mk - r.makespan).abs() < 1e-9);
    }

    #[test]
    fn tabu_valid_and_beats_random_start() {
        let inst = random_instance(25, 4, 34);
        let mut ts = TabuSearch::new(TabuConfig { seed: 4, ..Default::default() });
        let mut trace = Trace::new();
        let r = ts.run(&inst, &RunBudget::iterations(300), Some(&mut trace));
        r.solution.check(inst.graph()).unwrap();
        assert!(r.makespan < trace.records()[0].current_cost * 1.001);
        assert_eq!(ts.name(), "tabu");
    }

    #[test]
    fn metaheuristics_deterministic_under_seed() {
        let inst = random_instance(15, 3, 35);
        let budget = RunBudget::iterations(200);
        let a = SimulatedAnnealing::new(SaConfig { seed: 7, ..Default::default() })
            .run(&inst, &budget, None);
        let b = SimulatedAnnealing::new(SaConfig { seed: 7, ..Default::default() })
            .run(&inst, &budget, None);
        assert_eq!(a.solution, b.solution);
        let c =
            TabuSearch::new(TabuConfig { seed: 7, ..Default::default() }).run(&inst, &budget, None);
        let d =
            TabuSearch::new(TabuConfig { seed: 7, ..Default::default() }).run(&inst, &budget, None);
        assert_eq!(c.solution, d.solution);
        let e = RandomSearch::new(7).run(&inst, &budget, None);
        let f = RandomSearch::new(7).run(&inst, &budget, None);
        assert_eq!(e.solution, f.solution);
    }

    #[test]
    fn tabu_is_bit_identical_across_thread_counts() {
        // Batch-scored neighborhoods must reproduce the historic
        // move-eval-undo loop exactly, at any worker-thread count.
        let inst = random_instance(20, 4, 36);
        let budget = RunBudget::iterations(120);
        let baseline =
            rayon::ThreadPoolBuilder::new().num_threads(1).build().unwrap().install(|| {
                TabuSearch::new(TabuConfig { seed: 9, ..Default::default() })
                    .run(&inst, &budget, None)
            });
        for threads in [2usize, 8] {
            let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
            let r = pool.install(|| {
                TabuSearch::new(TabuConfig { seed: 9, ..Default::default() })
                    .run(&inst, &budget, None)
            });
            assert_eq!(r.solution, baseline.solution, "{threads} threads");
            assert_eq!(r.makespan, baseline.makespan, "{threads} threads");
            assert_eq!(r.evaluations, baseline.evaluations, "{threads} threads");
        }
    }

    #[test]
    fn metaheuristics_optimize_alternate_objectives() {
        use mshc_schedule::{objective_from_report, replay, ObjectiveKind};
        let inst = random_instance(18, 3, 37);
        let kind = ObjectiveKind::TotalFlowtime;
        let budget = RunBudget::iterations(150).with_objective(kind);
        let runs: Vec<RunResult> = vec![
            RandomSearch::new(2).run(&inst, &budget, None),
            SimulatedAnnealing::new(SaConfig { seed: 2, ..Default::default() })
                .run(&inst, &budget, None),
            TabuSearch::new(TabuConfig { seed: 2, ..Default::default() }).run(&inst, &budget, None),
        ];
        for r in runs {
            r.solution.check(inst.graph()).unwrap();
            let sim = replay(&inst, &r.solution).unwrap();
            assert!((r.objective_value - objective_from_report(&kind, &sim)).abs() < 1e-9);
            assert!((r.makespan - sim.makespan).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "cooling")]
    fn sa_bad_cooling_rejected() {
        let _ = SimulatedAnnealing::new(SaConfig { cooling: 1.5, ..Default::default() });
    }

    #[test]
    #[should_panic(expected = "sample")]
    fn tabu_zero_samples_rejected() {
        let _ = TabuSearch::new(TabuConfig { samples: 0, ..Default::default() });
    }
}
