//! Cooperative, resumable search execution — the interface the
//! portfolio tournament engine drives.
//!
//! [`Scheduler::run`] is a black box: it owns its loop from the first
//! iteration to budget exhaustion. Racing several algorithms on one
//! instance with *incumbent exchange* (the best-known solution migrating
//! between searches at synchronized round barriers) needs the loop turned
//! inside out: initialize once, advance in bounded slices, expose the
//! incumbent between slices, accept a better one from outside.
//!
//! [`SteppableSearch`] is that interface. [`start`](SteppableSearch::start)
//! captures everything a run needs (instance snapshot, RNG, incumbent
//! tracking, budget accounting) into a [`SearchStep`] state machine;
//! [`step`](SearchStep::step) advances it by at most a given number of
//! iterations; [`inject`](SearchStep::inject) offers a migrant solution;
//! [`result`](SearchStep::result) finalizes into the same [`RunResult`]
//! a plain run produces.
//!
//! **Slicing is free of side effects on the trajectory**: the iterative
//! schedulers implement [`Scheduler::run`] *on top of* their stepped
//! state (one maximal slice), and per-slice evaluator rebuilds replay
//! identical float operations, so a run stepped in any slice sizes —
//! including the single `u64::MAX` slice — produces bit-identical
//! solutions, objective values and evaluation counts, at any thread
//! count. (Only [`inject`](SearchStep::inject) can change a trajectory,
//! and it is only ever called in portfolio mode.)
//!
//! One-shot constructive heuristics (HEFT, CPOP, the list policies) have
//! no loop to slice; [`OneShotStep`] adapts any [`Scheduler`] to the
//! interface by running it to completion on the first step.

use crate::encoding::Solution;
use crate::runner::{RunBudget, RunResult, Scheduler};
use mshc_platform::HcInstance;
use mshc_trace::Trace;

/// What a [`SearchStep::step`] call left behind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepVerdict {
    /// The run budget still has room; further steps will make progress.
    Running,
    /// The run budget is exhausted; further steps are no-ops.
    Exhausted,
}

impl StepVerdict {
    /// Whether the budget is exhausted.
    #[inline]
    pub fn is_exhausted(self) -> bool {
        matches!(self, StepVerdict::Exhausted)
    }
}

/// Borrowed view of a search's best-known solution and its cost under
/// the run's objective (lower is better).
#[derive(Debug, Clone, Copy)]
pub struct Incumbent<'a> {
    /// The best solution found so far.
    pub solution: &'a Solution,
    /// Its value under the budget's [`crate::ObjectiveKind`].
    pub cost: f64,
}

/// A paused, resumable search run.
///
/// Produced by [`SteppableSearch::start`]; driven by repeated
/// [`step`](SearchStep::step) calls until [`StepVerdict::Exhausted`],
/// then finalized with [`result`](SearchStep::result).
pub trait SearchStep {
    /// The algorithm's stable identifier (same as [`Scheduler::name`]).
    fn name(&self) -> &str;

    /// Advances the run by at most `max_iterations` iterations
    /// (generations for GA), stopping early when the overall
    /// [`RunBudget`] given to [`SteppableSearch::start`] is exhausted.
    /// Per-iteration trace records append to `trace` exactly as in a
    /// plain [`Scheduler::run`].
    fn step(&mut self, max_iterations: u64, trace: Option<&mut Trace>) -> StepVerdict;

    /// The best-known solution, or `None` before the search has produced
    /// one (a one-shot heuristic that has not stepped yet).
    fn incumbent(&self) -> Option<Incumbent<'_>>;

    /// Offers a migrant solution with its cost under the run's
    /// objective. Implementations accept it only if it beats their
    /// current working solution, and must not consume RNG state doing
    /// so. Bookkeeping evaluations performed here are uncounted, like
    /// the batch evaluator's per-chunk primes, so the evaluation axis
    /// stays comparable with non-portfolio runs.
    fn inject(&mut self, migrant: &Solution, cost: f64);

    /// Finalizes into the same [`RunResult`] a plain run returns.
    /// Callable at any point (not just at exhaustion) and repeatedly.
    fn result(&mut self) -> RunResult;
}

/// A search algorithm that can run cooperatively in bounded slices.
///
/// Implemented by every iterative scheduler in the suite (SE, GA, SA,
/// tabu, random search). Implementors reimplement [`Scheduler::run`] as
/// [`run_stepped`], which guarantees stepped and plain runs are the same
/// code path — bit-identical results, objective values and evaluation
/// counts.
pub trait SteppableSearch: Scheduler {
    /// Captures a fresh run (from the configured seed) into a resumable
    /// state machine. The budget must be bounded
    /// ([`RunBudget::validate`]) or stepping with `u64::MAX` never
    /// exhausts.
    fn start<'a>(&mut self, inst: &'a HcInstance, budget: &RunBudget) -> Box<dyn SearchStep + 'a>;
}

/// Runs a steppable search to budget exhaustion in one maximal slice —
/// the shared implementation behind every steppable [`Scheduler::run`].
pub fn run_stepped(
    search: &mut dyn SteppableSearch,
    inst: &HcInstance,
    budget: &RunBudget,
    trace: Option<&mut Trace>,
) -> RunResult {
    let mut state = search.start(inst, budget);
    let _ = state.step(u64::MAX, trace);
    state.result()
}

/// Adapts a one-shot constructive [`Scheduler`] (HEFT, CPOP, the list
/// policies) to the stepped interface: the first [`step`](SearchStep::step)
/// runs it to completion, later steps are no-ops, and
/// [`inject`](SearchStep::inject) is ignored (there is no trajectory to
/// steer).
pub struct OneShotStep<'a> {
    scheduler: Box<dyn Scheduler>,
    inst: &'a HcInstance,
    budget: RunBudget,
    outcome: Option<RunResult>,
}

impl<'a> OneShotStep<'a> {
    /// Wraps `scheduler` for a run on `inst` under `budget`.
    pub fn new(
        scheduler: Box<dyn Scheduler>,
        inst: &'a HcInstance,
        budget: &RunBudget,
    ) -> OneShotStep<'a> {
        OneShotStep { scheduler, inst, budget: budget.clone(), outcome: None }
    }

    fn ensure_run(&mut self, trace: Option<&mut Trace>) {
        if self.outcome.is_none() {
            self.outcome = Some(self.scheduler.run(self.inst, &self.budget, trace));
        }
    }
}

impl SearchStep for OneShotStep<'_> {
    fn name(&self) -> &str {
        self.scheduler.name()
    }

    fn step(&mut self, max_iterations: u64, trace: Option<&mut Trace>) -> StepVerdict {
        if max_iterations > 0 {
            self.ensure_run(trace);
        }
        StepVerdict::Exhausted
    }

    fn incumbent(&self) -> Option<Incumbent<'_>> {
        self.outcome.as_ref().map(|r| Incumbent { solution: &r.solution, cost: r.objective_value })
    }

    fn inject(&mut self, _migrant: &Solution, _cost: f64) {}

    fn result(&mut self) -> RunResult {
        self.ensure_run(None);
        self.outcome.clone().expect("run performed above")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::ObjectiveKind;
    use mshc_platform::{HcSystem, Matrix};
    use mshc_taskgraph::TaskGraphBuilder;
    use std::time::Duration;

    fn tiny_instance() -> HcInstance {
        let mut b = TaskGraphBuilder::new(3);
        b.add_edge(0, 1).unwrap();
        b.add_edge(0, 2).unwrap();
        let g = b.build().unwrap();
        let sys = HcSystem::with_anonymous_machines(
            2,
            Matrix::from_rows(&[vec![4.0, 2.0, 6.0], vec![3.0, 5.0, 1.0]]),
            Matrix::from_rows(&[vec![1.0, 1.0]]),
        )
        .unwrap();
        HcInstance::new(g, sys).unwrap()
    }

    /// A deterministic stand-in one-shot scheduler for adapter tests.
    struct Fixed;
    impl Scheduler for Fixed {
        fn name(&self) -> &str {
            "fixed"
        }
        fn run(
            &mut self,
            inst: &HcInstance,
            budget: &RunBudget,
            _trace: Option<&mut Trace>,
        ) -> RunResult {
            let mut rng = <rand_chacha::ChaCha8Rng as rand::SeedableRng>::seed_from_u64(1);
            let solution = crate::init::random_solution(inst, &mut rng);
            let mut eval = crate::eval::Evaluator::new(inst);
            let objective_value = eval.objective_value(&solution, &budget.objective);
            let makespan = eval.makespan(&solution);
            RunResult {
                solution,
                makespan,
                objective_value,
                iterations: 1,
                evaluations: 1,
                elapsed: Duration::ZERO,
                scan: Default::default(),
                lower_bound: None,
                gap: None,
                early_stopped: false,
                termination: crate::runner::Termination::Completed,
            }
        }
    }

    #[test]
    fn one_shot_adapter_runs_once_and_exhausts() {
        let inst = tiny_instance();
        let budget = RunBudget::iterations(5).with_objective(ObjectiveKind::TotalFlowtime);
        let mut step = OneShotStep::new(Box::new(Fixed), &inst, &budget);
        assert_eq!(step.name(), "fixed");
        assert!(step.incumbent().is_none(), "no incumbent before the first step");
        assert!(step.step(3, None).is_exhausted());
        let inc = step.incumbent().expect("ran");
        let cost = inc.cost;
        assert!(cost > 0.0);
        // Steps after exhaustion are no-ops; inject is ignored.
        assert!(step.step(10, None).is_exhausted());
        let migrant = step.result().solution;
        step.inject(&migrant, 0.0);
        let r = step.result();
        assert_eq!(r.objective_value, cost);
        assert_eq!(r.iterations, 1);
        let again = step.result();
        assert_eq!(again.solution, r.solution, "result is repeatable");
    }

    #[test]
    fn one_shot_zero_slice_does_not_run() {
        let inst = tiny_instance();
        let mut step = OneShotStep::new(Box::new(Fixed), &inst, &RunBudget::iterations(1));
        assert!(step.step(0, None).is_exhausted());
        assert!(step.incumbent().is_none(), "a zero-iteration slice must not run the heuristic");
        // result() still forces the run so it is always well-formed.
        assert_eq!(step.result().iterations, 1);
    }

    #[test]
    fn verdict_helpers() {
        assert!(StepVerdict::Exhausted.is_exhausted());
        assert!(!StepVerdict::Running.is_exhausted());
    }
}
