//! Point-in-time registry exports: the [`Snapshot`] struct, its two
//! planes, log₂ [`Histogram`]s, and the merge algebra used to combine
//! snapshots from measurement windows or tournament cells.

use crate::registry::Counter;
use serde::{Deserialize, Serialize};

/// Version stamp written into every exported snapshot (and into
/// `BENCH_eval.json`). Bump on any wire-incompatible change to
/// [`Snapshot`]; additive fields with `#[serde(default)]` do not
/// require a bump.
pub const SCHEMA_VERSION: u32 = 2;

/// Number of log₂ histogram buckets: bucket `b` (for `b ≥ 1`) counts
/// samples `v` with `2^(b-1) ≤ v < 2^b`; bucket 0 counts `v == 0`,
/// bucket 64 is reached only by `v ≥ 2^63`.
pub const BUCKETS: usize = 65;

/// A log₂-bucketed histogram of `u64` samples.
///
/// Bucketing is `64 - leading_zeros(v)` — the bit width of the sample —
/// so bucket boundaries are exact powers of two and merging two
/// histograms is an elementwise sum (the merge is associative and
/// commutative, which the unit tests pin down).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    /// Per-bucket sample counts; length [`BUCKETS`] when populated,
    /// possibly empty for a default/zero histogram.
    #[serde(default)]
    pub buckets: Vec<u64>,
}

impl Histogram {
    /// The bucket a sample lands in: its bit width (0 for 0, 64 for
    /// values at or above `2^63`).
    #[inline]
    pub fn bucket_index(value: u64) -> usize {
        (u64::BITS - value.leading_zeros()) as usize
    }

    /// Inclusive lower edge of a bucket (0 for buckets 0 and 1).
    pub fn bucket_floor(bucket: usize) -> u64 {
        match bucket {
            0 | 1 => 0,
            b => 1u64 << (b - 1),
        }
    }

    /// Total number of samples recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Elementwise-sum merge; tolerates differing (or empty) lengths.
    pub fn merge(&mut self, other: &Histogram) {
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (dst, src) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *dst += src;
        }
    }
}

/// The deterministic plane: counters that are reproducible run-to-run
/// at a fixed thread count (evaluation counts are thread-count
/// *invariant* — the house invariant). Field names match
/// [`Counter::name`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeterministicPlane {
    /// Tier-1 full evaluation passes.
    #[serde(default)]
    pub evaluations: u64,
    /// Tier-3 move/suffix scorings (mirrors `ScanStats::scored`).
    #[serde(default)]
    pub scan_scored: u64,
    /// Scorings abandoned by the bound cut.
    #[serde(default)]
    pub scan_pruned: u64,
    /// Scorings completed early by a reconvergence splice.
    #[serde(default)]
    pub scan_spliced: u64,
    /// Population children scored through the parent-primed path.
    #[serde(default)]
    pub scan_suffixed: u64,
    /// String positions served from primed prefixes instead of replay.
    #[serde(default)]
    pub scan_prefix_reused: u64,
    /// Total string positions across population children scored.
    #[serde(default)]
    pub scan_suffix_total: u64,
    /// Scheduler iterations / GA generations executed.
    #[serde(default)]
    pub iterations: u64,
    /// Runs that terminated early at a certified floor.
    #[serde(default)]
    pub early_stops: u64,
    /// Tournament cells completed.
    #[serde(default)]
    pub cells_completed: u64,
    /// Tournament cells that panicked.
    #[serde(default)]
    pub cells_panicked: u64,
    /// Cell retry attempts after a panic (one per retry, not per cell).
    #[serde(default)]
    pub cells_retried: u64,
    /// Cells that completed only after at least one retry.
    #[serde(default)]
    pub cells_degraded: u64,
    /// Runs interrupted by a fired cancel token.
    #[serde(default)]
    pub cancellations: u64,
    /// Replanning passes executed after a disturbance.
    #[serde(default)]
    pub replans: u64,
}

impl DeterministicPlane {
    /// Mutable access by counter identity (keeps the registry's
    /// snapshot assembly loop exhaustive by construction).
    pub(crate) fn field_mut(&mut self, c: Counter) -> &mut u64 {
        match c {
            Counter::Evaluations => &mut self.evaluations,
            Counter::ScanScored => &mut self.scan_scored,
            Counter::ScanPruned => &mut self.scan_pruned,
            Counter::ScanSpliced => &mut self.scan_spliced,
            Counter::ScanSuffixed => &mut self.scan_suffixed,
            Counter::ScanPrefixReused => &mut self.scan_prefix_reused,
            Counter::ScanSuffixTotal => &mut self.scan_suffix_total,
            Counter::Iterations => &mut self.iterations,
            Counter::EarlyStops => &mut self.early_stops,
            Counter::CellsCompleted => &mut self.cells_completed,
            Counter::CellsPanicked => &mut self.cells_panicked,
            Counter::CellsRetried => &mut self.cells_retried,
            Counter::CellsDegraded => &mut self.cells_degraded,
            Counter::Cancellations => &mut self.cancellations,
            Counter::Replans => &mut self.replans,
        }
    }

    /// Fraction of scan candidates abandoned by the bound cut
    /// (same definition as `ScanStats::pruned_fraction`).
    pub fn pruned_fraction(&self) -> f64 {
        fraction(self.scan_pruned, self.scan_scored)
    }

    /// Fraction of scan candidates finished by a reconvergence splice
    /// (same definition as `ScanStats::spliced_fraction`).
    pub fn spliced_fraction(&self) -> f64 {
        fraction(self.scan_spliced, self.scan_scored)
    }

    /// Fraction of population string positions served from primed
    /// prefixes (same definition as `ScanStats::prefix_reuse_fraction`).
    pub fn prefix_reuse_fraction(&self) -> f64 {
        fraction(self.scan_prefix_reused, self.scan_suffix_total)
    }

    /// Sum merge: every deterministic counter is additive.
    pub fn merge(&mut self, other: &DeterministicPlane) {
        self.evaluations += other.evaluations;
        self.scan_scored += other.scan_scored;
        self.scan_pruned += other.scan_pruned;
        self.scan_spliced += other.scan_spliced;
        self.scan_suffixed += other.scan_suffixed;
        self.scan_prefix_reused += other.scan_prefix_reused;
        self.scan_suffix_total += other.scan_suffix_total;
        self.iterations += other.iterations;
        self.early_stops += other.early_stops;
        self.cells_completed += other.cells_completed;
        self.cells_panicked += other.cells_panicked;
        self.cells_retried += other.cells_retried;
        self.cells_degraded += other.cells_degraded;
        self.cancellations += other.cancellations;
        self.replans += other.replans;
    }
}

fn fraction(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        part as f64 / whole as f64
    }
}

/// The timing plane: pool scheduling telemetry and duration histograms.
/// Everything here varies run-to-run (OS scheduling, wall clocks) and
/// is **never** written into artifacts that CI byte-compares.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TimingPlane {
    /// Tickets stolen from another worker's queue.
    #[serde(default)]
    pub steal_count: u64,
    /// Parallel operations submitted to the resident pool.
    #[serde(default)]
    pub ops_submitted: u64,
    /// Chunks claimed across all operations.
    #[serde(default)]
    pub chunk_claims: u64,
    /// Wake-epoch bumps (pool-wide wakeups signalled).
    #[serde(default)]
    pub wake_epochs: u64,
    /// Deepest per-worker ticket queue observed.
    #[serde(default)]
    pub queue_depth_hwm: u64,
    /// Resident workers spawned (high-water).
    #[serde(default)]
    pub spawned_workers: u64,
    /// Chunks claimed by each resident worker, indexed by worker.
    #[serde(default)]
    pub per_worker_chunks: Vec<u64>,
    /// Chunks claimed outside resident workers (the submitting thread
    /// engaging with its own operation).
    #[serde(default)]
    pub foreign_chunks: u64,
    /// Whole parallel-scan latencies, microseconds.
    #[serde(default)]
    pub scan_latency_us: Histogram,
    /// Tournament cell wall times, microseconds.
    #[serde(default)]
    pub cell_us: Histogram,
    /// Named span durations, microseconds.
    #[serde(default)]
    pub span_us: Histogram,
    /// Replanning latencies per disturbance, microseconds.
    #[serde(default)]
    pub replan_us: Histogram,
}

impl TimingPlane {
    /// Merge: counters sum, high-water marks take the max, per-worker
    /// chunk vectors sum elementwise (padding the shorter), histograms
    /// sum elementwise.
    pub fn merge(&mut self, other: &TimingPlane) {
        self.steal_count += other.steal_count;
        self.ops_submitted += other.ops_submitted;
        self.chunk_claims += other.chunk_claims;
        self.wake_epochs += other.wake_epochs;
        self.queue_depth_hwm = self.queue_depth_hwm.max(other.queue_depth_hwm);
        self.spawned_workers = self.spawned_workers.max(other.spawned_workers);
        if self.per_worker_chunks.len() < other.per_worker_chunks.len() {
            self.per_worker_chunks.resize(other.per_worker_chunks.len(), 0);
        }
        for (dst, src) in self.per_worker_chunks.iter_mut().zip(other.per_worker_chunks.iter()) {
            *dst += src;
        }
        self.foreign_chunks += other.foreign_chunks;
        self.scan_latency_us.merge(&other.scan_latency_us);
        self.cell_us.merge(&other.cell_us);
        self.span_us.merge(&other.span_us);
        self.replan_us.merge(&other.replan_us);
    }
}

/// A point-in-time export of the whole registry: schema stamp, the
/// deterministic plane, and the timing plane. This is the payload of
/// `--metrics <out.json>` and the input to `run --report`'s renderer.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Snapshot {
    /// Wire-format version ([`SCHEMA_VERSION`]).
    #[serde(default)]
    pub schema_version: u32,
    /// Counters reproducible at fixed thread count.
    #[serde(default)]
    pub deterministic: DeterministicPlane,
    /// Scheduling/wall-clock telemetry, never byte-compared.
    #[serde(default)]
    pub timing: TimingPlane,
}

impl Snapshot {
    /// Builds a snapshot from already-collected planes, stamping the
    /// current [`SCHEMA_VERSION`].
    pub fn assemble(deterministic: DeterministicPlane, timing: TimingPlane) -> Snapshot {
        Snapshot { schema_version: SCHEMA_VERSION, deterministic, timing }
    }

    /// Plane-wise merge (deterministic counters sum; timing merges per
    /// [`TimingPlane::merge`]). Keeps the larger schema stamp.
    pub fn merge(&mut self, other: &Snapshot) {
        self.schema_version = self.schema_version.max(other.schema_version);
        self.deterministic.merge(&other.deterministic);
        self.timing.merge(&other.timing);
    }

    /// Serializes to the `--metrics` JSON wire format.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("snapshot serialization is infallible")
    }

    /// Parses the `--metrics` JSON wire format (the schema check used
    /// by CI and tests).
    pub fn from_json(s: &str) -> Result<Snapshot, serde_json::Error> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_edges() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(7), 3);
        assert_eq!(Histogram::bucket_index(8), 4);
        assert_eq!(Histogram::bucket_index((1 << 62) - 1), 62);
        assert_eq!(Histogram::bucket_index(1 << 62), 63);
        assert_eq!(Histogram::bucket_index(1 << 63), 64);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        // Every bucket index is in range, and floors are consistent
        // with indexing: a floor value lands in its own bucket.
        for b in 0..BUCKETS {
            let floor = Histogram::bucket_floor(b);
            if b >= 1 {
                assert_eq!(Histogram::bucket_index(floor.max(1)), b.max(1));
            }
            assert!(Histogram::bucket_index(floor) < BUCKETS);
        }
    }

    fn hist_of(samples: &[u64]) -> Histogram {
        let mut h = Histogram { buckets: vec![0; BUCKETS] };
        for &s in samples {
            h.buckets[Histogram::bucket_index(s)] += 1;
        }
        h
    }

    #[test]
    fn histogram_merge_is_associative_and_commutative() {
        let a = hist_of(&[0, 1, 5, 1000]);
        let b = hist_of(&[2, 2, 7]);
        let c = hist_of(&[u64::MAX, 63, 64]);
        let mut ab_c = a.clone();
        ab_c.merge(&b);
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        assert_eq!(ab_c, a_bc);
        let mut ba = b.clone();
        ba.merge(&a);
        let mut ab = a.clone();
        ab.merge(&b);
        assert_eq!(ab, ba);
        assert_eq!(ab_c.count(), 10);
    }

    fn sample_snapshot(k: u64) -> Snapshot {
        let det = DeterministicPlane {
            evaluations: 10 * k,
            scan_scored: 8 * k,
            scan_pruned: 3 * k,
            scan_spliced: k,
            scan_suffixed: 2 * k,
            scan_prefix_reused: 5 * k,
            scan_suffix_total: 9 * k,
            iterations: k,
            early_stops: k % 2,
            cells_completed: k,
            cells_panicked: 0,
            cells_retried: k % 3,
            cells_degraded: k % 2,
            cancellations: k,
            replans: k,
        };
        let timing = TimingPlane {
            steal_count: k,
            ops_submitted: 2 * k,
            chunk_claims: 16 * k,
            wake_epochs: 4 * k,
            queue_depth_hwm: 3 + k,
            spawned_workers: 1 + k,
            per_worker_chunks: vec![k; (1 + k) as usize],
            foreign_chunks: k,
            scan_latency_us: hist_of(&[k, 10 * k, 100 * k]),
            cell_us: hist_of(&[1000 * k]),
            span_us: Histogram::default(),
            replan_us: hist_of(&[50 * k]),
        };
        Snapshot::assemble(det, timing)
    }

    #[test]
    fn snapshot_merge_is_associative() {
        let (a, b, c) = (sample_snapshot(1), sample_snapshot(2), sample_snapshot(3));
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left, right);
        assert_eq!(left.deterministic.evaluations, 60);
        assert_eq!(left.timing.queue_depth_hwm, 6);
        assert_eq!(left.timing.per_worker_chunks, vec![6, 6, 5, 3]);
    }

    #[test]
    fn fractions_match_scan_stats_definitions() {
        let det = sample_snapshot(2).deterministic;
        assert!((det.pruned_fraction() - 6.0 / 16.0).abs() < 1e-12);
        assert!((det.spliced_fraction() - 2.0 / 16.0).abs() < 1e-12);
        assert!((det.prefix_reuse_fraction() - 10.0 / 18.0).abs() < 1e-12);
        let zero = DeterministicPlane::default();
        assert_eq!(zero.pruned_fraction(), 0.0);
        assert_eq!(zero.prefix_reuse_fraction(), 0.0);
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let snap = sample_snapshot(3);
        let json = snap.to_json();
        let back = Snapshot::from_json(&json).expect("round trip");
        assert_eq!(back, snap);
        assert_eq!(back.schema_version, SCHEMA_VERSION);
        // Defaults tolerate a bare document (forward compatibility).
        let minimal = Snapshot::from_json("{\"schema_version\":1}").expect("minimal");
        assert_eq!(minimal.deterministic, DeterministicPlane::default());
    }

    #[test]
    fn v1_snapshot_migrates_forward() {
        // A schema-1 document (pre fault-tolerance counters) parses into
        // the v2 struct: missing counters default to zero, the replan
        // histogram defaults to empty, and the old stamp is preserved so
        // callers can detect the migration.
        let v1 = concat!(
            "{\"schema_version\":1,",
            "\"deterministic\":{\"evaluations\":42,\"iterations\":7,",
            "\"cells_completed\":3,\"cells_panicked\":1},",
            "\"timing\":{\"steal_count\":5,",
            "\"span_us\":{\"buckets\":[0,2]}}}"
        );
        let snap = Snapshot::from_json(v1).expect("v1 parses");
        assert_eq!(snap.schema_version, 1);
        assert_eq!(snap.deterministic.evaluations, 42);
        assert_eq!(snap.deterministic.cells_panicked, 1);
        assert_eq!(snap.deterministic.cells_retried, 0);
        assert_eq!(snap.deterministic.cells_degraded, 0);
        assert_eq!(snap.deterministic.cancellations, 0);
        assert_eq!(snap.deterministic.replans, 0);
        assert_eq!(snap.timing.replan_us, Histogram::default());
        // Merging a v1 snapshot into a v2 one keeps the newer stamp.
        let mut merged = Snapshot::assemble(DeterministicPlane::default(), TimingPlane::default());
        merged.merge(&snap);
        assert_eq!(merged.schema_version, SCHEMA_VERSION);
        assert_eq!(merged.deterministic.evaluations, 42);
    }
}
