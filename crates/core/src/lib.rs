//! # mshc-core — Simulated Evolution for MSHC
//!
//! The primary contribution of *"Task Matching and Scheduling in
//! Heterogeneous Systems Using Simulated Evolution"* (Barada, Sait & Baig,
//! IPPS 2001): a simulated-evolution (SE) scheduler for matching and
//! scheduling coarse-grained task graphs onto a heterogeneous suite of
//! machines.
//!
//! SE (Kling & Banerjee's iterative heuristic) repeats three steps until a
//! stopping criterion fires (§3):
//!
//! 1. **Evaluation** — each individual (here: each subtask `s_i`) gets a
//!    goodness `g_i = O_i / C_i ∈ [0, 1]`, where `C_i` is its finish time
//!    in the current solution and `O_i` a precomputed estimate of its
//!    optimal finish time ([`goodness()`](goodness::goodness)).
//! 2. **Selection** — `s_i` joins the selection set when a uniform random
//!    number exceeds `g_i + B`; the bias `B` trades run time against
//!    search thoroughness (§4.4). Selected tasks are sorted by ascending
//!    DAG level.
//! 3. **Allocation** — each selected task is constructively re-placed: all
//!    valid string positions × its `Y` best-matching machines are tried
//!    and the combination with the best schedule length is committed
//!    (§4.5).
//!
//! The well-placed tasks (high goodness) are rarely selected, so the
//! number of selected tasks *decays* as the population converges — the
//! paper's effectiveness signature (Fig 3a), recorded here in the
//! per-iteration [`mshc_trace::Trace`].
//!
//! ## Quick start
//!
//! ```
//! use mshc_core::{SeConfig, SeScheduler};
//! use mshc_schedule::{RunBudget, Scheduler};
//! use mshc_platform::{HcInstance, HcSystem, Matrix};
//! use mshc_taskgraph::TaskGraphBuilder;
//!
//! // A 4-task diamond on 2 machines.
//! let mut b = TaskGraphBuilder::new(4);
//! for (s, d) in [(0, 1), (0, 2), (1, 3), (2, 3)] { b.add_edge(s, d).unwrap(); }
//! let graph = b.build().unwrap();
//! let sys = HcSystem::with_anonymous_machines(
//!     2,
//!     Matrix::from_rows(&[vec![4.0, 8.0, 2.0, 5.0], vec![7.0, 3.0, 6.0, 4.0]]),
//!     Matrix::from_rows(&[vec![1.0, 1.0, 1.0, 1.0]]),
//! ).unwrap();
//! let inst = HcInstance::new(graph, sys).unwrap();
//!
//! let mut se = SeScheduler::new(SeConfig { seed: 7, ..SeConfig::default() });
//! let result = se.run(&inst, &RunBudget::iterations(50), None);
//! assert!(result.makespan <= 20.0);
//! result.solution.check(inst.graph()).unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algorithm;
pub mod config;
pub mod goodness;

pub use algorithm::{SePendingBias, SeScheduler};
pub use config::{AdaptiveBias, AllocationStrategy, SeConfig};
pub use goodness::{goodness, optimal_costs};
