//! Parallel batch evaluation of candidate sets.
//!
//! Every search algorithm in the suite has the same hot shape: produce a
//! set of candidate schedules that are independent of one another, score
//! them all, pick one. [`BatchEvaluator`] centralizes that shape — it
//! owns a pool of reusable per-thread arenas (a borrowed-snapshot
//! [`Evaluator`], an [`IncrementalEvaluator`] and a scratch [`Solution`])
//! and fans a candidate set out over the rayon executor in one call.
//! Arenas are checked out once per worker chunk and returned afterwards,
//! so steady-state batch scoring performs no allocations beyond the
//! output vector.
//!
//! The move-oriented entry points ([`score_moves`], [`score_task_moves`])
//! route through the per-thread incremental evaluators whenever the
//! objective supports accumulator finalization (every
//! [`crate::ObjectiveKind`] does): each worker primes its evaluator on
//! the shared base once per chunk and then scores candidates by suffix
//! replay — no per-candidate `Solution` mutation at all. Objectives
//! without incremental support fall back to clone-and-move full passes.
//!
//! Determinism: scores are returned **in candidate order** and every
//! candidate's score depends only on that candidate, so results are
//! bit-identical at any thread count — the serial-vs-parallel SE guard
//! tests pin this down. Per-chunk primes are deliberately *not* counted
//! into [`evaluations`](BatchEvaluator::evaluations): the chunk grid
//! varies with the thread count, and the evaluation axis must not.
//!
//! [`score_moves`]: BatchEvaluator::score_moves
//! [`score_task_moves`]: BatchEvaluator::score_task_moves

use crate::encoding::Solution;
use crate::eval::Evaluator;
use crate::incremental::IncrementalEvaluator;
use crate::objective::Objective;
use crate::snapshot::EvalSnapshot;
use mshc_platform::MachineId;
use mshc_taskgraph::{TaskGraph, TaskId};
use rayon::prelude::*;
use std::sync::Mutex;

/// One worker's reusable state: evaluators over the shared snapshot and
/// an optional scratch solution for non-incremental move scoring.
struct Arena<'a> {
    eval: Evaluator<'a>,
    inc: IncrementalEvaluator<'a>,
    scratch: Option<Solution>,
}

/// Checked-out arena that returns itself to the pool on drop, so chunk
/// workers recycle buffers instead of reallocating.
struct ArenaGuard<'p, 'a> {
    pool: &'p Mutex<Vec<Arena<'a>>>,
    arena: Option<Arena<'a>>,
}

impl<'p, 'a> ArenaGuard<'p, 'a> {
    fn checkout(pool: &'p Mutex<Vec<Arena<'a>>>, snap: &'a EvalSnapshot) -> ArenaGuard<'p, 'a> {
        let arena = pool.lock().expect("arena pool poisoned").pop().unwrap_or_else(|| Arena {
            eval: Evaluator::with_snapshot(snap),
            inc: IncrementalEvaluator::with_snapshot(snap),
            scratch: None,
        });
        ArenaGuard { pool, arena: Some(arena) }
    }

    /// Checks out an arena with its scratch solution reset to `base`.
    fn checkout_with_base(
        pool: &'p Mutex<Vec<Arena<'a>>>,
        snap: &'a EvalSnapshot,
        base: &Solution,
    ) -> ArenaGuard<'p, 'a> {
        let mut guard = ArenaGuard::checkout(pool, snap);
        let arena = guard.arena.as_mut().expect("arena present until drop");
        match &mut arena.scratch {
            Some(s) => s.clone_from(base),
            none => *none = Some(base.clone()),
        }
        guard
    }

    /// Checks out an arena with its incremental evaluator primed on
    /// `base` at the requested checkpoint stride — the move-scoring
    /// fast path. One O(k + p) prime per chunk, amortized over the
    /// chunk's candidates.
    fn checkout_primed(
        pool: &'p Mutex<Vec<Arena<'a>>>,
        snap: &'a EvalSnapshot,
        base: &Solution,
        stride: Option<usize>,
    ) -> ArenaGuard<'p, 'a> {
        let mut guard = ArenaGuard::checkout(pool, snap);
        let arena = guard.arena.as_mut().expect("arena present until drop");
        arena.inc.set_stride(stride);
        arena.inc.prime(base);
        guard
    }

    fn parts(&mut self) -> (&mut Evaluator<'a>, &mut Option<Solution>) {
        let arena = self.arena.as_mut().expect("arena present until drop");
        (&mut arena.eval, &mut arena.scratch)
    }

    fn inc(&mut self) -> &mut IncrementalEvaluator<'a> {
        &mut self.arena.as_mut().expect("arena present until drop").inc
    }
}

impl Drop for ArenaGuard<'_, '_> {
    fn drop(&mut self) {
        if let Some(arena) = self.arena.take() {
            self.pool.lock().expect("arena pool poisoned").push(arena);
        }
    }
}

/// Scores whole candidate sets in one call, in parallel.
pub struct BatchEvaluator<'a> {
    snap: &'a EvalSnapshot,
    arenas: Mutex<Vec<Arena<'a>>>,
    /// Checkpoint stride handed to the per-thread incremental evaluators
    /// (`None` = auto `⌈√k⌉`). Never affects scores, only resume cost.
    stride: Option<usize>,
    evaluations: u64,
}

impl<'a> BatchEvaluator<'a> {
    /// Creates a batch evaluator over a shared snapshot.
    pub fn new(snap: &'a EvalSnapshot) -> BatchEvaluator<'a> {
        BatchEvaluator { snap, arenas: Mutex::new(Vec::new()), stride: None, evaluations: 0 }
    }

    /// Sets the checkpoint stride for incremental move scoring (`None` =
    /// auto `⌈√k⌉`).
    pub fn with_stride(mut self, stride: Option<usize>) -> BatchEvaluator<'a> {
        self.stride = stride;
        self
    }

    /// The shared snapshot.
    #[inline]
    pub fn snapshot(&self) -> &'a EvalSnapshot {
        self.snap
    }

    /// Total schedule evaluations performed across all batches (one per
    /// scored candidate; per-chunk primes are uncounted so the axis is
    /// thread-count independent).
    #[inline]
    pub fn evaluations(&self) -> u64 {
        self.evaluations
    }

    /// Scores every candidate solution under `obj`; `out[i]` is the score
    /// of `candidates[i]`. Whole solutions share no base, so this is
    /// always full (tier-1) evaluation fanned out per thread.
    pub fn scores(&mut self, candidates: &[Solution], obj: &dyn Objective) -> Vec<f64> {
        let snap = self.snap;
        let pool = &self.arenas;
        let out: Vec<f64> = candidates
            .par_iter()
            .map_init(
                || ArenaGuard::checkout(pool, snap),
                |guard, sol| {
                    let (eval, _) = guard.parts();
                    eval.objective_value(sol, obj)
                },
            )
            .collect();
        self.evaluations += candidates.len() as u64;
        out
    }

    /// Scores the candidate set "`base` with task `t` moved to
    /// `(position, machine)`" for every entry of `moves` — the SE
    /// allocation ripple scan's shape. Incremental-capable objectives are
    /// scored by suffix replay against a once-per-chunk primed base;
    /// others fall back to a scratch clone re-moved per candidate.
    pub fn score_moves(
        &mut self,
        graph: &TaskGraph,
        base: &Solution,
        t: TaskId,
        moves: &[(usize, MachineId)],
        obj: &dyn Objective,
    ) -> Vec<f64> {
        let snap = self.snap;
        let pool = &self.arenas;
        let stride = self.stride;
        let out: Vec<f64> = if obj.supports_incremental() {
            moves
                .par_iter()
                .map_init(
                    || ArenaGuard::checkout_primed(pool, snap, base, stride),
                    |guard, &(pos, m)| guard.inc().score_move(t, pos, m, obj),
                )
                .collect()
        } else {
            moves
                .par_iter()
                .map_init(
                    || ArenaGuard::checkout_with_base(pool, snap, base),
                    |guard, &(pos, m)| {
                        let (eval, scratch) = guard.parts();
                        let scratch = scratch.as_mut().expect("checkout_with_base sets scratch");
                        scratch.move_task(graph, t, pos, m).expect("candidate within valid range");
                        eval.objective_value(scratch, obj)
                    },
                )
                .collect()
        };
        self.evaluations += moves.len() as u64;
        out
    }

    /// Scores the candidate set "`base` with one task moved" where each
    /// entry may move a *different* task — the sampled-neighborhood shape
    /// (tabu search). Same routing as [`score_moves`]: incremental
    /// objectives never touch a scratch solution; the fallback undoes
    /// each move before the next so the scratch stays equal to `base`
    /// throughout a chunk.
    ///
    /// [`score_moves`]: BatchEvaluator::score_moves
    pub fn score_task_moves(
        &mut self,
        graph: &TaskGraph,
        base: &Solution,
        moves: &[(TaskId, usize, MachineId)],
        obj: &dyn Objective,
    ) -> Vec<f64> {
        let snap = self.snap;
        let pool = &self.arenas;
        let stride = self.stride;
        let out: Vec<f64> = if obj.supports_incremental() {
            moves
                .par_iter()
                .map_init(
                    || ArenaGuard::checkout_primed(pool, snap, base, stride),
                    |guard, &(t, pos, m)| guard.inc().score_move(t, pos, m, obj),
                )
                .collect()
        } else {
            moves
                .par_iter()
                .map_init(
                    || ArenaGuard::checkout_with_base(pool, snap, base),
                    |guard, &(t, pos, m)| {
                        let (eval, scratch) = guard.parts();
                        let scratch = scratch.as_mut().expect("checkout_with_base sets scratch");
                        let undo = (scratch.position_of(t), scratch.machine_of(t));
                        scratch.move_task(graph, t, pos, m).expect("candidate within valid range");
                        let score = eval.objective_value(scratch, obj);
                        scratch.move_task(graph, t, undo.0, undo.1).expect("undo restores base");
                        score
                    },
                )
                .collect()
        };
        self.evaluations += moves.len() as u64;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::random_solution;
    use crate::objective::{EvalView, ObjectiveKind};
    use mshc_platform::{HcInstance, HcSystem, Matrix};
    use mshc_taskgraph::gen::{layered, LayeredConfig};
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn random_instance(tasks: usize, machines: usize, seed: u64) -> HcInstance {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let cfg = LayeredConfig { tasks, mean_width: 4, edge_prob: 0.5, skip_prob: 0.05 };
        let graph = layered(&cfg, &mut rng).unwrap();
        let exec = Matrix::from_fn(machines, tasks, |_, _| rng.gen_range(10.0..100.0));
        let pairs = machines * (machines - 1) / 2;
        let transfer = Matrix::from_fn(pairs, graph.data_count(), |_, _| rng.gen_range(1.0..30.0));
        let sys = HcSystem::with_anonymous_machines(machines, exec, transfer).unwrap();
        HcInstance::new(graph, sys).unwrap()
    }

    #[test]
    fn batch_scores_match_scalar_evaluator_for_every_objective() {
        let inst = random_instance(20, 4, 1);
        let snap = EvalSnapshot::new(&inst);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let candidates: Vec<Solution> = (0..40).map(|_| random_solution(&inst, &mut rng)).collect();
        let weighted = ObjectiveKind::Weighted { makespan: 1.0, flowtime: 0.3, balance: 0.7 };
        for kind in ObjectiveKind::BASIC.into_iter().chain([weighted]) {
            let mut batch = BatchEvaluator::new(&snap);
            let got = batch.scores(&candidates, &kind);
            let mut scalar = Evaluator::new(&inst);
            let want: Vec<f64> =
                candidates.iter().map(|s| scalar.objective_value(s, &kind)).collect();
            assert_eq!(got, want, "objective {}", kind.label());
            assert_eq!(batch.evaluations(), 40);
        }
    }

    #[test]
    fn batch_scores_bit_identical_across_thread_counts() {
        let inst = random_instance(30, 5, 3);
        let snap = EvalSnapshot::new(&inst);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let candidates: Vec<Solution> = (0..64).map(|_| random_solution(&inst, &mut rng)).collect();
        let obj = ObjectiveKind::Makespan;
        let baseline = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap()
            .install(|| BatchEvaluator::new(&snap).scores(&candidates, &obj));
        for threads in [2, 4, 8] {
            let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
            let got = pool.install(|| BatchEvaluator::new(&snap).scores(&candidates, &obj));
            assert_eq!(got, baseline, "{threads} threads");
        }
    }

    #[test]
    fn score_moves_matches_move_then_scalar() {
        let inst = random_instance(18, 4, 5);
        let g = inst.graph();
        let snap = EvalSnapshot::new(&inst);
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let base = random_solution(&inst, &mut rng);
        let t = TaskId::new(7);
        let (lo, hi) = base.valid_range(g, t);
        let moves: Vec<(usize, MachineId)> =
            (lo..=hi).flat_map(|pos| (0..4).map(move |m| (pos, MachineId::new(m)))).collect();
        let mut batch = BatchEvaluator::new(&snap);
        let got = batch.score_moves(g, &base, t, &moves, &ObjectiveKind::Makespan);
        let mut scalar = Evaluator::new(&inst);
        for (&(pos, m), &score) in moves.iter().zip(&got) {
            let mut cand = base.clone();
            cand.move_task(g, t, pos, m).unwrap();
            assert_eq!(scalar.makespan(&cand), score, "move ({pos}, {m})");
        }
        assert_eq!(batch.evaluations(), moves.len() as u64);
    }

    #[test]
    fn score_task_moves_matches_and_restores_base() {
        let inst = random_instance(16, 3, 7);
        let g = inst.graph();
        let snap = EvalSnapshot::new(&inst);
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let base = random_solution(&inst, &mut rng);
        let moves: Vec<(TaskId, usize, MachineId)> = (0..32)
            .map(|_| {
                let t = TaskId::new(rng.gen_range(0..16));
                let (lo, hi) = base.valid_range(g, t);
                (t, rng.gen_range(lo..=hi), MachineId::new(rng.gen_range(0..3)))
            })
            .collect();
        let obj = ObjectiveKind::TotalFlowtime;
        let mut batch = BatchEvaluator::new(&snap);
        let got = batch.score_task_moves(g, &base, &moves, &obj);
        let mut scalar = Evaluator::new(&inst);
        for (&(t, pos, m), &score) in moves.iter().zip(&got) {
            let mut cand = base.clone();
            cand.move_task(g, t, pos, m).unwrap();
            assert_eq!(scalar.objective_value(&cand, &obj), score);
        }
        // Scoring again over the recycled arenas gives the same answers
        // (primed bases are rebuilt per checkout).
        assert_eq!(batch.score_task_moves(g, &base, &moves, &obj), got);
    }

    #[test]
    fn move_scores_are_stride_and_thread_invariant() {
        // The checkpoint stride is a pure cost knob: every stride (1,
        // auto, beyond-k) and every thread count must produce the same
        // bits.
        let inst = random_instance(26, 4, 12);
        let g = inst.graph();
        let k = inst.task_count();
        let snap = EvalSnapshot::new(&inst);
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        let base = random_solution(&inst, &mut rng);
        let moves: Vec<(TaskId, usize, MachineId)> = (0..48)
            .map(|_| {
                let t = TaskId::new(rng.gen_range(0..k as u32));
                let (lo, hi) = base.valid_range(g, t);
                (t, rng.gen_range(lo..=hi), MachineId::new(rng.gen_range(0..4)))
            })
            .collect();
        let obj = ObjectiveKind::Makespan;
        let baseline = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap()
            .install(|| BatchEvaluator::new(&snap).score_task_moves(g, &base, &moves, &obj));
        for stride in [Some(1), None, Some(k + 9)] {
            for threads in [1usize, 2, 8] {
                let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
                let got = pool.install(|| {
                    BatchEvaluator::new(&snap)
                        .with_stride(stride)
                        .score_task_moves(g, &base, &moves, &obj)
                });
                assert_eq!(got, baseline, "stride {stride:?}, {threads} threads");
            }
        }
    }

    #[test]
    fn non_incremental_objectives_fall_back_to_full_passes() {
        // A custom objective without accumulator support must still be
        // served (clone-and-move route) and match the scalar evaluator.
        struct StartSum;
        impl Objective for StartSum {
            fn name(&self) -> &str {
                "start-sum"
            }
            fn value(&self, view: &EvalView<'_>) -> f64 {
                view.start.iter().sum()
            }
        }
        let inst = random_instance(14, 3, 21);
        let g = inst.graph();
        let snap = EvalSnapshot::new(&inst);
        let mut rng = ChaCha8Rng::seed_from_u64(22);
        let base = random_solution(&inst, &mut rng);
        let t = TaskId::new(5);
        let (lo, hi) = base.valid_range(g, t);
        let moves: Vec<(usize, MachineId)> =
            (lo..=hi).map(|pos| (pos, MachineId::new(0))).collect();
        let mut batch = BatchEvaluator::new(&snap);
        let got = batch.score_moves(g, &base, t, &moves, &StartSum);
        let mut scalar = Evaluator::new(&inst);
        for (&(pos, m), &score) in moves.iter().zip(&got) {
            let mut cand = base.clone();
            cand.move_task(g, t, pos, m).unwrap();
            assert_eq!(scalar.objective_value(&cand, &StartSum), score);
        }
    }

    #[test]
    fn empty_batches_are_fine() {
        let inst = random_instance(5, 2, 9);
        let snap = EvalSnapshot::new(&inst);
        let mut batch = BatchEvaluator::new(&snap);
        assert!(batch.scores(&[], &ObjectiveKind::Makespan).is_empty());
        assert_eq!(batch.evaluations(), 0);
    }
}
