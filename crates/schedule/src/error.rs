//! Typed errors for solution construction.

use mshc_taskgraph::TaskId;
use std::fmt;

/// Errors produced when constructing or mutating a [`crate::Solution`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleError {
    /// The string does not contain every task exactly once.
    NotAPermutation,
    /// The string order violates a precedence constraint: `later` appears
    /// before `earlier` although `earlier -> later` is an edge.
    PrecedenceViolation {
        /// The producing task.
        earlier: TaskId,
        /// The consuming task that appears too early in the string.
        later: TaskId,
    },
    /// A segment references a machine id `>= machine_count`.
    MachineOutOfRange {
        /// The offending machine index.
        machine: u32,
        /// Number of machines in the system.
        machine_count: usize,
    },
    /// The string length does not match the instance's task count.
    LengthMismatch {
        /// Segments in the string.
        got: usize,
        /// Tasks in the instance.
        expected: usize,
    },
    /// A move target position lies outside the task's valid range.
    OutOfValidRange {
        /// The task being moved.
        task: TaskId,
        /// Requested position.
        position: usize,
        /// Inclusive valid range.
        range: (usize, usize),
    },
    /// A [`crate::RunBudget`] with no stopping limit was handed to an
    /// iterative (anytime) scheduler, which would run forever.
    UnboundedBudget,
    /// A [`crate::RunBudget`] deadline that can never be meaningful: a
    /// zero evaluation-count deadline or a zero wall-clock deadline
    /// would fire before the first incumbent exists.
    InvalidDeadline {
        /// Which deadline axis was rejected (`"deadline_evals"` or
        /// `"deadline_wall"`).
        axis: &'static str,
    },
    /// A [`crate::CancelToken`] that had already fired was attached to a
    /// budget before the run started — almost certainly a reused token
    /// from a previous request; cancel tokens are one-shot.
    CancelledBeforeStart,
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::NotAPermutation => {
                write!(f, "solution string must contain every task exactly once")
            }
            ScheduleError::PrecedenceViolation { earlier, later } => {
                write!(f, "precedence violation: {later} appears before its predecessor {earlier}")
            }
            ScheduleError::MachineOutOfRange { machine, machine_count } => {
                write!(f, "machine index {machine} out of range (system has {machine_count})")
            }
            ScheduleError::LengthMismatch { got, expected } => {
                write!(f, "string has {got} segments but the instance has {expected} tasks")
            }
            ScheduleError::OutOfValidRange { task, position, range } => write!(
                f,
                "position {position} for {task} outside valid range [{}, {}]",
                range.0, range.1
            ),
            ScheduleError::UnboundedBudget => write!(
                f,
                "iterative schedulers need a bounded run budget: set at least one of \
                 max_iterations, max_evaluations, max_wall or max_stall"
            ),
            ScheduleError::InvalidDeadline { axis } => write!(
                f,
                "{axis} must be positive: a zero deadline would fire before the \
                 first incumbent exists and can never return a schedule"
            ),
            ScheduleError::CancelledBeforeStart => write!(
                f,
                "cancel token already fired before the run started: cancel tokens \
                 are one-shot, create a fresh CancelToken per request"
            ),
        }
    }
}

impl std::error::Error for ScheduleError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages() {
        assert!(ScheduleError::NotAPermutation.to_string().contains("exactly once"));
        let e =
            ScheduleError::PrecedenceViolation { earlier: TaskId::new(1), later: TaskId::new(4) };
        assert!(e.to_string().contains("s4"));
        assert!(e.to_string().contains("s1"));
        let e = ScheduleError::MachineOutOfRange { machine: 9, machine_count: 2 };
        assert!(e.to_string().contains('9'));
        let e = ScheduleError::LengthMismatch { got: 3, expected: 7 };
        assert!(e.to_string().contains('7'));
        let e = ScheduleError::OutOfValidRange { task: TaskId::new(2), position: 5, range: (1, 3) };
        assert!(e.to_string().contains("[1, 3]"));
        assert!(ScheduleError::UnboundedBudget.to_string().contains("bounded run budget"));
        let e = ScheduleError::InvalidDeadline { axis: "deadline_evals" };
        assert!(e.to_string().contains("deadline_evals"));
        assert!(e.to_string().contains("positive"));
        assert!(ScheduleError::CancelledBeforeStart.to_string().contains("one-shot"));
    }
}
