//! Structural analyses of task graphs: reachability, critical paths and
//! workload-characterization metrics.
//!
//! The paper classifies workloads by *connectivity* (§5, "the number of
//! data items to be transferred between the subtasks"); [`GraphMetrics`]
//! computes that plus the usual DAG shape statistics. [`TransitiveClosure`]
//! backs the valid-range computation of the schedule encoding (a task may
//! move anywhere between its last transitive predecessor and first
//! transitive successor), and [`CriticalPath`] provides lower bounds used
//! by tests and the benchmark harness to sanity-band every scheduler.

use crate::bitset::BitSet;
use crate::graph::TaskGraph;
use crate::ids::TaskId;
use crate::topo::TopoOrder;

/// All-pairs reachability for a DAG, one [`BitSet`] of descendants per task.
///
/// Memory is `k^2 / 8` bytes — ~1.25 MB at `k = 3162`, comfortably within
/// scope for the paper's instance sizes (k ≤ a few hundred).
#[derive(Debug, Clone)]
pub struct TransitiveClosure {
    /// `desc[t]` = set of tasks reachable from `t` (excluding `t`).
    desc: Vec<BitSet>,
    /// `anc[t]` = set of tasks that reach `t` (excluding `t`).
    anc: Vec<BitSet>,
}

impl TransitiveClosure {
    /// Computes the closure in O(k·p/64) word operations via a reverse
    /// topological sweep.
    pub fn compute(graph: &TaskGraph) -> TransitiveClosure {
        let k = graph.task_count();
        let order = TopoOrder::kahn(graph);
        let mut desc = vec![BitSet::new(k); k];
        for &t in order.as_slice().iter().rev() {
            // descendants(t) = U over direct successors s of ({s} U descendants(s))
            let mut acc = BitSet::new(k);
            for s in graph.successors(t) {
                acc.insert(s.index());
                acc.union_with(&desc[s.index()]);
            }
            desc[t.index()] = acc;
        }
        let mut anc = vec![BitSet::new(k); k];
        for &t in order.as_slice() {
            let mut acc = BitSet::new(k);
            for p in graph.predecessors(t) {
                acc.insert(p.index());
                acc.union_with(&anc[p.index()]);
            }
            anc[t.index()] = acc;
        }
        TransitiveClosure { desc, anc }
    }

    /// Is there a directed path `from -> ... -> to`?
    #[inline]
    pub fn reaches(&self, from: TaskId, to: TaskId) -> bool {
        self.desc[from.index()].contains(to.index())
    }

    /// Tasks reachable from `t` (its transitive successors).
    #[inline]
    pub fn descendants(&self, t: TaskId) -> &BitSet {
        &self.desc[t.index()]
    }

    /// Tasks that reach `t` (its transitive predecessors).
    #[inline]
    pub fn ancestors(&self, t: TaskId) -> &BitSet {
        &self.anc[t.index()]
    }

    /// Are `a` and `b` incomparable (no path either way)? Incomparable task
    /// pairs are exactly the pairs whose relative order a schedule may
    /// freely choose.
    #[inline]
    pub fn independent(&self, a: TaskId, b: TaskId) -> bool {
        a != b && !self.reaches(a, b) && !self.reaches(b, a)
    }
}

/// A longest path through the DAG under a per-task weight function.
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalPath {
    /// Tasks on the path, in precedence order.
    pub tasks: Vec<TaskId>,
    /// Total weight of the path.
    pub length: f64,
}

impl CriticalPath {
    /// Longest path where task `t` costs `weight(t)` and edges cost
    /// `edge_weight(src, dst)`. With unit task weights and zero edge
    /// weights this is the "depth" of the DAG; with per-task mean execution
    /// times it is the classic schedule-length lower bound used by HEFT-
    /// style analyses.
    pub fn compute(
        graph: &TaskGraph,
        mut weight: impl FnMut(TaskId) -> f64,
        mut edge_weight: impl FnMut(TaskId, TaskId) -> f64,
    ) -> CriticalPath {
        let order = TopoOrder::kahn(graph);
        let k = graph.task_count();
        let mut dist = vec![0.0f64; k];
        let mut parent: Vec<Option<TaskId>> = vec![None; k];
        for &t in order.as_slice() {
            dist[t.index()] += weight(t);
            for s in graph.successors(t) {
                let cand = dist[t.index()] + edge_weight(t, s);
                if cand > dist[s.index()] {
                    dist[s.index()] = cand;
                    parent[s.index()] = Some(t);
                }
            }
        }
        let (end, &length) =
            dist.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).expect("graph is non-empty");
        let mut tasks = vec![TaskId::from_usize(end)];
        while let Some(p) = parent[tasks.last().unwrap().index()] {
            tasks.push(p);
        }
        tasks.reverse();
        CriticalPath { tasks, length }
    }
}

/// Earliest/latest start-time schedulability analysis under a per-task
/// weight function — the classic CPM forward/backward sweep.
///
/// The forward pass computes, for every task, the earliest time it could
/// start if every predecessor ran at its weight with the given edge
/// costs; the backward pass computes the latest start that still admits
/// finishing the whole graph within the critical-path length. The
/// difference is the task's *slack*: zero-slack tasks form the critical
/// path(s), high-slack tasks are the ones a scheduler may freely delay
/// (or relocate) without extending the schedule.
///
/// With per-task cheapest execution times as weights and zero edge
/// weights this is the machine-relaxed analysis behind the certified
/// instance lower bound (`mshc-schedule`'s `lower_bound` module): no
/// feasible schedule can start `t` before `earliest[t]` or finish the
/// graph before `length`.
#[derive(Debug, Clone, PartialEq)]
pub struct SlackAnalysis {
    /// Earliest possible start time of each task.
    pub earliest: Vec<f64>,
    /// Latest start time of each task that still permits finishing
    /// within [`length`](Self::length).
    pub latest: Vec<f64>,
    /// Critical-path length: `max_t earliest[t] + weight(t)`.
    pub length: f64,
}

impl SlackAnalysis {
    /// Runs the forward/backward sweep in O(k + p). `weight(t)` is the
    /// duration of task `t`, `edge_weight(src, dst)` the delay between
    /// the finish of `src` and the earliest start of `dst` it allows.
    /// Both closures are called once per task/edge per direction.
    pub fn compute(
        graph: &TaskGraph,
        mut weight: impl FnMut(TaskId) -> f64,
        mut edge_weight: impl FnMut(TaskId, TaskId) -> f64,
    ) -> SlackAnalysis {
        let order = TopoOrder::kahn(graph);
        let k = graph.task_count();
        let w: Vec<f64> = (0..k).map(|t| weight(TaskId::from_usize(t))).collect();
        let mut earliest = vec![0.0f64; k];
        for &t in order.as_slice() {
            let finish = earliest[t.index()] + w[t.index()];
            for s in graph.successors(t) {
                let cand = finish + edge_weight(t, s);
                if cand > earliest[s.index()] {
                    earliest[s.index()] = cand;
                }
            }
        }
        let length = (0..k).map(|t| earliest[t] + w[t]).fold(0.0f64, f64::max);
        let mut latest_finish = vec![f64::INFINITY; k];
        let mut latest = vec![0.0f64; k];
        for &t in order.as_slice().iter().rev() {
            let mut lf = f64::INFINITY;
            for s in graph.successors(t) {
                let cand = latest[s.index()] - edge_weight(t, s);
                if cand < lf {
                    lf = cand;
                }
            }
            if lf == f64::INFINITY {
                lf = length; // exit task
            }
            latest_finish[t.index()] = lf;
            latest[t.index()] = lf - w[t.index()];
        }
        SlackAnalysis { earliest, latest, length }
    }

    /// Scheduling slack of `t`: how far its start may slip past the
    /// earliest without extending the critical-path length. Zero on
    /// critical tasks (up to float rounding).
    #[inline]
    pub fn slack(&self, t: TaskId) -> f64 {
        self.latest[t.index()] - self.earliest[t.index()]
    }
}

/// Shape statistics for a task graph, including the paper's connectivity
/// axis.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphMetrics {
    /// Number of tasks `k`.
    pub tasks: usize,
    /// Number of data items `p`.
    pub data_items: usize,
    /// Edge density relative to the maximal DAG: `p / (k(k-1)/2)`.
    pub density: f64,
    /// Average out-degree `p / k` — the paper's connectivity measure.
    pub avg_degree: f64,
    /// Number of levels (longest path in hops, plus one).
    pub depth: usize,
    /// Maximum number of tasks on one level (graph width).
    pub width: usize,
    /// Number of entry tasks.
    pub entries: usize,
    /// Number of exit tasks.
    pub exits: usize,
}

impl GraphMetrics {
    /// Computes all metrics in O(k + p).
    pub fn compute(graph: &TaskGraph) -> GraphMetrics {
        let levels = crate::topo::Levels::compute(graph);
        let layers = levels.layers();
        let k = graph.task_count();
        let p = graph.data_count();
        let max_edges = k * (k.saturating_sub(1)) / 2;
        GraphMetrics {
            tasks: k,
            data_items: p,
            density: if max_edges == 0 { 0.0 } else { p as f64 / max_edges as f64 },
            avg_degree: p as f64 / k as f64,
            depth: layers.len(),
            width: layers.iter().map(Vec::len).max().unwrap_or(0),
            entries: graph.entry_tasks().len(),
            exits: graph.exit_tasks().len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::TaskGraphBuilder;

    fn figure1() -> TaskGraph {
        let mut b = TaskGraphBuilder::new(7);
        for (s, d) in [(0, 2), (0, 3), (1, 4), (2, 5), (3, 5), (4, 6)] {
            b.add_edge(s, d).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn closure_reachability() {
        let g = figure1();
        let tc = TransitiveClosure::compute(&g);
        assert!(tc.reaches(TaskId::new(0), TaskId::new(5)));
        assert!(tc.reaches(TaskId::new(1), TaskId::new(6)));
        assert!(!tc.reaches(TaskId::new(0), TaskId::new(6)));
        assert!(!tc.reaches(TaskId::new(5), TaskId::new(0)));
        assert!(!tc.reaches(TaskId::new(0), TaskId::new(0)), "excludes self");
    }

    #[test]
    fn closure_ancestors_mirror_descendants() {
        let g = figure1();
        let tc = TransitiveClosure::compute(&g);
        for a in g.tasks() {
            for b in g.tasks() {
                assert_eq!(
                    tc.reaches(a, b),
                    tc.ancestors(b).contains(a.index()),
                    "descendant/ancestor symmetry {a} {b}"
                );
            }
        }
    }

    #[test]
    fn independence() {
        let g = figure1();
        let tc = TransitiveClosure::compute(&g);
        assert!(tc.independent(TaskId::new(0), TaskId::new(1)));
        assert!(tc.independent(TaskId::new(5), TaskId::new(6)));
        assert!(!tc.independent(TaskId::new(0), TaskId::new(5)));
        assert!(!tc.independent(TaskId::new(3), TaskId::new(3)));
    }

    #[test]
    fn unit_critical_path_is_depth() {
        let g = figure1();
        let cp = CriticalPath::compute(&g, |_| 1.0, |_, _| 0.0);
        assert_eq!(cp.length, 3.0); // e.g. s1 -> s4 -> s6 (3 tasks)
        assert_eq!(cp.tasks.len(), 3);
        assert!(g.entry_tasks().contains(&cp.tasks[0]));
        assert!(g.exit_tasks().contains(cp.tasks.last().unwrap()));
    }

    #[test]
    fn weighted_critical_path() {
        // 0 ->(10) 2, 1 ->(1) 2; task weights 1 except task1 = 5.
        let mut b = TaskGraphBuilder::new(3);
        b.add_edge(0, 2).unwrap();
        b.add_edge(1, 2).unwrap();
        let g = b.build().unwrap();
        let cp = CriticalPath::compute(
            &g,
            |t| if t == TaskId::new(1) { 5.0 } else { 1.0 },
            |s, _| if s == TaskId::new(0) { 10.0 } else { 1.0 },
        );
        // path 0 -> 2: 1 + 10 + 1 = 12; path 1 -> 2: 5 + 1 + 1 = 7
        assert_eq!(cp.length, 12.0);
        assert_eq!(cp.tasks, vec![TaskId::new(0), TaskId::new(2)]);
    }

    #[test]
    fn metrics_figure1() {
        let g = figure1();
        let m = GraphMetrics::compute(&g);
        assert_eq!(m.tasks, 7);
        assert_eq!(m.data_items, 6);
        assert_eq!(m.depth, 3);
        assert_eq!(m.width, 3); // level 1: s2 s3 s4
        assert_eq!(m.entries, 2);
        assert_eq!(m.exits, 2);
        assert!((m.avg_degree - 6.0 / 7.0).abs() < 1e-12);
        assert!((m.density - 6.0 / 21.0).abs() < 1e-12);
    }

    #[test]
    fn metrics_single_task() {
        let g = TaskGraphBuilder::new(1).build().unwrap();
        let m = GraphMetrics::compute(&g);
        assert_eq!(m.density, 0.0);
        assert_eq!(m.depth, 1);
        assert_eq!(m.width, 1);
    }

    #[test]
    fn slack_forward_pass_matches_critical_path() {
        let g = figure1();
        let sa = SlackAnalysis::compute(&g, |_| 1.0, |_, _| 0.0);
        let cp = CriticalPath::compute(&g, |_| 1.0, |_, _| 0.0);
        assert_eq!(sa.length, cp.length);
        // Critical tasks have zero slack; every task on the critical
        // path reported by CriticalPath must be critical here too.
        for &t in &cp.tasks {
            assert_eq!(sa.slack(t), 0.0, "{t} on the critical path");
        }
        // Entry tasks start at zero; slack is never negative.
        for t in g.tasks() {
            assert!(sa.earliest[t.index()] >= 0.0);
            assert!(sa.slack(t) >= 0.0, "{t} has negative slack {}", sa.slack(t));
            assert!(sa.latest[t.index()] + 1.0 <= sa.length + 1e-12, "{t} misses the deadline");
        }
    }

    #[test]
    fn slack_weighted_chain_and_fork() {
        // 0 -> 2, 1 -> 2; w(0)=4, w(1)=1, w(2)=2; zero edges. Path through
        // 0 dominates: length 6, task 1 has slack 3.
        let mut b = TaskGraphBuilder::new(3);
        b.add_edge(0, 2).unwrap();
        b.add_edge(1, 2).unwrap();
        let g = b.build().unwrap();
        let w = [4.0, 1.0, 2.0];
        let sa = SlackAnalysis::compute(&g, |t| w[t.index()], |_, _| 0.0);
        assert_eq!(sa.length, 6.0);
        assert_eq!(sa.earliest, vec![0.0, 0.0, 4.0]);
        assert_eq!(sa.latest, vec![0.0, 3.0, 4.0]);
        assert_eq!(sa.slack(TaskId::new(1)), 3.0);
        // Edge weights stretch the path: 0 ->(5) 2 makes length 11 and
        // gives task 1 slack 8.
        let sa = SlackAnalysis::compute(
            &g,
            |t| w[t.index()],
            |s, _| if s == TaskId::new(0) { 5.0 } else { 0.0 },
        );
        assert_eq!(sa.length, 11.0);
        assert_eq!(sa.slack(TaskId::new(1)), 8.0);
        assert_eq!(sa.slack(TaskId::new(0)), 0.0);
    }

    #[test]
    fn critical_path_on_chain() {
        let mut b = TaskGraphBuilder::new(5);
        for i in 0..4 {
            b.add_edge(i, i + 1).unwrap();
        }
        let g = b.build().unwrap();
        let cp = CriticalPath::compute(&g, |_| 2.0, |_, _| 3.0);
        // 5 tasks * 2 + 4 edges * 3 = 22
        assert_eq!(cp.length, 22.0);
        assert_eq!(cp.tasks.len(), 5);
    }
}
