//! The SE main loop: evaluation → selection → allocation (§3–4).

use crate::config::{AllocationStrategy, SeConfig};
use crate::goodness::{goodness, optimal_costs};
use mshc_obs as obs;
use mshc_platform::{HcInstance, MachineId};
use mshc_schedule::{
    certified_gap, next_up, run_stepped, BatchEvaluator, EvalSnapshot, Evaluator,
    IncrementalEvaluator, Incumbent, InstanceBound, MoveScore, Objective, ObjectiveKind, RunBudget,
    RunResult, ScanStats, ScheduleReport, Scheduler, SearchStep, Solution, StepVerdict,
    SteppableSearch,
};
use mshc_taskgraph::{Levels, TaskId};
use mshc_trace::{Trace, TraceRecord};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::time::Instant;

/// The simulated-evolution scheduler.
///
/// Construct with an [`SeConfig`] and drive through the
/// [`Scheduler`] trait. A scheduler value is reusable: each
/// [`run`](Scheduler::run) starts fresh from the configured seed.
#[derive(Debug, Clone)]
pub struct SeScheduler {
    config: SeConfig,
}

impl SeScheduler {
    /// Creates a scheduler with the given configuration.
    pub fn new(config: SeConfig) -> SeScheduler {
        SeScheduler { config }
    }

    /// Paper-faithful defaults with the bias auto-set from the instance
    /// size at run time.
    pub fn with_seed(seed: u64) -> SeScheduler {
        SeScheduler::new(SeConfig { seed, ..SeConfig::default() })
    }

    /// The configuration.
    pub fn config(&self) -> &SeConfig {
        &self.config
    }
}

impl Scheduler for SeScheduler {
    fn name(&self) -> &str {
        "se"
    }

    fn run(
        &mut self,
        inst: &HcInstance,
        budget: &RunBudget,
        trace: Option<&mut Trace>,
    ) -> RunResult {
        budget.validate().expect("SE is an anytime algorithm");
        // One maximal slice of the stepped state machine — plain and
        // stepped runs share every line of search code, so they are
        // bit-identical (solutions, objective values *and* evaluation
        // counts) by construction.
        run_stepped(self, inst, budget, trace)
    }
}

impl SteppableSearch for SeScheduler {
    fn start<'a>(&mut self, inst: &'a HcInstance, budget: &RunBudget) -> Box<dyn SearchStep + 'a> {
        let start = Instant::now();
        let g = inst.graph();
        let cfg = self.config;
        let objective = budget.objective;
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);

        // ---- one-time precomputation (§4.3: O_i never changes) ----
        let optimal = optimal_costs(inst);
        let levels = Levels::compute(g);
        let y = cfg.y_limit.unwrap_or(inst.machine_count()).clamp(1, inst.machine_count());
        let allowed: Vec<Vec<MachineId>> = g
            .tasks()
            .map(|t| {
                let mut ranking = inst.system().machine_ranking(t);
                ranking.truncate(y);
                ranking
            })
            .collect();

        // One flattened snapshot serves the scalar evaluator, the
        // incremental move evaluator and the batch workers for the
        // whole run (the per-slice evaluator views in `step` all borrow
        // it, so rebuilding them never changes a score).
        let snapshot = EvalSnapshot::new(inst);

        // Certified instance floor (makespan only): drives the scan-
        // global cutoff, the bound-aware allocation order and early
        // termination. Computed once; consumes no RNG, counts no
        // evaluations.
        let bound = objective.is_makespan().then(|| InstanceBound::compute(inst));

        // ---- initial solution (§4.2) ----
        let perturb = cfg.init_perturbations.unwrap_or(2 * inst.task_count());
        let current = mshc_schedule::init::random_solution_with(inst, perturb, &mut rng);
        let mut evaluations = 0;
        let (report, score) = {
            let mut eval = Evaluator::with_snapshot(&snapshot);
            let report = eval.report(&current);
            let score = objective.value(&report.view());
            evaluations += eval.evaluations();
            (report, score)
        };

        Box::new(SeState {
            inst,
            cfg,
            budget: budget.clone(),
            objective,
            rng,
            optimal,
            levels,
            allowed,
            snapshot,
            best: current.clone(),
            best_score: score,
            current,
            report,
            score,
            iterations: 0,
            stall: 0,
            evaluations,
            scan: ScanStats::default(),
            selected: Vec::with_capacity(inst.task_count()),
            bias: cfg.selection_bias,
            bound,
            early_stopped: false,
            cancelled: false,
            start,
        })
    }
}

/// A paused SE run: everything the evaluation → selection → allocation
/// loop carries between iterations, plus accumulated budget accounting.
struct SeState<'a> {
    inst: &'a HcInstance,
    cfg: SeConfig,
    budget: RunBudget,
    objective: ObjectiveKind,
    rng: ChaCha8Rng,
    optimal: Vec<f64>,
    levels: Levels,
    allowed: Vec<Vec<MachineId>>,
    snapshot: EvalSnapshot,
    current: Solution,
    report: ScheduleReport,
    score: f64,
    best: Solution,
    best_score: f64,
    iterations: u64,
    stall: u64,
    /// Evaluations accumulated across completed step slices (the
    /// per-slice evaluators contribute their counts when the slice
    /// ends, so totals are independent of how the run is sliced).
    evaluations: u64,
    /// Fast-path counters accumulated across completed slices.
    scan: ScanStats,
    selected: Vec<TaskId>,
    bias: f64,
    /// Certified instance floor, present iff the objective is makespan.
    bound: Option<InstanceBound>,
    /// Whether the incumbent reached the certified floor and the run
    /// stopped early (observable only as fewer evaluations — never a
    /// different solution, since nothing below the floor exists).
    early_stopped: bool,
    /// Latched cooperative-cancellation flag: set the first time the
    /// budget's [`mshc_schedule::CancelToken`] is observed fired at an
    /// iteration boundary (never mid-evaluation, so counts stay exact).
    cancelled: bool,
    start: Instant,
}

impl SearchStep for SeState<'_> {
    fn name(&self) -> &str {
        "se"
    }

    fn step(&mut self, max_iterations: u64, mut trace: Option<&mut Trace>) -> StepVerdict {
        let g = self.inst.graph();
        let floor = self.bound.as_ref().map(|b| b.floor());
        let mut eval = Evaluator::with_snapshot(&self.snapshot);
        let mut inc = IncrementalEvaluator::with_snapshot(&self.snapshot);
        inc.set_stride(self.budget.checkpoint_stride);
        inc.set_pruning(self.budget.prune);
        inc.set_splicing(self.budget.prune);
        inc.set_scan_floor(floor.unwrap_or(f64::NEG_INFINITY));
        let mut batch = BatchEvaluator::new(&self.snapshot)
            .with_stride(self.budget.checkpoint_stride)
            .with_pruning(self.budget.prune)
            .with_scan_floor(floor.unwrap_or(f64::NEG_INFINITY));
        let mut moves = Vec::new();
        let mut stepped = 0u64;

        // The initial solution (or an injected migrant) may already sit
        // on the certified floor — nothing below it exists, so there is
        // nothing left to search.
        self.early_stopped =
            self.early_stopped || self.budget.floor_reached(floor, self.best_score);

        while !self.early_stopped
            && stepped < max_iterations
            && !self.budget.observe_cancel(&mut self.cancelled)
            && !self.budget.halted(
                self.iterations,
                self.evaluations + eval.evaluations(),
                self.start.elapsed(),
                self.stall,
            )
        {
            // ---- evaluation + selection (§4.4) ----
            // Goodness stays the paper's finish-time ratio for every
            // objective: it measures how well an individual task sits,
            // which is what drives selection pressure; the objective
            // decides which *whole schedules* win.
            self.selected.clear();
            for t in g.tasks() {
                let gi = goodness(self.optimal[t.index()], self.report.finish_of(t));
                if self.rng.gen::<f64>() > gi + self.bias {
                    self.selected.push(t);
                }
            }
            let selected_count = self.selected.len() as u32;
            if let Some(adapt) = self.cfg.adaptive_bias {
                // Closed loop: over-selection raises the bias (restricts),
                // under-selection lowers it (loosens). Clamped to the
                // paper's published range.
                let fraction = selected_count as f64 / self.inst.task_count() as f64;
                self.bias =
                    (self.bias + adapt.gain * (fraction - adapt.target_fraction)).clamp(-0.3, 0.1);
            }
            self.levels.sort_by_level(&mut self.selected);

            // ---- allocation (§4.5) ----
            for &t in &self.selected {
                allocate(
                    &mut self.current,
                    self.inst,
                    &mut eval,
                    &mut inc,
                    &mut batch,
                    &mut moves,
                    t,
                    &self.allowed[t.index()],
                    &self.cfg,
                    self.objective,
                    self.bound.as_ref(),
                );
            }

            eval.report_into(&self.current, &mut self.report);
            self.score = self.objective.value(&self.report.view());
            if self.score < self.best_score {
                self.best_score = self.score;
                self.best.clone_from(&self.current);
                self.stall = 0;
                if self.budget.floor_reached(floor, self.best_score) {
                    self.early_stopped = true;
                }
            } else {
                self.stall += 1;
            }
            self.iterations += 1;
            obs::add(obs::Counter::Iterations, 1);
            stepped += 1;

            if let Some(tr) = trace.as_deref_mut() {
                tr.push(TraceRecord {
                    iteration: self.iterations - 1,
                    elapsed_secs: self.start.elapsed().as_secs_f64(),
                    evaluations: self.evaluations + eval.evaluations(),
                    current_cost: self.score,
                    best_cost: self.best_score,
                    selected: Some(selected_count),
                    population_mean: None,
                });
            }
        }

        self.evaluations += eval.evaluations();
        self.scan.merge(inc.stats());
        self.scan.merge(batch.scan_stats());
        if self.early_stopped
            || self.cancelled
            || self.budget.halted(
                self.iterations,
                self.evaluations,
                self.start.elapsed(),
                self.stall,
            )
        {
            StepVerdict::Exhausted
        } else {
            StepVerdict::Running
        }
    }

    fn incumbent(&self) -> Option<Incumbent<'_>> {
        Some(Incumbent { solution: &self.best, cost: self.best_score })
    }

    fn inject(&mut self, migrant: &Solution, cost: f64) {
        if cost < self.score {
            self.current.clone_from(migrant);
            self.score = cost;
            // Selection needs the migrant's per-task finish times; this
            // bookkeeping pass is uncounted, like the batch evaluator's
            // per-chunk primes, so portfolio and solo runs share the
            // same evaluation axis.
            Evaluator::with_snapshot(&self.snapshot).report_into(&self.current, &mut self.report);
            if cost < self.best_score {
                self.best.clone_from(migrant);
                self.best_score = cost;
                self.stall = 0;
            }
        }
    }

    fn result(&mut self) -> RunResult {
        let makespan = if self.objective.is_makespan() {
            self.best_score
        } else {
            // Reporting pass, deliberately uncounted: `evaluations` is
            // the search-cost axis of the figures.
            Evaluator::with_snapshot(&self.snapshot).makespan(&self.best)
        };
        let lower_bound = self.bound.as_ref().map(|b| b.floor());
        RunResult {
            solution: self.best.clone(),
            makespan,
            objective_value: self.best_score,
            iterations: self.iterations,
            evaluations: self.evaluations,
            elapsed: self.start.elapsed(),
            scan: self.scan,
            lower_bound,
            gap: certified_gap(lower_bound, self.best_score),
            early_stopped: self.early_stopped,
            termination: self.budget.termination(
                self.iterations,
                self.evaluations,
                self.start.elapsed(),
                self.stall,
                self.early_stopped,
                self.cancelled,
            ),
        }
    }
}

/// SE wrapper that resolves a NaN selection bias to the paper-recommended
/// value for the instance size at run time — the size is unknown until
/// the instance arrives, so the CLI (and the tournament engine) configure
/// the bias lazily through this type instead of baking in a guess.
#[derive(Debug, Clone)]
pub struct SePendingBias(SeConfig);

impl SePendingBias {
    /// Wraps a configuration whose `selection_bias` may be NaN
    /// ("resolve from the instance size at run time").
    pub fn new(config: SeConfig) -> SePendingBias {
        SePendingBias(config)
    }

    /// The configuration with the bias resolved for a `k`-task instance.
    fn resolved(&self, task_count: usize) -> SeConfig {
        let mut cfg = self.0;
        if cfg.selection_bias.is_nan() {
            cfg.selection_bias = SeConfig::recommended_bias(task_count);
        }
        cfg
    }
}

impl Scheduler for SePendingBias {
    fn name(&self) -> &str {
        "se"
    }

    fn run(
        &mut self,
        inst: &HcInstance,
        budget: &RunBudget,
        trace: Option<&mut Trace>,
    ) -> RunResult {
        SeScheduler::new(self.resolved(inst.task_count())).run(inst, budget, trace)
    }
}

impl SteppableSearch for SePendingBias {
    fn start<'a>(&mut self, inst: &'a HcInstance, budget: &RunBudget) -> Box<dyn SearchStep + 'a> {
        SeScheduler::new(self.resolved(inst.task_count())).start(inst, budget)
    }
}

/// Constructively re-places `t`: try every valid string position × every
/// allowed machine; commit per the configured strategy. The solution is
/// left at the committed placement.
///
/// The allocation step *relocates* selected individuals (§4.5): the
/// task's exact current `(position, machine)` pair is excluded from the
/// candidate grid, so a selected task always moves. This is what keeps SE
/// from being a pure monotone descent — a forced move can be uphill, and
/// §3 explicitly wants allocation to improve "without being too greedy".
/// (The best solution seen is tracked by the main loop, so uphill steps
/// never lose the incumbent.) The sole exception is a task with no
/// alternative placement (valid range of one position and a single
/// allowed machine), which stays put.
///
/// Three evaluation routes, all committing the same argmin (ties break
/// to the earliest candidate in `(position, machine)` grid order, so the
/// routes are bit-identical for every built-in objective):
///
/// * `parallel_allocation` (best-fit only) — the whole grid is scored in
///   one [`BatchEvaluator::score_moves`] call across worker threads
///   (which itself routes through per-thread incremental evaluators);
/// * `incremental_eval` — the serial incremental scan: the base is
///   primed once and every candidate is scored by checkpoint-resumed
///   suffix replay, without mutating the solution. Works for every
///   [`ObjectiveKind`] through the accumulator-finalize interface;
/// * otherwise — serial full objective passes (the ablation baseline,
///   and the only route for custom non-incremental objectives).
///
/// [`AllocationStrategy::FirstImprovement`] is inherently sequential
/// (the commit depends on scan order cutting the scan short), so it
/// always takes the serial route even when `parallel_allocation` is set.
///
/// Under the makespan objective the serial incremental best-fit scan is
/// additionally *bound-aware*: machines are visited in ascending order
/// of the candidate's certified placement floor (the tightest lower
/// bound [`InstanceBound`] can state for "`t` runs on `m`"), so the
/// running best drops fast and later candidates are pruned earlier.
/// The committed argmin is the original pos-major earliest-index
/// minimum regardless of visit order: the scan tracks each candidate's
/// original grid index, breaks score ties toward the smaller index, and
/// widens the pruning bound by one ULP while a tie could still win.
#[allow(clippy::too_many_arguments)]
fn allocate(
    sol: &mut Solution,
    inst: &HcInstance,
    eval: &mut Evaluator<'_>,
    inc: &mut IncrementalEvaluator<'_>,
    batch: &mut BatchEvaluator<'_>,
    moves: &mut Vec<(usize, MachineId)>,
    t: TaskId,
    machines: &[MachineId],
    cfg: &SeConfig,
    objective: ObjectiveKind,
    bound: Option<&InstanceBound>,
) {
    let g = inst.graph();
    let (lo, hi) = sol.valid_range(g, t);
    debug_assert!(!machines.is_empty());
    let orig_pos = sol.position_of(t);
    let orig_m = sol.machine_of(t);
    if hi == lo && machines.len() == 1 && machines[0] == orig_m {
        return; // nowhere else to go
    }

    if cfg.parallel_allocation && cfg.allocation == AllocationStrategy::BestFit {
        moves.clear();
        moves.extend(
            (lo..=hi)
                .flat_map(|pos| machines.iter().map(move |&m| (pos, m)))
                .filter(|&(pos, m)| pos != orig_pos || m != orig_m),
        );
        // The bounded scan commits the identical earliest-index argmin
        // the historic score-everything + min_by fold committed, and
        // charges the identical evaluation count — pruned candidates
        // count too.
        let best = batch.best_move(g, sol, t, moves, &objective).expect("non-empty candidate grid");
        eval.bump_evaluations(moves.len() as u64);
        let (pos, m) = moves[best.index];
        sol.move_task(g, t, pos, m).expect("committing the best candidate");
        return;
    }

    let use_incremental = cfg.incremental_eval && objective.supports_incremental();
    // The incremental route primes once (a full pass) and reads the
    // current cost off the fold for free. It is charged 2 evaluations —
    // one for the current-cost read, one for the priming pass — exactly
    // what this route has always charged (a counted current-cost pass
    // plus a counted prime), so evaluation budgets and reported counts
    // are stable across releases. The full-pass ablation route charges
    // 1 (no prime), as it always has: decisions are bit-identical
    // between the routes, evaluation *counts* are not — don't compare
    // the flag settings under a max_evaluations budget.
    let current_cost = if use_incremental {
        inc.prime(sol);
        eval.bump_evaluations(2);
        inc.base_score(&objective)
    } else {
        eval.objective_value(sol, &objective)
    };
    let mut best_pos = orig_pos;
    let mut best_m = orig_m;
    let mut best_cost = f64::INFINITY;

    if use_incremental && cfg.allocation == AllocationStrategy::BestFit {
        // Bound-aware serial scan. Machine-major, machines ordered by
        // ascending certified placement floor (original rank breaks
        // floor ties, and is the order outright when no bound exists —
        // non-makespan objectives). The argmin is forced back onto the
        // original pos-major axis through the grid index: a later-
        // visited candidate replaces the best only on a strictly better
        // score or an equal score at a smaller grid index, and while a
        // tie could still win the pruning bound is one ULP above the
        // best so the tie is never pruned away. Bit-identical
        // selections and evaluation counts to the natural-order scan.
        let width = machines.len();
        let mut order: Vec<usize> = (0..width).collect();
        if let Some(b) = bound {
            let sys = inst.system();
            order.sort_by(|&i, &j| {
                let fi = b.placement_floor(t, sys.exec_time(machines[i], t));
                let fj = b.placement_floor(t, sys.exec_time(machines[j], t));
                fi.total_cmp(&fj).then(i.cmp(&j))
            });
        }
        let mut best_grid = usize::MAX;
        for &rank in &order {
            let m = machines[rank];
            for pos in lo..=hi {
                if pos == orig_pos && m == orig_m {
                    continue; // relocation is mandatory
                }
                let grid = (pos - lo) * width + rank;
                eval.bump_evaluations(1);
                let cut = if grid < best_grid { next_up(best_cost) } else { best_cost };
                match inc.score_move_bounded(t, pos, m, cut, &objective) {
                    MoveScore::Exact(cost) => {
                        if cost < best_cost || (cost == best_cost && grid < best_grid) {
                            best_cost = cost;
                            best_grid = grid;
                            best_pos = pos;
                            best_m = m;
                        }
                    }
                    MoveScore::Pruned => {}
                }
            }
        }
        sol.move_task(g, t, best_pos, best_m).expect("committing the best candidate");
        return;
    }

    'search: for pos in lo..=hi {
        for &m in machines {
            if pos == orig_pos && m == orig_m {
                continue; // relocation is mandatory
            }
            let cost = if use_incremental {
                eval.bump_evaluations(1);
                // The running best rides along as the pruning bound: a
                // pruned candidate is provably above `best_cost`, so the
                // sequential scan would have rejected it (and, being no
                // new best, never first-improvement-breaks on it) —
                // skipping is behavior-identical.
                match inc.score_move_bounded(t, pos, m, best_cost, &objective) {
                    MoveScore::Exact(cost) => cost,
                    MoveScore::Pruned => continue,
                }
            } else {
                sol.move_task(g, t, pos, m).expect("candidate within valid range");
                eval.objective_value(sol, &objective)
            };
            if cost < best_cost {
                best_cost = cost;
                best_pos = pos;
                best_m = m;
                if cfg.allocation == AllocationStrategy::FirstImprovement && cost < current_cost {
                    break 'search;
                }
            }
        }
    }
    sol.move_task(g, t, best_pos, best_m).expect("committing the best candidate");
}

#[cfg(test)]
mod tests {
    use super::*;
    use mshc_platform::{HcSystem, Matrix};
    use mshc_schedule::replay;
    use mshc_taskgraph::gen::{layered, LayeredConfig};
    use mshc_taskgraph::TaskGraphBuilder;

    /// Deterministic random instance: layered DAG + uniform random
    /// matrices, all seeded.
    fn random_instance(tasks: usize, machines: usize, seed: u64) -> HcInstance {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let cfg = LayeredConfig { tasks, mean_width: 4, edge_prob: 0.5, skip_prob: 0.05 };
        let graph = layered(&cfg, &mut rng).unwrap();
        let exec = Matrix::from_fn(machines, tasks, |_, _| rng.gen_range(10.0..100.0));
        let pairs = machines * (machines - 1) / 2;
        let transfer = Matrix::from_fn(pairs, graph.data_count(), |_, _| rng.gen_range(1.0..30.0));
        let sys = HcSystem::with_anonymous_machines(machines, exec, transfer).unwrap();
        HcInstance::new(graph, sys).unwrap()
    }

    #[test]
    fn se_improves_over_initial_solution() {
        let inst = random_instance(30, 4, 1);
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let mut eval = Evaluator::new(&inst);
        // Mean makespan of random solutions as the "no search" baseline.
        let baseline: f64 = (0..20)
            .map(|_| eval.makespan(&mshc_schedule::random_solution(&inst, &mut rng)))
            .sum::<f64>()
            / 20.0;
        let mut se =
            SeScheduler::new(SeConfig { seed: 5, selection_bias: -0.1, ..Default::default() });
        let result = se.run(&inst, &RunBudget::iterations(60), None);
        assert!(
            result.makespan < baseline * 0.85,
            "SE ({}) should beat random baseline ({baseline}) clearly",
            result.makespan
        );
    }

    #[test]
    fn se_result_is_valid_and_matches_des_replay() {
        let inst = random_instance(25, 3, 2);
        let mut se = SeScheduler::with_seed(3);
        let result = se.run(&inst, &RunBudget::iterations(40), None);
        result.solution.check(inst.graph()).unwrap();
        let sim = replay(&inst, &result.solution).unwrap();
        assert!((sim.makespan - result.makespan).abs() < 1e-9);
        let analytic = Evaluator::new(&inst).makespan(&result.solution);
        assert!((analytic - result.makespan).abs() < 1e-9);
    }

    #[test]
    fn se_is_deterministic_under_seed() {
        let inst = random_instance(20, 3, 4);
        let run = |seed| SeScheduler::with_seed(seed).run(&inst, &RunBudget::iterations(25), None);
        let a = run(11);
        let b = run(11);
        assert_eq!(a.solution, b.solution);
        assert_eq!(a.makespan, b.makespan);
        let c = run(12);
        assert!(c.solution != a.solution || c.makespan == a.makespan);
    }

    #[test]
    fn parallel_allocation_matches_serial_at_every_thread_count() {
        // The determinism guard: the batch path must commit bit-identical
        // decisions to the serial scan with 1, 2 and N worker threads.
        let inst = random_instance(18, 4, 6);
        let serial = SeScheduler::new(SeConfig { seed: 21, ..Default::default() }).run(
            &inst,
            &RunBudget::iterations(15),
            None,
        );
        for threads in [1usize, 2, 8] {
            let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
            let parallel = pool.install(|| {
                SeScheduler::new(SeConfig {
                    seed: 21,
                    parallel_allocation: true,
                    ..Default::default()
                })
                .run(&inst, &RunBudget::iterations(15), None)
            });
            assert_eq!(
                serial.solution, parallel.solution,
                "deterministic argmin must agree ({threads} threads)"
            );
            assert_eq!(serial.makespan, parallel.makespan, "{threads} threads");
        }
    }

    #[test]
    fn first_improvement_ignores_parallel_allocation_flag() {
        // FirstImprovement is order-dependent, so the batch route must
        // not serve it: with both flags set, runs match the serial
        // first-improvement scan exactly.
        let inst = random_instance(16, 3, 41);
        let budget = RunBudget::iterations(12);
        let serial = SeScheduler::new(SeConfig {
            seed: 8,
            allocation: AllocationStrategy::FirstImprovement,
            ..Default::default()
        })
        .run(&inst, &budget, None);
        let flagged = SeScheduler::new(SeConfig {
            seed: 8,
            allocation: AllocationStrategy::FirstImprovement,
            parallel_allocation: true,
            ..Default::default()
        })
        .run(&inst, &budget, None);
        assert_eq!(serial.solution, flagged.solution);
        assert_eq!(serial.evaluations, flagged.evaluations);
    }

    #[test]
    fn objective_generic_se_optimizes_each_objective() {
        use mshc_schedule::{objective_from_report, replay};
        let inst = random_instance(24, 4, 16);
        for kind in [
            ObjectiveKind::TotalFlowtime,
            ObjectiveKind::MeanFlowtime,
            ObjectiveKind::Weighted { makespan: 1.0, flowtime: 0.5, balance: 0.5 },
        ] {
            let budget = RunBudget::iterations(30).with_objective(kind);
            let r = SeScheduler::with_seed(9).run(&inst, &budget, None);
            r.solution.check(inst.graph()).unwrap();
            // Reported objective value matches the DES replay oracle.
            let sim = replay(&inst, &r.solution).unwrap();
            let oracle = objective_from_report(&kind, &sim);
            assert!(
                (r.objective_value - oracle).abs() < 1e-9,
                "{}: {} vs oracle {oracle}",
                kind.label(),
                r.objective_value
            );
            // Makespan is still reported truthfully alongside.
            assert!((r.makespan - sim.makespan).abs() < 1e-9);
        }
    }

    #[test]
    fn flowtime_objective_changes_the_search_target() {
        // On a seeded instance, optimizing total flowtime must reach a
        // flowtime at least as good as what the makespan run stumbles
        // into, and the makespan run must win on makespan — i.e. the
        // objective genuinely steers the search.
        let inst = random_instance(30, 4, 17);
        let mk_run = SeScheduler::with_seed(3).run(&inst, &RunBudget::iterations(80), None);
        let ft_budget = RunBudget::iterations(80).with_objective(ObjectiveKind::TotalFlowtime);
        let ft_run = SeScheduler::with_seed(3).run(&inst, &ft_budget, None);
        let mut eval = Evaluator::new(&inst);
        let mk_run_ft = eval.objective_value(&mk_run.solution, &ObjectiveKind::TotalFlowtime);
        assert!(
            ft_run.objective_value <= mk_run_ft + 1e-9,
            "flowtime run ({}) must beat/match the makespan run's flowtime ({mk_run_ft})",
            ft_run.objective_value
        );
        assert!(
            mk_run.makespan <= ft_run.makespan + 1e-9,
            "makespan run ({}) must beat/match the flowtime run's makespan ({})",
            mk_run.makespan,
            ft_run.makespan
        );
    }

    #[test]
    fn makespan_objective_value_equals_makespan() {
        let inst = random_instance(15, 3, 19);
        let r = SeScheduler::with_seed(2).run(&inst, &RunBudget::iterations(20), None);
        assert_eq!(r.makespan, r.objective_value);
    }

    #[test]
    fn adaptive_bias_tracks_target_fraction() {
        use crate::config::AdaptiveBias;
        let inst = random_instance(40, 5, 18);
        let target = 0.25;
        let mut se = SeScheduler::new(SeConfig {
            seed: 6,
            selection_bias: 0.0,
            adaptive_bias: Some(AdaptiveBias { target_fraction: target, gain: 0.08 }),
            ..Default::default()
        });
        let mut trace = Trace::new();
        let r = se.run(&inst, &RunBudget::iterations(120), Some(&mut trace));
        r.solution.check(inst.graph()).unwrap();
        // Mean selection fraction over the second half of the run should
        // hover near the target; a fixed bias on the same instance drifts
        // to near-zero selection as goodness saturates.
        let tail: Vec<f64> =
            trace.records()[60..].iter().map(|rec| rec.selected.unwrap() as f64 / 40.0).collect();
        let mean = tail.iter().sum::<f64>() / tail.len() as f64;
        assert!(
            (mean - target).abs() < 0.12,
            "adaptive selection fraction {mean} should track target {target}"
        );
    }

    #[test]
    fn no_prune_runs_are_bit_identical() {
        // The bounded/spliced fast path is a pure cost knob: whole SE
        // runs (serial and batch allocation routes) match with it off,
        // solutions and evaluation counts included.
        for parallel in [false, true] {
            let inst = random_instance(24, 4, 51);
            let cfg = SeConfig { seed: 9, parallel_allocation: parallel, ..Default::default() };
            let on = SeScheduler::new(cfg).run(&inst, &RunBudget::iterations(15), None);
            let off = SeScheduler::new(cfg).run(
                &inst,
                &RunBudget::iterations(15).with_prune(false),
                None,
            );
            assert_eq!(on.solution, off.solution, "parallel={parallel}");
            assert_eq!(on.makespan, off.makespan);
            assert_eq!(on.evaluations, off.evaluations, "evaluation-count contract");
            assert_eq!(off.scan.pruned, 0, "no-prune must not prune");
            assert_eq!(off.scan.spliced, 0, "no-prune must not splice");
            if parallel {
                assert!(on.scan.scored > 0, "batch route scans incrementally");
            }
        }
    }

    #[test]
    fn incremental_eval_matches_full_eval_runs() {
        // The suffix-checkpoint fast path must not change a single
        // decision: whole runs are bit-identical with the flag on/off.
        for seed in [3u64, 17, 91] {
            let inst = random_instance(22, 4, seed);
            let fast =
                SeScheduler::new(SeConfig { seed, incremental_eval: true, ..Default::default() })
                    .run(&inst, &RunBudget::iterations(20), None);
            let slow =
                SeScheduler::new(SeConfig { seed, incremental_eval: false, ..Default::default() })
                    .run(&inst, &RunBudget::iterations(20), None);
            assert_eq!(fast.solution, slow.solution, "seed {seed}");
            assert_eq!(fast.makespan, slow.makespan);
        }
    }

    #[test]
    fn budget_limits_iterations_and_stall() {
        let inst = random_instance(15, 3, 7);
        let mut se = SeScheduler::with_seed(1);
        let r = se.run(&inst, &RunBudget::iterations(8), None);
        assert_eq!(r.iterations, 8);

        let r = se.run(&inst, &RunBudget::iterations(10_000).with_stall(5), None);
        assert!(r.iterations < 10_000, "stall window must cut the run short");
    }

    #[test]
    fn evaluation_budget_respected_approximately() {
        let inst = random_instance(15, 3, 8);
        let mut se = SeScheduler::with_seed(2);
        let r = se.run(&inst, &RunBudget::evaluations(2_000), None);
        // The loop checks between iterations, so the overshoot is at most
        // one iteration's worth of allocations.
        assert!(r.evaluations >= 2_000);
        assert!(r.evaluations < 2_000 + 15 * 15 * 3 + 20);
    }

    #[test]
    fn trace_records_selected_counts_and_costs() {
        let inst = random_instance(20, 3, 9);
        let mut se =
            SeScheduler::new(SeConfig { seed: 4, selection_bias: -0.2, ..Default::default() });
        let mut trace = Trace::new();
        let r = se.run(&inst, &RunBudget::iterations(30), Some(&mut trace));
        assert_eq!(trace.len(), 30);
        for (i, rec) in trace.records().iter().enumerate() {
            assert_eq!(rec.iteration, i as u64);
            assert!(rec.selected.is_some());
            assert!(rec.best_cost <= rec.current_cost + 1e-9);
            assert!(rec.best_cost > 0.0);
        }
        assert_eq!(trace.last().unwrap().best_cost, r.makespan);
        // best_cost is non-increasing
        for w in trace.records().windows(2) {
            assert!(w[1].best_cost <= w[0].best_cost + 1e-12);
        }
    }

    #[test]
    fn selection_pressure_decays() {
        // Fig 3a shape: the mean selected count over the last quarter of a
        // run should be well below the first iteration's.
        let inst = random_instance(40, 5, 10);
        let mut se =
            SeScheduler::new(SeConfig { seed: 6, selection_bias: 0.0, ..Default::default() });
        let mut trace = Trace::new();
        se.run(&inst, &RunBudget::iterations(80), Some(&mut trace));
        let recs = trace.records();
        let first = recs[0].selected.unwrap() as f64;
        let tail: Vec<f64> = recs[60..].iter().map(|r| r.selected.unwrap() as f64).collect();
        let tail_mean = tail.iter().sum::<f64>() / tail.len() as f64;
        assert!(
            tail_mean < first * 0.7,
            "selected tasks must decay: first {first}, tail mean {tail_mean}"
        );
    }

    #[test]
    fn y_limits_machines_used_by_allocation() {
        // With Y=1 every allocated task must end on its best machine; run
        // long enough that every task is re-allocated at least once.
        let inst = random_instance(15, 4, 11);
        let mut se = SeScheduler::new(SeConfig {
            seed: 13,
            y_limit: Some(1),
            selection_bias: -0.9, // select (almost) everything
            ..Default::default()
        });
        let r = se.run(&inst, &RunBudget::iterations(10), None);
        let sys = inst.system();
        for t in inst.graph().tasks() {
            assert_eq!(
                r.solution.machine_of(t),
                sys.best_machine(t),
                "Y=1 pins {t} to its best machine"
            );
        }
    }

    #[test]
    fn y_larger_than_machine_count_clamps() {
        let inst = random_instance(12, 3, 12);
        let mut se =
            SeScheduler::new(SeConfig { seed: 1, y_limit: Some(99), ..Default::default() });
        let r = se.run(&inst, &RunBudget::iterations(5), None);
        r.solution.check(inst.graph()).unwrap();
    }

    #[test]
    fn first_improvement_strategy_runs_and_is_valid() {
        let inst = random_instance(20, 3, 14);
        let best_fit = SeScheduler::new(SeConfig { seed: 5, ..Default::default() }).run(
            &inst,
            &RunBudget::iterations(20),
            None,
        );
        let first = SeScheduler::new(SeConfig {
            seed: 5,
            allocation: AllocationStrategy::FirstImprovement,
            ..Default::default()
        })
        .run(&inst, &RunBudget::iterations(20), None);
        first.solution.check(inst.graph()).unwrap();
        assert!(
            first.evaluations <= best_fit.evaluations,
            "first-improvement must not evaluate more than best-fit"
        );
    }

    #[test]
    fn early_termination_at_the_certified_floor() {
        // Balanced integer instance: 4 independent tasks on 2 machines,
        // every execution 6.0 → certified floor 12.0 (work 24 over
        // capacity 2), reachable by any 2+2 split. SE finds it, the
        // early-stopped run and the full run return the same solution
        // (nothing below a certified floor exists to find), and the
        // stop is observable only as fewer iterations/evaluations.
        let g = TaskGraphBuilder::new(4).build().unwrap();
        let exec = Matrix::filled(2, 4, 6.0);
        let sys = HcSystem::with_anonymous_machines(2, exec, Matrix::filled(1, 0, 0.0)).unwrap();
        let inst = HcInstance::new(g, sys).unwrap();
        let budget = RunBudget::iterations(200);
        let stopped = SeScheduler::with_seed(4).run(&inst, &budget, None);
        let full = SeScheduler::with_seed(4).run(&inst, &budget.with_early_stop(false), None);
        assert_eq!(stopped.lower_bound, Some(12.0));
        assert_eq!(stopped.makespan, 12.0);
        assert_eq!(stopped.gap, Some(1.0));
        assert!(stopped.early_stopped, "floor hit must flag the stop");
        assert!(!full.early_stopped, "disabled early stop never flags");
        assert_eq!(stopped.solution, full.solution, "early stop never changes the answer");
        assert_eq!(stopped.objective_value, full.objective_value);
        assert!(stopped.iterations < full.iterations, "the stop must actually save work");
        assert!(stopped.evaluations <= full.evaluations);
        assert_eq!(full.lower_bound, Some(12.0), "certificate reported either way");
        assert_eq!(full.gap, Some(1.0));
    }

    #[test]
    fn non_makespan_objectives_report_no_certificate() {
        let inst = random_instance(15, 3, 23);
        let budget = RunBudget::iterations(10).with_objective(ObjectiveKind::TotalFlowtime);
        let r = SeScheduler::with_seed(5).run(&inst, &budget, None);
        assert_eq!(r.lower_bound, None);
        assert_eq!(r.gap, None);
        assert!(!r.early_stopped);
    }

    #[test]
    fn single_task_instance_terminates() {
        let g = TaskGraphBuilder::new(1).build().unwrap();
        let sys = HcSystem::with_anonymous_machines(
            2,
            Matrix::from_rows(&[vec![5.0], vec![3.0]]),
            Matrix::filled(1, 0, 0.0),
        )
        .unwrap();
        let inst = HcInstance::new(g, sys).unwrap();
        let mut se = SeScheduler::with_seed(0);
        let r = se.run(&inst, &RunBudget::iterations(10), None);
        assert_eq!(r.makespan, 3.0, "single task lands on its best machine");
    }

    #[test]
    #[should_panic(expected = "anytime")]
    fn unbounded_budget_rejected() {
        let inst = random_instance(5, 2, 15);
        SeScheduler::with_seed(0).run(&inst, &RunBudget::default(), None);
    }

    #[test]
    fn scheduler_name() {
        assert_eq!(SeScheduler::with_seed(0).name(), "se");
        assert_eq!(SePendingBias::new(SeConfig::default()).name(), "se");
    }

    #[test]
    fn stepped_run_matches_plain_run_at_any_slice_size() {
        // The cooperative interface must not perturb the trajectory:
        // stepping in slices of 1, 3 or 7 iterations reproduces the
        // plain run bit for bit, including the evaluation count.
        let inst = random_instance(20, 4, 42);
        let budget = RunBudget::iterations(18);
        let plain = SeScheduler::with_seed(6).run(&inst, &budget, None);
        for slice in [1u64, 3, 7] {
            let mut se = SeScheduler::with_seed(6);
            let mut state = se.start(&inst, &budget);
            assert_eq!(state.name(), "se");
            let mut steps = 0;
            while !state.step(slice, None).is_exhausted() {
                steps += 1;
                assert!(steps < 100, "stepped run must exhaust");
            }
            let stepped = state.result();
            assert_eq!(stepped.solution, plain.solution, "slice {slice}");
            assert_eq!(stepped.makespan, plain.makespan, "slice {slice}");
            assert_eq!(stepped.evaluations, plain.evaluations, "slice {slice}");
            assert_eq!(stepped.iterations, plain.iterations, "slice {slice}");
        }
    }

    #[test]
    fn stepped_trace_matches_plain_trace() {
        let inst = random_instance(16, 3, 43);
        let budget = RunBudget::iterations(12);
        let mut plain_trace = Trace::new();
        SeScheduler::with_seed(2).run(&inst, &budget, Some(&mut plain_trace));
        let mut stepped_trace = Trace::new();
        let mut se = SeScheduler::with_seed(2);
        let mut state = se.start(&inst, &budget);
        while !state.step(5, Some(&mut stepped_trace)).is_exhausted() {}
        assert_eq!(plain_trace.len(), stepped_trace.len());
        for (a, b) in plain_trace.records().iter().zip(stepped_trace.records()) {
            assert_eq!(a.iteration, b.iteration);
            assert_eq!(a.evaluations, b.evaluations);
            assert_eq!(a.current_cost, b.current_cost);
            assert_eq!(a.best_cost, b.best_cost);
            assert_eq!(a.selected, b.selected);
        }
    }

    #[test]
    fn inject_adopts_only_improving_migrants() {
        let inst = random_instance(18, 3, 44);
        let budget = RunBudget::iterations(40);
        let mut se = SeScheduler::with_seed(9);
        let mut state = se.start(&inst, &budget);
        let _ = state.step(4, None);
        let before = state.incumbent().expect("iterative searches always have an incumbent");
        let (before_sol, before_cost) = (before.solution.clone(), before.cost);
        // A worse migrant must be ignored entirely.
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let junk = mshc_schedule::random_solution(&inst, &mut rng);
        state.inject(&junk, before_cost + 1e6);
        let after = state.incumbent().unwrap();
        assert_eq!(after.solution, &before_sol);
        assert_eq!(after.cost, before_cost);
        // A better one becomes the incumbent immediately.
        let improved = {
            let mut donor = SeScheduler::with_seed(77);
            donor.run(&inst, &RunBudget::iterations(120), None)
        };
        if improved.objective_value < before_cost {
            state.inject(&improved.solution, improved.objective_value);
            let adopted = state.incumbent().unwrap();
            assert_eq!(adopted.solution, &improved.solution);
            assert_eq!(adopted.cost, improved.objective_value);
        }
        // The injected run still finishes valid and no worse.
        while !state.step(u64::MAX, None).is_exhausted() {}
        let r = state.result();
        r.solution.check(inst.graph()).unwrap();
        assert!(r.objective_value <= before_cost + 1e-9);
    }

    #[test]
    fn pending_bias_matches_resolved_scheduler() {
        // The lazily-resolved wrapper must behave exactly like an
        // eagerly-configured scheduler with the recommended bias.
        let inst = random_instance(24, 4, 45);
        let budget = RunBudget::iterations(10);
        let mut pending = SePendingBias::new(SeConfig {
            seed: 3,
            selection_bias: f64::NAN,
            ..SeConfig::default()
        });
        let via_pending = pending.run(&inst, &budget, None);
        let resolved = SeConfig {
            seed: 3,
            selection_bias: SeConfig::recommended_bias(24),
            ..SeConfig::default()
        };
        let direct = SeScheduler::new(resolved).run(&inst, &budget, None);
        assert_eq!(via_pending.solution, direct.solution);
        assert_eq!(via_pending.evaluations, direct.evaluations);
        // An explicit bias passes through untouched.
        let mut explicit = SePendingBias::new(SeConfig { seed: 3, ..SeConfig::default() });
        let explicit_run = explicit.run(&inst, &budget, None);
        let plain = SeScheduler::with_seed(3).run(&inst, &budget, None);
        assert_eq!(explicit_run.solution, plain.solution);
    }
}
