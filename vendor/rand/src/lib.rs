//! Hermetic stand-in for the `rand` crate.
//!
//! The build environment for this repository is fully offline, so the
//! workspace vendors a minimal, dependency-free implementation of the
//! `rand` API surface the suite actually uses: [`RngCore`], [`Rng`]
//! (`gen`, `gen_range`, `gen_bool`), [`SeedableRng`] (including the
//! SplitMix64-based `seed_from_u64` default) and
//! [`seq::SliceRandom::shuffle`]. The sampling algorithms are simple and
//! unbiased-enough for simulation workloads: Lemire-style widening
//! multiplication for integers and a 53-bit mantissa scale for floats.
//!
//! It is **not** a drop-in statistical replacement for the real crate and
//! produces a different (but deterministic and stable) value stream.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A source of random `u32`/`u64` values.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly random value of type `T` (for the types the suite
    /// samples: floats in `[0, 1)`, full-range integers, fair bools).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform value in the given (half-open or inclusive) range.
    /// Panics if the range is empty.
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        T: SampleUniform,
        S: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`. Panics unless `0 <= p <= 1`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not in [0,1]: {p}");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable uniformly over their "standard" domain by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u32() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty => $via:ident),* $(,)?) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.$via() as $t
            }
        }
    )*};
}

impl_standard_int! {
    u8 => next_u32, u16 => next_u32, u32 => next_u32, u64 => next_u64,
    usize => next_u64, i8 => next_u32, i16 => next_u32, i32 => next_u32,
    i64 => next_u64, isize => next_u64,
}

/// Types with uniform range sampling support.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[lo, hi)`. Panics if `lo >= hi`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`. Panics if `lo > hi`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_uniform_uint {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "gen_range: empty range {lo}..{hi}");
                let span = (hi as u64) - (lo as u64);
                lo + (bounded_u64(rng, span) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo <= hi, "gen_range: empty range {lo}..={hi}");
                let span = (hi as u64) - (lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (bounded_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_uniform_int {
    ($($t:ty as $u:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "gen_range: empty range {lo}..{hi}");
                let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                lo.wrapping_add(bounded_u64(rng, span) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo <= hi, "gen_range: empty range {lo}..={hi}");
                let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(bounded_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_uniform_int!(i8 as u8, i16 as u16, i32 as u32, i64 as u64, isize as usize);

macro_rules! impl_uniform_float {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "gen_range: empty range {lo}..{hi}");
                let u = <$t as Standard>::sample(rng);
                let v = lo + u * (hi - lo);
                // Guard against rounding up to the excluded endpoint.
                if v >= hi { <$t>::max(lo, hi.next_down()) } else { v }
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo <= hi, "gen_range: empty range {lo}..={hi}");
                let u = <$t as Standard>::sample(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}

impl_uniform_float!(f32, f64);

/// Uniform `u64` in `[0, bound)` via widening multiplication with a
/// rejection step (Lemire's method). `bound` must be non-zero.
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (bound as u128);
        let lo = m as u64;
        if lo >= bound || lo >= (u64::MAX - bound + 1) % bound {
            return (m >> 64) as u64;
        }
    }
}

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(rng, lo, hi)
    }
}

/// RNGs constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// Raw seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Build from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a `u64` by expanding it through SplitMix64, like
    /// `rand_core` does.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Sequence-related helpers (`shuffle`).
pub mod seq {
    use super::{Rng, SampleUniform};

    /// Slice extension trait: in-place Fisher–Yates shuffle.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffle the slice in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = usize::sample_inclusive(rng, 0, i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Lcg(u64);
    impl RngCore for Lcg {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Lcg(42);
        for _ in 0..10_000 {
            let a = rng.gen_range(3usize..17);
            assert!((3..17).contains(&a));
            let b = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&b));
            let c: f64 = rng.gen_range(0.5..100.0);
            assert!((0.5..100.0).contains(&c));
            let d: f64 = rng.gen();
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use seq::SliceRandom;
        let mut v: Vec<u32> = (0..50).collect();
        let mut rng = Lcg(7);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn float_half_open_excludes_endpoint_on_tiny_spans() {
        // A span tiny relative to the bound's magnitude: naive epsilon
        // subtraction rounds back to `hi`; the next_down guard must not.
        let mut rng = Lcg(9);
        let (lo, hi) = (1e16f64, 1e16 + 2.0);
        for _ in 0..10_000 {
            let v = rng.gen_range(lo..hi);
            assert!(v >= lo && v < hi, "{v} not in [{lo}, {hi})");
        }
    }

    #[test]
    fn gen_bool_edges() {
        let mut rng = Lcg(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
